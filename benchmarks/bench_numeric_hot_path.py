"""Step-loop throughput benchmark for the numeric SPH hot path.

Measures end-to-end instrumented step-loop throughput
(particles x steps per second) on the Sedov blast workload at the two
reference sizes (22^3 ~= 10k and 31^3 ~= 30k particles) and writes the
``BENCH_numeric.json`` artifact at the repo root. The artifact records
the measured throughput next to the pre-PR baseline (the last commit
before the shared StepGeometry / bincount scatter / Verlet-skin
overhaul, measured on the same machine with the same protocol) so the
speedup of the numeric overhaul stays an auditable number.

Modes::

    python benchmarks/bench_numeric_hot_path.py            # full, writes artifact
    python benchmarks/bench_numeric_hot_path.py --smoke    # CI regression gate

``--smoke`` runs a small 12^3 case and compares against the
``smoke.throughput_pps`` recorded in the checked-in artifact: the run
fails (exit 1) if throughput drops below ``SMOKE_TOLERANCE`` times the
baseline (i.e. a >30% regression). CI machines are slower and noisier
than the machine that produced the artifact, so the smoke baseline is
deliberately the *CI-observed* number — refresh it by committing the
``--smoke --update`` output from a CI-representative machine.

The file matches the ``bench_*.py`` pytest pattern but defines no test
functions; the pytest-benchmark suite in this directory regenerates
paper figures, while this bench tracks raw numeric throughput.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

ARTIFACT = REPO_ROOT / "BENCH_numeric.json"

#: Throughput (particles * steps / s) of the step loop at the commit
#: preceding the numeric hot-path overhaul, measured with this exact
#: protocol (Sedov, seed 11, 5 steps) on the machine that produced the
#: checked-in artifact. Keyed by particle count.
PRE_PR_BASELINE_PPS = {10648: 4137.0, 29791: 2380.0}

#: Full-mode protocol: (nside, steps) cases and the Verlet skin.
FULL_CASES = [(22, 5), (31, 5)]
SKIN = 0.1
SEED = 11

#: Smoke-mode protocol (CI): small case, fail on >30% regression.
SMOKE_NSIDE = 12
SMOKE_STEPS = 3
SMOKE_TOLERANCE = 0.7


def run_case(nside: int, steps: int, skin: float) -> dict:
    """Run ``steps`` instrumented Sedov steps; return throughput stats."""
    from repro.sph import NumericProblem, Simulation
    from repro.sph.init import SedovConfig, make_sedov, make_sedov_eos
    from repro.systems import Cluster, mini_hpc

    cfg = SedovConfig(nside=nside, blast_energy=1.0, seed=SEED)
    particles = make_sedov(cfg)
    cluster = Cluster(mini_hpc(), n_ranks=1)
    try:
        problem = NumericProblem(
            particles=particles,
            n_ranks=1,
            eos=make_sedov_eos(cfg),
            box_size=cfg.box_size,
            skin=skin,
        )
        sim = Simulation(
            cluster,
            "SedovBlast",
            n_particles_per_rank=particles.n,
            numeric=problem,
        )
        sim.initialize()
        start = time.perf_counter()
        for _ in range(steps):
            sim._run_step()
        elapsed = time.perf_counter() - start
        return {
            "n_particles": particles.n,
            "nside": nside,
            "steps": steps,
            "skin": skin,
            "elapsed_s": round(elapsed, 3),
            "throughput_pps": round(particles.n * steps / elapsed, 1),
            "neighbor_rebuilds": problem.neighbor_rebuilds,
            "neighbor_reuses": problem.neighbor_reuses,
        }
    finally:
        cluster.detach_management_library()


def run_full(skin: float) -> dict:
    """Run the full protocol and assemble the artifact payload."""
    results = []
    for nside, steps in FULL_CASES:
        case = run_case(nside, steps, skin)
        baseline = PRE_PR_BASELINE_PPS.get(case["n_particles"])
        if baseline is not None:
            case["pre_pr_baseline_pps"] = baseline
            case["speedup_vs_pre_pr"] = round(
                case["throughput_pps"] / baseline, 2
            )
        results.append(case)
        print(
            f"n={case['n_particles']:>6} steps={steps} skin={skin}: "
            f"{case['throughput_pps']:>9.1f} p*s/s"
            + (
                f"  ({case['speedup_vs_pre_pr']:.2f}x vs pre-PR "
                f"{baseline:.0f})"
                if baseline is not None
                else ""
            )
        )
    return {
        "benchmark": "numeric_hot_path",
        "workload": "SedovBlast",
        "protocol": {
            "seed": SEED,
            "skin": skin,
            "metric": "particles * steps / wall_second (instrumented loop)",
            "pre_pr_ref": (
                "commit before the StepGeometry/bincount/Verlet-skin "
                "overhaul, same machine, same protocol"
            ),
        },
        "results": results,
    }


def run_smoke(update: bool) -> int:
    """CI regression gate: compare against the checked-in baseline."""
    case = run_case(SMOKE_NSIDE, SMOKE_STEPS, SKIN)
    print(
        f"smoke: n={case['n_particles']} steps={SMOKE_STEPS} "
        f"-> {case['throughput_pps']:.1f} p*s/s"
    )
    if not ARTIFACT.exists():
        print(f"error: {ARTIFACT.name} missing; run the full bench first")
        return 1
    payload = json.loads(ARTIFACT.read_text())
    if update:
        payload["smoke"] = case
        ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"updated smoke baseline in {ARTIFACT.name}")
        return 0
    baseline = payload.get("smoke", {}).get("throughput_pps")
    if baseline is None:
        print(f"error: no smoke baseline in {ARTIFACT.name}")
        return 1
    floor = SMOKE_TOLERANCE * baseline
    verdict = "ok" if case["throughput_pps"] >= floor else "REGRESSION"
    print(
        f"baseline {baseline:.1f} p*s/s, floor {floor:.1f} "
        f"({SMOKE_TOLERANCE:.0%}): {verdict}"
    )
    return 0 if verdict == "ok" else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast case; fail on >30%% regression vs artifact",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="with --smoke: rewrite the smoke baseline instead of gating",
    )
    parser.add_argument(
        "--skin",
        type=float,
        default=SKIN,
        help="Verlet skin in units of h (default %(default)s)",
    )
    args = parser.parse_args()

    if args.smoke:
        return run_smoke(args.update)

    payload = run_full(args.skin)
    smoke = run_case(SMOKE_NSIDE, SMOKE_STEPS, args.skin)
    payload["smoke"] = smoke
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
