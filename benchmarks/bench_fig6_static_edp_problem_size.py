"""Fig. 6 — EDP vs static GPU frequency for different problem sizes.

Subsonic Turbulence on a single A100 (miniHPC), particles per GPU from
200³ (8 M, under-utilized) to 450³ (91 M, the memory cap of the 40 GB
card), clocks 1005-1410 MHz, EDP normalized to the 1410 MHz baseline.
Shape targets: EDP < 1 when down-scaling; the under-utilized 200³ case
dips far deeper, with a moderate clock (~1110 MHz) already capturing
nearly all of the benefit.
"""

from __future__ import annotations

from repro.core import StaticFrequencyPolicy, baseline_policy
from repro.reporting import render_series
from repro.systems import mini_hpc
from repro.sph import max_particles_per_gpu
from repro.units import GIB

from _harness import run_simulation

SIZES = {
    "200^3": 200**3,
    "250^3": 250**3,
    "300^3": 300**3,
    "350^3": 350**3,
    "400^3": 400**3,
    "450^3": 450**3,
}

FREQS = (1410, 1305, 1200, 1110, 1005)


def bench_fig6_static_edp_problem_size(benchmark):
    def experiment():
        series = {}
        for label, n in SIZES.items():
            base = run_simulation(
                mini_hpc(), 1, "SubsonicTurbulence", n,
                baseline_policy(1410),
            )
            series[label] = {}
            for f in FREQS:
                if f == 1410:
                    run = base
                else:
                    run = run_simulation(
                        mini_hpc(), 1, "SubsonicTurbulence", n,
                        StaticFrequencyPolicy(f),
                    )
                series[label][f] = run.edp / base.edp
        return series

    series = benchmark(experiment)

    print()
    print(
        render_series(
            {
                label: {f: round(v, 4) for f, v in vals.items()}
                for label, vals in series.items()
            },
            x_label="MHz",
            title=(
                "Fig. 6: EDP vs static GPU frequency, normalized to "
                "1410 MHz (Subsonic Turbulence, single A100)"
            ),
        )
    )
    # miniHPC's 40 GB card caps at 450^3 but not 150M (section IV-C).
    cap = max_particles_per_gpu(40.0 * GIB)
    print(f"note: 40 GB A100 memory cap = {cap / 1e6:.0f} M particles "
          "(>= 450^3 = 91 M; < 150 M)")

    for label, vals in series.items():
        # Down-scaling always pays off in EDP for this workload.
        assert vals[1005] < 1.0, label
        assert vals[1110] < vals[1410], label
    # The under-utilized case dips deepest (paper: "EDP drops
    # significantly when the GPUs are not fully utilized").
    assert min(series["200^3"].values()) < min(series["450^3"].values()) - 0.03
    # And 1110 MHz is already near-optimal for 200^3.
    small = series["200^3"]
    assert small[1110] <= min(small.values()) + 0.03
    # Monotone ordering of the dip depth with size.
    assert min(series["200^3"].values()) <= min(series["300^3"].values())
    assert min(series["300^3"].values()) <= min(series["450^3"].values())
    assert cap >= 450**3
    assert cap < 150e6
