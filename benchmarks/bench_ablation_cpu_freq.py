"""Ablation — centre-wide CPU down-clocking (the ARCHER2 move, §II-B).

The paper cites ARCHER2's 2022 decision to lower default CPU clocks
"to reduce the power consumption with limited performance loss".
For a GPU-resident code like SPH-EXA the host CPUs mostly idle, so the
same lever applies: this bench sweeps Slurm's ``--cpu-freq`` on a
CSCS-A100 job and shows node energy falling a few percent while
time-to-solution barely moves (only the small host-side phases slow).
"""

from __future__ import annotations

from repro.hardware import KernelLaunch
from repro.reporting import render_table
from repro.slurm import JobSpec, SlurmController
from repro.sph import run_instrumented
from repro.systems import Cluster, cscs_a100

N_PER_GPU = 150.0e6
STEPS = 5
CPU_FREQS_KHZ = (2_450_000, 2_000_000, 1_800_000, 1_500_000)


def _run(cpu_freq_khz):
    cluster = Cluster(cscs_a100(), 4)
    controller = SlurmController()
    controller.accounting.enable_energy_accounting()
    captured = {}

    def app(cl, job):
        captured["res"] = run_instrumented(
            cl, "SubsonicTurbulence", N_PER_GPU, STEPS
        )
        return captured["res"]

    try:
        job = controller.submit(
            JobSpec(
                name="cpufreq",
                n_nodes=1,
                n_tasks=4,
                cpu_freq_khz=cpu_freq_khz,
            ),
            cluster,
            app,
        )
    finally:
        cluster.detach_management_library()
    res = captured["res"]
    return res.elapsed_s, res.report.total_j(), job.consumed_energy_j


def bench_ablation_cpu_freq(benchmark):
    def experiment():
        return {khz: _run(khz) for khz in CPU_FREQS_KHZ}

    out = benchmark(experiment)

    base_t, base_e, _ = out[CPU_FREQS_KHZ[0]]
    rows = []
    for khz, (t, e, slurm_e) in out.items():
        rows.append(
            [
                f"{khz / 1e6:.2f} GHz",
                f"{t / base_t:.4f}",
                f"{e / base_e:.4f}",
            ]
        )
    print()
    print(
        render_table(
            ["--cpu-freq", "time-to-solution", "node energy"],
            rows,
            title=(
                "CPU frequency ablation (GPU-resident workload, "
                "CSCS-A100 node)"
            ),
        )
    )

    t_low, e_low, _ = out[CPU_FREQS_KHZ[-1]]
    # Limited performance loss...
    assert t_low / base_t < 1.02
    # ...with a measurable node-energy saving (the CPUs are a ~6 %
    # slice of a GPU node, so ~1 % node-level is the realistic ceiling).
    assert e_low / base_e < 0.995
    # Energy decreases monotonically with the CPU clock.
    energies = [out[khz][1] for khz in CPU_FREQS_KHZ]
    assert energies == sorted(energies, reverse=True)
    # And times grow (weakly) as the host phases slow.
    times = [out[khz][0] for khz in CPU_FREQS_KHZ]
    assert times == sorted(times)
