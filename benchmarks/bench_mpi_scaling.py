"""Step-loop scaling of the process comm backend vs the local one.

Runs the same seeded Sedov step loop once per backend at several rank
counts and writes the ``BENCH_mpi.json`` artifact at the repo root.
Two properties are measured and gated:

* **Equivalence** — per-rank virtual times, dt history, the full
  energy report and the GPU energy total must be bit-identical between
  backends (and unaffected by pacing). Any difference fails the bench
  outright, before speed is even considered.
* **Scaling** — with device-time pacing enabled the process backend
  must beat the local one by ``MIN_SPEEDUP_2`` at 2 ranks and
  ``MIN_SPEEDUP_8`` at 8 ranks.

Pacing is what makes the measurement meaningful on single-core CI
runners (the same trick as ``bench_campaign_throughput.py``): each
rank's modelled GPU-busy time is slept on the host, serially under the
local backend and concurrently across rank workers under the process
backend — exactly the overlap a real multi-GPU node provides. The
pace scale is auto-calibrated per rank count so every rank sleeps
about ``TARGET_BUSY_S`` per step regardless of its particle share, and
the unpaced wall times are recorded alongside for honesty.

Modes::

    python benchmarks/bench_mpi_scaling.py           # full, writes artifact
    python benchmarks/bench_mpi_scaling.py --smoke   # 2 ranks only (CI)
    python benchmarks/bench_mpi_scaling.py --check   # gate speedups, exit 1
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sph import NumericProblem, Simulation  # noqa: E402
from repro.sph.init import SedovConfig, make_sedov, make_sedov_eos  # noqa: E402
from repro.systems import Cluster, mini_hpc  # noqa: E402

ARTIFACT = REPO_ROOT / "BENCH_mpi.json"

NSIDE = 6
STEPS = 3
RANK_COUNTS = (2, 4, 8)
SMOKE_RANK_COUNTS = (2,)

#: Calibrated per-rank paced busy time per step, wall seconds. Big
#: enough to dominate the (backend-independent) host-side numeric
#: work, small enough to keep the whole bench under ~15 s.
TARGET_BUSY_S = 0.12

#: Pace scale of the calibration run (amplifies the busy signal well
#: above wall-clock noise without costing more than ~1 s).
CAL_SCALE = 5.0

#: Acceptance gates (ISSUE criterion): the paced step loop must run at
#: least this much faster under the process backend.
MIN_SPEEDUP_2 = 1.6
MIN_SPEEDUP_8 = 3.0


def run_once(n_ranks: int, comm_backend: str, pace_scale: float) -> dict:
    """One seeded Sedov step loop; wall time plus virtual-state snapshot."""
    cfg = SedovConfig(nside=NSIDE, blast_energy=1.0, seed=11)
    particles = make_sedov(cfg)
    cluster = Cluster(mini_hpc(), n_ranks, comm_backend=comm_backend)
    try:
        problem = NumericProblem(
            particles=particles,
            n_ranks=n_ranks,
            eos=make_sedov_eos(cfg),
            box_size=cfg.box_size,
            skin=0.0,
        )
        sim = Simulation(
            cluster,
            "SedovBlast",
            n_particles_per_rank=particles.n / n_ranks,
            numeric=problem,
            pace_scale=pace_scale,
        )
        t0 = time.perf_counter()
        result = sim.run(STEPS)
        wall = time.perf_counter() - t0
        return {
            "wall_s": wall,
            "window_s": result.report.max_window_time_s(),
            "virtual": {
                "clocks": [c.now for c in cluster.clocks],
                "dt_history": list(sim.dt_history),
                "gpu_energy_j": result.gpu_energy_j,
                "report": result.report.to_dict(),
            },
        }
    finally:
        cluster.detach_management_library()


def bench_ranks(n_ranks: int) -> dict:
    """Equivalence check + paced speedup for one rank count."""
    local0 = run_once(n_ranks, "local", 0.0)
    process0 = run_once(n_ranks, "process", 0.0)
    if process0["virtual"] != local0["virtual"]:
        raise RuntimeError(
            f"{n_ranks} ranks: unpaced process backend diverged from local"
        )

    # Calibrate pacing empirically: one local run at CAL_SCALE measures
    # what a unit of pace_scale costs in wall time (only the GPU-kernel
    # busy share of a step is paced — comm latency and host overhead
    # are virtual-only), then scale to TARGET_BUSY_S per rank per step.
    cal = run_once(n_ranks, "local", CAL_SCALE)
    paced_wall = max(cal["wall_s"] - local0["wall_s"], 0.0)
    busy_per_step = max(paced_wall / (CAL_SCALE * STEPS * n_ranks), 1e-5)
    pace_scale = TARGET_BUSY_S / busy_per_step

    local = run_once(n_ranks, "local", pace_scale)
    process = run_once(n_ranks, "process", pace_scale)
    for name, paced in (("local", local), ("process", process)):
        if paced["virtual"] != local0["virtual"]:
            raise RuntimeError(
                f"{n_ranks} ranks: pacing changed the {name} backend's "
                f"virtual results"
            )

    speedup = local["wall_s"] / process["wall_s"]
    print(
        f"{n_ranks} ranks: local {local['wall_s']:.2f}s, "
        f"process {process['wall_s']:.2f}s -> speedup {speedup:.2f}x "
        f"(pace_scale {pace_scale:.1f}, identical virtual state)"
    )
    return {
        "ranks": n_ranks,
        "pace_scale": round(pace_scale, 2),
        "local_wall_s": round(local["wall_s"], 4),
        "process_wall_s": round(process["wall_s"], 4),
        "speedup": round(speedup, 3),
        "unpaced": {
            "local_wall_s": round(local0["wall_s"], 4),
            "process_wall_s": round(process0["wall_s"], 4),
        },
        "virtual_state_identical": True,
        "gpu_energy_j": local0["virtual"]["gpu_energy_j"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="2-rank measurement only (CI smoke job)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 unless speedups >= {MIN_SPEEDUP_2}x at 2 ranks "
        f"and >= {MIN_SPEEDUP_8}x at 8 ranks",
    )
    args = parser.parse_args()

    rank_counts = SMOKE_RANK_COUNTS if args.smoke else RANK_COUNTS
    results = [bench_ranks(n) for n in rank_counts]

    gates = {2: MIN_SPEEDUP_2, 8: MIN_SPEEDUP_8}
    failures = []
    for entry in results:
        required = gates.get(entry["ranks"])
        if required is not None and entry["speedup"] < required:
            failures.append(
                f"{entry['ranks']} ranks: speedup {entry['speedup']:.2f}x "
                f"< required {required}x"
            )

    payload = {
        "schema": 1,
        "kind": "bench-mpi-scaling",
        "workload": {"name": "SedovBlast", "nside": NSIDE, "steps": STEPS},
        "target_busy_s": TARGET_BUSY_S,
        "host_cores": os.cpu_count(),
        "smoke": args.smoke,
        "gates": {"min_speedup_2_ranks": MIN_SPEEDUP_2,
                  "min_speedup_8_ranks": MIN_SPEEDUP_8},
        "results": results,
    }
    ARTIFACT.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"artifact: {ARTIFACT.name}")

    if args.check and failures:
        for line in failures:
            print(f"error: {line}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
