"""Fig. 9 — frequencies chosen by DVFS during the simulation.

Runs 10 time-steps of Subsonic Turbulence (450³ particles) on a single
A100 under governor control, recording the device clock over time.
Shape targets (paper §IV-E): per step, the clock climbs to the 1410 MHz
maximum during MomentumEnergy and above 1350 MHz during
IADVelocityDivCurl; the kernels in between sit at 1300-1350 MHz; the
lightweight-launch burst of DomainDecompAndSync holds ~1200 MHz; the
end-of-step collective lets the clock dip below 1000 MHz.
"""

from __future__ import annotations

import numpy as np

from repro.core import DvfsPolicy
from repro.reporting import render_table
from repro.systems import Cluster, mini_hpc
from repro.sph import Simulation

N = 450**3
STEPS = 10


def bench_fig9_dvfs_trace(benchmark):
    def experiment():
        cluster = Cluster(mini_hpc(), 1)
        try:
            sim = Simulation(
                cluster, "SubsonicTurbulence", N, policy=DvfsPolicy()
            )
            sim.initialize()
            gpu = cluster.gpus[0]
            gpu.start_frequency_trace()

            # Record the clock level at the end of each function, per step.
            per_function = {fn.name: [] for fn in sim.functions}
            sim.profiler.open_window()
            for _ in range(STEPS):
                for fn in sim.functions:
                    sim._run_function(fn)
                    per_function[fn.name].append(
                        gpu.current_clock_hz / 1e6
                    )
            sim.profiler.close_window()
            trace = gpu.stop_frequency_trace()
            return per_function, trace
        finally:
            cluster.detach_management_library()

    per_function, trace = benchmark(experiment)

    rows = [
        [fn, f"{np.mean(clocks):.0f}", f"{np.min(clocks):.0f}",
         f"{np.max(clocks):.0f}"]
        for fn, clocks in per_function.items()
    ]
    print()
    print(
        render_table(
            ["function", "mean clock [MHz]", "min", "max"],
            rows,
            title=(
                "Fig. 9: DVFS-selected clock at the end of each function "
                f"({STEPS} time-steps, single A100)"
            ),
        )
    )
    freqs_mhz = np.array([f for _, f in trace]) / 1e6
    print(
        f"trace: {len(trace)} clock events, "
        f"min {freqs_mhz.min():.0f} MHz, max {freqs_mhz.max():.0f} MHz"
    )
    # Render two time-steps of the sawtooth, as the paper's plot does.
    from repro.reporting import line_chart

    t_start = trace[0][0]
    step_span = (trace[-1][0] - t_start) / STEPS
    window = [
        (t - t_start, f / 1e6)
        for t, f in trace
        if t - t_start <= 2.0 * step_span
    ]
    print()
    print(
        line_chart(
            window,
            title="device clock over the first two time-steps",
            y_label="MHz",
            x_label="simulated time [s]",
        )
    )

    mean = {fn: float(np.mean(v)) for fn, v in per_function.items()}
    # MomentumEnergy boosts the clock to the maximum...
    assert mean["MomentumEnergy"] == 1410.0
    # ...IADVelocityDivCurl above 1350 MHz...
    assert mean["IADVelocityDivCurl"] > 1350.0
    # ...DomainDecompAndSync's lightweight launches hold ~1200 MHz...
    assert 1100.0 <= mean["DomainDecompAndSync"] <= 1300.0
    # ...and the end-of-step collective dips below 1000 MHz.
    assert mean["Timestep"] < 1000.0
    # The full trace spans the whole sawtooth.
    assert freqs_mhz.max() == 1410.0
    assert freqs_mhz.min() < 1000.0
    # The sawtooth repeats every step: the max is reached in all steps.
    assert all(c == 1410.0 for c in per_function["MomentumEnergy"])
