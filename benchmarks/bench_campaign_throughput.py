"""Campaign executor throughput: serial vs parallel workers.

Runs the same paced 8-unit grid twice — once with one worker (the
inline serial path) and once with two worker processes — into fresh
run stores, and writes the ``BENCH_campaign.json`` artifact at the
repo root with both wall-clock times and the speedup.

Each unit is paced to ``MIN_UNIT_WALL_S`` of wall time via the spec's
``min_unit_wall_s`` knob, emulating campaign workers that block on real
hardware (a frequency sweep spends its time waiting on the GPU, not on
the orchestrator's CPU). Pacing is what makes the speedup measurement
meaningful on single-core CI runners: the serial path pays every
unit's wall time in sequence, the pool overlaps them, exactly like a
real multi-node campaign.

Modes::

    python benchmarks/bench_campaign_throughput.py          # writes artifact
    python benchmarks/bench_campaign_throughput.py --check  # gate: >= MIN_SPEEDUP

``--check`` also writes the artifact, then exits 1 unless the 2-worker
run is at least ``MIN_SPEEDUP`` times faster than serial.

The file matches the ``bench_*.py`` pytest pattern but defines no test
functions; it tracks orchestration throughput, not paper figures.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import CampaignSpec, ExecutorConfig, run_campaign  # noqa: E402

ARTIFACT = REPO_ROOT / "BENCH_campaign.json"

#: Pacing per unit (wall seconds); the grid has 8 units, so the serial
#: floor is 8x this and the 2-worker floor is 4x.
MIN_UNIT_WALL_S = 0.4

#: Acceptance gate: 2 workers must beat serial by at least this factor
#: on the paced grid (ISSUE criterion: >= 1.5x on a >= 8-unit grid).
MIN_SPEEDUP = 1.5


def make_spec() -> CampaignSpec:
    """An 8-unit grid: baseline + clock sweep + DVFS + ManDyn + sizes."""
    return CampaignSpec(
        name="bench-campaign-throughput",
        systems=("miniHPC",),
        workloads=("SedovBlast",),
        particles=(30_000.0, 60_000.0),
        steps=2,
        seeds=(0,),
        policies=(
            {"kind": "baseline"},
            {"kind": "static"},
            {"kind": "dvfs"},
            {"kind": "mandyn"},
        ),
        clocks_mhz=(1305.0, 1005.0),
        min_unit_wall_s=MIN_UNIT_WALL_S,
    )


def run_once(spec: CampaignSpec, workers: int) -> dict:
    with tempfile.TemporaryDirectory() as root:
        t0 = time.perf_counter()
        status, _store = run_campaign(
            spec, root, config=ExecutorConfig(workers=workers)
        )
        wall = time.perf_counter() - t0
    if not status.complete or status.failed:
        raise RuntimeError(f"campaign did not complete: {status.describe()}")
    return {
        "workers": workers,
        "units": status.total,
        "executed": status.executed,
        "wall_s": round(wall, 4),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 unless 2-worker speedup >= {MIN_SPEEDUP}x",
    )
    args = parser.parse_args()

    spec = make_spec()
    serial = run_once(spec, workers=1)
    parallel = run_once(spec, workers=2)
    speedup = serial["wall_s"] / parallel["wall_s"]

    payload = {
        "schema": 1,
        "kind": "bench-campaign",
        "grid": {
            "units": serial["units"],
            "min_unit_wall_s": MIN_UNIT_WALL_S,
        },
        "serial": serial,
        "parallel": parallel,
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
    }
    ARTIFACT.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(
        f"{serial['units']} paced units: serial {serial['wall_s']:.2f}s, "
        f"2 workers {parallel['wall_s']:.2f}s -> speedup {speedup:.2f}x "
        f"(artifact: {ARTIFACT.name})"
    )
    if args.check and speedup < MIN_SPEEDUP:
        print(f"error: speedup {speedup:.2f}x < required {MIN_SPEEDUP}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
