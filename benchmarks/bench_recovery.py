"""Crash-recovery benchmark: kill at 50%, resume, measure the waste.

Exercises the end-to-end crash-tolerance path of :mod:`repro.checkpoint`
on a *numeric* Sedov run (real arrays, real neighbor lists — the state
that actually costs something to snapshot) and writes the
``BENCH_recovery.json`` artifact at the repo root:

1. **Reference** — an uninterrupted ``S``-step run, timed.
2. **Checkpointed** — the same run with ``checkpoint_every=K``, timed;
   the per-snapshot write cost is also measured directly (median of
   repeated ``save_checkpoint`` calls) so the overhead gate does not
   amplify wall-clock noise on shared CI runners.
3. **Kill + resume** — the checkpointed run is killed hard at the 50%
   step (an exception that bypasses the boundary-checkpoint rescue,
   i.e. SIGKILL semantics: whatever the last *periodic* snapshot holds
   is all that survives); a fresh process-equivalent ``Simulation``
   restores from that snapshot and finishes.

Gates (``--check``)::

    re-executed steps   < 15% of the total   (paper-motivated budget)
    checkpoint overhead <  2% of the run     (n_ckpts * write_s / wall)
    resumed result      bit-exact vs the uninterrupted reference

Modes::

    python benchmarks/bench_recovery.py           # writes artifact
    python benchmarks/bench_recovery.py --check   # gates, exit 1 on fail
    python benchmarks/bench_recovery.py --smoke --check   # CI-sized

The file matches the ``bench_*.py`` pytest pattern but defines no test
functions; it tracks recovery economics, not paper figures.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.checkpoint import read_checkpoint  # noqa: E402
from repro.sph import NumericProblem, Simulation  # noqa: E402
from repro.sph.init import SedovConfig, make_sedov, make_sedov_eos  # noqa: E402
from repro.systems import Cluster, mini_hpc  # noqa: E402

ARTIFACT = REPO_ROOT / "BENCH_recovery.json"

#: Re-executed work budget after a mid-run kill (fraction of total).
MAX_REEXECUTED_FRAC = 0.15

#: Periodic-snapshot cost budget (fraction of the uninterrupted wall).
MAX_OVERHEAD_FRAC = 0.02


class _Killed(RuntimeError):
    """Stand-in for SIGKILL: not JobPreempted, so no rescue snapshot."""


def _make_sim(nside: int, seed: int) -> Simulation:
    cfg = SedovConfig(nside=nside, seed=seed)
    parts = make_sedov(cfg)
    numeric = NumericProblem(
        particles=parts,
        n_ranks=2,
        eos=make_sedov_eos(cfg),
        box_size=cfg.box_size,
        skin=0.2,
    )
    cluster = Cluster(mini_hpc(), 2)
    return Simulation(
        cluster, "SedovBlast", parts.n, numeric=numeric
    )


def _state_digest(sim: Simulation) -> str:
    """Order-stable digest of the physics state (bit-exactness probe)."""
    parts = sim.numeric.particles
    import hashlib

    h = hashlib.sha256()
    for name in ("x", "y", "z", "vx", "vy", "vz", "u", "h"):
        h.update(np.ascontiguousarray(getattr(parts, name)).tobytes())
    return h.hexdigest()


def run_benchmark(steps: int, every: int, nside: int, seed: int) -> dict:
    kill_at = steps // 2
    # A kill on a snapshot boundary re-executes zero steps — legal, but
    # it would make the re-execution gate vacuous. Keep it off-boundary.
    assert kill_at % every != 0, "choose steps/every with an off-boundary kill"

    # 1. Uninterrupted reference.
    sim_ref = _make_sim(nside, seed)
    t0 = time.perf_counter()
    res_ref = sim_ref.run(steps)
    wall_ref = time.perf_counter() - t0
    digest_ref = _state_digest(sim_ref)

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = str(Path(tmp) / "bench.ckpt.json")

        # 2. Checkpointed, uninterrupted (wall + direct snapshot cost).
        sim_ck = _make_sim(nside, seed)
        t0 = time.perf_counter()
        res_ck = sim_ck.run(steps, checkpoint_every=every,
                            checkpoint_path=ckpt)
        wall_ck = time.perf_counter() - t0
        writes = []
        for _ in range(5):
            t0 = time.perf_counter()
            sim_ck.save_checkpoint(ckpt, n_steps=steps, steps_done=steps)
            writes.append(time.perf_counter() - t0)
        write_s = statistics.median(writes)
        overhead_frac = res_ck.checkpoints_written * write_s / wall_ref

        # 3. Kill hard at 50%, then resume in a fresh Simulation.
        sim_a = _make_sim(nside, seed)
        ckpt2 = str(Path(tmp) / "bench-kill.ckpt.json")

        def _kill(step: int) -> None:
            if step == kill_at:
                raise _Killed(f"killed at step {step}")

        try:
            sim_a.run(steps, checkpoint_every=every,
                      checkpoint_path=ckpt2, on_step=_kill)
            raise AssertionError("kill step never fired")
        except _Killed:
            pass
        snapshot_step = int(read_checkpoint(ckpt2)["steps_done"])

        sim_b = _make_sim(nside, seed)
        t0 = time.perf_counter()
        res_b = sim_b.run(steps, checkpoint_every=every,
                          checkpoint_path=ckpt2, restore_from=ckpt2)
        wall_resume = time.perf_counter() - t0
        digest_resumed = _state_digest(sim_b)

    reexecuted = kill_at - snapshot_step
    reexecuted_frac = reexecuted / steps
    bit_exact = (
        digest_resumed == digest_ref
        and res_b.gpu_energy_j == res_ref.gpu_energy_j
    )
    return {
        "schema": 1,
        "kind": "bench-recovery",
        "scenario": {
            "workload": "SedovBlast", "system": "miniHPC", "ranks": 2,
            "nside": nside, "seed": seed, "steps": steps,
            "checkpoint_every": every, "kill_at_step": kill_at,
        },
        "wall_uninterrupted_s": wall_ref,
        "wall_checkpointed_s": wall_ck,
        "wall_resume_s": wall_resume,
        "checkpoint_write_s": write_s,
        "checkpoints_written": res_ck.checkpoints_written,
        "snapshot_step": snapshot_step,
        "resumed_from_step": res_b.resumed_from_step,
        "steps_reexecuted": reexecuted,
        "reexecuted_frac": reexecuted_frac,
        "checkpoint_overhead_frac": overhead_frac,
        "bit_exact": bit_exact,
        "gates": {
            "max_reexecuted_frac": MAX_REEXECUTED_FRAC,
            "max_overhead_frac": MAX_OVERHEAD_FRAC,
        },
        "pass": (
            reexecuted_frac < MAX_REEXECUTED_FRAC
            and overhead_frac < MAX_OVERHEAD_FRAC
            and bit_exact
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless every gate passes")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized problem (seconds, not minutes)")
    args = parser.parse_args(argv)

    # Cadence matters for the overhead gate: a snapshot costs ~0.2-0.3
    # steps of wall time at these sizes, so production-style sparse
    # checkpoints (every ~15 steps) keep the tax well under 2% while
    # the mid-interval kill still re-executes only a few steps.
    if args.smoke:
        steps, every, nside = 48, 20, 10
    else:
        steps, every, nside = 96, 22, 10

    doc = run_benchmark(steps=steps, every=every, nside=nside, seed=7)
    ARTIFACT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    print(f"uninterrupted wall     : {doc['wall_uninterrupted_s']:.3f} s")
    print(f"checkpointed wall      : {doc['wall_checkpointed_s']:.3f} s")
    print(f"snapshot write (median): {doc['checkpoint_write_s'] * 1e3:.1f} ms"
          f" x {doc['checkpoints_written']}")
    print(f"checkpoint overhead    : {doc['checkpoint_overhead_frac']:.2%}"
          f"  (gate < {MAX_OVERHEAD_FRAC:.0%})")
    print(f"killed at step {doc['scenario']['kill_at_step']}, snapshot at "
          f"{doc['snapshot_step']}, re-executed {doc['steps_reexecuted']} "
          f"of {doc['scenario']['steps']} steps "
          f"({doc['reexecuted_frac']:.1%}, gate < "
          f"{MAX_REEXECUTED_FRAC:.0%})")
    print(f"resumed result bit-exact vs reference: {doc['bit_exact']}")
    print(f"artifact: {ARTIFACT}")
    if args.check and not doc["pass"]:
        print("RECOVERY GATE: FAIL", file=sys.stderr)
        return 1
    if args.check:
        print("RECOVERY GATE: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
