"""Campaign service under load: concurrent clients, caching, latency.

Boots the full ``repro.service`` stack — HTTP front end, fair
scheduler, multi-tenant store — in-process on an ephemeral port and
drives it the way a busy lab would:

1. **seed** — submit a campaign and drain it to completion;
2. **resubmit** — re-POST the identical spec many times and verify the
   executed-units counter does not move (content-hash dedup);
3. **overlap** — submit sibling specs sharing half their grid with the
   seed campaign and measure the unit cache-hit rate;
4. **load** — hold N concurrent keep-alive clients open at once, each
   issuing sequential status polls, and record p50/p99 latency and
   sustained throughput.

Writes the ``BENCH_service.json`` artifact at the repo root. Modes::

    python benchmarks/bench_service_load.py            # 500 clients
    python benchmarks/bench_service_load.py --smoke    # 50 clients + gate
    python benchmarks/bench_service_load.py --check    # 500 clients + gate

The gate fails when any request errors, when the cache-hit rate is
zero, when a resubmission recomputed anything, or (non-smoke) when
fewer than ``FULL_CLIENTS`` clients were sustained concurrently.

The file matches the ``bench_*.py`` pytest pattern but defines no test
functions; it tracks control-plane behaviour, not paper figures.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import (  # noqa: E402
    CampaignService,
    SchedulerConfig,
    ServiceConfig,
    serve,
)

ARTIFACT = REPO_ROOT / "BENCH_service.json"

#: Concurrent keep-alive clients in the full run (ISSUE floor: 500).
FULL_CLIENTS = 500

#: Concurrent clients in --smoke (CI) mode.
SMOKE_CLIENTS = 50

#: Status polls each client issues over its one connection.
POLLS_PER_CLIENT = 10

#: Identical resubmissions of the completed seed campaign.
RESUBMITS = 20


def spec_doc(name: str, policies: List[Dict[str, Any]]) -> Dict[str, Any]:
    return {
        "schema": 1,
        "kind": "campaign-spec",
        "name": name,
        "systems": ["miniHPC"],
        "workloads": ["SedovBlast"],
        "particles": [30_000.0, 60_000.0],
        "steps": 2,
        "seeds": [0],
        "policies": policies,
        "clocks_mhz": [1305.0, 1005.0],
    }


SEED_SPEC = spec_doc(
    "bench-service", [{"kind": "baseline"}, {"kind": "static"}]
)

#: Sibling specs: same campaign name, so their baseline/static halves
#: collide with the seed grid and must arrive as cache hits.
OVERLAP_SPECS = [
    spec_doc("bench-service", [{"kind": "baseline"}, {"kind": "dvfs"}]),
    spec_doc("bench-service", [{"kind": "static"}, {"kind": "mandyn"}]),
]


class Client:
    """One keep-alive HTTP/1.1 connection issuing sequential requests."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader
        self.writer: asyncio.StreamWriter

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def request(
        self, method: str, path: str, body: Any = None
    ) -> Dict[str, Any]:
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        self.writer.write(
            (
                f"{method} {path} HTTP/1.1\r\nHost: {self.host}\r\n"
                f"Content-Length: {len(payload)}\r\n\r\n"
            ).encode("latin-1")
            + payload
        )
        await self.writer.drain()
        head = await self.reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        length = 0
        for line in lines[1:]:
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1])
        raw = await self.reader.readexactly(length) if length else b""
        doc = json.loads(raw) if raw else {}
        if status >= 400:
            raise RuntimeError(f"{method} {path} -> {status}: {doc}")
        return doc


async def wait_done(client: Client, cid: str, timeout: float = 60.0) -> None:
    deadline = time.perf_counter() + timeout
    while True:
        doc = await client.request("GET", f"/campaigns/{cid}")
        if doc["state"] == "done":
            return
        if doc["state"] in ("failed", "cancelled"):
            raise RuntimeError(f"campaign {cid} ended {doc['state']}")
        if time.perf_counter() > deadline:
            raise RuntimeError(f"campaign {cid} stuck in {doc['state']}")
        await asyncio.sleep(0.02)


async def poll_worker(
    host: str,
    port: int,
    cid: str,
    polls: int,
    barrier: asyncio.Barrier,
    latencies: List[float],
    errors: List[str],
) -> None:
    client = Client(host, port)
    try:
        await client.connect()
        # Hold until EVERY client is connected: the measured window has
        # all N connections open simultaneously, not a ramp.
        await barrier.wait()
        for _ in range(polls):
            t0 = time.perf_counter()
            await client.request("GET", f"/campaigns/{cid}")
            latencies.append(time.perf_counter() - t0)
    except Exception as exc:  # noqa: BLE001 - recorded, fails the gate
        errors.append(f"{type(exc).__name__}: {exc}")
    finally:
        await client.close()


async def run_bench(clients: int) -> Dict[str, Any]:
    with tempfile.TemporaryDirectory() as root:
        service = CampaignService(
            ServiceConfig(
                root=root,
                scheduler=SchedulerConfig(
                    max_running=2, per_tenant_running=2, queue_depth=64
                ),
            )
        )
        server = await serve(service, port=0)
        try:
            return await _phases(service, server, clients)
        finally:
            await server.close()
            await service.close()


async def _phases(service, server, clients: int) -> Dict[str, Any]:
    control = Client(server.host, server.port)
    await control.connect()

    # -- phase 1: seed campaign ------------------------------------------
    sub = await control.request("POST", "/campaigns", SEED_SPEC)
    cid = sub["id"]
    await wait_done(control, cid)
    executed_after_seed = service.metrics.counter_total(
        "service_units_executed"
    )

    # -- phase 2: identical resubmissions never recompute ----------------
    for _ in range(RESUBMITS):
        again = await control.request("POST", "/campaigns", SEED_SPEC)
        assert again["id"] == cid
    await control.request("GET", f"/campaigns/{cid}/report")
    resubmit_recomputed = (
        service.metrics.counter_total("service_units_executed")
        - executed_after_seed
    )

    # -- phase 3: overlapping sibling specs hit the unit cache -----------
    overlap_ids = []
    for doc in OVERLAP_SPECS:
        sub = await control.request("POST", "/campaigns", doc)
        overlap_ids.append(sub["id"])
    for oid in overlap_ids:
        await wait_done(control, oid)
    executed = service.metrics.counter_total("service_units_executed")
    cache_hits = service.metrics.counter_total("service_unit_cache_hits")
    hit_rate = cache_hits / max(1.0, cache_hits + executed)

    # -- phase 4: concurrent status-poll load ----------------------------
    latencies: List[float] = []
    errors: List[str] = []
    barrier = asyncio.Barrier(clients + 1)
    tasks = [
        asyncio.ensure_future(
            poll_worker(
                server.host, server.port, cid, POLLS_PER_CLIENT,
                barrier, latencies, errors,
            )
        )
        for _ in range(clients)
    ]
    await barrier.wait()  # all clients connected: start the clock
    t0 = time.perf_counter()
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - t0
    await control.close()

    latencies.sort()
    quantile = (
        lambda q: statistics.quantiles(latencies, n=100)[q - 1]
        if len(latencies) >= 100
        else latencies[int(q / 100 * (len(latencies) - 1))]
    )
    return {
        "load": {
            "concurrent_clients": clients,
            "polls_per_client": POLLS_PER_CLIENT,
            "requests": len(latencies),
            "errors": len(errors),
            "error_samples": errors[:5],
            "wall_s": round(wall, 4),
            "throughput_rps": round(len(latencies) / wall, 1),
            "p50_ms": round(quantile(50) * 1e3, 3),
            "p99_ms": round(quantile(99) * 1e3, 3),
        },
        "caching": {
            "units_executed": executed,
            "unit_cache_hits": cache_hits,
            "cache_hit_rate": round(hit_rate, 4),
            "resubmits": RESUBMITS,
            "resubmit_recomputed": resubmit_recomputed,
            "report_cache_hits": service.metrics.counter_total(
                "service_report_cache_hits"
            ),
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI mode: {SMOKE_CLIENTS} clients, gate on the results",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"full mode with gate ({FULL_CLIENTS} clients)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=None,
        help="override the concurrent client count",
    )
    args = parser.parse_args()

    clients = args.clients or (SMOKE_CLIENTS if args.smoke else FULL_CLIENTS)
    results = asyncio.run(run_bench(clients))

    payload = {
        "schema": 1,
        "kind": "bench-service",
        "mode": "smoke" if args.smoke else "full",
        **results,
    }
    ARTIFACT.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    load, caching = results["load"], results["caching"]
    print(
        f"{load['concurrent_clients']} concurrent clients, "
        f"{load['requests']} polls in {load['wall_s']:.2f}s "
        f"({load['throughput_rps']:.0f} req/s, "
        f"p50 {load['p50_ms']:.1f}ms, p99 {load['p99_ms']:.1f}ms); "
        f"cache hit rate {caching['cache_hit_rate']:.0%}, "
        f"{caching['resubmit_recomputed']:.0f} units recomputed on "
        f"{caching['resubmits']} resubmits (artifact: {ARTIFACT.name})"
    )

    if args.smoke or args.check:
        failures = []
        if load["errors"]:
            failures.append(
                f"{load['errors']} request errors: {load['error_samples']}"
            )
        if caching["cache_hit_rate"] <= 0:
            failures.append("cache hit rate is zero on overlapping specs")
        if caching["resubmit_recomputed"] != 0:
            failures.append(
                f"resubmission recomputed "
                f"{caching['resubmit_recomputed']:.0f} units"
            )
        if not args.smoke and load["concurrent_clients"] < FULL_CLIENTS:
            failures.append(
                f"only {load['concurrent_clients']} concurrent clients "
                f"(need >= {FULL_CLIENTS})"
            )
        for failure in failures:
            print(f"error: {failure}")
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
