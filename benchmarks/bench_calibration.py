"""Calibration-pipeline benchmark: fit accuracy and cost per system.

Runs the full ``repro calibrate`` loop — probe sweep, then both ingest
paths (telemetry trace, PMT dump + schedule) — against every shipped
catalog system and writes the ``BENCH_calibration.json`` artifact at
the repo root: worst-case parameter errors versus the ground-truth
spec, probe counts, and wall-clock cost of sweep and fit.

Gates (``--check``)::

    P_idle / P_dyn / alpha / peak / bandwidth   within 2% on every system
    per-kernel efficiency + compute fraction    within 5% on every system
    both ingest paths agree on P_idle           within 0.1%

Modes::

    python benchmarks/bench_calibration.py            # writes artifact
    python benchmarks/bench_calibration.py --check    # gates, exit 1 on fail
    python benchmarks/bench_calibration.py --smoke --check   # miniHPC only

The file matches the ``bench_*.py`` pytest pattern but defines no test
functions; it tracks the calibration pipeline, not paper figures.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog import available_entries  # noqa: E402
from repro.catalog.fit import (  # noqa: E402
    fit_from_dump,
    fit_from_trace,
    run_calibration_sweep,
    verify_fit,
)
from repro.systems import by_name  # noqa: E402

ARTIFACT = REPO_ROOT / "BENCH_calibration.json"

POWER_TOL = 0.02
ROOFLINE_TOL = 0.05
AGREEMENT_TOL = 0.001


def _flatten_errors(errors):
    power = max(
        errors["idle_power_w"], errors["dynamic_power_w"],
        errors["power_exponent"], errors["fp_throughput"],
        errors.get("mem_bandwidth", 0.0),
    )
    roofline = 0.0
    for kernel_errors in errors.get("kernels", {}).values():
        roofline = max(roofline, *kernel_errors.values())
    return power, roofline


def measure(names):
    systems = {}
    for name in names:
        system = by_name(name)
        spec = system.gpu_spec()
        with tempfile.TemporaryDirectory(prefix="bench-cal-") as tmp:
            t0 = time.perf_counter()
            result = run_calibration_sweep(system, tmp)
            sweep_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            via_trace = fit_from_trace(result.trace_path)
            fit_s = time.perf_counter() - t0
            via_dump = fit_from_dump(result.dump_path, result.schedule_path)
        power_err, roofline_err = _flatten_errors(
            verify_fit(via_trace, spec)
        )
        dump_power_err, dump_roofline_err = _flatten_errors(
            verify_fit(via_dump, spec)
        )
        agreement = abs(
            via_trace.idle_power_w - via_dump.idle_power_w
        ) / spec.idle_power_w
        systems[name] = {
            "n_probes": result.n_probes,
            "n_clocks": len(result.clocks_mhz),
            "simulated_s": round(result.elapsed_s, 3),
            "sweep_wall_s": round(sweep_s, 4),
            "fit_wall_s": round(fit_s, 4),
            "max_power_err": max(power_err, dump_power_err),
            "max_roofline_err": max(roofline_err, dump_roofline_err),
            "path_agreement_err": agreement,
        }
    return {
        "schema": 1,
        "kind": "bench-calibration",
        "tolerances": {
            "power": POWER_TOL,
            "roofline": ROOFLINE_TOL,
            "path_agreement": AGREEMENT_TOL,
        },
        "systems": systems,
    }


def check(doc) -> int:
    failures = []
    for name, row in doc["systems"].items():
        if row["max_power_err"] > POWER_TOL:
            failures.append(
                f"{name}: power error {row['max_power_err']:.3%} "
                f"> {POWER_TOL:.0%}"
            )
        if row["max_roofline_err"] > ROOFLINE_TOL:
            failures.append(
                f"{name}: roofline error {row['max_roofline_err']:.3%} "
                f"> {ROOFLINE_TOL:.0%}"
            )
        if row["path_agreement_err"] > AGREEMENT_TOL:
            failures.append(
                f"{name}: trace and dump paths disagree by "
                f"{row['path_agreement_err']:.3%}"
            )
    for failure in failures:
        print(f"FAIL {failure}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="gate on the accuracy tolerances")
    parser.add_argument("--smoke", action="store_true",
                        help="calibrate miniHPC only (CI-sized)")
    args = parser.parse_args(argv)

    names = ["miniHPC"] if args.smoke else sorted(available_entries())
    doc = measure(names)
    ARTIFACT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    for name, row in doc["systems"].items():
        print(
            f"{name:16s} probes={row['n_probes']:3d} "
            f"sweep={row['sweep_wall_s']:.3f}s fit={row['fit_wall_s']:.3f}s "
            f"power_err={row['max_power_err']:.2e} "
            f"roofline_err={row['max_roofline_err']:.2e}"
        )
    print(f"artifact: {ARTIFACT}")
    if args.check:
        rc = check(doc)
        if rc == 0:
            print(
                f"calibration gates passed on {len(doc['systems'])} "
                f"system(s) (power {POWER_TOL:.0%}, roofline "
                f"{ROOFLINE_TOL:.0%})"
            )
        return rc
    return 0


if __name__ == "__main__":
    sys.exit(main())
