"""Fig. 1 — programming-language energy efficiency vs time-to-solution.

Background figure (reproduced in the paper from Portegies Zwart 2020):
equivalent direct N-body implementations across languages and devices.
The bench runs the real reference N-body integration to fix the work,
maps it onto the simulated hardware, and prints the scatter series;
CUDA implementations must come out roughly an order of magnitude more
energy-efficient than compiled CPU languages.
"""

from __future__ import annotations

from repro.langbench import language_efficiency, nbody_reference_work
from repro.reporting import render_table


def bench_fig1_language_efficiency(benchmark):
    def experiment():
        # Fix the work with a real (small) integration, then scale to a
        # production-sized run as in the original study.
        unit_work = nbody_reference_work(n_bodies=256, steps=10)
        total_flops = unit_work * 2.0e7
        return language_efficiency(total_flops)

    results = benchmark(experiment)

    rows = [
        [
            r.language,
            r.device,
            f"{r.time_s / 3600.0:.3f}",
            f"{r.kwh:.3f}",
        ]
        for r in sorted(results, key=lambda r: r.energy_j)
    ]
    print()
    print(
        render_table(
            ["implementation", "device", "time-to-solution [h]",
             "energy [kWh]"],
            rows,
            title="Fig. 1: N-body language efficiency (energy vs time)",
        )
    )

    by_name = {r.language: r for r in results}
    cpp, cuda = by_name["C++"], by_name["CUDA"]
    python = by_name["Python (pure)"]
    # CUDA ~ an order of magnitude more energy-efficient than C++.
    assert 5.0 < cpp.energy_j / cuda.energy_j < 50.0
    # Interpreted Python is the worst on both axes.
    assert python.energy_j == max(r.energy_j for r in results)
    assert python.time_s == max(r.time_s for r in results)
    # GPU implementations are the most energy-efficient overall.
    best = min(results, key=lambda r: r.energy_j)
    assert best.device == "gpu"
