"""Shared helpers for the per-figure benchmark harness.

Every bench regenerates one table or figure of the paper: it runs the
experiment on the simulated systems, prints the same rows/series the
paper reports (via ``repro.reporting``), asserts the qualitative shape,
and times the experiment through pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from repro.core import FrequencyPolicy
from repro.sph import SimulationResult, run_instrumented
from repro.systems import Cluster, SystemConfig

#: Time-steps per measured run. The paper uses 100 (-s 100); benches use
#: a shorter window and extrapolate linear totals where absolute values
#: are compared, which is exact for the steady-state model workloads.
BENCH_STEPS = 10

#: The paper's full step count, used to extrapolate MJ totals.
PAPER_STEPS = 100


def run_simulation(
    system: SystemConfig,
    n_ranks: int,
    workload: str,
    n_per_rank: float,
    policy: "FrequencyPolicy | None" = None,
    steps: int = BENCH_STEPS,
) -> SimulationResult:
    """Build a cluster, run the instrumented simulation, tear down."""
    cluster = Cluster(system, n_ranks)
    try:
        return run_instrumented(
            cluster, workload, n_per_rank, steps, policy=policy
        )
    finally:
        cluster.detach_management_library()


def run_simulation_with_cluster(
    system: SystemConfig,
    n_ranks: int,
    workload: str,
    n_per_rank: float,
    policy: "FrequencyPolicy | None" = None,
    steps: int = BENCH_STEPS,
):
    """Like :func:`run_simulation` but also returns the (detached)
    cluster so benches can read node-level counters afterwards."""
    cluster = Cluster(system, n_ranks)
    try:
        result = run_instrumented(
            cluster, workload, n_per_rank, steps, policy=policy
        )
    finally:
        cluster.detach_management_library()
    return result, cluster


def to_paper_scale(joules: float, steps: int = BENCH_STEPS) -> float:
    """Extrapolate a ``steps``-step energy total to the paper's 100."""
    return joules * PAPER_STEPS / steps
