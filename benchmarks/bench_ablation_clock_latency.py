"""Ablation — how expensive may a clock change be before ManDyn loses?

ManDyn issues ``nvmlDeviceSetApplicationsClocks`` twice per step
(into and out of the compute-bound kernel block). The call costs real
time on real drivers; this bench sweeps the modelled latency and
locates the break-even point against the pinned baseline's EDP. At the
calibrated 3 ms the overhead is negligible — the design reason ManDyn
instruments *functions* rather than individual kernel launches (which
would multiply the switch count by orders of magnitude).
"""

from __future__ import annotations

from repro.core import ManDynPolicy, baseline_policy
from repro.hardware.gpu import SimulatedGpu
from repro.reporting import render_table
from repro.systems import mini_hpc

from _harness import run_simulation

N = 450**3
LATENCIES_S = (0.0, 0.003, 0.030, 0.150, 0.600)

MANDYN = {
    "MomentumEnergy": 1410.0,
    "IADVelocityDivCurl": 1410.0,
}


def bench_ablation_clock_latency(benchmark):
    def experiment():
        original = SimulatedGpu.CLOCK_SET_LATENCY_S
        rows = {}
        try:
            base = run_simulation(
                mini_hpc(), 1, "SubsonicTurbulence", N,
                baseline_policy(1410),
            )
            for latency in LATENCIES_S:
                SimulatedGpu.CLOCK_SET_LATENCY_S = latency
                res = run_simulation(
                    mini_hpc(), 1, "SubsonicTurbulence", N,
                    ManDynPolicy(MANDYN, default_mhz=1005.0),
                )
                rows[latency] = (
                    res.elapsed_s / base.elapsed_s,
                    res.gpu_energy_j / base.gpu_energy_j,
                    res.clock_set_calls,
                )
        finally:
            SimulatedGpu.CLOCK_SET_LATENCY_S = original
        return rows

    rows = benchmark(experiment)

    print()
    print(
        render_table(
            ["clock-set latency [ms]", "time", "GPU energy", "EDP",
             "switches"],
            [
                [f"{lat * 1e3:.0f}", f"{t:.4f}", f"{e:.4f}",
                 f"{t * e:.4f}", calls]
                for lat, (t, e, calls) in rows.items()
            ],
            title="ManDyn vs baseline under clock-change latency",
        )
    )

    # At the calibrated latency ManDyn clearly wins EDP.
    t, e, _ = rows[0.003]
    assert t * e < 0.97
    # The win degrades monotonically with latency...
    edps = [rows[lat][0] * rows[lat][1] for lat in LATENCIES_S]
    assert edps == sorted(edps)
    # ...and an absurd 600 ms per change erases (or nearly erases) it.
    t_bad, e_bad, _ = rows[0.600]
    assert t_bad * e_bad > 0.99
    # Zero-latency differs from 3 ms by well under a percent: switch
    # overhead is not where ManDyn's cost comes from.
    assert abs(edps[1] - edps[0]) < 0.01
