"""Table I — simulation and computing system parameters.

Prints the simulation workload rows and the per-node hardware of the
three systems, straight from the presets the rest of the reproduction
runs on, and checks them against the published values.
"""

from __future__ import annotations

from repro.reporting import render_table
from repro.systems import by_name
from repro.units import to_mhz

#: The paper's workload rows (-n particle sweeps, -s 100).
SIMULATIONS = [
    (
        "Subsonic Turbulence",
        "-n 0.6|1.2|2.4|4.9|7.4|9.2|14.7 Billion particles -s 100",
        "150 million particles per GPU, 100 time-steps",
    ),
    (
        "Evrard Collapse",
        "-n 0.6|1.2|2.4|3.2|4.8|7.7 Billion particles -s 100",
        "80 million particles per GPU, 100 time-steps",
    ),
]


def bench_table1_systems(benchmark):
    def build():
        rows = []
        for name in ("LUMI-G", "CSCS-A100", "miniHPC"):
            system = by_name(name)
            gpu = system.gpu_spec()
            cpu = system.cpu_spec
            rows.append(
                [
                    name,
                    f"{cpu.sockets}x {cpu.cores_per_socket}c {cpu.name}",
                    f"{system.ranks_per_node}x {gpu.name}",
                    f"{to_mhz(gpu.max_clock_hz):.0f} MHz",
                    f"{to_mhz(gpu.memory_clock_hz):.0f} MHz",
                ]
            )
        return rows

    rows = benchmark(build)

    print()
    print(
        render_table(
            ["Simulation", "Parameters", "Info"],
            SIMULATIONS,
            title="Table I (top): simulation parameters",
        )
    )
    print()
    print(
        render_table(
            ["System", "CPU", "GPUs / node", "GPU compute freq",
             "GPU memory freq"],
            rows,
            title="Table I (bottom): computing system parameters",
        )
    )

    by_system = {r[0]: r for r in rows}
    assert by_system["LUMI-G"][3] == "1700 MHz"
    assert by_system["LUMI-G"][4] == "1600 MHz"
    assert by_system["CSCS-A100"][3] == "1410 MHz"
    assert by_system["CSCS-A100"][4] == "1593 MHz"
    assert by_system["miniHPC"][3] == "1410 MHz"
    assert "MI250X" in by_system["LUMI-G"][2]
    assert "A100" in by_system["CSCS-A100"][2]
