"""Fig. 2 — best-EDP GPU frequency per SPH-EXA function (KernelTuner).

Reruns the paper's §III-C experiment: every SPH-EXA kernel at 450³
particles, swept over the supported clocks in the 1005-1410 MHz
window, best configuration selected by EDP. Compute-bound kernels
(MomentumEnergy, IADVelocityDivCurl) must tune to (near-)maximum
clocks; the lightweight kernels tune low.
"""

from __future__ import annotations

from repro import nvml
from repro.reporting import render_table
from repro.systems import Cluster, mini_hpc
from repro.tuner import tune_all_sph_functions

PROBLEM_SIZE = 450**3


def bench_fig2_kerneltuner_frequencies(benchmark):
    def experiment():
        cluster = Cluster(mini_hpc(), 1)
        try:
            handle = nvml.nvmlDeviceGetHandleByIndex(0)
            freqs = nvml.supported_clock_window_mhz(handle, 1005, 1410)
            # Every third bin keeps the sweep fast without changing the
            # sweet spots (15 MHz bins are much finer than the optima).
            freqs = freqs[::3]
            best = tune_all_sph_functions(
                cluster.gpus[0], PROBLEM_SIZE, freqs, iterations=3
            )
            return best, freqs
        finally:
            cluster.detach_management_library()

    best, freqs = benchmark(experiment)

    print()
    print(
        render_table(
            ["SPH-EXA function", "best-EDP frequency [MHz]"],
            sorted(best.items(), key=lambda kv: -kv[1]),
            title=(
                "Fig. 2: per-function GPU frequencies optimized for EDP "
                f"(Subsonic Turbulence, 450^3 particles, "
                f"{freqs[-1]:.0f}-{freqs[0]:.0f} MHz window)"
            ),
        )
    )

    assert best["MomentumEnergy"] == 1410.0
    assert best["IADVelocityDivCurl"] >= 1350.0
    for light in (
        "XMass",
        "NormalizationGradh",
        "EquationOfState",
        "DomainDecompAndSync",
        "FindNeighbors",
        "Timestep",
        "UpdateQuantities",
    ):
        assert best[light] <= 1110.0, light
