"""Fig. 7 — static frequencies vs DVFS vs ManDyn (the headline result).

Subsonic Turbulence, 450³ particles, single A100 (miniHPC). Compares
time-to-solution, GPU energy-to-solution and EDP, normalized to the
1410 MHz baseline, for: static clocks 1005-1410 MHz, the hardware DVFS
governor, and the paper's ManDyn (per-function clocks from the tuner).

Shape targets (paper §IV-D): static down-scaling trades >15 % time for
~20 % energy; DVFS is time-neutral but costs energy; ManDyn loses at
most ~3 % time, saves ~8 % GPU energy (up to 7.82 % in the paper),
cuts EDP by ~4-7 %, and is ~16 % faster than static 1005 MHz.
"""

from __future__ import annotations

from repro.core import (
    DvfsPolicy,
    ManDynPolicy,
    StaticFrequencyPolicy,
    baseline_policy,
)
from repro.reporting import render_table
from repro.systems import Cluster, mini_hpc
from repro.tuner import tune_all_sph_functions

from _harness import run_simulation

N = 450**3
STATIC_FREQS = (1305, 1200, 1110, 1005)


def _tuned_policy():
    cluster = Cluster(mini_hpc(), 1)
    try:
        freqs = [1410 - 15 * k for k in range(0, 28, 3)]
        best = tune_all_sph_functions(
            cluster.gpus[0], N, freqs, iterations=2
        )
        return ManDynPolicy.from_tuning(best, default_mhz=1410.0), best
    finally:
        cluster.detach_management_library()


def bench_fig7_dynamic_vs_static(benchmark):
    def experiment():
        mandyn, tuned = _tuned_policy()
        runs = {}
        runs["1410 (base)"] = run_simulation(
            mini_hpc(), 1, "SubsonicTurbulence", N, baseline_policy(1410)
        )
        for f in STATIC_FREQS:
            runs[str(f)] = run_simulation(
                mini_hpc(), 1, "SubsonicTurbulence", N,
                StaticFrequencyPolicy(f),
            )
        runs["DVFS"] = run_simulation(
            mini_hpc(), 1, "SubsonicTurbulence", N, DvfsPolicy()
        )
        runs["ManDyn"] = run_simulation(
            mini_hpc(), 1, "SubsonicTurbulence", N, mandyn
        )
        return runs, tuned

    runs, tuned = benchmark(experiment)

    base = runs["1410 (base)"]
    rows = []
    norm = {}
    for label, run in runs.items():
        t = run.elapsed_s / base.elapsed_s
        e = run.gpu_energy_j / base.gpu_energy_j
        norm[label] = (t, e, t * e)
        rows.append([label, f"{t:.4f}", f"{e:.4f}", f"{t * e:.4f}"])
    print()
    print(
        render_table(
            ["configuration", "time-to-solution", "energy-to-solution",
             "EDP"],
            rows,
            title=(
                "Fig. 7: normalized time / GPU energy / EDP "
                "(Subsonic Turbulence, 450^3, single A100)"
            ),
        )
    )
    print(f"ManDyn per-function clocks (from Fig. 2 tuning): {tuned}")
    from repro.reporting import bar_chart

    print()
    print(
        bar_chart(
            {label: edp for label, (_, _, edp) in norm.items()},
            title="EDP, normalized to 1410 MHz (lower is better)",
            baseline=1.0,
        )
    )

    t_1005, e_1005, edp_1005 = norm["1005"]
    t_md, e_md, edp_md = norm["ManDyn"]
    t_dvfs, e_dvfs, _ = norm["DVFS"]

    # Static down-scaling: monotone time increase / energy decrease.
    times = [norm[str(f)][0] for f in STATIC_FREQS]
    energies = [norm[str(f)][1] for f in STATIC_FREQS]
    assert times == sorted(times)
    assert energies == sorted(energies, reverse=True)
    assert t_1005 > 1.12 and e_1005 < 0.88
    assert edp_1005 < 1.0  # paper: ~2.5 % EDP reduction

    # ManDyn headline numbers.
    assert t_md < 1.04  # paper: performance loss <= 2.95 %
    assert 0.90 <= e_md <= 0.95  # paper: up to 7.82 % per-GPU energy
    assert edp_md < 0.97  # paper: ~4 % EDP reduction
    # ManDyn vs static 1005: large time win (paper: 16 %).
    assert 1.0 - t_md / t_1005 > 0.08

    # DVFS: no time win, energy above baseline.
    assert 0.99 < t_dvfs < 1.05
    assert e_dvfs > 1.0
