"""Ablation / future work — ManDyn on AMD GCDs (paper §V).

The paper's future work is "the adaptation of the proposed method on
AMD and Intel GPUs". The reproduction's frequency controller already
speaks ROCm SMI, so this bench runs the full methodology on LUMI-G
GCDs: tune per-function clocks on an MI250X GCD, then compare
baseline / static / ManDyn on an 8-GCD node. The qualitative outcome
must carry over: ManDyn saves GPU energy at a small time cost.
"""

from __future__ import annotations

from repro.core import ManDynPolicy, StaticFrequencyPolicy, baseline_policy
from repro.reporting import render_table
from repro.systems import Cluster, lumi_g
from repro.tuner import tune_all_sph_functions
from repro.units import to_mhz

from _harness import run_simulation

N_PER_GCD = 20.0e6
STATIC_LOW_MHZ = 1200.0


def bench_ablation_amd_mandyn(benchmark):
    def experiment():
        # Tune on one GCD: the MI250X window 1200..1700 MHz.
        cluster = Cluster(lumi_g(), 1)
        try:
            gpu = cluster.gpus[0]
            hi = int(to_mhz(gpu.spec.max_clock_hz))
            freqs = list(range(hi, 1199, -100))
            tuned = tune_all_sph_functions(
                gpu, int(N_PER_GCD), freqs, iterations=2
            )
        finally:
            cluster.detach_management_library()

        runs = {
            "baseline 1700": run_simulation(
                lumi_g(), 8, "SubsonicTurbulence", N_PER_GCD,
                baseline_policy(1700.0),
            ),
            f"static {STATIC_LOW_MHZ:.0f}": run_simulation(
                lumi_g(), 8, "SubsonicTurbulence", N_PER_GCD,
                StaticFrequencyPolicy(STATIC_LOW_MHZ),
            ),
            "ManDyn (tuned)": run_simulation(
                lumi_g(), 8, "SubsonicTurbulence", N_PER_GCD,
                ManDynPolicy.from_tuning(tuned, default_mhz=1700.0),
            ),
        }
        return tuned, runs

    tuned, runs = benchmark(experiment)

    print()
    print(
        render_table(
            ["function", "best-EDP clock [MHz]"],
            sorted(tuned.items(), key=lambda kv: -kv[1]),
            title="MI250X GCD per-function tuning (ROCm SMI control)",
        )
    )
    base = runs["baseline 1700"]
    rows = []
    for label, res in runs.items():
        t = res.elapsed_s / base.elapsed_s
        e = res.gpu_energy_j / base.gpu_energy_j
        rows.append([label, f"{t:.4f}", f"{e:.4f}", f"{t * e:.4f}"])
    print()
    print(
        render_table(
            ["policy", "time", "GPU energy", "EDP"],
            rows,
            title="LUMI-G (8 GCDs): ManDyn carries over to AMD",
        )
    )

    # The method transfers: compute-bound kernels tune high, light low.
    assert tuned["MomentumEnergy"] == 1700.0
    assert tuned["XMass"] < 1500.0
    mandyn = runs["ManDyn (tuned)"]
    t = mandyn.elapsed_s / base.elapsed_s
    e = mandyn.gpu_energy_j / base.gpu_energy_j
    assert t < 1.06          # small performance loss
    assert e < 0.97          # real GPU energy saving
    assert t * e < 0.99      # net EDP win
    # And ManDyn again beats whole-run static down-scaling on time.
    static = runs[f"static {STATIC_LOW_MHZ:.0f}"]
    assert mandyn.elapsed_s < static.elapsed_s
