"""Ablation — sensitivity of the headline result to the power exponent.

The calibrated device model uses ``P = P_idle + i P_dyn (f/f_max)^alpha``
with alpha = 1.7 over the paper's clock window (DESIGN.md §5). This
bench sweeps alpha and shows the paper's *qualitative* conclusion —
ManDyn saves energy at small time cost — holds across the physically
plausible range (alpha in [1, 3]), while the magnitude of the saving
scales with alpha. The reproduction therefore does not hinge on the
exact calibration constant.
"""

from __future__ import annotations

import dataclasses

from repro.core import ManDynPolicy, baseline_policy
from repro.reporting import render_table
from repro.systems import mini_hpc

from _harness import run_simulation

N = 450**3
ALPHAS = (1.0, 1.35, 1.7, 2.2, 3.0)

MANDYN = {
    "MomentumEnergy": 1410.0,
    "IADVelocityDivCurl": 1410.0,
}


def _system_with_alpha(alpha: float):
    system = mini_hpc()
    gpu_spec = dataclasses.replace(system.gpu_spec(), power_exponent=alpha)
    return dataclasses.replace(
        system, gpu_spec_factory=lambda spec=gpu_spec: spec
    )


def bench_ablation_power_exponent(benchmark):
    def experiment():
        rows = {}
        for alpha in ALPHAS:
            system = _system_with_alpha(alpha)
            base = run_simulation(
                system, 1, "SubsonicTurbulence", N, baseline_policy(1410)
            )
            mandyn = run_simulation(
                system, 1, "SubsonicTurbulence", N,
                ManDynPolicy(MANDYN, default_mhz=1005.0),
            )
            rows[alpha] = (
                mandyn.elapsed_s / base.elapsed_s,
                mandyn.gpu_energy_j / base.gpu_energy_j,
            )
        return rows

    rows = benchmark(experiment)

    print()
    print(
        render_table(
            ["alpha", "ManDyn time", "ManDyn GPU energy", "ManDyn EDP"],
            [
                [a, f"{t:.4f}", f"{e:.4f}", f"{t * e:.4f}"]
                for a, (t, e) in rows.items()
            ],
            title="power-exponent sensitivity of the headline result",
        )
    )

    for alpha, (t, e) in rows.items():
        # Time cost is alpha-independent (pure perf-model effect)...
        assert 1.0 < t < 1.05, alpha
        # ...and ManDyn saves energy for every plausible exponent.
        assert e < 0.97, alpha
        assert t * e < 0.99, alpha
    # Saving grows monotonically with alpha (steeper power curve).
    energies = [rows[a][1] for a in ALPHAS]
    assert energies == sorted(energies, reverse=True)
