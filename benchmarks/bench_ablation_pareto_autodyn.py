"""Ablation / extension — Pareto front and online tuning (AutoDyn).

§IV-D frames the methodology as "identifying Pareto-optimal solutions
that provide acceptable performance and lower energy consumption".
This bench maps the whole (time, energy) trade-off space — static
clocks, DVFS, offline-tuned ManDyn, and the AutoDyn extension that
tunes per-function clocks *online* during the first steps of the run —
and verifies that:

* the static-frequency points trace the expected trade-off curve,
* DVFS is Pareto-dominated (the paper's Fig. 7 observation),
* ManDyn sits on the Pareto front and is the EDP knee,
* AutoDyn converges to the offline-tuned map and lands near ManDyn
  without any offline tuning pass.
"""

from __future__ import annotations

from repro.core import (
    DvfsPolicy,
    ManDynPolicy,
    Metrics,
    OnlineTuningPolicy,
    StaticFrequencyPolicy,
    baseline_policy,
    knee_point,
    pareto_analysis,
)
from repro.reporting import render_table
from repro.systems import Cluster, mini_hpc
from repro.sph import run_instrumented

N = 450**3
STEPS = 20
MANDYN = {"MomentumEnergy": 1410.0, "IADVelocityDivCurl": 1410.0}
CANDIDATES = (1410.0, 1200.0, 1005.0)


def _run(policy_factory):
    cluster = Cluster(mini_hpc(), 1)
    try:
        policy = policy_factory(cluster)
        result = run_instrumented(
            cluster, "SubsonicTurbulence", N, STEPS, policy=policy
        )
        return result, policy
    finally:
        cluster.detach_management_library()


def bench_ablation_pareto_autodyn(benchmark):
    def experiment():
        runs = {}
        runs["baseline 1410"], _ = _run(lambda c: baseline_policy(1410.0))
        for f in (1305, 1200, 1110, 1005):
            runs[f"static {f}"], _ = _run(
                lambda c, f=f: StaticFrequencyPolicy(float(f))
            )
        runs["DVFS"], _ = _run(lambda c: DvfsPolicy())
        runs["ManDyn"], _ = _run(
            lambda c: ManDynPolicy(MANDYN, default_mhz=1005.0)
        )
        runs["AutoDyn"], auto_policy = _run(
            lambda c: OnlineTuningPolicy(
                c.gpus, candidates_mhz=CANDIDATES, rounds_per_candidate=2
            )
        )
        series = {
            label: Metrics(time_s=r.elapsed_s, energy_j=r.gpu_energy_j)
            for label, r in runs.items()
        }
        return series, auto_policy.converged_map

    series, auto_map = benchmark(experiment)

    points = pareto_analysis(series)
    base = series["baseline 1410"]
    rows = [
        [
            p.label,
            f"{p.metrics.time_s / base.time_s:.4f}",
            f"{p.metrics.energy_j / base.energy_j:.4f}",
            "front" if p.optimal else f"dominated by {p.dominated_by[0]}",
        ]
        for p in points
    ]
    print()
    print(
        render_table(
            ["configuration", "time", "GPU energy", "Pareto status"],
            rows,
            title="Pareto analysis of the time/energy trade-off (section IV-D)",
        )
    )
    print(f"EDP knee of the front: {knee_point(series)}")
    print(f"AutoDyn converged map: {auto_map}")

    by_label = {p.label: p for p in points}
    # DVFS is dominated (slower AND hungrier than the baseline).
    assert not by_label["DVFS"].optimal
    # Baseline (fastest) and static 1005 (frugal) anchor the front.
    assert by_label["baseline 1410"].optimal
    assert by_label["static 1005"].optimal
    # ManDyn is on the front and is the best-EDP knee.
    assert by_label["ManDyn"].optimal
    assert knee_point(series) == "ManDyn"
    # AutoDyn found the same per-function map as offline tuning...
    assert auto_map["MomentumEnergy"] == 1410.0
    assert auto_map["XMass"] == 1005.0
    # ...and lands within a point or two of ManDyn on both axes.
    md, ad = series["ManDyn"], series["AutoDyn"]
    assert abs(ad.time_s / md.time_s - 1.0) < 0.03
    assert abs(ad.energy_j / md.energy_j - 1.0) < 0.03
