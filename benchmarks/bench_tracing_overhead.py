"""Tracing overhead gate for the distributed-tracing layer.

Measures the wall-clock cost ``repro.telemetry`` tracing adds to an
instrumented *numeric* step loop — the only loop whose steps do real
work, so the only place a relative overhead gate is meaningful. A
traced run differs from an untraced one in exactly two ways, both
directly measurable: every span/instant event is stamped with
``trace_id``/``span_id`` args at emission time, and the per-rank shards
plus the merged trace are written once at run end. The gate is
therefore the sum of two decomposed costs — the per-event stamping
cost (timed standalone over many thousand events, high precision)
times the number of events a traced run emits (deterministic), plus
the one-shot shard flush time — divided by the bare loop's wall time.
A naive traced-vs-untraced wall-time difference is also recorded, but
only informationally: on a shared machine its run-to-run noise (+-5%)
swamps the sub-1% true overhead, which is exactly why the gate is
computed from the decomposition. The gated overhead must stay below
``MAX_OVERHEAD_PCT`` — tracing that perturbs the measured run would
defeat its purpose (see docs/observability.md §8).

Modes::

    python benchmarks/bench_tracing_overhead.py            # full, writes artifact
    python benchmarks/bench_tracing_overhead.py --check    # CI gate, smaller run

Both modes exit 1 if the measured overhead breaches the gate; the full
mode additionally writes the ``BENCH_tracing.json`` artifact at the
repo root (including the per-event absolute cost, measured separately)
so the numbers stay auditable.

The file matches the ``bench_*.py`` naming pattern but defines no
pytest functions; it is a standalone gate like
``bench_monitor_overhead.py``.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

ARTIFACT = REPO_ROOT / "BENCH_tracing.json"

#: Acceptance gate: traced step loop may be at most this much slower.
MAX_OVERHEAD_PCT = 2.0

#: Sanity floor so a refactor cannot silently make the gate vacuous.
MIN_EVENTS_PER_STEP = 4

#: Full-mode protocol (nside, steps, repeats).
FULL_CASE = (16, 3, 5)
#: --check protocol: CI-sized, small grid.
CHECK_CASE = (16, 2, 5)

SEED = 11
SKIN = 0.1


def build_sim(nside: int, telemetry=None):
    """One numeric Sedov Simulation on miniHPC (caller detaches)."""
    from repro.sph import NumericProblem, Simulation
    from repro.sph.init import SedovConfig, make_sedov, make_sedov_eos
    from repro.systems import Cluster, mini_hpc

    cfg = SedovConfig(nside=nside, blast_energy=1.0, seed=SEED)
    particles = make_sedov(cfg)
    cluster = Cluster(mini_hpc(), n_ranks=1)
    problem = NumericProblem(
        particles=particles,
        n_ranks=1,
        eos=make_sedov_eos(cfg),
        box_size=cfg.box_size,
        skin=SKIN,
    )
    sim = Simulation(
        cluster,
        "SedovBlast",
        n_particles_per_rank=particles.n,
        numeric=problem,
        telemetry=telemetry,
    )
    return sim, cluster


def time_loop(nside: int, steps: int, traced: bool, shard_dir: str):
    """Wall seconds of ``steps`` numeric steps with a telemetry
    collector attached; the collector carries a trace context (and
    flushes shards afterwards) when ``traced``. Returns
    (elapsed_s, flush_s, events)."""
    from repro.telemetry import TraceCollector, mint_context

    collector = TraceCollector(max_events=1_000_000)
    if traced:
        collector.configure_tracing(
            mint_context(seed="bench-tracing"), shard_dir=shard_dir
        )
    sim, cluster = build_sim(nside, telemetry=collector)
    try:
        sim.initialize()
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for _ in range(steps):
                sim._run_step()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        flush_s = 0.0
        if traced:
            start = time.perf_counter()
            collector.flush_shards(backend=cluster.comm.backend)
            flush_s = time.perf_counter() - start
        return elapsed, flush_s, len(collector.events)
    finally:
        cluster.detach_management_library()


def per_event_stamp_cost_us(n_events: int = 20_000) -> float:
    """Absolute stamping cost of one traced event, measured standalone
    as (traced emission - untraced emission) over many instants."""
    from repro.telemetry import TraceCollector, mint_context

    def emit_all(collector) -> float:
        start = time.perf_counter()
        for i in range(n_events):
            collector.emit_instant("bench", 0, ts=float(i))
        return time.perf_counter() - start

    bare = TraceCollector(max_events=2 * n_events)
    bare_s = emit_all(bare)
    traced = TraceCollector(max_events=2 * n_events)
    traced.configure_tracing(mint_context(seed="bench-stamp"))
    traced_s = emit_all(traced)
    return max(0.0, 1e6 * (traced_s - bare_s) / n_events)


def measure(nside: int, steps: int, repeats: int) -> dict:
    """Gate = (events x per-event stamp cost + flush time) / bare wall
    time (see module docstring for why the naive difference is only
    informational)."""
    bare, traced, flushes, events = [], [], [], 0
    with tempfile.TemporaryDirectory() as tmp:
        for rep in range(repeats):
            bare.append(time_loop(nside, steps, False, tmp)[0])
            elapsed, flush_s, events = time_loop(
                nside, steps, True, f"{tmp}/rep{rep}"
            )
            traced.append(elapsed)
            flushes.append(flush_s)
    assert events >= steps * MIN_EVENTS_PER_STEP, "gate would be vacuous"
    best_bare = min(bare)
    best_traced = min(traced)
    best_flush = min(flushes)
    stamp_us = per_event_stamp_cost_us()
    overhead_pct = (
        100.0 * (events * stamp_us * 1e-6 + best_flush) / best_bare
    )
    return {
        "nside": nside,
        "steps": steps,
        "repeats": repeats,
        "events": events,
        "per_event_stamp_us": round(stamp_us, 2),
        "flush_s": round(best_flush, 4),
        "bare_s": round(best_bare, 4),
        "traced_s": round(best_traced, 4),
        "end_to_end_diff_pct": round(
            100.0 * (best_traced - best_bare) / best_bare, 2
        ),
        "overhead_pct": round(overhead_pct, 2),
    }


def gate(case: dict) -> int:
    ok = case["overhead_pct"] < MAX_OVERHEAD_PCT
    print(
        f"n={case['nside']}^3 steps={case['steps']} "
        f"({case['events']} events): "
        f"{case['events']} x {case['per_event_stamp_us']:.2f}us "
        f"+ flush {case['flush_s']:.4f}s over bare {case['bare_s']:.4f}s"
        f" -> {case['overhead_pct']:+.2f}% "
        f"(gate < {MAX_OVERHEAD_PCT:.0f}%): {'ok' if ok else 'TOO SLOW'}"
    )
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI-sized run; gate only, no artifact",
    )
    args = parser.parse_args()

    if args.check:
        return gate(measure(*CHECK_CASE))

    case = measure(*FULL_CASE)
    rc = gate(case)
    payload = {
        "benchmark": "tracing_overhead",
        "workload": "SedovBlast (numeric)",
        "protocol": {
            "metric": (
                "traced events x standalone per-event stamp cost plus "
                "one-shot shard flush, relative to best-of-N bare wall "
                "time of the numeric step loop (end-to-end diff "
                "recorded informationally)"
            ),
            "gate_pct": MAX_OVERHEAD_PCT,
            "seed": SEED,
            "skin": SKIN,
        },
        "result": case,
        "ok": rc == 0,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
