"""Fig. 4 — energy consumption breakdown by device.

Subsonic Turbulence (150 M particles/GPU) and Evrard Collapse (80 M
particles/GPU) on 32 ranks, on LUMI-G and CSCS-A100. The GPUs must
dominate (paper: 74.3 % on LUMI-G, 76.4 % on CSCS-A100), 'Other' is the
second slice, and the 100-step-extrapolated totals must land near the
paper's 24.4 / 15.2 / 12.5 / 10.7 MJ.
"""

from __future__ import annotations

from repro.core import device_breakdown_percent
from repro.reporting import render_table
from repro.systems import cscs_a100, lumi_g
from repro.units import megajoules

from _harness import BENCH_STEPS, run_simulation_with_cluster, to_paper_scale

RUNS = [
    # (label, system factory, workload, particles/GPU, paper MJ)
    ("LUMI-Turb", lumi_g, "SubsonicTurbulence", 150.0e6, 24.4),
    ("LUMI-Evr", lumi_g, "EvrardCollapse", 80.0e6, 15.2),
    ("CSCS-A100-Turb", cscs_a100, "SubsonicTurbulence", 150.0e6, 12.5),
    ("CSCS-A100-Evr", cscs_a100, "EvrardCollapse", 80.0e6, 10.7),
]

N_RANKS = 32


def bench_fig4_device_energy_breakdown(benchmark):
    def experiment():
        out = {}
        for label, system, workload, n_per_gpu, paper_mj in RUNS:
            result, cluster = run_simulation_with_cluster(
                system(), N_RANKS, workload, n_per_gpu
            )
            breakdown = device_breakdown_percent(result.report)
            total_mj = megajoules(
                to_paper_scale(result.report.total_j(), BENCH_STEPS)
            )
            out[label] = (breakdown, total_mj, paper_mj)
        return out

    out = benchmark(experiment)

    rows = []
    for label, (breakdown, total_mj, paper_mj) in out.items():
        rows.append(
            [
                label,
                f"{breakdown['GPU']:.1f}",
                f"{breakdown['CPU']:.1f}",
                f"{breakdown['Memory']:.1f}",
                f"{breakdown['Other']:.1f}",
                f"{total_mj:.1f}",
                f"{paper_mj:.1f}",
            ]
        )
    print()
    print(
        render_table(
            ["run", "GPU %", "CPU %", "Memory %", "Other %",
             "total [MJ, 100 steps]", "paper [MJ]"],
            rows,
            title="Fig. 4: energy breakdown by device (32 ranks)",
        )
    )
    print(
        "note: on CSCS-A100 the paper's pm_counters expose no separate"
        " memory counter; its Memory column folds into 'Other' there."
    )

    for label, (breakdown, total_mj, paper_mj) in out.items():
        # GPU dominates, around the paper's ~74-76 %.
        assert 60.0 < breakdown["GPU"] < 88.0, label
        rest = {k: v for k, v in breakdown.items() if k != "GPU"}
        assert max(rest, key=rest.get) == "Other", label
        # Totals land within 2x of the paper's MJ (absolute numbers are
        # model-calibrated; the reproduction claims the shape).
        assert 0.5 < total_mj / paper_mj < 2.0, label
    # Ordering of the four totals matches the paper.
    totals = {label: v[1] for label, v in out.items()}
    assert (
        totals["LUMI-Turb"]
        > totals["LUMI-Evr"]
        > totals["CSCS-A100-Evr"] * 0.8
    )
    assert totals["CSCS-A100-Turb"] > totals["CSCS-A100-Evr"]
    assert totals["LUMI-Turb"] > totals["CSCS-A100-Turb"]
