"""Ablation / future work — ManDyn on Intel GPUs (paper §V).

Completes the paper's future-work matrix: the methodology (tune per
function, pin clocks through the vendor management library before each
function) on an Aurora-class node with Intel Max 1550 GPUs driven
through Level Zero Sysman frequency ranges.
"""

from __future__ import annotations

from repro.core import ManDynPolicy, StaticFrequencyPolicy, baseline_policy
from repro.reporting import render_table
from repro.systems import Cluster, aurora_pvc
from repro.tuner import tune_all_sph_functions

from _harness import run_simulation

N_PER_GPU = 30.0e6


def bench_ablation_intel_mandyn(benchmark):
    def experiment():
        cluster = Cluster(aurora_pvc(), 1)
        try:
            freqs = list(range(1600, 999, -100))
            tuned = tune_all_sph_functions(
                cluster.gpus[0], int(N_PER_GPU), freqs, iterations=2
            )
        finally:
            cluster.detach_management_library()

        runs = {
            "baseline 1600": run_simulation(
                aurora_pvc(), 6, "SubsonicTurbulence", N_PER_GPU,
                baseline_policy(1600.0),
            ),
            "static 1000": run_simulation(
                aurora_pvc(), 6, "SubsonicTurbulence", N_PER_GPU,
                StaticFrequencyPolicy(1000.0),
            ),
            "ManDyn (tuned)": run_simulation(
                aurora_pvc(), 6, "SubsonicTurbulence", N_PER_GPU,
                ManDynPolicy.from_tuning(tuned, default_mhz=1600.0),
            ),
        }
        return tuned, runs

    tuned, runs = benchmark(experiment)

    print()
    print(
        render_table(
            ["function", "best-EDP clock [MHz]"],
            sorted(tuned.items(), key=lambda kv: -kv[1]),
            title="Intel Max 1550 per-function tuning (Level Zero Sysman)",
        )
    )
    base = runs["baseline 1600"]
    rows = []
    for label, res in runs.items():
        t = res.elapsed_s / base.elapsed_s
        e = res.gpu_energy_j / base.gpu_energy_j
        rows.append([label, f"{t:.4f}", f"{e:.4f}", f"{t * e:.4f}"])
    print()
    print(
        render_table(
            ["policy", "time", "GPU energy", "EDP"],
            rows,
            title="Aurora-PVC (6 GPUs): ManDyn carries over to Intel",
        )
    )

    assert tuned["MomentumEnergy"] == 1600.0
    assert tuned["XMass"] < 1400.0
    mandyn = runs["ManDyn (tuned)"]
    t = mandyn.elapsed_s / base.elapsed_s
    e = mandyn.gpu_energy_j / base.gpu_energy_j
    assert t < 1.06
    assert e < 0.97
    assert t * e < 0.99
    assert mandyn.elapsed_s < runs["static 1000"].elapsed_s
