"""Ablation / extension — frequency scaling under constrained cooling.

Air-cooled PCIE cards (the miniHPC class) can hit thermal limits under
sustained full-power kernels; the device then throttles its clock
below the application setting. This bench runs the policies on a
thermally constrained variant of miniHPC (reduced cooling capacity) and
shows an *extra* benefit of down-clocking the lightweight kernels:
ManDyn's lower average power keeps the die below the throttle point,
so it loses less performance than the always-max baseline, which
throttles.
"""

from __future__ import annotations

import dataclasses

from repro.core import ManDynPolicy, baseline_policy
from repro.hardware import ThermalSpec
from repro.reporting import render_table
from repro.systems import Cluster, mini_hpc
from repro.sph import run_instrumented

N = 450**3
STEPS = 30  # long enough for the die to reach equilibrium

MANDYN = {
    "MomentumEnergy": 1410.0,
    "IADVelocityDivCurl": 1410.0,
}

#: Constrained cooling: at the workload's ~205 W average draw the die
#: settles near 35 + 0.30*205 ~ 97 C, above the 93 C limit; ManDyn's
#: ~9 % lower average power settles ~6 C cooler, below it.
HOT_THERMAL = ThermalSpec(
    ambient_c=35.0,
    resistance_c_per_w=0.30,
    tau_s=8.0,
    throttle_temp_c=93.0,
    throttle_mhz_per_c=30.0,
)


def _hot_system():
    system = mini_hpc()
    gpu_spec = dataclasses.replace(system.gpu_spec(), thermal=HOT_THERMAL)
    return dataclasses.replace(
        system, gpu_spec_factory=lambda spec=gpu_spec: spec
    )


def _run(system, policy):
    cluster = Cluster(system, 1)
    try:
        result = run_instrumented(
            cluster, "SubsonicTurbulence", N, STEPS, policy=policy
        )
        gpu = cluster.gpus[0]
        return result, gpu.temperature_c, gpu.thermal_throttle_active
    finally:
        cluster.detach_management_library()


def bench_ablation_thermal(benchmark):
    def experiment():
        out = {}
        out["cool baseline"] = _run(mini_hpc(), baseline_policy(1410))
        out["hot baseline"] = _run(_hot_system(), baseline_policy(1410))
        out["hot ManDyn"] = _run(
            _hot_system(), ManDynPolicy(MANDYN, default_mhz=1005.0)
        )
        return out

    out = benchmark(experiment)

    cool_base = out["cool baseline"][0]
    rows = []
    for label, (res, temp, throttled) in out.items():
        rows.append(
            [
                label,
                f"{res.elapsed_s / cool_base.elapsed_s:.4f}",
                f"{res.gpu_energy_j / cool_base.gpu_energy_j:.4f}",
                f"{temp:.1f}",
                "yes" if throttled else "no",
            ]
        )
    print()
    print(
        render_table(
            ["configuration", "time (vs cool base)", "GPU energy",
             "final die T [C]", "throttling"],
            rows,
            title="thermal ablation: constrained cooling (A100-PCIE)",
        )
    )

    hot_base, hot_base_temp, hot_base_throttle = out["hot baseline"]
    hot_mandyn, hot_mandyn_temp, hot_mandyn_throttle = out["hot ManDyn"]
    # The always-max baseline runs into the thermal limit...
    assert hot_base_temp > HOT_THERMAL.throttle_temp_c - 1.0
    assert hot_base.elapsed_s > cool_base.elapsed_s * 1.01
    # ...while ManDyn's lower average power stays cooler...
    assert hot_mandyn_temp < hot_base_temp
    # ...and turns its energy saving into a *time* advantage too: the
    # gap to the baseline shrinks vs the unconstrained system.
    hot_gap = hot_mandyn.elapsed_s / hot_base.elapsed_s
    assert hot_gap < 1.027  # below ManDyn's unconstrained time cost
