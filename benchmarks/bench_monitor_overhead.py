"""Sampler overhead gate for the live-monitoring layer.

Measures the wall-clock cost `repro.monitor` adds to the instrumented
*numeric* step loop — the only loop whose steps do real work, so the
only place a relative overhead gate is meaningful (the workload-model
path is analytic and finishes in milliseconds regardless of scale).
The sampler is purely additive work — one tick per observable clock
boundary, no interaction with the loop beyond that — so its overhead is
the product of two directly measurable numbers: the per-tick cost
(timed standalone over many thousand ticks, high precision) and the
number of ticks a monitored run takes (deterministic), divided by the
bare loop's wall time. The gate uses that product with the sampling
period set far below any clock advance, so the sampler fires at *every
observable boundary* — its worst case; the default 0.05 s cadence
samples far less often. A naive bare-vs-monitored wall-time difference
is also recorded, but only informationally: on a shared machine its
run-to-run noise (+-5%) swamps the sub-1% true overhead, which is
exactly why the gate is computed from the decomposition. The gated
overhead must stay below ``MAX_OVERHEAD_PCT`` — monitoring that
perturbs the measured run would defeat its purpose (see
docs/observability.md §7).

Modes::

    python benchmarks/bench_monitor_overhead.py            # full, writes artifact
    python benchmarks/bench_monitor_overhead.py --check    # CI gate, smaller run

Both modes exit 1 if the measured overhead breaches the gate; the full
mode additionally writes the ``BENCH_monitor.json`` artifact at the
repo root (including the per-sample absolute cost, measured separately)
so the numbers stay auditable.

The file matches the ``bench_*.py`` naming pattern but defines no
pytest functions; it is a standalone gate like
``bench_numeric_hot_path.py``.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

ARTIFACT = REPO_ROOT / "BENCH_monitor.json"

#: Acceptance gate: monitored step loop may be at most this much slower.
MAX_OVERHEAD_PCT = 3.0

#: A period below any clock advance: the sampler fires every advance.
WORST_CASE_PERIOD_S = 1e-6

#: Sanity floor so a refactor cannot silently make the gate vacuous.
MIN_SAMPLES_PER_STEP = 20

#: Full-mode protocol (nside, steps, repeats).
FULL_CASE = (16, 3, 5)
#: --check protocol: CI-sized, small grid.
CHECK_CASE = (16, 2, 5)

SEED = 11
SKIN = 0.1


def build_sim(nside: int):
    """One numeric Sedov Simulation on miniHPC (caller detaches)."""
    from repro.sph import NumericProblem, Simulation
    from repro.sph.init import SedovConfig, make_sedov, make_sedov_eos
    from repro.systems import Cluster, mini_hpc

    cfg = SedovConfig(nside=nside, blast_energy=1.0, seed=SEED)
    particles = make_sedov(cfg)
    cluster = Cluster(mini_hpc(), n_ranks=1)
    problem = NumericProblem(
        particles=particles,
        n_ranks=1,
        eos=make_sedov_eos(cfg),
        box_size=cfg.box_size,
        skin=SKIN,
    )
    sim = Simulation(
        cluster,
        "SedovBlast",
        n_particles_per_rank=particles.n,
        numeric=problem,
    )
    return sim, cluster, particles.n


def time_loop(nside: int, steps: int, period_s: float | None):
    """Wall seconds of ``steps`` numeric steps; sampler attached when
    ``period_s`` is given. Returns (elapsed_s, simulated_s, samples)."""
    from repro.monitor import DeviceSampler

    sim, cluster, _ = build_sim(nside)
    try:
        sim.initialize()
        sampler = None
        if period_s is not None:
            sampler = DeviceSampler.for_cluster(cluster, period_s=period_s)
            sampler.start()
        t0_sim = cluster.clocks[0].now
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for _ in range(steps):
                sim._run_step()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        simulated = cluster.clocks[0].now - t0_sim
        if sampler is not None:
            sampler.stop()
        return elapsed, simulated, sampler.samples_taken if sampler else 0
    finally:
        cluster.detach_management_library()


def per_sample_cost_us(n_samples: int = 2_000) -> float:
    """Absolute cost of one sampler tick, measured standalone."""
    from repro.hardware import SimulatedGpu, VirtualClock, a100_pcie_40gb
    from repro.monitor import AlertEngine, DeviceSampler, default_rules

    clock = VirtualClock()
    gpu = SimulatedGpu(a100_pcie_40gb(), clock)
    sampler = DeviceSampler(
        [gpu], [clock], period_s=0.01,
        alerts=AlertEngine(default_rules(gpu_spec=gpu.spec)),
    )
    sampler.start()
    start = time.perf_counter()
    for _ in range(n_samples):
        clock.advance(0.01)
    elapsed = time.perf_counter() - start
    sampler.stop()
    return 1e6 * elapsed / n_samples


def measure(nside: int, steps: int, repeats: int) -> dict:
    """Gate = samples x per-tick cost / bare wall time (see module
    docstring for why the naive difference is only informational)."""
    period_s = WORST_CASE_PERIOD_S
    bare, monitored, samples = [], [], 0
    for _ in range(repeats):
        bare.append(time_loop(nside, steps, period_s=None)[0])
        elapsed, _, samples = time_loop(nside, steps, period_s=period_s)
        monitored.append(elapsed)
    assert samples >= steps * MIN_SAMPLES_PER_STEP, "gate would be vacuous"
    best_bare = min(bare)
    best_mon = min(monitored)
    sample_us = per_sample_cost_us()
    overhead_pct = 100.0 * (samples * sample_us * 1e-6) / best_bare
    return {
        "nside": nside,
        "steps": steps,
        "repeats": repeats,
        "period_s": period_s,
        "samples_taken": samples,
        "per_sample_cost_us": round(sample_us, 1),
        "bare_s": round(best_bare, 4),
        "monitored_s": round(best_mon, 4),
        "end_to_end_diff_pct": round(
            100.0 * (best_mon - best_bare) / best_bare, 2
        ),
        "overhead_pct": round(overhead_pct, 2),
    }


def gate(case: dict) -> int:
    ok = case["overhead_pct"] < MAX_OVERHEAD_PCT
    print(
        f"n={case['nside']}^3 steps={case['steps']} "
        f"({case['samples_taken']} samples): "
        f"{case['samples_taken']} x {case['per_sample_cost_us']:.1f}us "
        f"over bare {case['bare_s']:.4f}s"
        f" -> {case['overhead_pct']:+.2f}% "
        f"(gate < {MAX_OVERHEAD_PCT:.0f}%): {'ok' if ok else 'TOO SLOW'}"
    )
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI-sized run; gate only, no artifact",
    )
    args = parser.parse_args()

    if args.check:
        return gate(measure(*CHECK_CASE))

    case = measure(*FULL_CASE)
    rc = gate(case)
    payload = {
        "benchmark": "monitor_overhead",
        "workload": "SedovBlast (numeric)",
        "protocol": {
            "metric": (
                "worst-case sampler ticks x standalone per-tick cost, "
                "relative to best-of-N bare wall time of the numeric "
                "step loop (end-to-end diff recorded informationally)"
            ),
            "gate_pct": MAX_OVERHEAD_PCT,
            "seed": SEED,
            "skin": SKIN,
        },
        "result": case,
        "ok": rc == 0,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
