"""Ablation — which governor behaviours make DVFS lose to ManDyn?

DESIGN.md §5 calls out two governor modelling choices behind Fig. 7's
"DVFS costs energy" result:

* the **voltage margin** the governor holds above its clock (fast-boost
  headroom), and
* the **launch-presence floor** (utilization over-estimation for
  lightweight launches, [25]).

This bench sweeps both and shows the paper's observation is robust:
with zero margin the governor becomes roughly energy-neutral, and the
presence floor controls how much the DomainDecomp-style launch bursts
over-clock.
"""

from __future__ import annotations

import dataclasses

from repro.core import DvfsPolicy, baseline_policy
from repro.reporting import render_table
from repro.systems import mini_hpc
from repro.units import mhz, to_mhz

from _harness import run_simulation

N = 450**3
MARGINS_MHZ = (0.0, 75.0, 150.0, 225.0)
FLOORS = (0.35, 0.55, 0.75)


def _system_with_governor(margin_mhz: float, floor: float):
    system = mini_hpc()
    base_gpu = system.gpu_spec()
    governor = dataclasses.replace(
        base_gpu.governor,
        voltage_margin_hz=mhz(margin_mhz),
        launch_presence_floor=floor,
    )
    gpu_spec = dataclasses.replace(base_gpu, governor=governor)
    return dataclasses.replace(
        system, gpu_spec_factory=lambda spec=gpu_spec: spec
    )


def bench_ablation_governor(benchmark):
    def experiment():
        base = run_simulation(
            mini_hpc(), 1, "SubsonicTurbulence", N, baseline_policy(1410)
        )
        margin_rows = {}
        for margin in MARGINS_MHZ:
            res = run_simulation(
                _system_with_governor(margin, 0.55), 1,
                "SubsonicTurbulence", N, DvfsPolicy(),
            )
            margin_rows[margin] = (
                res.elapsed_s / base.elapsed_s,
                res.gpu_energy_j / base.gpu_energy_j,
            )
        floor_rows = {}
        for floor in FLOORS:
            res = run_simulation(
                _system_with_governor(150.0, floor), 1,
                "SubsonicTurbulence", N, DvfsPolicy(),
            )
            floor_rows[floor] = (
                res.elapsed_s / base.elapsed_s,
                res.gpu_energy_j / base.gpu_energy_j,
            )
        return margin_rows, floor_rows

    margin_rows, floor_rows = benchmark(experiment)

    print()
    print(
        render_table(
            ["voltage margin [MHz]", "time", "GPU energy"],
            [
                [m, f"{t:.4f}", f"{e:.4f}"]
                for m, (t, e) in margin_rows.items()
            ],
            title="DVFS vs pinned baseline: voltage-margin ablation",
        )
    )
    print()
    print(
        render_table(
            ["launch presence floor", "time", "GPU energy"],
            [
                [f, f"{t:.4f}", f"{e:.4f}"]
                for f, (t, e) in floor_rows.items()
            ],
            title="DVFS vs pinned baseline: presence-floor ablation",
        )
    )

    # Energy cost of DVFS grows with the held voltage margin.
    energies = [margin_rows[m][1] for m in MARGINS_MHZ]
    assert energies == sorted(energies)
    # Without any margin the governor is (about) energy-neutral...
    assert margin_rows[0.0][1] < 1.005
    # ...and with the calibrated margin it costs energy (the paper's
    # observation).
    assert margin_rows[150.0][1] > 1.0
    # The presence floor barely affects time (kernels boost anyway)...
    for f in FLOORS:
        assert abs(floor_rows[f][0] - 1.0) < 0.05
    # ...but a higher floor raises light-phase clocks and energy.
    assert floor_rows[0.75][1] >= floor_rows[0.35][1]
