"""Fig. 8 — per-function effect of static frequency down-scaling.

Execution time (a), energy (b) and EDP (c) of every SPH-EXA function at
static clocks 1005-1410 MHz, normalized to 1410 MHz, for Subsonic
Turbulence at 450³ particles on a single A100. Shape targets: the
compute-bound MomentumEnergy and IADVelocityDivCurl pay > 20 % time at
1005 MHz with energy cuts limited to ~13 % / ~19 %, while every other
function gains at least 10 % EDP.
"""

from __future__ import annotations

from repro.core import StaticFrequencyPolicy, baseline_policy, per_function_metrics
from repro.reporting import render_table
from repro.systems import mini_hpc

from _harness import run_simulation

N = 450**3
FREQS = (1305, 1200, 1110, 1005)
COMPUTE_BOUND = ("MomentumEnergy", "IADVelocityDivCurl")


def bench_fig8_per_function_static_scaling(benchmark):
    def experiment():
        base = run_simulation(
            mini_hpc(), 1, "SubsonicTurbulence", N, baseline_policy(1410)
        )
        runs = {1410: base}
        for f in FREQS:
            runs[f] = run_simulation(
                mini_hpc(), 1, "SubsonicTurbulence", N,
                StaticFrequencyPolicy(f),
            )
        return {f: per_function_metrics(r.report) for f, r in runs.items()}

    metrics = benchmark(experiment)

    base = metrics[1410]
    functions = sorted(base, key=lambda fn: -base[fn].time_s)
    panels = {
        "(a) execution time": lambda fn, f: (
            metrics[f][fn].time_s / base[fn].time_s
        ),
        "(b) energy": lambda fn, f: (
            metrics[f][fn].energy_j / base[fn].energy_j
        ),
        "(c) EDP": lambda fn, f: (
            metrics[f][fn].edp / base[fn].edp
        ),
    }
    for title, fetch in panels.items():
        rows = [
            [fn] + [f"{fetch(fn, f):.4f}" for f in FREQS]
            for fn in functions
        ]
        print()
        print(
            render_table(
                ["function"] + [f"{f} MHz" for f in FREQS],
                rows,
                title=f"Fig. 8{title}, normalized to 1410 MHz",
            )
        )

    def ratio(fn, f, what):
        if what == "t":
            return metrics[f][fn].time_s / base[fn].time_s
        if what == "e":
            return metrics[f][fn].energy_j / base[fn].energy_j
        return metrics[f][fn].edp / base[fn].edp

    # Compute-bound kernels: > 20 % time at 1005, limited energy cuts.
    for fn in COMPUTE_BOUND:
        assert ratio(fn, 1005, "t") > 1.20, fn
    assert 0.82 < ratio("MomentumEnergy", 1005, "e") < 0.92  # ~ -13 %
    assert 0.76 < ratio("IADVelocityDivCurl", 1005, "e") < 0.90  # ~ -19 %
    # EDP benefit is limited for the compute-bound pair...
    for fn in COMPUTE_BOUND:
        assert ratio(fn, 1005, "edp") > 0.95, fn
    # ...while all other functions gain at least 10 % EDP at 1005 MHz.
    for fn in functions:
        if fn in COMPUTE_BOUND:
            continue
        assert ratio(fn, 1005, "edp") < 0.90, fn
    # Time ratios grow monotonically as the clock drops.
    for fn in functions:
        series = [ratio(fn, f, "t") for f in FREQS]
        assert series == sorted(series), fn
