"""Fig. 3 — PMT-measured vs Slurm-reported energy.

Subsonic Turbulence with 150 M particles per GPU, energy measurement
enabled, on 8-48 GPU cards (CSCS-A100) and 16-96 GCDs (LUMI-G), each
run under full Slurm accounting. PMT (instrumented window) must closely
track Slurm (job window) with PMT always below — the difference being
the job-launch + application-setup energy (paper §IV-A). Values are
printed normalized to the largest configuration, as in the figure.
"""

from __future__ import annotations

from repro.reporting import render_series
from repro.slurm import JobSpec, SlurmController
from repro.sph import run_instrumented
from repro.systems import Cluster, cscs_a100, lumi_g

from _harness import BENCH_STEPS

N_PER_GPU = 150.0e6

#: GPU-card counts of the paper's scaling runs.
CSCS_GPUS = (8, 16, 24, 32, 40, 48)
#: GCD counts on LUMI-G (one rank per GCD).
LUMI_GCDS = (16, 32, 48, 64, 80, 96)


def _measure(system, n_ranks):
    cluster = Cluster(system, n_ranks)
    try:
        controller = SlurmController()
        controller.accounting.enable_energy_accounting()
        captured = {}

        def app(cl, job):
            captured["result"] = run_instrumented(
                cl, "SubsonicTurbulence", N_PER_GPU, BENCH_STEPS
            )
            return captured["result"]

        job = controller.submit(
            JobSpec(
                name="sphexa-turb",
                n_nodes=cluster.n_nodes,
                n_tasks=n_ranks,
            ),
            cluster,
            app,
        )
        pmt_j = captured["result"].report.total_j()
        slurm_j = job.consumed_energy_j
        return pmt_j, slurm_j
    finally:
        cluster.detach_management_library()


def bench_fig3_pmt_vs_slurm(benchmark):
    def experiment():
        data = {}
        for n in CSCS_GPUS:
            data[("CSCS-A100", n)] = _measure(cscs_a100(), n)
        for n in LUMI_GCDS:
            data[("LUMI-G", n)] = _measure(lumi_g(), n)
        return data

    data = benchmark(experiment)

    for system, sizes, unit in (
        ("CSCS-A100", CSCS_GPUS, "GPUs"),
        ("LUMI-G", LUMI_GCDS, "GCDs"),
    ):
        ref_pmt, ref_slurm = data[(system, sizes[-1])]
        series = {
            "PMT (norm)": {
                n: round(data[(system, n)][0] / ref_slurm, 4) for n in sizes
            },
            "Slurm (norm)": {
                n: round(data[(system, n)][1] / ref_slurm, 4) for n in sizes
            },
            "PMT/Slurm": {
                n: round(data[(system, n)][0] / data[(system, n)][1], 4)
                for n in sizes
            },
        }
        print()
        print(
            render_series(
                series,
                x_label=unit,
                title=(
                    f"Fig. 3 ({system}): PMT vs Slurm energy, normalized "
                    f"to {sizes[-1]} {unit}"
                ),
            )
        )

    for (system, n), (pmt_j, slurm_j) in data.items():
        # Strong match, PMT strictly below Slurm (setup energy).
        assert pmt_j < slurm_j, (system, n)
        assert pmt_j > 0.75 * slurm_j, (system, n)
    # Both scale ~linearly with device count.
    for system, sizes in (("CSCS-A100", CSCS_GPUS), ("LUMI-G", LUMI_GCDS)):
        small = data[(system, sizes[0])][1] / sizes[0]
        large = data[(system, sizes[-1])][1] / sizes[-1]
        assert abs(large - small) / small < 0.25, system
