"""Fixtures for the benchmark harness (see _harness.py for helpers)."""

from __future__ import annotations

import pytest

from repro import levelzero, nvml, rocm


@pytest.fixture(autouse=True)
def clean_registries():
    """Detach NVML/ROCm device registries around every bench."""
    yield
    nvml.detach_devices()
    rocm.detach_devices()
    levelzero.detach_devices()
