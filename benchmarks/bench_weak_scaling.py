"""Weak scaling over the Table-I particle sweeps.

Table I lists the paper's production sweeps: Subsonic Turbulence from
0.6 to 14.7 *billion* particles at a fixed 150 M particles per GPU —
i.e. weak scaling. This bench runs the first points of that sweep
(4-32 ranks on CSCS-A100) and checks the weak-scaling contract the
paper's energy methodology relies on: time per step stays flat while
total energy grows linearly with the allocation, so per-GPU energy is
the meaningful unit (the paper's "per GPU" savings).
"""

from __future__ import annotations

import pytest

from repro.reporting import render_table
from repro.systems import cscs_a100

from _harness import BENCH_STEPS, run_simulation

N_PER_GPU = 150.0e6
RANK_COUNTS = (4, 8, 16, 32)


def bench_weak_scaling(benchmark):
    def experiment():
        out = {}
        for ranks in RANK_COUNTS:
            res = run_simulation(
                cscs_a100(), ranks, "SubsonicTurbulence", N_PER_GPU
            )
            out[ranks] = res
        return out

    out = benchmark(experiment)

    base = out[RANK_COUNTS[0]]
    rows = []
    for ranks, res in out.items():
        total_particles = ranks * N_PER_GPU
        rows.append(
            [
                ranks,
                f"{total_particles / 1e9:.2f}",
                f"{res.elapsed_s / BENCH_STEPS:.3f}",
                f"{res.gpu_energy_j / ranks / 1e3:.2f}",
                f"{res.elapsed_s / base.elapsed_s:.4f}",
            ]
        )
    print()
    print(
        render_table(
            ["ranks (GPUs)", "particles [1e9]", "time/step [s]",
             "GPU energy per GPU [kJ]", "time vs 4 ranks"],
            rows,
            title=(
                "weak scaling (Table I sweep head): 150 M particles/GPU, "
                "Subsonic Turbulence, CSCS-A100"
            ),
        )
    )

    # Weak-scaling contract: time per step within a few % across sizes
    # (only the log-depth collectives grow)...
    for ranks, res in out.items():
        assert res.elapsed_s / base.elapsed_s < 1.10, ranks
    # ...and per-GPU energy is size-independent.
    per_gpu = [res.gpu_energy_j / ranks for ranks, res in out.items()]
    assert max(per_gpu) / min(per_gpu) < 1.05
    # Total energy therefore grows ~linearly with the allocation.
    e4 = out[4].gpu_energy_j
    e32 = out[32].gpu_energy_j
    assert e32 == pytest.approx(8.0 * e4, rel=0.10)



