"""Fig. 5 — energy consumption breakdown by SPH-EXA function.

Per-function share of the GPU (and CPU) energy for Turbulence and
Evrard on both large systems, 32 ranks. Shape targets from the paper:
MomentumEnergy's GPU share is much larger on LUMI-G (45.80 %) than on
CSCS-A100 (25.29 %) — the AMD-optimization gap — and the Evrard runs
show an additional Gravity slice. CPU energy per function tracks the
function's wall time.
"""

from __future__ import annotations

from repro.core import function_share_percent, per_function_metrics
from repro.reporting import render_table
from repro.systems import cscs_a100, lumi_g

from _harness import run_simulation

RUNS = [
    ("LUMI-Turb", lumi_g, "SubsonicTurbulence", 150.0e6),
    ("LUMI-Evr", lumi_g, "EvrardCollapse", 80.0e6),
    ("CSCS-A100-Turb", cscs_a100, "SubsonicTurbulence", 150.0e6),
    ("CSCS-A100-Evr", cscs_a100, "EvrardCollapse", 80.0e6),
]

N_RANKS = 32


def bench_fig5_function_energy_breakdown(benchmark):
    def experiment():
        out = {}
        for label, system, workload, n_per_gpu in RUNS:
            result = run_simulation(system(), N_RANKS, workload, n_per_gpu)
            out[label] = result.report
        return out

    reports = benchmark(experiment)

    functions = sorted(
        {fn for rep in reports.values()
         for fn in rep.aggregate_functions()}
    )
    for device in ("GPU", "CPU"):
        rows = []
        shares = {
            label: function_share_percent(rep, device)
            for label, rep in reports.items()
        }
        for fn in functions:
            rows.append(
                [fn] + [f"{shares[label].get(fn, 0.0):.2f}"
                        for label in reports]
            )
        print()
        print(
            render_table(
                ["function"] + list(reports),
                rows,
                title=f"Fig. 5: {device} energy share per function [%]",
            )
        )

    gpu_shares = {
        label: function_share_percent(rep, "GPU")
        for label, rep in reports.items()
    }
    # MomentumEnergy share: LUMI-G much larger than CSCS-A100 (paper:
    # 45.80 % vs 25.29 % for the turbulence runs).
    assert (
        gpu_shares["LUMI-Turb"]["MomentumEnergy"]
        > gpu_shares["CSCS-A100-Turb"]["MomentumEnergy"] + 10.0
    )
    assert gpu_shares["LUMI-Turb"]["MomentumEnergy"] > 40.0
    # Evrard adds a Gravity slice; Turbulence has none.
    assert "Gravity" not in gpu_shares["LUMI-Turb"]
    assert gpu_shares["LUMI-Evr"].get("Gravity", 0.0) > 5.0
    assert gpu_shares["CSCS-A100-Evr"].get("Gravity", 0.0) > 5.0
    # The functions that consume the most GPU energy also consume the
    # most CPU energy (CPU burn is time-proportional, section IV-B).
    for label, rep in reports.items():
        metrics = per_function_metrics(rep, device="CPU")
        times = {fn: m.time_s for fn, m in metrics.items()}
        cpu_shares = function_share_percent(rep, "CPU")
        top_by_time = max(times, key=times.get)
        top_by_cpu = max(cpu_shares, key=cpu_shares.get)
        assert top_by_time == top_by_cpu, label
