"""Frequency selection without a KernelTuner sweep: two ways.

The paper finds per-kernel frequencies with an offline KernelTuner
sweep (28 clocks x 7 iterations x 9 kernels). This example shows the
two cheaper routes the reproduction adds:

1. **two-run characterization** — run the production code twice (max
   clock + one down-clocked run), fit each function's compute-bound
   fraction kappa and idle-power share from the measured responses, and
   recommend best-EDP clocks analytically;
2. **AutoDyn** — tune *online*: explore candidate clocks during the
   first steps of a single production run, then pin the winners.

Both must land on (nearly) the same per-function map as the full sweep.

    python examples/autodyn_two_run.py
"""

from repro.core import (
    ManDynPolicy,
    OnlineTuningPolicy,
    StaticFrequencyPolicy,
    baseline_policy,
    characterize_functions,
    recommend_frequencies,
)
from repro.reporting import render_table
from repro.sph import run_instrumented
from repro.systems import Cluster, mini_hpc
from repro.tuner import tune_all_sph_functions

N = 450**3
CANDIDATES = [1410.0, 1305.0, 1200.0, 1110.0, 1005.0]


def run(policy, steps=6):
    cluster = Cluster(mini_hpc(), 1)
    try:
        result = run_instrumented(
            cluster, "SubsonicTurbulence", N, steps, policy=policy
        )
        return result, cluster
    finally:
        cluster.detach_management_library()


def main() -> None:
    # Route 0 (the paper's): full offline sweep, for reference.
    cluster = Cluster(mini_hpc(), 1)
    try:
        sweep = tune_all_sph_functions(
            cluster.gpus[0], N, CANDIDATES, iterations=2
        )
    finally:
        cluster.detach_management_library()

    # Route 1: two production runs + analytic fit.
    ref, _ = run(baseline_policy(1410.0))
    low, _ = run(StaticFrequencyPolicy(1110.0))
    characters = characterize_functions(
        ref.report, low.report, 1410.0, 1110.0
    )
    two_run = recommend_frequencies(characters, CANDIDATES)

    # Route 2: online tuning in one run.
    cluster = Cluster(mini_hpc(), 1)
    try:
        auto_policy = OnlineTuningPolicy(
            cluster.gpus, candidates_mhz=(1410.0, 1200.0, 1005.0),
            rounds_per_candidate=2,
        )
        run_instrumented(
            cluster, "SubsonicTurbulence", N, 8, policy=auto_policy
        )
    finally:
        cluster.detach_management_library()
    online = auto_policy.converged_map

    rows = []
    for fn in sorted(sweep, key=lambda f: -sweep[f]):
        ch = characters[fn]
        rows.append(
            [
                fn,
                f"{ch.kappa:.2f}",
                f"{sweep[fn]:.0f}",
                f"{two_run[fn]:.0f}",
                f"{online.get(fn, float('nan')):.0f}",
            ]
        )
    print(
        render_table(
            ["function", "fitted kappa", "KernelTuner sweep [MHz]",
             "two-run fit [MHz]", "AutoDyn online [MHz]"],
            rows,
            title="per-function frequency selection: three routes",
        )
    )

    # Use the two-run recommendation in anger.
    base, _ = run(baseline_policy(1410.0), steps=8)
    mandyn, _ = run(
        ManDynPolicy.from_tuning(two_run, default_mhz=1410.0), steps=8
    )
    t = mandyn.elapsed_s / base.elapsed_s
    e = mandyn.gpu_energy_j / base.gpu_energy_j
    print(
        f"\nManDyn from the two-run fit: time x{t:.4f}, "
        f"GPU energy x{e:.4f}, EDP x{t * e:.4f}"
    )


if __name__ == "__main__":
    main()
