"""Subsonic Turbulence with the real SPH numerics (numeric backend).

A laptop-scale version of the paper's primary workload: a periodic box
of driven subsonic turbulence integrated with the actual SPH pipeline
(octree domain decomposition, Wendland C6 kernels, IAD derivatives,
grad-h momentum/energy, CFL time-stepping) on 2 simulated MPI ranks,
with full per-function energy instrumentation.

    python examples/subsonic_turbulence.py [nside] [steps]
"""

import sys

import numpy as np

from repro.core import function_share_percent
from repro.reporting import render_breakdown
from repro.sph import NumericProblem, Simulation
from repro.sph.init import (
    TurbulenceConfig,
    TurbulenceDriver,
    make_turbulence,
    make_turbulence_eos,
)
from repro.sph.observables import rms_mach
from repro.systems import Cluster, mini_hpc
from repro.units import format_energy, format_time


def main() -> None:
    nside = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    cfg = TurbulenceConfig(nside=nside, mach_rms=0.3, seed=42)
    particles = make_turbulence(cfg)
    print(
        f"Subsonic Turbulence: {particles.n} particles "
        f"({nside}^3), target Mach {cfg.mach_rms}, {steps} steps"
    )

    cluster = Cluster(mini_hpc(), n_ranks=2)
    try:
        problem = NumericProblem(
            particles=particles,
            n_ranks=2,
            eos=make_turbulence_eos(cfg),
            box_size=cfg.box_size,
            driver=TurbulenceDriver(cfg, amplitude=0.4),
        )
        sim = Simulation(
            cluster,
            "SubsonicTurbulence",
            n_particles_per_rank=particles.n // 2,
            numeric=problem,
        )
        sim.initialize()

        print(f"\n{'step':>4} {'dt':>10} {'Mach':>7} {'rho max/mean':>13} "
              f"{'Ekin':>10} {'Eint':>10}")
        for step in range(steps):
            sim.profiler.open_window() if step == 0 else None
            sim._run_step()
            mach = rms_mach(particles)
            contrast = float(
                np.max(particles.rho) / np.mean(particles.rho)
            )
            print(
                f"{step:>4} {problem.dt:>10.2e} {mach:>7.3f} "
                f"{contrast:>13.3f} {particles.kinetic_energy():>10.4f} "
                f"{particles.internal_energy():>10.4f}"
            )
        sim.profiler.close_window()
        report = sim.profiler.gather(cluster.comm)

        print(f"\nsimulated wall time: {format_time(report.max_window_time_s())}")
        print(f"total energy: {format_energy(report.total_j())} "
              f"(GPU: {format_energy(report.total_window_gpu_j())})")
        print()
        print(
            render_breakdown(
                function_share_percent(report, "GPU"),
                title="GPU energy share per SPH-EXA function [%]",
            )
        )
        print(
            "\nmomentum drift:",
            np.max(np.abs(particles.momentum())),
        )
    finally:
        cluster.detach_management_library()


if __name__ == "__main__":
    main()
