"""Run a ManDyn simulation while faults strike — and survive it.

Builds a seeded :class:`repro.faults.FaultPlan` that loses rank 0's GPU
mid-run (permanent NVML ``GPU_IS_LOST`` on its third clock set) and
makes 20% of every other rank's clock sets time out transiently. With a
:class:`repro.core.ResilienceConfig`, the frequency controller retries
the timeouts with deterministic backoff and degrades rank 0 to its DVFS
governor instead of crashing; the run completes end-to-end and the
degradation is visible in the result, the energy report and the
telemetry faults track. The same seed reproduces the exact same faults.

    python examples/fault_injection.py [ranks] [steps] [seed]
"""

import sys

from repro.core import ManDynPolicy, ResilienceConfig
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.sph import run_instrumented
from repro.systems import Cluster, mini_hpc
from repro.telemetry import TRACK_FAULTS, TraceCollector


def main() -> None:
    n_ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    n_steps = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 20240

    plan = FaultPlan(seed=seed, name="example")
    plan.add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.GPU_IS_LOST,
            rank=0,
            after_calls=3,
        )
    )
    plan.add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.TIMEOUT,
            probability=0.2,
            latency_s=0.002,
        )
    )
    print(plan.describe())
    print()

    cluster = Cluster(mini_hpc(), n_ranks)
    collector = TraceCollector.for_cluster(cluster)
    injector = FaultInjector(plan)
    policy = ManDynPolicy(
        {"MomentumEnergy": 1410.0, "IADVelocityDivCurl": 1365.0},
        default_mhz=1005.0,
    )
    try:
        result = run_instrumented(
            cluster,
            "SedovBlast",
            n_particles_per_rank=1e5,
            n_steps=n_steps,
            policy=policy,
            telemetry=collector,
            resilience=ResilienceConfig(),
            faults=injector,
        )
    finally:
        cluster.detach_management_library()

    print(
        f"completed {result.steps}/{n_steps} steps with "
        f"{result.faults_injected} faults injected and "
        f"{result.retries} transient retries"
    )
    print(f"degraded ranks: {result.degraded_ranks or 'none'}")
    for record in injector.records:
        print(f"  {record.describe()}")
    for rank_report in result.report.ranks:
        if rank_report.degraded:
            print(
                f"report flags rank {rank_report.rank}: "
                f"{rank_report.degraded_reason}"
            )
    fault_events = [
        e for e in collector.events if e.track == TRACK_FAULTS
    ]
    print(f"{len(fault_events)} events on the telemetry faults track")


if __name__ == "__main__":
    main()
