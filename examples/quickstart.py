"""Quickstart: measure and reduce the energy of an SPH run in ~30 lines.

Runs the Subsonic Turbulence workload (450^3 particles, the paper's
miniHPC problem size) on one simulated A100 twice — once with the
default pinned-max clocks and once with the paper's ManDyn per-function
frequency scaling — and prints the headline comparison.

    python examples/quickstart.py
"""

from repro.core import ManDynPolicy, baseline_policy
from repro.sph import run_instrumented
from repro.systems import Cluster, mini_hpc
from repro.units import format_energy, format_time


def run(policy):
    cluster = Cluster(mini_hpc(), n_ranks=1)
    try:
        return run_instrumented(
            cluster,
            "SubsonicTurbulence",
            n_particles_per_rank=450**3,
            n_steps=10,
            policy=policy,
        )
    finally:
        cluster.detach_management_library()


def main() -> None:
    baseline = run(baseline_policy(1410.0))

    # ManDyn: compute-bound kernels at max clock, everything else low
    # (what the kernel tuner finds in Fig. 2; see tune_frequencies.py).
    mandyn = run(
        ManDynPolicy(
            {"MomentumEnergy": 1410.0, "IADVelocityDivCurl": 1365.0},
            default_mhz=1005.0,
        )
    )

    print(f"{'':14} {'time':>12} {'GPU energy':>14} {'EDP':>12}")
    for name, res in (("baseline", baseline), ("ManDyn", mandyn)):
        print(
            f"{name:14} {format_time(res.elapsed_s):>12} "
            f"{format_energy(res.gpu_energy_j):>14} {res.edp:>12.1f}"
        )
    dt = mandyn.elapsed_s / baseline.elapsed_s - 1.0
    de = 1.0 - mandyn.gpu_energy_j / baseline.gpu_energy_j
    dedp = 1.0 - mandyn.edp / baseline.edp
    print(
        f"\nManDyn: {de:+.1%} GPU energy saved for {dt:+.2%} time "
        f"({dedp:+.1%} EDP) — paper: up to 7.82 % energy for <= 2.95 % time."
    )


if __name__ == "__main__":
    main()
