"""Trace a ManDyn run and export it for Perfetto / chrome://tracing.

Attaches a :class:`repro.telemetry.TraceCollector` to an instrumented
Sedov blast run: every hooked step function becomes a duration span,
every NVML application-clock change becomes an instant on the rank's
clock track, and the result is written as Chrome ``trace_event`` JSON
(``trace_run.json`` in the current directory). The printed summary
reconciles the trace against the independently gathered energy report.

    python examples/trace_run.py [ranks] [steps]
"""

import sys

from repro.core import ManDynPolicy
from repro.sph import run_instrumented
from repro.systems import Cluster, mini_hpc
from repro.telemetry import TraceCollector, render_summary, write_chrome_trace


def main() -> None:
    n_ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    n_steps = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    cluster = Cluster(mini_hpc(), n_ranks)
    collector = TraceCollector.for_cluster(cluster)
    policy = ManDynPolicy(
        {"MomentumEnergy": 1410.0, "IADVelocityDivCurl": 1365.0},
        default_mhz=1005.0,
    )
    try:
        result = run_instrumented(
            cluster,
            "SedovBlast",
            n_particles_per_rank=1e5,
            n_steps=n_steps,
            policy=policy,
            telemetry=collector,
        )
    finally:
        cluster.detach_management_library()

    out = "trace_run.json"
    write_chrome_trace(
        out, collector.events,
        label=f"SedovBlast on miniHPC (ManDyn, {n_steps} steps)",
    )
    print(
        f"recorded {len(collector.events)} events "
        f"({len(collector.spans())} spans) across {n_ranks} ranks; "
        f"Chrome trace written to {out} — open it in Perfetto."
    )
    print()
    print(render_summary(collector, result.report))


if __name__ == "__main__":
    main()
