"""Sedov-Taylor blast wave against the analytic similarity solution.

The third workload (the paper's future work applies the method to other
GPU simulation codes; Sedov is SPH-EXA's canonical validation test). A
thermal spike in a cold uniform box drives a blast wave; the measured
shock radius is compared against R(t) = xi_0 (E t^2 / rho_0)^(1/5)
while the instrumented energy measurement runs as usual.

    python examples/sedov_blast.py [nside] [steps] [--skin S]
        [--ranks N] [--comm-backend local|process]
"""

import argparse

from repro.core import function_share_percent
from repro.reporting import render_breakdown
from repro.sph import NumericProblem, Simulation
from repro.sph.init import (
    SedovConfig,
    analytic_shock_radius,
    make_sedov,
    make_sedov_eos,
    shock_radius,
)
from repro.systems import Cluster, mini_hpc
from repro.units import format_energy, format_time


def main() -> None:
    parser = argparse.ArgumentParser(description="Sedov blast example")
    parser.add_argument("nside", type=int, nargs="?", default=14)
    parser.add_argument("steps", type=int, nargs="?", default=10)
    parser.add_argument(
        "--skin",
        type=float,
        default=0.1,
        help="Verlet skin in units of h; 0 searches every step "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--ranks",
        type=int,
        default=1,
        help="simulated MPI ranks (default %(default)s)",
    )
    parser.add_argument(
        "--comm-backend",
        choices=("local", "process"),
        default="local",
        dest="comm_backend",
        help="rank execution backend; 'process' runs one OS process "
        "per rank with identical results (default %(default)s)",
    )
    args = parser.parse_args()
    nside, steps = args.nside, args.steps

    cfg = SedovConfig(nside=nside, blast_energy=1.0, seed=11)
    particles = make_sedov(cfg)
    print(
        f"Sedov blast: {particles.n} particles ({nside}^3), "
        f"E = {cfg.blast_energy}, {steps} steps"
    )
    e0 = particles.internal_energy()

    cluster = Cluster(
        mini_hpc(), n_ranks=args.ranks, comm_backend=args.comm_backend
    )
    try:
        problem = NumericProblem(
            particles=particles,
            n_ranks=args.ranks,
            eos=make_sedov_eos(cfg),
            box_size=cfg.box_size,
            skin=args.skin,
        )
        sim = Simulation(
            cluster, "SedovBlast",
            n_particles_per_rank=particles.n / args.ranks,
            numeric=problem,
        )
        sim.initialize()
        sim.profiler.open_window()

        print(f"\n{'step':>4} {'t':>10} {'dt':>10} {'R_shock':>9} "
              f"{'R_analytic':>11} {'Ekin/E0':>8} {'dE/E0':>8}")
        t = 0.0
        for step in range(steps):
            sim._run_step()
            t += problem.dt
            r_meas = shock_radius(particles, cfg)
            r_ana = analytic_shock_radius(cfg, t)
            e_tot = particles.kinetic_energy() + particles.internal_energy()
            print(
                f"{step:>4} {t:>10.2e} {problem.dt:>10.2e} "
                f"{r_meas:>9.4f} {r_ana:>11.4f} "
                f"{particles.kinetic_energy() / e0:>8.3f} "
                f"{(e_tot - e0) / e0:>+8.2%}"
            )
        sim.profiler.close_window()
        report = sim.profiler.gather(cluster.comm)

        print(f"\nsimulated wall time: {format_time(report.max_window_time_s())}")
        print(f"GPU energy: {format_energy(report.total_window_gpu_j())}")
        print()
        print(
            render_breakdown(
                function_share_percent(report, "GPU"),
                title="GPU energy share per function [%]",
            )
        )
    finally:
        cluster.detach_management_library()


if __name__ == "__main__":
    main()
