"""Drive a running campaign service with nothing but the stdlib.

Submits the Fig. 7 campaign spec to a ``repro serve`` control plane,
streams live progress off the server-sent-events endpoint, then
fetches the cached EDP/Pareto report and prints the ranking — the
service-side twin of ``examples/campaign_run.py``.

Start a service first, then point the client at it::

    python -m repro serve --root /tmp/service &
    python examples/campaign_client.py http://127.0.0.1:9465

Submitting the same spec again attaches to the existing campaign (the
id is a hash of the spec) and the report answers straight from the
store — run the client twice and watch the second run execute zero
units.

    python examples/campaign_client.py [server_url] [spec_path] [tenant]
"""

import json
import pathlib
import sys
import time
import urllib.error
import urllib.request

DEFAULT_URL = "http://127.0.0.1:9465"
SPEC = pathlib.Path(__file__).with_name("campaign_fig7.json")


def call(url, method="GET", body=None, tenant=None):
    headers = {}
    data = None
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    if tenant:
        headers["X-Repro-Tenant"] = tenant
    request = urllib.request.Request(
        url, method=method, data=data, headers=headers
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def stream_events(url, tenant=None):
    """Yield decoded SSE data payloads until the stream ends."""
    headers = {"X-Repro-Tenant": tenant} if tenant else {}
    request = urllib.request.Request(url, headers=headers)
    with urllib.request.urlopen(request) as response:
        for raw in response:  # urllib decodes the chunked framing
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("data: "):
                yield json.loads(line[len("data: "):])


def main() -> int:
    base = (sys.argv[1] if len(sys.argv) > 1 else DEFAULT_URL).rstrip("/")
    spec_path = sys.argv[2] if len(sys.argv) > 2 else str(SPEC)
    tenant = sys.argv[3] if len(sys.argv) > 3 else None
    with open(spec_path, encoding="utf-8") as fh:
        spec = json.load(fh)

    status, sub = call(f"{base}/campaigns", "POST", spec, tenant)
    if status == 429:
        print(f"service is saturated, retry in {sub['retry_after_s']}s")
        return 1
    if status not in (200, 202):
        print(f"submission failed ({status}): {sub.get('error')}")
        return 1
    cid = sub["id"]
    if sub["created"]:
        print(f"campaign {cid}: {sub['units']} units admitted")
    else:
        print(f"campaign {cid}: attached to existing submission "
              f"#{sub['submissions']} (state: {sub['state']})")

    # Live progress: replays history on reconnect, ends at terminal.
    final_event = None
    for event in stream_events(f"{base}/campaigns/{cid}/events", tenant):
        kind = event.get("event", "")
        if kind == "unit-done":
            print(f"  [{event['seq']:>3}] done   {event['key']}  "
                  f"({event.get('unit', '?')})")
        elif kind in ("unit-cached", "unit-attached",
                      "unit-shared-cache-hit"):
            print(f"  [{event.get('seq', 0):>3}] cached {event['key']}")
        elif kind == "unit-failed":
            print(f"  [{event['seq']:>3}] FAILED {event['key']}: "
                  f"{event.get('error')}")
        elif kind.startswith("campaign-") and "executed" in event:
            final_event = event

    if final_event:
        print(f"drain: {final_event['executed']} executed, "
              f"{final_event['cached']} cached, "
              f"{final_event['attached']} attached, "
              f"{final_event['failed']} failed")

    # Poll status once for the terminal state, then pull the report.
    status, doc = call(f"{base}/campaigns/{cid}", tenant=tenant)
    print(f"state: {doc['state']} "
          f"(complete: {doc['campaign']['complete']})")
    if doc["state"] != "done":
        return 1

    for attempt in range(10):
        status, report = call(f"{base}/campaigns/{cid}/report",
                              tenant=tenant)
        if status == 200:
            break
        time.sleep(0.5)
    else:
        print(f"report unavailable: {report.get('error')}")
        return 1

    group = report["groups"][0]
    print(f"\nreport: {report['n_runs']} runs, "
          f"knee {group['knee']}, best EDP policy ranking:")
    ranked = sorted(group["rows"], key=lambda row: row["rel_edp"])
    for row in ranked:
        print(f"  {row['policy']:<14} EDP x{row['rel_edp']:.3f}  "
              f"time x{row['rel_time']:.3f}  "
              f"energy x{row['rel_energy']:.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
