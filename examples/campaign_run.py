"""The Fig. 7 sweep as a resumable campaign.

Loads ``examples/campaign_fig7.json`` — the static-vs-DVFS-vs-ManDyn
grid behind the paper's headline figure — and drains it into a run
store with two worker processes. Kill the script at any point and run
it again: completed units are content-addressed and skipped, so the
campaign picks up exactly where it stopped. The final report normalizes
every policy against the 1410 MHz baseline and marks the Pareto front
and EDP knee, reproducing the Fig. 7 ranking (ManDyn best EDP, ~2 %
time loss for ~9 % GPU energy; static 1005 MHz >12 % slower; DVFS
costs energy).

    python examples/campaign_run.py [campaign_dir] [workers]
"""

import pathlib
import sys

from repro.campaign import (
    CampaignSpec,
    ExecutorConfig,
    build_summary,
    edp_ranking,
    render_summary,
    run_campaign,
)
from repro.telemetry import TraceCollector

SPEC = pathlib.Path(__file__).with_name("campaign_fig7.json")


def main() -> None:
    directory = sys.argv[1] if len(sys.argv) > 1 else "campaigns/fig7"
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    spec = CampaignSpec.load(str(SPEC))
    collector = TraceCollector(max_events=100_000)
    status, store = run_campaign(
        spec,
        directory,
        config=ExecutorConfig(workers=workers),
        telemetry=collector,
    )
    print(status.describe())
    print(f"run store: {store.root} (inspect with `repro campaign status`)")
    print()

    summary = build_summary(store, keys=[u.key for u in spec.expand()])
    print(render_summary(summary))
    group = summary["groups"][0]
    print()
    print("EDP ranking (best first):", " > ".join(edp_ranking(group)))


if __name__ == "__main__":
    main()
