"""Multi-node energy accounting: Slurm vs PMT vs pm_counters.

Submits a Subsonic Turbulence job (8 ranks on 2 CSCS-A100-like nodes,
150 M particles per GPU) through the simulated Slurm controller with
energy accounting enabled, and then compares every measurement path the
paper discusses:

* Slurm's sacct ConsumedEnergy (job window, from pm_counters),
* the instrumented PMT window (opens at the time-stepping loop),
* the per-device and per-function breakdowns (Figs. 4-5),
* the raw /sys/cray/pm_counters files of node 0.

The gathered per-rank report is written to ``energy_report.json`` for
post-hoc analysis, as the instrumented SPH-EXA does.

    python examples/energy_report.py
"""

from repro.core import (
    device_breakdown_percent,
    function_share_percent,
)
from repro.reporting import render_breakdown, render_table
from repro.slurm import JobSpec, SlurmController
from repro.sph import run_instrumented
from repro.systems import Cluster, cscs_a100
from repro.units import format_energy


def main() -> None:
    cluster = Cluster(cscs_a100(), n_ranks=8)
    controller = SlurmController()
    controller.accounting.enable_energy_accounting()
    captured = {}

    def app(cl, job):
        captured["result"] = run_instrumented(
            cl, "SubsonicTurbulence", 150.0e6, n_steps=5
        )
        return captured["result"]

    try:
        job = controller.submit(
            JobSpec(name="sphexa-turb", n_nodes=2, n_tasks=8),
            cluster,
            app,
        )
    finally:
        cluster.detach_management_library()
    result = captured["result"]

    rows = controller.accounting.sacct(
        job.job_id,
        fields=("JobID", "JobName", "State", "Elapsed", "NNodes",
                "ConsumedEnergy", "ConsumedEnergyRaw"),
    )
    print("sacct output:")
    print(render_table(list(rows[0]), [list(rows[0].values())]))

    pmt_j = result.report.total_j()
    slurm_j = job.consumed_energy_j
    print(
        f"\nSlurm ConsumedEnergy : {format_energy(slurm_j)}"
        f"\nPMT measured window  : {format_energy(pmt_j)}"
        f"\nsetup-phase energy   : {format_energy(slurm_j - pmt_j)} "
        f"({1.0 - pmt_j / slurm_j:.1%} of the job — GPUs idle during "
        "setup, as in Fig. 3)"
    )

    print()
    print(
        render_breakdown(
            device_breakdown_percent(result.report),
            title="energy per device class [%] (Fig. 4)",
        )
    )
    print()
    print(
        render_breakdown(
            function_share_percent(result.report, "GPU"),
            title="GPU energy per function [%] (Fig. 5)",
        )
    )

    pm = cluster.pm_counters[0]
    print("\n/sys/cray/pm_counters (node 0):")
    for name in ("energy", "cpu_energy", "memory_energy",
                 "accel0_energy", "freshness"):
        print(f"  {name:16} {pm.read_file(name)}")

    result.report.save("energy_report.json")
    print("\nper-rank report written to energy_report.json")


if __name__ == "__main__":
    main()
