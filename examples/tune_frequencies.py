"""Find per-kernel sweet-spot frequencies and run ManDyn with them.

Reproduces the paper's full methodology end to end:

1. KernelTuner-style sweep of every SPH-EXA kernel over the supported
   clocks in the 1005-1410 MHz window, best-EDP selection (Fig. 2);
2. build a ManDyn policy from the tuning result (section III-D);
3. compare baseline / best static / DVFS / ManDyn (Fig. 7).

    python examples/tune_frequencies.py
"""

from repro import nvml
from repro.core import (
    DvfsPolicy,
    ManDynPolicy,
    StaticFrequencyPolicy,
    baseline_policy,
)
from repro.reporting import render_table
from repro.sph import run_instrumented
from repro.systems import Cluster, mini_hpc
from repro.tuner import tune_all_sph_functions

PROBLEM = 450**3
STEPS = 10


def main() -> None:
    # --- 1. tune ----------------------------------------------------------
    cluster = Cluster(mini_hpc(), 1)
    try:
        handle = nvml.nvmlDeviceGetHandleByIndex(0)
        freqs = nvml.supported_clock_window_mhz(handle, 1005, 1410)[::3]
        best = tune_all_sph_functions(
            cluster.gpus[0], PROBLEM, freqs, iterations=3
        )
    finally:
        cluster.detach_management_library()
    print(
        render_table(
            ["function", "best-EDP clock [MHz]"],
            sorted(best.items(), key=lambda kv: -kv[1]),
            title="tuned per-kernel frequencies (Fig. 2)",
        )
    )

    # --- 2/3. compare policies ---------------------------------------------
    def run(policy):
        cl = Cluster(mini_hpc(), 1)
        try:
            return run_instrumented(
                cl, "SubsonicTurbulence", PROBLEM, STEPS, policy=policy
            )
        finally:
            cl.detach_management_library()

    runs = {
        "baseline 1410": run(baseline_policy(1410.0)),
        "static 1005": run(StaticFrequencyPolicy(1005.0)),
        "DVFS": run(DvfsPolicy()),
        "ManDyn (tuned)": run(
            ManDynPolicy.from_tuning(best, default_mhz=1410.0)
        ),
    }
    base = runs["baseline 1410"]
    rows = []
    for label, res in runs.items():
        t = res.elapsed_s / base.elapsed_s
        e = res.gpu_energy_j / base.gpu_energy_j
        rows.append([label, f"{t:.4f}", f"{e:.4f}", f"{t * e:.4f}",
                     res.clock_set_calls])
    print()
    print(
        render_table(
            ["policy", "time", "GPU energy", "EDP", "clock sets"],
            rows,
            title="normalized comparison (Fig. 7)",
        )
    )


if __name__ == "__main__":
    main()
