"""Evrard Collapse with self-gravity (numeric backend).

The paper's second workload: a cold gas sphere with rho ~ 1/r collapses
under Barnes-Hut self-gravity, heating as it bounces. Runs the full
instrumented pipeline (the propagator gains the Gravity function) on
one simulated rank and tracks the collapse diagnostics and the energy
budget.

    python examples/evrard_collapse.py [n_particles] [steps] [--skin S]
        [--ranks N] [--comm-backend local|process]
"""

import argparse

import numpy as np

from repro.core import function_share_percent
from repro.reporting import render_breakdown
from repro.sph import NumericProblem, Simulation
from repro.sph.init import (
    EvrardConfig,
    make_evrard,
    make_evrard_eos,
    make_evrard_gravity,
)
from repro.sph.observables import density_contrast, energy_budget, half_mass_radius
from repro.systems import Cluster, mini_hpc
from repro.units import format_energy, format_time


def main() -> None:
    parser = argparse.ArgumentParser(description="Evrard collapse example")
    parser.add_argument("n_particles", type=int, nargs="?", default=3000)
    parser.add_argument("steps", type=int, nargs="?", default=12)
    parser.add_argument(
        "--skin",
        type=float,
        default=0.1,
        help="Verlet skin in units of h; 0 searches every step "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--ranks",
        type=int,
        default=1,
        help="simulated MPI ranks (default %(default)s)",
    )
    parser.add_argument(
        "--comm-backend",
        choices=("local", "process"),
        default="local",
        dest="comm_backend",
        help="rank execution backend; 'process' runs one OS process "
        "per rank with identical results (default %(default)s)",
    )
    args = parser.parse_args()
    n, steps = args.n_particles, args.steps

    cfg = EvrardConfig(n_particles=n, seed=7)
    particles = make_evrard(cfg)
    gravity = make_evrard_gravity(cfg)
    print(
        f"Evrard Collapse: {n} particles, u0 = {cfg.u0:.3f}, "
        f"softening = {gravity.softening:.4f}, {steps} steps"
    )
    budget0 = energy_budget(particles, gravity)
    print(
        f"initial energy: kin {budget0.kinetic:.4f}  "
        f"int {budget0.internal:.4f}  pot {budget0.potential:.4f}  "
        f"total {budget0.total:.4f}"
    )

    cluster = Cluster(
        mini_hpc(), n_ranks=args.ranks, comm_backend=args.comm_backend
    )
    try:
        problem = NumericProblem(
            particles=particles,
            n_ranks=args.ranks,
            eos=make_evrard_eos(cfg),
            gravity=gravity,
            skin=args.skin,
        )
        sim = Simulation(
            cluster, "EvrardCollapse",
            n_particles_per_rank=n / args.ranks,
            numeric=problem,
        )
        sim.initialize()
        sim.profiler.open_window()

        print(f"\n{'step':>4} {'dt':>10} {'r_half':>8} {'rho contrast':>13} "
              f"{'Ekin':>9} {'Etot drift':>11}")
        for step in range(steps):
            sim._run_step()
            budget = energy_budget(particles, gravity)
            drift = (budget.total - budget0.total) / abs(budget0.total)
            print(
                f"{step:>4} {problem.dt:>10.2e} "
                f"{half_mass_radius(particles):>8.4f} "
                f"{density_contrast(particles):>13.1f} "
                f"{budget.kinetic:>9.4f} {drift:>+11.2%}"
            )
        sim.profiler.close_window()
        report = sim.profiler.gather(cluster.comm)

        print(f"\nsimulated wall time: {format_time(report.max_window_time_s())}")
        print(f"GPU energy: {format_energy(report.total_window_gpu_j())}")
        print()
        print(
            render_breakdown(
                function_share_percent(report, "GPU"),
                title="GPU energy share per function (note Gravity) [%]",
            )
        )
        # The sphere must have contracted and gained kinetic energy.
        final = energy_budget(particles, gravity)
        assert final.kinetic > 0.0
        print("\ncollapse is underway: kinetic energy "
              f"{final.kinetic:.4f} (from 0), potential deepened to "
              f"{final.potential:.4f} (from {budget0.potential:.4f})")
    finally:
        cluster.detach_management_library()


if __name__ == "__main__":
    main()
