"""ParticleSet container and neighbor search."""

import numpy as np
import pytest

from repro.sph import (
    ParticleSet,
    find_neighbors,
    find_neighbors_bruteforce,
    pair_displacements,
)
from repro.sph.init import TurbulenceConfig, make_turbulence


def _random_particles(n=50, seed=0, box=None):
    rng = np.random.default_rng(seed)
    scale = box if box else 1.0
    pos = rng.uniform(0, scale, size=(n, 3))
    return ParticleSet(
        x=pos[:, 0], y=pos[:, 1], z=pos[:, 2],
        vx=np.zeros(n), vy=np.zeros(n), vz=np.zeros(n),
        m=np.full(n, 1.0 / n), h=np.full(n, 0.2 * scale), u=np.full(n, 1.0),
    )


def test_particleset_validates_shapes():
    with pytest.raises(ValueError):
        ParticleSet(
            x=np.zeros(3), y=np.zeros(2), z=np.zeros(3),
            vx=np.zeros(3), vy=np.zeros(3), vz=np.zeros(3),
            m=np.zeros(3), h=np.zeros(3), u=np.zeros(3),
        )


def test_ensure_derived_allocates_zeros():
    p = ParticleSet.zeros(5)
    assert p.rho is None
    p.ensure_derived()
    assert p.rho.shape == (5,)
    assert p.c33.shape == (5,)


def test_select_and_concatenate_roundtrip():
    p = _random_particles(20)
    first = p.select(np.arange(10))
    second = p.select(np.arange(10, 20))
    merged = ParticleSet.concatenate([first, second])
    assert merged.n == 20
    assert np.allclose(merged.x, p.x)


def test_conserved_helpers():
    p = _random_particles(10)
    p.vx[:] = 1.0
    assert p.total_mass() == pytest.approx(1.0)
    assert p.kinetic_energy() == pytest.approx(0.5)
    assert p.momentum()[0] == pytest.approx(1.0)
    assert p.internal_energy() == pytest.approx(1.0)


def test_neighbors_match_bruteforce_open_box():
    p = _random_particles(60, seed=3)
    fast = find_neighbors(p)
    slow = find_neighbors_bruteforce(p)
    assert np.array_equal(fast.offsets, slow.offsets)
    for i in range(p.n):
        assert set(fast.of(i)) == set(slow.of(i))


def test_neighbors_match_bruteforce_periodic():
    p = _random_particles(50, seed=4, box=1.0)
    p.h[:] = 0.15
    fast = find_neighbors(p, box_size=1.0)
    slow = find_neighbors_bruteforce(p, box_size=1.0)
    for i in range(p.n):
        assert set(fast.of(i)) == set(slow.of(i))


def test_self_excluded_from_neighbors():
    p = _random_particles(30, seed=5)
    nlist = find_neighbors(p)
    for i in range(p.n):
        assert i not in nlist.of(i)


def test_periodic_wrapping_finds_cross_boundary_pairs():
    n = 2
    p = ParticleSet(
        x=np.array([0.01, 0.99]), y=np.array([0.5, 0.5]),
        z=np.array([0.5, 0.5]),
        vx=np.zeros(n), vy=np.zeros(n), vz=np.zeros(n),
        m=np.ones(n), h=np.full(n, 0.05), u=np.ones(n),
    )
    nlist = find_neighbors(p, box_size=1.0)
    assert 1 in nlist.of(0)
    open_list = find_neighbors(p)
    assert 1 not in open_list.of(0)


def test_positions_outside_periodic_box_rejected():
    p = _random_particles(5)
    p.x[0] = 1.5
    with pytest.raises(ValueError):
        find_neighbors(p, box_size=1.0)


def test_neighbor_counts_and_stats():
    p = make_turbulence(TurbulenceConfig(nside=8, seed=2))
    nlist = find_neighbors(p, box_size=1.0)
    counts = nlist.counts()
    assert counts.sum() == nlist.total_pairs
    assert nlist.mean_count() == pytest.approx(counts.mean())
    # Target ~100 neighbors in a near-uniform box.
    assert 50 < nlist.mean_count() < 200


def test_pair_displacements_minimum_image():
    p = ParticleSet(
        x=np.array([0.02, 0.98]), y=np.array([0.5, 0.5]),
        z=np.array([0.5, 0.5]),
        vx=np.zeros(2), vy=np.zeros(2), vz=np.zeros(2),
        m=np.ones(2), h=np.full(2, 0.05), u=np.ones(2),
    )
    nlist = find_neighbors(p, box_size=1.0)
    dx, dy, dz, r, i_idx, j_idx = pair_displacements(p, nlist, box_size=1.0)
    assert np.all(r < 0.1)  # wrapped distance, not 0.96
    assert np.all(np.abs(dx) < 0.1)
