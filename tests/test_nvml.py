"""pynvml-compatible API surface over simulated devices."""

import pytest

from repro import nvml
from repro.hardware import KernelLaunch, SimulatedGpu, VirtualClock, a100_sxm4_80gb
from repro.units import mhz


@pytest.fixture
def devices():
    clk = VirtualClock()
    gpus = [SimulatedGpu(a100_sxm4_80gb(), clk, index=i) for i in range(2)]
    nvml.attach_devices(gpus)
    nvml.nvmlInit()
    return gpus


def test_uninitialized_calls_raise():
    nvml.attach_devices([])
    with pytest.raises(nvml.NVMLError) as exc:
        nvml.nvmlDeviceGetCount()
    assert exc.value.value == nvml.NVML_ERROR_UNINITIALIZED


def test_device_count_and_handles(devices):
    assert nvml.nvmlDeviceGetCount() == 2
    h = nvml.nvmlDeviceGetHandleByIndex(1)
    assert nvml.nvmlDeviceGetIndex(h) == 1
    assert "A100" in nvml.nvmlDeviceGetName(h)


def test_bad_index_raises(devices):
    with pytest.raises(nvml.NVMLError) as exc:
        nvml.nvmlDeviceGetHandleByIndex(7)
    assert exc.value.value == nvml.NVML_ERROR_INVALID_ARGUMENT


def test_clock_info_in_mhz(devices):
    h = nvml.nvmlDeviceGetHandleByIndex(0)
    assert nvml.nvmlDeviceGetClockInfo(h, nvml.NVML_CLOCK_GRAPHICS) == 1410
    assert nvml.nvmlDeviceGetClockInfo(h, nvml.NVML_CLOCK_MEM) == 1593
    assert nvml.nvmlDeviceGetMaxClockInfo(h, nvml.NVML_CLOCK_SM) == 1410


def test_supported_graphics_clocks_descending(devices):
    h = nvml.nvmlDeviceGetHandleByIndex(0)
    mem = nvml.nvmlDeviceGetSupportedMemoryClocks(h)[0]
    clocks = nvml.nvmlDeviceGetSupportedGraphicsClocks(h, mem)
    assert clocks[0] == 1410
    assert clocks == sorted(clocks, reverse=True)
    assert 1005 in clocks


def test_set_applications_clocks(devices):
    h = nvml.nvmlDeviceGetHandleByIndex(0)
    nvml.nvmlDeviceSetApplicationsClocks(h, 1593, 1005)
    assert nvml.nvmlDeviceGetClockInfo(h, nvml.NVML_CLOCK_GRAPHICS) == 1005
    assert (
        nvml.nvmlDeviceGetApplicationsClock(h, nvml.NVML_CLOCK_GRAPHICS) == 1005
    )


def test_set_unsupported_clock_rejected(devices):
    h = nvml.nvmlDeviceGetHandleByIndex(0)
    with pytest.raises(nvml.NVMLError):
        nvml.nvmlDeviceSetApplicationsClocks(h, 1593, 1007)
    with pytest.raises(nvml.NVMLError):
        nvml.nvmlDeviceSetApplicationsClocks(h, 1200, 1005)


def test_reset_applications_clocks_enables_governor(devices):
    h = nvml.nvmlDeviceGetHandleByIndex(0)
    nvml.nvmlDeviceResetApplicationsClocks(h)
    assert devices[0].dvfs_active


def test_clock_control_permission_denied():
    clk = VirtualClock()
    gpus = [SimulatedGpu(a100_sxm4_80gb(), clk)]
    nvml.attach_devices(gpus, allow_clock_control=False)
    nvml.nvmlInit()
    h = nvml.nvmlDeviceGetHandleByIndex(0)
    with pytest.raises(nvml.NVMLError) as exc:
        nvml.nvmlDeviceSetApplicationsClocks(h, 1593, 1005)
    assert exc.value.value == nvml.NVML_ERROR_NO_PERMISSION


def test_power_and_energy_counters(devices):
    h = nvml.nvmlDeviceGetHandleByIndex(0)
    devices[0].execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    mj = nvml.nvmlDeviceGetTotalEnergyConsumption(h)
    assert mj == pytest.approx(devices[0].energy_j * 1000.0, abs=1.0)
    mw = nvml.nvmlDeviceGetPowerUsage(h)
    assert mw > 0
    limit = nvml.nvmlDeviceGetEnforcedPowerLimit(h)
    assert limit == 400_000


def test_utilization_and_temperature(devices):
    h = nvml.nvmlDeviceGetHandleByIndex(0)
    util = nvml.nvmlDeviceGetUtilizationRates(h)
    assert 0 <= util.gpu <= 100
    temp = nvml.nvmlDeviceGetTemperature(h, nvml.NVML_TEMPERATURE_GPU)
    assert 20 < temp < 100


def test_rank_to_device_helper(devices):
    h = nvml.get_nvml_device_for_rank(1)
    assert nvml.nvmlDeviceGetIndex(h) == 1


def test_supported_clock_window(devices):
    h = nvml.nvmlDeviceGetHandleByIndex(0)
    window = nvml.supported_clock_window_mhz(h, 1005, 1410)
    assert window[0] == 1410 and window[-1] == 1005
    assert len(window) == 28  # (1410-1005)/15 + 1


def test_shutdown_reference_counting(devices):
    nvml.nvmlInit()  # second init
    nvml.nvmlShutdown()
    nvml.nvmlDeviceGetCount()  # still initialized
    nvml.nvmlShutdown()
    with pytest.raises(nvml.NVMLError):
        nvml.nvmlDeviceGetCount()


def test_error_strings():
    assert nvml.nvmlErrorString(nvml.NVML_SUCCESS) == "Success"


def test_error_string_unknown_code_formats_readably():
    # Codes outside the table (future drivers, fault injection) must
    # degrade to a readable message, never a KeyError mid-error-path.
    assert nvml.nvmlErrorString(12345) == "unknown error code 12345"
    assert nvml.nvmlErrorString(-1) == "unknown error code -1"
    # Unhashable garbage degrades the same way instead of raising.
    assert nvml.nvmlErrorString([3]) == "unknown error code [3]"


def test_nvml_error_carries_code_and_readable_message():
    err = nvml.NVMLError(nvml.NVML_ERROR_GPU_IS_LOST)
    assert err.value == nvml.NVML_ERROR_GPU_IS_LOST
    assert "GPU is lost" in str(err)
    exotic = nvml.NVMLError(777)
    assert "unknown error code 777" in str(exotic)
