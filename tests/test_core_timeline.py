"""Per-step timeline records in the energy profiler."""

import pytest

from repro.core import baseline_policy
from repro.sph import Simulation
from repro.systems import Cluster, mini_hpc


def test_timeline_one_record_per_step(mini_cluster):
    sim = Simulation(mini_cluster, "SubsonicTurbulence", 10e6)
    sim.run(4)
    assert len(sim.profiler.timeline) == 4
    for record in sim.profiler.timeline:
        assert "MomentumEnergy" in record
        t, j = record["MomentumEnergy"]
        assert t > 0 and j > 0


def test_timeline_sums_to_totals(mini_cluster):
    sim = Simulation(mini_cluster, "SubsonicTurbulence", 10e6)
    result = sim.run(3)
    total_gpu = sum(
        j for record in sim.profiler.timeline for (_, j) in record.values()
    )
    functions = result.report.aggregate_functions()
    expected = sum(rec.device_j["GPU"] for rec in functions.values())
    assert total_gpu == pytest.approx(expected, rel=1e-9)


def test_timeline_is_steady_for_model_workload(mini_cluster):
    """The model workload is stationary: per-step energy is constant."""
    sim = Simulation(
        mini_cluster, "SubsonicTurbulence", 10e6,
        policy=baseline_policy(1410),
    )
    sim.run(5)
    per_step = [
        sum(j for (_, j) in record.values())
        for record in sim.profiler.timeline
    ]
    assert max(per_step) - min(per_step) < 1e-6 * max(per_step)


def test_timeline_varies_under_online_tuning():
    """AutoDyn exploration makes early steps measurably different."""
    from repro.core import OnlineTuningPolicy

    cluster = Cluster(mini_hpc(), 1)
    try:
        policy = OnlineTuningPolicy(
            cluster.gpus, candidates_mhz=(1410.0, 1005.0),
            rounds_per_candidate=1,
        )
        sim = Simulation(
            cluster, "SubsonicTurbulence", 450**3, policy=policy
        )
        sim.run(4)
        per_step = [
            sum(j for (_, j) in record.values())
            for record in sim.profiler.timeline
        ]
        # Exploration steps (different clocks) differ; converged steps
        # settle.
        assert max(per_step) - min(per_step) > 1e-3 * max(per_step)
        assert per_step[-1] == pytest.approx(per_step[-2], rel=1e-6)
    finally:
        cluster.detach_management_library()
