"""Alert rules and engine, including the fault-injected firing paths."""

import dataclasses

import pytest

from repro.core import ManDynPolicy, ResilienceConfig
from repro.faults import FaultInjector, build_plan
from repro.hardware import (
    KernelLaunch,
    SimulatedGpu,
    ThermalSpec,
    VirtualClock,
    a100_pcie_40gb,
)
from repro.monitor import (
    Alert,
    AlertEngine,
    AlertRule,
    DeviceSampler,
    Monitor,
    MonitorConfig,
    default_rules,
    stalled_worker_alerts,
)
from repro.sph import run_instrumented
from repro.systems import Cluster, mini_hpc
from repro.telemetry import TRACK_FAULTS, TraceCollector


def _rule(**overrides):
    base = dict(name="r", series="s", op=">", threshold=1.0)
    base.update(overrides)
    return AlertRule(**base)


def test_rule_validation():
    with pytest.raises(ValueError):
        _rule(name="")
    with pytest.raises(ValueError):
        _rule(op="~")
    with pytest.raises(ValueError):
        _rule(for_s=-1.0)
    with pytest.raises(ValueError):
        _rule(mode="median")


def test_rule_describe_mentions_duration_and_rate():
    assert _rule(for_s=2.0).describe() == "s > 1 for 2s"
    assert _rule(mode="rate").describe() == "d(s)/dt > 1"


def test_engine_fires_immediately_without_for_duration():
    engine = AlertEngine([_rule()])
    fired = engine.observe(0, 1.0, {"s": 5.0})
    assert len(fired) == 1
    assert fired[0].t_fired_s == 1.0
    assert fired[0].value == 5.0
    # Still-true condition does not re-fire the active alert.
    assert engine.observe(0, 2.0, {"s": 5.0}) == []


def test_engine_for_duration_guards_blips():
    engine = AlertEngine([_rule(for_s=0.5)])
    assert engine.observe(0, 0.0, {"s": 5.0}) == []  # pending
    assert engine.observe(0, 0.2, {"s": 0.0}) == []  # blip resets
    assert engine.observe(0, 0.4, {"s": 5.0}) == []  # pending again
    fired = engine.observe(0, 0.9, {"s": 5.0})  # held 0.5s
    assert len(fired) == 1
    assert fired[0].t_start_s == 0.4


def test_engine_resolves_and_tracks_active():
    engine = AlertEngine([_rule()])
    engine.observe(0, 1.0, {"s": 5.0})
    assert engine.active_alerts
    engine.observe(0, 2.0, {"s": 0.0})
    assert not engine.active_alerts
    assert engine.alerts[0].t_resolved_s == 2.0


def test_engine_rate_mode():
    rule = _rule(mode="rate", threshold=10.0)
    engine = AlertEngine([rule])
    assert engine.observe(0, 0.0, {"s": 0.0}) == []  # needs two samples
    assert engine.observe(0, 1.0, {"s": 5.0}) == []  # 5/s, under
    fired = engine.observe(0, 2.0, {"s": 20.0})  # 15/s
    assert len(fired) == 1
    assert fired[0].value == pytest.approx(15.0)


def test_engine_per_rank_state_is_independent():
    engine = AlertEngine([_rule()])
    engine.observe(0, 1.0, {"s": 5.0})
    fired = engine.observe(1, 1.0, {"s": 5.0})
    assert len(fired) == 1 and fired[0].rank == 1
    assert len(engine.alerts) == 2


def test_engine_emits_fault_instants_and_counts():
    collector = TraceCollector()
    seen = []
    engine = AlertEngine(
        [_rule()], telemetry=collector,
        on_alert=lambda a, t: seen.append((a.rule.name, t)),
    )
    engine.observe(0, 1.0, {"s": 5.0})
    engine.observe(0, 2.0, {"s": 0.0})
    names = [e.name for e in collector.instants(TRACK_FAULTS)]
    assert names == ["alert-fired", "alert-resolved"]
    assert seen == [("r", "fired"), ("r", "resolved")]
    snap = collector.metrics.snapshot()
    assert snap["counters"]["alerts_fired{rule=r}"] == 1.0


def test_engine_rejects_duplicate_rule_names():
    with pytest.raises(ValueError):
        AlertEngine([_rule(), _rule()])


def test_default_rules_power_cap_needs_spec():
    names = {r.name for r in default_rules()}
    assert "power_cap_proximity" not in names
    names = {r.name for r in default_rules(gpu_spec=a100_pcie_40gb())}
    assert "power_cap_proximity" in names
    assert {"clock_throttle_detected", "sampler_gap",
            "clock_set_failures"} <= names


# -- fault-injected firing paths (acceptance criteria) ---------------------


def _hot_spec():
    """Constrained cooling: sustained full power must throttle."""
    base = a100_pcie_40gb()
    return dataclasses.replace(
        base,
        thermal=ThermalSpec(
            ambient_c=35.0,
            resistance_c_per_w=0.24,
            tau_s=5.0,
            throttle_temp_c=88.0,
        ),
    )


def test_clock_throttle_detected_fires_on_hot_device():
    spec = _hot_spec()
    clock = VirtualClock()
    gpu = SimulatedGpu(spec, clock)
    engine = AlertEngine(default_rules(gpu_spec=spec))
    sampler = DeviceSampler([gpu], [clock], period_s=0.5, alerts=engine)
    sampler.start()
    kernel = KernelLaunch(
        "Hot", flops=5e13, bytes_moved=0.0, power_intensity=1.0
    )
    for _ in range(20):  # ~100 s of sustained full power
        gpu.execute(kernel)
    sampler.stop()
    assert gpu.thermal_throttle_active
    fired = engine.fired("clock_throttle_detected")
    assert fired
    assert fired[0].rule.severity == "critical"


def test_sampler_gap_rule_fires_on_unobservable_interval():
    clock = VirtualClock()
    gpu = SimulatedGpu(a100_pcie_40gb(), clock)
    engine = AlertEngine(default_rules())
    sampler = DeviceSampler(
        [gpu], [clock], period_s=0.05, alerts=engine
    )
    sampler.start()
    # A wedged phase: one advance spanning many sampling periods.
    clock.advance(3.0)
    sampler.stop()
    assert engine.fired("sampler_gap")


def test_clock_set_failures_fires_under_flaky_clocks_scenario():
    plan = build_plan("flaky-clocks", seed=7, n_ranks=1)
    injector = FaultInjector(plan)
    collector = TraceCollector(max_events=50_000)
    monitor = Monitor(
        MonitorConfig(period_s=0.02), telemetry=collector
    )
    cluster = Cluster(mini_hpc(), 1)
    try:
        result = run_instrumented(
            cluster,
            "SedovBlast",
            50_000,
            6,
            policy=ManDynPolicy({"MomentumEnergy": 1410.0},
                                default_mhz=1005.0),
            telemetry=collector,
            resilience=ResilienceConfig(),
            faults=injector,
            monitor=monitor,
        )
    finally:
        cluster.detach_management_library()
    assert result.retries > 0  # the scenario actually bit
    fired = monitor.fired("clock_set_failures")
    assert fired
    # Alert instants landed on the telemetry faults track too.
    names = [e.name for e in collector.instants(TRACK_FAULTS)]
    assert "alert-fired" in names


# -- campaign worker stalls (heartbeat-judged) -----------------------------


def test_stalled_worker_alerts_flags_silent_busy_lanes():
    heartbeats = {
        "0": {"updated_s": 1000.0, "state": "running", "unit": "a"},
        "1": {"updated_s": 1190.0, "state": "running", "unit": "b"},
        "2": {"updated_s": 900.0, "state": "idle"},
    }
    alerts = stalled_worker_alerts(heartbeats, now_s=1200.0,
                                   stall_after_s=120.0)
    assert [a.rank for a in alerts] == [0]
    assert alerts[0].rule.name == "campaign_worker_stalled"
    assert alerts[0].value == pytest.approx(200.0)
    assert isinstance(alerts[0], Alert)


def test_stalled_worker_alerts_empty_heartbeats():
    assert stalled_worker_alerts({}, now_s=0.0) == []
