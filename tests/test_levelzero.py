"""Level Zero Sysman shim and the Intel future-work path."""

import pytest

from repro import levelzero
from repro.core import FrequencyController, ManDynPolicy, baseline_policy
from repro.hardware import (
    KernelLaunch,
    SimulatedGpu,
    VirtualClock,
    intel_max_1550,
)
from repro.pmt import PMT, create
from repro.sph import run_instrumented
from repro.systems import Cluster, aurora_pvc
from repro.units import mhz, to_mhz


@pytest.fixture
def pvc():
    clk = VirtualClock()
    gpus = [SimulatedGpu(intel_max_1550(), clk, index=i) for i in range(2)]
    levelzero.attach_devices(gpus)
    levelzero.zesInit()
    return gpus


def test_uninitialized_raises():
    levelzero.detach_devices()
    with pytest.raises(levelzero.LevelZeroError):
        levelzero.zesDeviceGetCount()


def test_enumeration_and_domains(pvc):
    assert levelzero.zesDeviceGetCount() == 2
    assert "Max 1550" in levelzero.zesDeviceGetName(0)
    domains = levelzero.zesDeviceEnumFrequencyDomains(0)
    assert levelzero.ZES_FREQ_DOMAIN_GPU in domains
    assert levelzero.ZES_FREQ_DOMAIN_MEMORY in domains


def test_available_clocks_ascending(pvc):
    clocks = levelzero.zesFrequencyGetAvailableClocks(
        0, levelzero.ZES_FREQ_DOMAIN_GPU
    )
    assert clocks == sorted(clocks)
    assert clocks[0] == 900.0 and clocks[-1] == 1600.0


def test_set_range_pins_clock(pvc):
    levelzero.zesFrequencySetRange(
        0, levelzero.ZES_FREQ_DOMAIN_GPU, 1200.0, 1200.0
    )
    state = levelzero.zesFrequencyGetState(0, levelzero.ZES_FREQ_DOMAIN_GPU)
    assert state.actual == 1200.0
    assert levelzero.zesFrequencyGetRange(
        0, levelzero.ZES_FREQ_DOMAIN_GPU
    ) == (1200.0, 1200.0)


def test_full_range_restores_governor(pvc):
    levelzero.zesFrequencySetRange(
        0, levelzero.ZES_FREQ_DOMAIN_GPU, 1100.0, 1100.0
    )
    levelzero.zesFrequencySetRange(
        0, levelzero.ZES_FREQ_DOMAIN_GPU, 900.0, 1600.0
    )
    assert pvc[0].dvfs_active


def test_invalid_range_rejected(pvc):
    with pytest.raises(levelzero.LevelZeroError):
        levelzero.zesFrequencySetRange(
            0, levelzero.ZES_FREQ_DOMAIN_GPU, 1400.0, 1200.0
        )
    with pytest.raises(levelzero.LevelZeroError):
        levelzero.zesFrequencySetRange(
            0, levelzero.ZES_FREQ_DOMAIN_MEMORY, 1000.0, 1000.0
        )


def test_energy_counter_microjoules(pvc):
    pvc[0].execute(KernelLaunch("K", 1e13, 0.0, 1.0))
    counter = levelzero.zesPowerGetEnergyCounter(0)
    assert counter.energy_uj == pytest.approx(pvc[0].energy_j * 1e6, rel=1e-6)
    assert counter.timestamp_us == pytest.approx(
        pvc[0].clock.now * 1e6, abs=1.0
    )


def test_pmt_levelzero_backend(pvc):
    sensor = create("levelzero", device_index=0)
    begin = sensor.read()
    pvc[0].execute(KernelLaunch("K", 1e13, 0.0, 1.0))
    end = sensor.read()
    assert PMT.joules(begin, end) == pytest.approx(pvc[0].energy_j, rel=1e-3)
    assert PMT.watts(begin, end) > 0


def test_controller_drives_intel_devices(pvc):
    policy = ManDynPolicy({"MomentumEnergy": 1600.0}, default_mhz=1000.0)
    ctl = FrequencyController(pvc, policy)
    ctl.apply_initial_mode()
    assert to_mhz(pvc[0].application_clock_hz) == 1000.0
    ctl.before_function("MomentumEnergy", 0)
    assert to_mhz(pvc[0].application_clock_hz) == 1600.0
    ctl.before_function("XMass", 0)
    assert to_mhz(pvc[0].application_clock_hz) == 1000.0


def test_aurora_cluster_end_to_end():
    cluster = Cluster(aurora_pvc(), 6)
    try:
        base = run_instrumented(
            cluster, "SubsonicTurbulence", 20e6, 2,
            policy=baseline_policy(1600.0),
        )
        assert base.gpu_energy_j > 0
    finally:
        cluster.detach_management_library()

    cluster2 = Cluster(aurora_pvc(), 6)
    try:
        mandyn = run_instrumented(
            cluster2, "SubsonicTurbulence", 20e6, 2,
            policy=ManDynPolicy(
                {"MomentumEnergy": 1600.0, "IADVelocityDivCurl": 1600.0},
                default_mhz=1000.0,
            ),
        )
    finally:
        cluster2.detach_management_library()
    # The method carries over to Intel: energy down, small time cost.
    assert mandyn.gpu_energy_j < base.gpu_energy_j
    assert mandyn.elapsed_s < 1.06 * base.elapsed_s
