"""Integration: the paper's qualitative results emerge from the models.

Each test corresponds to a figure/claim in DESIGN.md §4's shape-target
list. The benchmarks print the full tables; these tests pin the shapes
so regressions in the calibration are caught in CI.
"""

import numpy as np
import pytest

from repro.core import (
    DvfsPolicy,
    ManDynPolicy,
    StaticFrequencyPolicy,
    baseline_policy,
    function_share_percent,
    per_function_metrics,
)
from repro.slurm import JobSpec, SlurmController
from repro.sph import run_instrumented
from repro.systems import Cluster, cscs_a100, lumi_g, mini_hpc
from repro.tuner import tune_all_sph_functions

N_450 = 450**3  # 91.1M particles, the paper's miniHPC problem size
STEPS = 4


def _run(system, n_ranks, workload, n_per_rank, policy=None, steps=STEPS):
    cluster = Cluster(system, n_ranks)
    try:
        return run_instrumented(
            cluster, workload, n_per_rank, steps, policy=policy
        )
    finally:
        cluster.detach_management_library()


@pytest.fixture(scope="module")
def policy_runs():
    """Baseline / static-1005 / ManDyn / DVFS runs on miniHPC."""
    runs = {}
    runs["baseline"] = _run(
        mini_hpc(), 1, "SubsonicTurbulence", N_450, baseline_policy(1410)
    )
    runs["static1005"] = _run(
        mini_hpc(), 1, "SubsonicTurbulence", N_450, StaticFrequencyPolicy(1005)
    )
    runs["mandyn"] = _run(
        mini_hpc(), 1, "SubsonicTurbulence", N_450,
        ManDynPolicy(
            {"MomentumEnergy": 1410.0, "IADVelocityDivCurl": 1410.0},
            default_mhz=1005.0,
        ),
    )
    runs["dvfs"] = _run(
        mini_hpc(), 1, "SubsonicTurbulence", N_450, DvfsPolicy()
    )
    return runs


# ---------------------------------------------------------------------------
# Fig. 7: static vs DVFS vs ManDyn
# ---------------------------------------------------------------------------


def test_fig7_static_downscaling_tradeoff(policy_runs):
    base = policy_runs["baseline"]
    static = policy_runs["static1005"]
    t = static.elapsed_s / base.elapsed_s
    e = static.gpu_energy_j / base.gpu_energy_j
    # Paper: noticeable slowdown, significant energy cut, EDP slightly
    # below 1.0 (~0.975 at 1005 MHz).
    assert 1.12 < t < 1.30
    assert 0.72 < e < 0.88
    assert 0.93 < t * e < 1.0


def test_fig7_mandyn_headline_numbers(policy_runs):
    base = policy_runs["baseline"]
    mandyn = policy_runs["mandyn"]
    t = mandyn.elapsed_s / base.elapsed_s
    e = mandyn.gpu_energy_j / base.gpu_energy_j
    # Paper: performance loss <= 2.95 %, energy down up to 7.82 %,
    # EDP down ~4-5 %.
    assert 1.0 < t < 1.0295 + 0.01
    assert 0.90 <= e <= 0.95
    assert t * e < 0.97


def test_fig7_mandyn_beats_static_time(policy_runs):
    static = policy_runs["static1005"]
    mandyn = policy_runs["mandyn"]
    gain = 1.0 - mandyn.elapsed_s / static.elapsed_s
    # Paper: "a 16% decrease in time-to-solution" vs static 1005.
    assert 0.08 < gain < 0.22
    # While keeping energy in the same band (ManDyn trades a little
    # energy back for the 1410 MHz compute kernels).
    assert mandyn.gpu_energy_j < 1.2 * static.gpu_energy_j


def test_fig7_dvfs_no_faster_but_more_energy(policy_runs):
    base = policy_runs["baseline"]
    dvfs = policy_runs["dvfs"]
    t = dvfs.elapsed_s / base.elapsed_s
    e = dvfs.gpu_energy_j / base.gpu_energy_j
    # Paper: DVFS time ~ baseline; energy above baseline.
    assert 0.99 < t < 1.05
    assert e > 1.0


# ---------------------------------------------------------------------------
# Fig. 8: per-function static scaling
# ---------------------------------------------------------------------------


def test_fig8_per_function_ratios(policy_runs):
    base = per_function_metrics(policy_runs["baseline"].report)
    static = per_function_metrics(policy_runs["static1005"].report)

    def ratios(fn):
        return (
            static[fn].time_s / base[fn].time_s,
            static[fn].energy_j / base[fn].energy_j,
        )

    t_mom, e_mom = ratios("MomentumEnergy")
    assert t_mom > 1.20  # paper: "more than 20%"
    assert 0.82 < e_mom < 0.92  # paper: energy reduction ~13 %
    t_iad, e_iad = ratios("IADVelocityDivCurl")
    assert t_iad > 1.20
    assert 0.76 < e_iad < 0.90  # paper: ~19 %
    # All light functions gain at least 10 % EDP (paper claim).
    for fn in ("XMass", "NormalizationGradh", "DomainDecompAndSync",
               "FindNeighbors", "UpdateQuantities"):
        t, e = ratios(fn)
        assert t * e < 0.90, fn


# ---------------------------------------------------------------------------
# Fig. 2: tuner sweet spots
# ---------------------------------------------------------------------------


def test_fig2_tuned_frequencies_by_kernel_class():
    cluster = Cluster(mini_hpc(), 1)
    try:
        freqs = [1410 - 15 * k for k in range(0, 28, 3)]
        best = tune_all_sph_functions(
            cluster.gpus[0], N_450, freqs, iterations=1
        )
        assert best["MomentumEnergy"] == 1410.0
        # IAD sits at or just below the max clock (paper Fig. 9: "above
        # 1350 MHz for IADVelocityDivCurl").
        assert best["IADVelocityDivCurl"] >= 1350.0
        for light in ("XMass", "NormalizationGradh", "EquationOfState",
                      "DomainDecompAndSync", "Timestep"):
            assert best[light] <= 1110.0, light
    finally:
        cluster.detach_management_library()


# ---------------------------------------------------------------------------
# Fig. 6: EDP vs problem size
# ---------------------------------------------------------------------------


def test_fig6_underutilized_gpu_has_interior_edp_optimum():
    sizes = {"450^3": 450**3, "200^3": 200**3}
    freqs = [1410, 1305, 1200, 1110, 1005]
    edp = {}
    for label, n in sizes.items():
        series = {}
        for f in freqs:
            run = _run(
                mini_hpc(), 1, "SubsonicTurbulence", n,
                StaticFrequencyPolicy(f), steps=2,
            )
            series[f] = run.edp
        base = series[1410]
        edp[label] = {f: v / base for f, v in series.items()}
    # Large problem: down-scaling reduces EDP, bottoming out near 1005.
    large = edp["450^3"]
    assert large[1005] < large[1200] < large[1410]
    assert large[1005] <= large[1110] + 0.005
    # Small problem: the EDP drop is much deeper (paper: "EDP drops
    # significantly when the GPUs are not fully utilized"), and a
    # moderate clock like 1110 MHz already captures almost all of it.
    small = edp["200^3"]
    assert min(small.values()) < min(large.values()) - 0.03
    assert small[1110] < small[1410]
    assert small[1110] <= min(small.values()) + 0.03


# ---------------------------------------------------------------------------
# Figs. 4-5: device and function energy breakdowns
# ---------------------------------------------------------------------------


def test_fig4_gpu_dominates_energy():
    cluster = Cluster(cscs_a100(), 4)
    try:
        run_instrumented(cluster, "SubsonicTurbulence", 150e6, 2)
        breakdown = cluster.device_energy_breakdown_j()
        total = sum(breakdown.values())
        gpu_pct = breakdown["GPU"] / total * 100.0
        # Paper: 76.4 % on CSCS-A100.
        assert 65.0 < gpu_pct < 85.0
        # "Other" is the second-largest slice.
        rest = {k: v for k, v in breakdown.items() if k != "GPU"}
        assert max(rest, key=rest.get) == "Other"
    finally:
        cluster.detach_management_library()


def test_fig5_momentum_energy_share_larger_on_amd():
    res_cscs = _run(cscs_a100(), 4, "SubsonicTurbulence", 150e6, steps=2)
    res_lumi = _run(lumi_g(), 8, "SubsonicTurbulence", 150e6, steps=2)
    share_cscs = function_share_percent(res_cscs.report, "GPU")[
        "MomentumEnergy"
    ]
    share_lumi = function_share_percent(res_lumi.report, "GPU")[
        "MomentumEnergy"
    ]
    # Paper: 25.29 % on CSCS-A100 vs 45.80 % on LUMI-G.
    assert share_lumi > share_cscs + 10.0
    assert share_lumi > 40.0


def test_fig5_evrard_adds_gravity_slice():
    res = _run(cscs_a100(), 4, "EvrardCollapse", 80e6, steps=2)
    shares = function_share_percent(res.report, "GPU")
    assert shares.get("Gravity", 0.0) > 5.0


# ---------------------------------------------------------------------------
# Fig. 3: PMT vs Slurm
# ---------------------------------------------------------------------------


def test_fig3_pmt_below_slurm_by_setup_energy():
    cluster = Cluster(cscs_a100(), 8)
    try:
        controller = SlurmController()
        controller.accounting.enable_energy_accounting()

        results = {}

        def app(cl, job):
            res = run_instrumented(cl, "SubsonicTurbulence", 150e6, 2)
            results["run"] = res
            return res

        job = controller.submit(
            JobSpec(name="turb", n_nodes=2, n_tasks=8), cluster, app
        )
        pmt_j = results["run"].report.total_j()
        slurm_j = job.consumed_energy_j
        # PMT (time-loop window) reads less than Slurm (job window)...
        assert pmt_j < slurm_j
        # ...but within a few percent: setup energy is small because the
        # GPUs idle through it (paper section IV-A).
        assert pmt_j > 0.80 * slurm_j
    finally:
        cluster.detach_management_library()


# ---------------------------------------------------------------------------
# Fig. 9: DVFS frequency trace
# ---------------------------------------------------------------------------


def test_fig9_dvfs_trace_structure():
    cluster = Cluster(mini_hpc(), 1)
    try:
        from repro.sph import Simulation

        sim = Simulation(
            cluster, "SubsonicTurbulence", N_450, policy=DvfsPolicy()
        )
        sim.initialize()
        gpu = cluster.gpus[0]
        gpu.start_frequency_trace()

        # Trace per-function clock levels over one step.
        seen = {}
        orig_before = sim.hooks.fire_before

        def probe_before(fn, rank):
            orig_before(fn, rank)

        sim.profiler.open_window()
        for fn in sim.functions:
            sim._run_function(fn)
            seen[fn.name] = gpu.current_clock_hz / 1e6
        sim.profiler.close_window()
        trace = gpu.stop_frequency_trace()

        assert seen["MomentumEnergy"] == 1410.0  # boosts to max
        assert seen["IADVelocityDivCurl"] > 1350.0
        assert 1100.0 <= seen["DomainDecompAndSync"] <= 1300.0
        # End-of-step communication dips the clock below 1000 MHz.
        assert seen["Timestep"] < 1000.0 or seen["UpdateQuantities"] < 1410.0
        freqs = [f / 1e6 for _, f in trace]
        assert max(freqs) == 1410.0
        assert min(freqs) < 1000.0
    finally:
        cluster.detach_management_library()
