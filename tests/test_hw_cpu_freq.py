"""CPU frequency scaling (--cpu-freq substrate)."""

import pytest

from repro.hardware import KernelLaunch, SimulatedCpu, VirtualClock, epyc_7713
from repro.slurm import JobSpec, SlurmController
from repro.sph import run_instrumented
from repro.systems import Cluster, cscs_a100


def test_cpu_clock_clamping():
    clk = VirtualClock()
    cpu = SimulatedCpu(epyc_7713(), clk)
    assert cpu.frequency_khz == cpu.spec.nominal_freq_khz
    assert cpu.set_frequency_khz(1_800_000) == 1_800_000
    assert cpu.set_frequency_khz(100) == cpu.spec.min_freq_khz
    assert cpu.set_frequency_khz(9_999_999) == cpu.spec.nominal_freq_khz


def test_downclocking_reduces_cpu_power():
    clk = VirtualClock()
    cpu = SimulatedCpu(epyc_7713(), clk)
    p_nominal = cpu.power_w()
    cpu.set_frequency_khz(1_500_000)
    assert cpu.power_w() < p_nominal
    # Dynamic power shrinks superlinearly, idle sublinearly.
    cpu.set_activity(0.9)
    p_low_active = cpu.power_w()
    cpu.set_frequency_khz(cpu.spec.nominal_freq_khz)
    assert cpu.power_w() > p_low_active


def test_slowdown_factor():
    clk = VirtualClock()
    cpu = SimulatedCpu(epyc_7713(), clk)
    assert cpu.slowdown_factor == pytest.approx(1.0)
    cpu.set_frequency_khz(cpu.spec.nominal_freq_khz // 2)
    assert cpu.slowdown_factor == pytest.approx(
        cpu.spec.nominal_freq_khz / cpu.frequency_khz
    )
    assert cpu.slowdown_factor > 1.0


def test_cpu_freq_applies_through_slurm():
    cluster = Cluster(cscs_a100(), 4)
    controller = SlurmController()

    def app(cl, job):
        cl.gpus[0].execute(KernelLaunch("K", 1e11, 0.0, 1.0))
        cl.comm.barrier()
        return None

    try:
        controller.submit(
            JobSpec(name="cf", n_nodes=1, n_tasks=4, cpu_freq_khz=1_800_000),
            cluster,
            app,
        )
        assert cluster.nodes[0].cpu.frequency_khz == 1_800_000
    finally:
        cluster.detach_management_library()


def test_cpu_downclock_slows_host_phases_only():
    def run(freq_khz):
        cluster = Cluster(cscs_a100(), 4)
        try:
            if freq_khz:
                cluster.apply_cpu_frequency_khz(freq_khz)
            return run_instrumented(
                cluster, "SubsonicTurbulence", 150e6, 2
            )
        finally:
            cluster.detach_management_library()

    base = run(None)
    slow = run(1_500_000)
    # Host phases (Timestep tail) slow by the clock ratio; the GPU
    # phases are untouched, so the total moves by far less.
    assert slow.elapsed_s > base.elapsed_s
    assert slow.elapsed_s < 1.05 * base.elapsed_s
    assert slow.gpu_energy_j == pytest.approx(base.gpu_energy_j, rel=0.02)
