"""Initial conditions (turbulence, Evrard) and observables."""

import numpy as np
import pytest

from repro.sph import find_neighbors, default_kernel
from repro.sph.eos import IdealGasEOS
from repro.sph.init import (
    EvrardConfig,
    TurbulenceConfig,
    TurbulenceDriver,
    make_evrard,
    make_turbulence,
)
from repro.sph.observables import (
    density_contrast,
    energy_budget,
    half_mass_radius,
    rms_mach,
)
from repro.sph.physics import GravityConfig, compute_density_gradh, compute_xmass


def test_turbulence_particle_count_and_box():
    cfg = TurbulenceConfig(nside=8)
    p = make_turbulence(cfg)
    assert p.n == 512 == cfg.n_particles
    assert np.all((0 <= p.x) & (p.x < 1.0))
    assert np.all((0 <= p.y) & (p.y < 1.0))
    assert np.all((0 <= p.z) & (p.z < 1.0))


def test_turbulence_mass_and_mach():
    cfg = TurbulenceConfig(nside=8, mach_rms=0.3)
    p = make_turbulence(cfg)
    assert p.total_mass() == pytest.approx(1.0)
    v2 = p.vx**2 + p.vy**2 + p.vz**2
    rms = np.sqrt(v2.mean())
    assert rms == pytest.approx(0.3 * cfg.sound_speed, rel=1e-6)


def test_turbulence_velocity_field_near_solenoidal_and_zero_mean():
    p = make_turbulence(TurbulenceConfig(nside=10, seed=3))
    assert abs(p.vx.mean()) < 1e-12
    assert abs(p.vy.mean()) < 1e-12
    assert abs(p.vz.mean()) < 1e-12


def test_turbulence_deterministic_by_seed():
    a = make_turbulence(TurbulenceConfig(nside=6, seed=5))
    b = make_turbulence(TurbulenceConfig(nside=6, seed=5))
    c = make_turbulence(TurbulenceConfig(nside=6, seed=6))
    assert np.array_equal(a.x, b.x) and np.array_equal(a.vx, b.vx)
    assert not np.array_equal(a.vx, c.vx)


def test_turbulence_internal_energy_matches_sound_speed():
    cfg = TurbulenceConfig(nside=6)
    p = make_turbulence(cfg)
    g = cfg.gamma
    c2 = g * (g - 1.0) * p.u
    assert np.allclose(np.sqrt(c2), cfg.sound_speed)


def test_turbulence_driver_is_deterministic_and_solenoidal_scale():
    cfg = TurbulenceConfig(nside=6, seed=2)
    p = make_turbulence(cfg)
    driver = TurbulenceDriver(cfg, amplitude=0.5)
    a1 = driver.acceleration(p)
    a2 = driver.acceleration(p)
    assert np.allclose(a1, a2)
    rms = np.sqrt(np.mean(np.sum(a1 * a1, axis=1)))
    assert rms == pytest.approx(0.5 * cfg.sound_speed, rel=1e-6)


def test_evrard_density_profile_is_one_over_r():
    cfg = EvrardConfig(n_particles=6000, seed=9)
    p = make_evrard(cfg)
    r = np.sqrt(p.x**2 + p.y**2 + p.z**2)
    assert r.max() <= cfg.radius + 1e-12
    # Enclosed mass M(<r) = M (r/R)^2 for rho ~ 1/r.
    for frac in (0.3, 0.5, 0.8):
        enclosed = p.m[r < frac * cfg.radius].sum()
        assert enclosed == pytest.approx(
            cfg.total_mass * frac**2, rel=0.05
        )


def test_evrard_is_cold_and_at_rest():
    cfg = EvrardConfig(n_particles=500)
    p = make_evrard(cfg)
    assert np.allclose(p.u, 0.05)
    assert p.kinetic_energy() == 0.0


def test_evrard_smoothing_lengths_grow_with_radius():
    p = make_evrard(EvrardConfig(n_particles=4000, seed=1))
    r = np.sqrt(p.x**2 + p.y**2 + p.z**2)
    inner = p.h[r < 0.3].mean()
    outer = p.h[r > 0.7].mean()
    assert outer > inner  # lower density outside -> larger h


def test_energy_budget_components():
    p = make_evrard(EvrardConfig(n_particles=300, seed=2))
    budget = energy_budget(p, GravityConfig(softening=0.01))
    assert budget.kinetic == 0.0
    assert budget.internal == pytest.approx(0.05, rel=1e-9)
    assert budget.potential < 0
    assert budget.total == pytest.approx(
        budget.kinetic + budget.internal + budget.potential
    )


def test_rms_mach_requires_sound_speed():
    p = make_turbulence(TurbulenceConfig(nside=6))
    with pytest.raises(ValueError):
        rms_mach(p)
    nlist = find_neighbors(p, box_size=1.0)
    kernel = default_kernel()
    compute_xmass(p, nlist, kernel, 1.0)
    compute_density_gradh(p, nlist, kernel, 1.0)
    IdealGasEOS().apply(p)
    m = rms_mach(p)
    assert 0.2 < m < 0.4


def test_density_contrast_and_half_mass_radius():
    p = make_evrard(EvrardConfig(n_particles=3000, seed=3))
    nlist = find_neighbors(p)
    kernel = default_kernel()
    compute_xmass(p, nlist, kernel)
    compute_density_gradh(p, nlist, kernel)
    assert density_contrast(p) > 1.5  # centrally concentrated
    rh = half_mass_radius(p)
    # M(<r) = M r^2 -> half mass at r = 1/sqrt(2).
    assert rh == pytest.approx(1.0 / np.sqrt(2.0), rel=0.05)
