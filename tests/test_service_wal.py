"""Service durability: the job-table WAL and restart recovery.

Unit tests pin :mod:`repro.service.wal` record folding and torn-tail
semantics; the scenario tests exercise the acceptance bar from the
robustness issue — a ``repro serve`` restarted mid-campaign replays
its WAL and keeps serving status/report for pre-restart campaign ids,
and a draining service refuses new submissions with a 503.
"""

import asyncio
import json

import pytest

from repro.service import CampaignService, ServiceConfig, serve
from repro.service.service import ServiceUnavailable
from repro.service.wal import JOB_WAL_NAME, JobWal, replay_wal
from tests.test_service_http import (
    poll_until_terminal,
    request,
    request_json,
    spec_doc,
)

# ---------------------------------------------------------------------------
# WAL record folding
# ---------------------------------------------------------------------------


def _wal(tmp_path):
    return JobWal(str(tmp_path / JOB_WAL_NAME))


def test_append_and_replay_round_trip(tmp_path):
    wal = _wal(tmp_path)
    wal.record_submit("c-1", "alice", {"name": "s"})
    wal.record_state("c-1", "running")
    wal.record_state("c-1", "done")

    lines = wal.path.read_text().splitlines()
    assert json.loads(lines[0])["kind"] == "service-job-wal"
    assert len(lines) == 4  # header + three records

    jobs = wal.replay()
    assert set(jobs) == {"c-1"}
    job = jobs["c-1"]
    assert job.tenant == "alice"
    assert job.spec == {"name": "s"}
    assert job.state == "done"
    assert job.history == ["queued", "running", "done"]
    assert job.submissions == 1


def test_duplicate_submit_counts_submissions(tmp_path):
    wal = _wal(tmp_path)
    wal.record_submit("c-1", "alice", {})
    wal.record_state("c-1", "done")
    wal.record_submit("c-1", "alice", {})  # resubmission, same id
    job = wal.replay()["c-1"]
    assert job.submissions == 2
    assert job.state == "done"


def test_orphan_state_and_unknown_ops_are_skipped():
    jobs = replay_wal([
        {"op": "state", "id": "c-ghost", "state": "done", "t_s": 1.0},
        {"op": "vacuum", "id": "c-1", "t_s": 1.0},
        {"op": "state", "state": "done", "t_s": 1.0},  # no id at all
    ])
    assert jobs == {}


def test_torn_tail_dropped_and_truncated(tmp_path):
    wal = _wal(tmp_path)
    wal.record_submit("c-1", "alice", {})
    wal.record_state("c-1", "running")
    with open(wal.path, "a", encoding="utf-8") as fh:
        fh.write('{"op": "state", "id": "c-1", "sta')  # crash mid-append

    with pytest.warns(RuntimeWarning, match="torn final WAL line"):
        records = wal.read_records()
    assert [r["op"] for r in records] == ["submit", "state"]

    # The torn bytes are gone: the next append starts a clean line and
    # a subsequent replay needs no warning.
    wal.record_state("c-1", "done")
    assert wal.replay()["c-1"].state == "done"


def test_corrupt_interior_line_is_fatal(tmp_path):
    wal = _wal(tmp_path)
    wal.record_submit("c-1", "alice", {})
    wal.record_state("c-1", "done")
    lines = wal.path.read_text().splitlines()
    lines[1] = "{corrupt"  # not the tail: a later valid line follows
    wal.path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="not valid JSON"):
        wal.read_records()


def test_bad_header_is_fatal(tmp_path):
    wal = _wal(tmp_path)
    wal.path.write_text('{"schema": 1, "kind": "not-a-wal"}\n')
    with pytest.raises(ValueError):
        wal.read_records()


def test_missing_file_replays_empty(tmp_path):
    wal = _wal(tmp_path)
    assert wal.read_records() == []
    assert wal.replay() == {}


# ---------------------------------------------------------------------------
# restart recovery and graceful drain, over the real HTTP front end
# ---------------------------------------------------------------------------


def test_restarted_service_serves_pre_restart_campaigns(tmp_path):
    """Kill the control plane between submissions: the successor on the
    same root must answer status/events/report for the old campaign id
    instead of 404ing it."""
    root = str(tmp_path / "service-root")

    async def main():
        service = CampaignService(ServiceConfig(root=root))
        server = await serve(service, port=0)
        status, _, doc = await request_json(
            server, "POST", "/campaigns", body=spec_doc()
        )
        assert status in (201, 202)
        cid = doc["id"]
        await poll_until_terminal(server, cid)
        await server.close()
        await service.close()

        # Second life: fresh process-equivalent on the same root.
        reborn = CampaignService(ServiceConfig(root=root))
        server2 = await serve(reborn, port=0)
        try:
            assert cid in reborn.recovered_ids

            status, _, doc = await request_json(
                server2, "GET", f"/campaigns/{cid}"
            )
            assert status == 200
            assert doc["state"] == "done"
            assert doc["recovered"] is True

            status, _, text = await request(
                server2, "GET", f"/campaigns/{cid}/events?from=0"
            )
            assert status == 200
            assert "event:" in text

            status, _, report = await request_json(
                server2, "GET", f"/campaigns/{cid}/report"
            )
            assert status == 200
            assert report["kind"] == "campaign-summary"
            assert report["n_runs"] >= 1
        finally:
            await server2.close()
            await reborn.close()

    asyncio.run(asyncio.wait_for(main(), timeout=120))


def test_restart_resumes_job_recorded_as_running(tmp_path):
    """A WAL whose last word on a job is 'running' (the terminal
    transition never hit the disk) means the job was in flight when the
    process died: the successor resubmits it, and the run store makes
    the re-drain incremental (all units cached, none re-executed)."""
    root = tmp_path / "service-root"

    async def main():
        service = CampaignService(ServiceConfig(root=str(root)))
        await service.start()
        job, _ = service.submit("alice", spec_doc())
        while not job.terminal:
            await asyncio.sleep(0.02)
        assert job.state == "done"
        await service.close()

        # Rewrite history: drop the terminal transition, as if the
        # crash landed between the last unit and the 'done' append.
        wal_path = root / "tenants" / "alice" / JOB_WAL_NAME
        kept = [
            line
            for line in wal_path.read_text().splitlines()
            if json.loads(line).get("state") != "done"
        ]
        wal_path.write_text("\n".join(kept) + "\n")

        reborn = CampaignService(ServiceConfig(root=str(root)))
        await reborn.start()
        try:
            assert job.id in reborn.recovered_ids
            revived = reborn.job(job.id)
            while not revived.terminal:
                await asyncio.sleep(0.02)
            assert revived.state == "done"
            drain = revived.status_doc()["drain"]
            assert drain["executed"] == 0
            assert drain["cached"] == len(job.grid_keys)
        finally:
            await reborn.close()

    asyncio.run(asyncio.wait_for(main(), timeout=120))


def test_draining_service_refuses_submissions(tmp_path):
    async def main():
        service = CampaignService(
            ServiceConfig(root=str(tmp_path / "service-root"))
        )
        server = await serve(service, port=0)
        try:
            service.begin_shutdown()

            status, _, doc = await request_json(server, "GET", "/healthz")
            assert status == 200
            assert doc["status"] == "draining"
            assert doc["draining"] is True

            status, headers, doc = await request_json(
                server, "POST", "/campaigns", body=spec_doc()
            )
            assert status == 503
            assert "retry-after" in headers
            assert "shutting down" in doc["error"]

            with pytest.raises(ServiceUnavailable):
                service.submit("alice", spec_doc())
        finally:
            await server.close()
            await service.close()

    asyncio.run(asyncio.wait_for(main(), timeout=60))
