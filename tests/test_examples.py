"""Smoke tests: every shipped example runs end to end.

Examples are executed in-process with small command-line arguments so
the whole set stays fast; each must exit cleanly and print its
signature output.
"""

import os
import runpy
import sys

import pytest

from repro import levelzero, nvml, rocm

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)


@pytest.fixture(autouse=True)
def clean(monkeypatch, capsys):
    yield
    nvml.detach_devices()
    rocm.detach_devices()
    levelzero.detach_devices()


def _run_example(monkeypatch, capsys, name, argv=()):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    monkeypatch.setattr(sys, "argv", [path, *argv])
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = _run_example(monkeypatch, capsys, "quickstart")
    assert "ManDyn" in out
    assert "GPU energy saved" in out


def test_subsonic_turbulence(monkeypatch, capsys):
    out = _run_example(
        monkeypatch, capsys, "subsonic_turbulence", ["8", "3"]
    )
    assert "Mach" in out
    assert "GPU energy share per SPH-EXA function" in out


def test_evrard_collapse(monkeypatch, capsys):
    out = _run_example(monkeypatch, capsys, "evrard_collapse", ["800", "5"])
    assert "collapse is underway" in out
    assert "Gravity" in out


def test_sedov_blast(monkeypatch, capsys):
    out = _run_example(monkeypatch, capsys, "sedov_blast", ["8", "4"])
    assert "R_analytic" in out


def test_energy_report(monkeypatch, capsys, tmp_path):
    monkeypatch.chdir(tmp_path)  # the example writes a JSON artifact
    out = _run_example(monkeypatch, capsys, "energy_report")
    assert "sacct output" in out
    assert "pm_counters" in out
    assert (tmp_path / "energy_report.json").exists()


def test_trace_run(monkeypatch, capsys, tmp_path):
    monkeypatch.chdir(tmp_path)  # the example writes trace_run.json
    out = _run_example(monkeypatch, capsys, "trace_run", ["2", "2"])
    assert "Chrome trace written to trace_run.json" in out
    assert "trace vs EnergyReport reconciliation" in out
    assert (tmp_path / "trace_run.json").exists()


def test_examples_directory_complete():
    shipped = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert {
        "quickstart.py",
        "subsonic_turbulence.py",
        "evrard_collapse.py",
        "sedov_blast.py",
        "energy_report.py",
        "tune_frequencies.py",
        "autodyn_two_run.py",
        "trace_run.py",
        "fault_injection.py",
        "campaign_run.py",
    } <= shipped


def test_fault_injection(monkeypatch, capsys):
    out = _run_example(
        monkeypatch, capsys, "fault_injection", ["2", "4", "20240"]
    )
    assert "degraded ranks: [0]" in out
    assert "faults injected" in out
    assert "telemetry faults track" in out


def test_campaign_run(monkeypatch, capsys, tmp_path):
    cdir = str(tmp_path / "fig7")
    out = _run_example(monkeypatch, capsys, "campaign_run", [cdir, "1"])
    assert "7 units: 0 cached (skipped), 7 executed" in out
    assert "EDP ranking (best first): mandyn" in out
    # Second invocation resumes: every unit cached.
    out = _run_example(monkeypatch, capsys, "campaign_run", [cdir, "1"])
    assert "7 cached (skipped), 0 executed" in out
