"""Reporting helpers, the Fig.-1 language model, and unit utilities."""

import numpy as np
import pytest

from repro.langbench import (
    LANGUAGE_PROFILES,
    efficiency_table,
    language_efficiency,
    nbody_reference_work,
)
from repro.reporting import (
    read_csv,
    read_json,
    render_breakdown,
    render_series,
    render_table,
    write_csv,
    write_json,
)
from repro.units import (
    format_energy,
    format_frequency,
    format_time,
    megajoules,
    mhz,
    to_mhz,
)


def test_render_table_alignment():
    out = render_table(
        ["name", "value"], [["a", 1.0], ["bbbb", 123456.0]], title="T"
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_render_table_row_width_mismatch():
    with pytest.raises(ValueError):
        render_table(["a"], [[1, 2]])


def test_render_series_merges_x():
    out = render_series(
        {"s1": {1: 10.0}, "s2": {1: 20.0, 2: 30.0}}, x_label="n"
    )
    assert "s1" in out and "s2" in out
    assert out.splitlines()[-1].startswith("2")


def test_render_breakdown_sorted():
    out = render_breakdown({"CPU": 10.0, "GPU": 75.0, "Other": 15.0})
    lines = out.splitlines()
    assert lines[2].startswith("GPU")


def test_csv_json_roundtrip(tmp_path):
    csv_path = str(tmp_path / "t.csv")
    write_csv(csv_path, ["a", "b"], [[1, 2], [3, 4]])
    rows = read_csv(csv_path)
    assert rows[1]["b"] == "4"
    json_path = str(tmp_path / "t.json")
    write_json(json_path, {"x": [1, 2]})
    assert read_json(json_path) == {"x": [1, 2]}


def test_nbody_reference_work_positive_and_scales():
    small = nbody_reference_work(n_bodies=64, steps=2)
    large = nbody_reference_work(n_bodies=128, steps=2)
    assert large > 3.5 * small  # ~quadratic in N


def test_language_efficiency_fig1_shape():
    work = 1e18  # a production-sized N-body run
    results = language_efficiency(work)
    by_name = {r.language: r for r in results}
    cuda = by_name["CUDA"]
    cpp = by_name["C++"]
    python = by_name["Python (pure)"]
    # CUDA is roughly an order of magnitude more energy-efficient than
    # C++ (paper Fig. 1 / Portegies Zwart 2020).
    assert 5.0 < cpp.energy_j / cuda.energy_j < 50.0
    # Interpreted Python is far worse than everything compiled.
    assert python.energy_j > 20.0 * cpp.energy_j
    assert python.time_s > cpp.time_s
    # Faster usually correlates with greener here.
    assert cuda.time_s < cpp.time_s


def test_efficiency_table_ranked_by_energy():
    table = efficiency_table(language_efficiency(1e17))
    energies = [row["energy_j"] for row in table.values()]
    assert energies == sorted(energies)
    assert len(table) == len(LANGUAGE_PROFILES)


def test_unit_formatting():
    assert format_energy(12.3) == "12.30 J"
    assert format_energy(12_300) == "12.30 kJ"
    assert format_energy(12_300_000) == "12.30 MJ"
    assert format_time(0.25) == "250.0 ms"
    assert format_time(90.0) == "1.50 min"
    assert format_time(2e-5) == "20.0 us"
    assert format_frequency(mhz(1410)) == "1410 MHz"
    assert to_mhz(mhz(123.0)) == 123.0
    assert megajoules(2.5e6) == 2.5
