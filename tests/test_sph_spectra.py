"""Velocity power spectrum and Helmholtz diagnostics."""

import numpy as np
import pytest

from repro.sph import ParticleSet
from repro.sph.init import TurbulenceConfig, make_turbulence
from repro.sph.spectra import (
    solenoidal_fraction,
    velocity_power_spectrum,
)


def _single_mode_particles(n_side=16, mode=3, solenoidal=True):
    """Particles sampling a single Fourier mode velocity field."""
    grid = (np.arange(n_side) + 0.5) / n_side
    gx, gy, gz = np.meshgrid(grid, grid, grid, indexing="ij")
    pos = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])
    n = len(pos)
    phase = 2.0 * np.pi * mode * pos[:, 0]
    if solenoidal:
        # v = (0, sin(2 pi m x), 0): div v = 0.
        vx = np.zeros(n)
        vy = np.sin(phase)
        vz = np.zeros(n)
    else:
        # v = (sin(2 pi m x), 0, 0): purely compressive.
        vx = np.sin(phase)
        vy = np.zeros(n)
        vz = np.zeros(n)
    return ParticleSet(
        x=pos[:, 0], y=pos[:, 1], z=pos[:, 2],
        vx=vx, vy=vy, vz=vz,
        m=np.full(n, 1.0 / n), h=np.full(n, 0.1), u=np.ones(n),
    )


def test_spectrum_peaks_at_injected_mode():
    p = _single_mode_particles(mode=3)
    spec = velocity_power_spectrum(p, grid=16)
    assert spec.peak_k() == pytest.approx(3.0)
    # Essentially all energy in that shell.
    assert spec.energy[2] / spec.total_energy() > 0.9


def test_spectrum_total_energy_matches_field_variance():
    p = _single_mode_particles(mode=2)
    spec = velocity_power_spectrum(p, grid=16)
    # <v^2>/... : for sin, mean square is 1/2 (split between +k and -k).
    assert spec.total_energy() == pytest.approx(0.5, rel=0.05)


def test_turbulence_ic_spectrum_is_large_scale():
    cfg = TurbulenceConfig(nside=16, k_max=2, seed=8)
    p = make_turbulence(cfg)
    spec = velocity_power_spectrum(p, grid=16)
    assert spec.peak_k() <= cfg.k_max
    low = spec.energy[: cfg.k_max].sum()
    assert low / spec.total_energy() > 0.7


def test_solenoidal_fraction_discriminates():
    sol = _single_mode_particles(mode=2, solenoidal=True)
    comp = _single_mode_particles(mode=2, solenoidal=False)
    assert solenoidal_fraction(sol, grid=16) > 0.95
    assert solenoidal_fraction(comp, grid=16) < 0.1


def test_turbulence_ic_is_mostly_solenoidal():
    p = make_turbulence(TurbulenceConfig(nside=16, seed=9))
    assert solenoidal_fraction(p, grid=16) > 0.8


def test_grid_validation():
    p = _single_mode_particles()
    with pytest.raises(ValueError):
        velocity_power_spectrum(p, grid=2)
