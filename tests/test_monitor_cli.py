"""`repro monitor` commands and the `trace summary --json` satellite."""

import json
import time

import pytest

from repro.campaign import RunStore
from repro.cli import main
from repro.monitor import parse_prometheus_text

FAST = ["--steps", "2", "--particles", "1e6", "--period", "0.05"]


def test_monitor_snapshot_prints_series_table(capsys):
    assert main(["monitor", "snapshot", *FAST]) == 0
    out = capsys.readouterr().out
    for name in ("power_w[0]", "clock_mhz[0]", "temp_c[0]", "energy_j[0]"):
        assert name in out
    assert "series" in out and "alerts" in out.lower()


def test_monitor_snapshot_json_and_out(tmp_path, capsys):
    out_path = str(tmp_path / "snap.json")
    rc = main(["monitor", "snapshot", *FAST, "--json", "--out", out_path])
    assert rc == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed["kind"] == "monitor-report"
    assert printed["meta"]["policy"] == "baseline"
    with open(out_path, encoding="utf-8") as fh:
        assert json.load(fh)["kind"] == "monitor-report"


def test_monitor_snapshot_writes_valid_prometheus_file(tmp_path, capsys):
    prom = str(tmp_path / "metrics.prom")
    assert main(["monitor", "snapshot", *FAST, "--prom", prom]) == 0
    with open(prom, encoding="utf-8") as fh:
        families = parse_prometheus_text(fh.read())
    assert "repro_monitor_power_w" in families
    assert "repro_monitor_samples_total" in families


def test_monitor_report_writes_self_contained_html(tmp_path, capsys):
    out = str(tmp_path / "run.html")
    rc = main(
        ["monitor", "report", *FAST, "--out", out,
         "--scenario", "flaky-clocks", "--policy", "mandyn",
         "--freq", "1110"]
    )
    assert rc == 0
    assert "HTML report written" in capsys.readouterr().out
    with open(out, encoding="utf-8") as fh:
        html = fh.read()
    assert html.count('<svg class="spark"') >= 4
    # The flaky-clocks scenario drives retries -> the failure-rate alert.
    assert "clock_set_failures" in html


def test_monitor_watch_flags_stalled_lane(tmp_path, capsys):
    store = RunStore(str(tmp_path), campaign="watched")
    store.write_heartbeats({
        "0": {"updated_s": time.time() - 500.0, "state": "running",
              "unit": "u0"},
        "1": {"updated_s": time.time(), "state": "idle"},
    })
    rc = main(
        ["monitor", "watch", "--dir", str(tmp_path),
         "--iterations", "1", "--stall-after", "120"]
    )
    assert rc == 1  # stall seen -> non-zero for scripting
    out = capsys.readouterr().out
    assert "ALERT campaign_worker_stalled" in out
    assert "lane 0" in out


def test_monitor_watch_healthy_campaign_exits_zero(tmp_path, capsys):
    store = RunStore(str(tmp_path), campaign="watched")
    store.write_heartbeats({
        "0": {"updated_s": time.time(), "state": "running", "unit": "u0"},
    })
    rc = main(["monitor", "watch", "--dir", str(tmp_path),
               "--iterations", "1"])
    assert rc == 0
    assert "ALERT" not in capsys.readouterr().out


def test_monitor_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["monitor"])


# -- satellite: machine-readable trace summaries ---------------------------


def test_trace_summary_json(capsys):
    rc = main(
        ["trace", "summary", "--steps", "2", "--particles", "1e6",
         "--json"]
    )
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "trace-summary"
    assert doc["steps"] == 2
    assert "MomentumEnergy" in doc["functions"]
    fn = doc["functions"]["MomentumEnergy"]
    assert fn["spans"] > 0 and fn["total_s"] > 0.0
    assert doc["max_drift_s"] <= 1e-6
    assert all(row["ok"] for row in doc["reconciliation"])
    assert doc["dropped"] == 0


def test_trace_summary_table_unchanged(capsys):
    # The default human-readable table still renders without --json.
    rc = main(["trace", "summary", "--steps", "1", "--particles", "1e6"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "MomentumEnergy" in out
    assert "{" not in out.splitlines()[0]
