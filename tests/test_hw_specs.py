"""Device spec presets and clock quantization."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware import (
    GpuSpec,
    a100_pcie_40gb,
    a100_sxm4_80gb,
    epyc_7713,
    epyc_7a53,
    mi250x_gcd,
    xeon_6258r_pair,
)
from repro.units import mhz, to_mhz


def test_a100_sxm_clock_range_matches_table1():
    spec = a100_sxm4_80gb()
    assert to_mhz(spec.max_clock_hz) == 1410.0
    assert to_mhz(spec.memory_clock_hz) == 1593.0
    assert spec.vendor == "nvidia"
    assert spec.gcds_per_card == 1


def test_mi250x_matches_table1():
    spec = mi250x_gcd()
    assert to_mhz(spec.max_clock_hz) == 1700.0
    assert to_mhz(spec.memory_clock_hz) == 1600.0
    assert spec.vendor == "amd"
    assert spec.gcds_per_card == 2


def test_supported_clocks_descending_and_within_range():
    spec = a100_sxm4_80gb()
    clocks = spec.supported_clocks_hz()
    assert clocks[0] == spec.max_clock_hz
    assert clocks[-1] >= spec.min_clock_hz
    assert all(a > b for a, b in zip(clocks, clocks[1:]))
    # A100: 210..1410 in 15 MHz bins -> 81 clocks.
    assert len(clocks) == 81


def test_quantize_snaps_to_nearest_bin():
    spec = a100_sxm4_80gb()
    assert to_mhz(spec.quantize_clock_hz(mhz(1004.0))) == 1005.0
    assert to_mhz(spec.quantize_clock_hz(mhz(1012.0))) == 1005.0
    assert to_mhz(spec.quantize_clock_hz(mhz(1013.0))) == 1020.0


def test_quantize_clamps_out_of_range():
    spec = a100_sxm4_80gb()
    assert spec.quantize_clock_hz(mhz(5000.0)) == spec.max_clock_hz
    assert spec.quantize_clock_hz(mhz(1.0)) == spec.min_clock_hz


@given(st.floats(min_value=1.0, max_value=5000.0))
def test_quantize_always_returns_supported_clock(req_mhz):
    spec = a100_sxm4_80gb()
    q = spec.quantize_clock_hz(mhz(req_mhz))
    assert q in spec.supported_clocks_hz()


def test_dynamic_power_positive_for_all_presets():
    for spec in (a100_sxm4_80gb(), a100_pcie_40gb(), mi250x_gcd()):
        assert spec.dynamic_power_w > 0


def test_invalid_spec_rejected():
    spec = a100_sxm4_80gb()
    with pytest.raises(ValueError):
        GpuSpec(
            name="bad",
            vendor="nvidia",
            min_clock_hz=mhz(1000),
            max_clock_hz=mhz(500),
            clock_step_hz=mhz(15),
            default_clock_hz=mhz(500),
            memory_clock_hz=mhz(1593),
            idle_power_w=50,
            max_power_w=400,
            power_exponent=1.5,
            fp_throughput=1e12,
            mem_bandwidth=1e12,
            memory_bytes=1e9,
        )


def test_kernel_efficiency_defaults_to_one():
    spec = a100_sxm4_80gb()
    assert spec.kernel_efficiency("MomentumEnergy") == 1.0
    amd = mi250x_gcd()
    assert amd.kernel_efficiency("MomentumEnergy") < 1.0
    assert amd.kernel_efficiency("UnknownKernel") == 1.0


def test_cpu_power_interpolates_between_idle_and_active():
    cpu = epyc_7713()
    assert cpu.power_w(0.0) == cpu.idle_power_w
    assert cpu.power_w(1.0) == cpu.active_power_w
    mid = cpu.power_w(0.5)
    assert cpu.idle_power_w < mid < cpu.active_power_w


def test_cpu_presets_core_counts():
    assert epyc_7713().cores == 64
    assert epyc_7a53().cores == 64
    assert xeon_6258r_pair().cores == 56
