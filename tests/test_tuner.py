"""KernelTuner-style tuner: strategies, observers, frequency sweeps."""

import pytest

from repro.hardware import KernelLaunch, SimulatedGpu, VirtualClock, a100_pcie_40gb
from repro.tuner import (
    FREQUENCY_PARAM,
    enumerate_space,
    brute_force,
    greedy_descent,
    random_sample,
    sph_kernel_source,
    tune_all_sph_functions,
    tune_kernel,
)


@pytest.fixture
def gpu():
    return SimulatedGpu(a100_pcie_40gb(), VirtualClock())


FREQS = [1410, 1305, 1200, 1110, 1005]


def test_enumerate_space_cartesian():
    space = enumerate_space({"a": [1, 2], "b": ["x", "y", "z"]})
    assert len(space) == 6
    assert {"a": 1, "b": "x"} in space


def test_enumerate_space_empty():
    assert enumerate_space({}) == [{}]


def test_random_sample_fraction():
    space = {"a": list(range(10))}
    sampled = random_sample(space, fraction=0.3, seed=1)
    assert len(sampled) == 3
    with pytest.raises(ValueError):
        random_sample(space, fraction=0.0)


def test_greedy_descent_finds_quadratic_minimum():
    values = list(range(20))
    visited = greedy_descent(
        {"x": values}, lambda cfg: (cfg["x"] - 13) ** 2, seed=3, restarts=3
    )
    assert any(cfg["x"] == 13 for cfg in visited)
    assert len(visited) < 20  # did not enumerate everything


def test_tune_kernel_brute_force_frequency(gpu):
    source = sph_kernel_source("MomentumEnergy", 450**3)
    results, best = tune_kernel(
        "MomentumEnergy",
        source,
        450**3,
        {FREQUENCY_PARAM: FREQS},
        gpu,
        iterations=2,
    )
    assert len(results) == len(FREQS)
    for rec in results:
        assert rec["time"] > 0 and rec["energy"] > 0 and rec["power"] > 0
    # Compute-bound kernel: best EDP at the maximum clock.
    assert best[FREQUENCY_PARAM] == 1410


def test_memory_bound_kernel_tunes_low(gpu):
    source = sph_kernel_source("XMass", 450**3)
    _, best = tune_kernel(
        "XMass", source, 450**3, {FREQUENCY_PARAM: FREQS}, gpu, iterations=2
    )
    assert best[FREQUENCY_PARAM] <= 1110


def test_objectives_change_winner(gpu):
    source = sph_kernel_source("XMass", 450**3)
    _, best_time = tune_kernel(
        "XMass", source, 450**3, {FREQUENCY_PARAM: FREQS}, gpu,
        objective="time", iterations=1,
    )
    _, best_energy = tune_kernel(
        "XMass", source, 450**3, {FREQUENCY_PARAM: FREQS}, gpu,
        objective="energy", iterations=1,
    )
    assert best_time[FREQUENCY_PARAM] == 1410
    assert best_energy[FREQUENCY_PARAM] == 1005


def test_block_size_parameter(gpu):
    source = sph_kernel_source("MomentumEnergy", 10**6)
    results, best = tune_kernel(
        "MomentumEnergy",
        source,
        10**6,
        {"block_size": [64, 128, 256, 512]},
        gpu,
        objective="time",
        iterations=1,
    )
    assert best["block_size"] == 256  # the efficiency-curve peak


def test_unsupported_frequency_rejected(gpu):
    source = sph_kernel_source("XMass", 10**6)
    with pytest.raises(ValueError):
        tune_kernel(
            "XMass", source, 10**6, {FREQUENCY_PARAM: [1007]}, gpu,
            iterations=1,
        )


def test_input_validation(gpu):
    source = sph_kernel_source("XMass", 10**6)
    with pytest.raises(ValueError):
        tune_kernel("XMass", source, 0, {FREQUENCY_PARAM: FREQS}, gpu)
    with pytest.raises(ValueError):
        tune_kernel("XMass", source, 10, {}, gpu)
    with pytest.raises(ValueError):
        tune_kernel(
            "XMass", source, 10, {FREQUENCY_PARAM: FREQS}, gpu, iterations=0
        )
    with pytest.raises(ValueError):
        tune_kernel(
            "XMass", source, 10, {FREQUENCY_PARAM: FREQS}, gpu,
            strategy="quantum",
        )
    with pytest.raises(ValueError):
        tune_kernel(
            "XMass", source, 10, {FREQUENCY_PARAM: FREQS}, gpu,
            objective="beauty",
        )


def test_greedy_strategy_on_frequency(gpu):
    source = sph_kernel_source("MomentumEnergy", 450**3)
    results, best = tune_kernel(
        "MomentumEnergy",
        source,
        450**3,
        {FREQUENCY_PARAM: FREQS},
        gpu,
        strategy="greedy",
        iterations=1,
        strategy_options={"seed": 5, "restarts": 2},
    )
    assert best[FREQUENCY_PARAM] == 1410


def test_tune_all_sph_functions_fig2_shape(gpu):
    best = tune_all_sph_functions(gpu, 450**3, FREQS, iterations=1)
    # Compute-bound functions keep the max clock; the light ones drop.
    assert best["MomentumEnergy"] == 1410.0
    assert best["IADVelocityDivCurl"] == 1410.0
    assert best["XMass"] < 1410.0
    assert best["NormalizationGradh"] < 1410.0
    assert best["DomainDecompAndSync"] < 1410.0
