"""Language-efficiency model internals (Fig. 1 substrate)."""

import numpy as np
import pytest

from repro.langbench import (
    LANGUAGE_PROFILES,
    LanguageResult,
    language_efficiency,
    nbody_reference_work,
)


def test_profiles_cover_both_device_classes():
    devices = {p.device for p in LANGUAGE_PROFILES}
    assert devices == {"cpu", "gpu"}
    names = [p.name for p in LANGUAGE_PROFILES]
    assert len(names) == len(set(names))


def test_reference_work_deterministic():
    a = nbody_reference_work(n_bodies=128, steps=3)
    b = nbody_reference_work(n_bodies=128, steps=3)
    assert a == b > 0


def test_reference_work_scales_with_steps():
    w1 = nbody_reference_work(n_bodies=128, steps=2)
    w2 = nbody_reference_work(n_bodies=128, steps=4)
    assert w2 == pytest.approx(2.0 * w1)


def test_energy_scales_linearly_with_work():
    small = {r.language: r for r in language_efficiency(1e15)}
    large = {r.language: r for r in language_efficiency(2e15)}
    for name in small:
        assert large[name].time_s == pytest.approx(
            2.0 * small[name].time_s
        )
        assert large[name].energy_j == pytest.approx(
            2.0 * small[name].energy_j
        )


def test_compiled_cpu_languages_cluster_together():
    results = {r.language: r for r in language_efficiency(1e16)}
    cpp = results["C++"]
    for name in ("Fortran", "Rust"):
        assert results[name].time_s == pytest.approx(cpp.time_s, rel=0.1)


def test_result_unit_helpers():
    r = LanguageResult(
        language="X", device="cpu", time_s=86400.0, energy_j=3.6e6
    )
    assert r.days == pytest.approx(1.0)
    assert r.kwh == pytest.approx(1.0)


def test_slower_cpu_language_never_uses_less_energy():
    """On the same device at equal activity, slower implies hungrier."""
    results = [r for r in language_efficiency(1e16) if r.device == "cpu"]
    compiled = [
        r for r in results
        if r.language in ("C++", "Fortran", "Rust")
    ]
    interpreted = [r for r in results if "Python" in r.language]
    for slow in interpreted:
        for fast in compiled:
            assert slow.time_s > fast.time_s
            assert slow.energy_j > fast.energy_j
