"""The content-addressed run store: durability, replay, corruption."""

import json

import pytest

from repro.campaign import RunStore

UNIT = {"campaign": "t", "system": "miniHPC", "seed": 0}
RESULT = {"metrics": {"elapsed_s": 1.0, "gpu_energy_j": 2.0}}


def test_record_done_round_trip(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    store.record_done("k1", UNIT, RESULT)
    assert store.completed_keys() == {"k1"}
    artifact = store.load_result("k1")
    assert artifact["unit"] == UNIT
    assert artifact["result"] == RESULT
    assert artifact["schema"] == 1


def test_reopen_replays_manifest(tmp_path):
    RunStore(str(tmp_path), campaign="t").record_done("k1", UNIT, RESULT)
    reopened = RunStore(str(tmp_path))
    assert reopened.campaign == "t"
    assert reopened.completed_keys() == {"k1"}


def test_latest_status_wins(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    store.record_failed("k1", UNIT, {"type": "ValueError", "message": "x"})
    assert store.failed_keys() == {"k1"}
    assert store.completed_keys() == set()
    store.record_done("k1", UNIT, RESULT)
    assert store.completed_keys() == {"k1"}
    assert store.counts() == {"done": 1, "failed": 0}


def test_done_without_artifact_is_not_completed(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    store.record_done("k1", UNIT, RESULT)
    store.run_path("k1").unlink()
    assert RunStore(str(tmp_path)).completed_keys() == set()


def test_results_sorted_by_key_and_filterable(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    for key in ("zz", "aa", "mm"):
        store.record_done(key, dict(UNIT, seed=key), RESULT)
    assert [r["key"] for r in store.results()] == ["aa", "mm", "zz"]
    assert [r["key"] for r in store.results(keys=["zz", "aa"])] == ["aa", "zz"]


def test_campaign_mismatch_rejected(tmp_path):
    RunStore(str(tmp_path), campaign="t").record_done("k1", UNIT, RESULT)
    with pytest.raises(ValueError, match="belongs to campaign"):
        RunStore(str(tmp_path), campaign="other")


def test_corrupt_manifest_line_names_file_and_line(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    store.record_done("k1", UNIT, RESULT)
    with open(store.manifest_path, "a", encoding="utf-8") as fh:
        fh.write("{truncated\n")
    with pytest.raises(ValueError, match=r"manifest\.jsonl:3: not valid JSON"):
        RunStore(str(tmp_path))


def test_blank_manifest_lines_tolerated(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    store.record_done("k1", UNIT, RESULT)
    with open(store.manifest_path, "a", encoding="utf-8") as fh:
        fh.write("\n\n")
    assert RunStore(str(tmp_path)).completed_keys() == {"k1"}


def test_manifest_header_schema_checked(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    store.record_done("k1", UNIT, RESULT)
    lines = store.manifest_path.read_text(encoding="utf-8").splitlines()
    header = json.loads(lines[0])
    header["schema"] = 99
    lines[0] = json.dumps(header)
    store.manifest_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(ValueError, match=r"manifest\.jsonl:1"):
        RunStore(str(tmp_path))


def test_artifact_kind_checked(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    store.record_done("k1", UNIT, RESULT)
    store.run_path("k1").write_text('{"schema": 1, "kind": "other"}\n')
    with pytest.raises(ValueError, match="not a campaign run artifact"):
        store.load_result("k1")


def test_no_tmp_files_left_behind(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    store.record_done("k1", UNIT, RESULT)
    leftovers = list((tmp_path / "runs").glob("*.tmp"))
    assert leftovers == []


def test_heartbeats_roundtrip_and_absent_default(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    assert store.read_heartbeats() == {}
    lanes = {
        "0": {"updated_s": 12.5, "state": "running", "unit": "u"},
        "1": {"updated_s": 13.0, "state": "idle"},
    }
    store.write_heartbeats(lanes)
    assert store.read_heartbeats() == lanes
    # Atomic replace: no temp litter next to the file.
    names = {p.name for p in store.heartbeats_path.parent.iterdir()}
    assert not any(n.startswith("tmp") for n in names)


def test_heartbeats_reject_foreign_payload(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    store.heartbeats_path.write_text('{"kind": "other"}', encoding="utf-8")
    with pytest.raises(ValueError):
        store.read_heartbeats()


# ---------------------------------------------------------------------------
# torn final line (crash mid-append)
# ---------------------------------------------------------------------------


def test_torn_final_line_skipped_with_warning(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    store.record_done("k1", UNIT, RESULT)
    # A crash mid-append leaves a final line without its newline.
    with open(store.manifest_path, "a", encoding="utf-8") as fh:
        fh.write('{"schema": 1, "kind": "campaign-manifest", "key": "k2"')
    with pytest.warns(RuntimeWarning, match="torn final manifest line"):
        reopened = RunStore(str(tmp_path))
    # Everything before the torn tail replays; the torn unit re-runs.
    assert reopened.completed_keys() == {"k1"}
    assert reopened.counts() == {"done": 1, "failed": 0}


def test_torn_tail_recovers_after_next_append(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    store.record_done("k1", UNIT, RESULT)
    with open(store.manifest_path, "a", encoding="utf-8") as fh:
        fh.write('{"torn')
    with pytest.warns(RuntimeWarning, match="torn final manifest line"):
        recovered = RunStore(str(tmp_path))
    # Recovery truncates the torn bytes, so the next append starts on
    # its own line -- and k2 is durable on the following (clean) reopen.
    recovered.record_done("k2", UNIT, RESULT)
    assert recovered.completed_keys() == {"k1", "k2"}
    assert RunStore(str(tmp_path)).completed_keys() == {"k1", "k2"}


def test_torn_line_mid_file_still_raises(tmp_path):
    store = RunStore(str(tmp_path), campaign="t")
    store.record_done("k1", UNIT, RESULT)
    # Corruption *with* a trailing newline is not a torn append -- it
    # must keep failing loudly (see the corrupt-manifest test above).
    with open(store.manifest_path, "a", encoding="utf-8") as fh:
        fh.write('{"torn\n{"also-torn\n')
    with pytest.raises(ValueError, match="not valid JSON"):
        RunStore(str(tmp_path))
