"""pm_counters emulation: 10 Hz publish, staleness, file formats."""

import os

import pytest

from repro.craypm import PUBLISH_PERIOD_S, PmCounters
from repro.hardware import (
    ComputeNode,
    KernelLaunch,
    NodePowerSpec,
    SimulatedGpu,
    VirtualClock,
    a100_sxm4_80gb,
    epyc_7713,
    mi250x_gcd,
)


def _setup(n_gpus=1, spec=a100_sxm4_80gb, export_dir=None):
    clk = VirtualClock()
    gpus = [SimulatedGpu(spec(), clk, index=i) for i in range(n_gpus)]
    node = ComputeNode(
        "n0", clk, epyc_7713(), NodePowerSpec(75.0, 235.0), gpus
    )
    pm = PmCounters(node, export_dir=export_dir)
    return clk, node, pm


def test_counters_publish_at_10hz():
    clk, node, pm = _setup()
    assert pm.freshness == 0
    clk.advance(1.0)
    assert pm.freshness == 10


def test_reading_between_ticks_is_stale():
    clk, node, pm = _setup()
    clk.advance(0.25)
    # Last publish was at t=0.2; energy at 0.25 > published value.
    published = pm.read_energy_j("energy")
    assert published < node.node_energy_j
    assert published == pytest.approx(
        node.node_energy_j * (0.2 / 0.25), rel=1e-6
    )


def test_interpolation_is_exact_for_constant_power():
    clk, node, pm = _setup()
    clk.advance(0.5)  # exactly 5 ticks
    assert pm.read_energy_j("energy") == pytest.approx(
        node.node_energy_j, rel=1e-9
    )


def test_counter_set_includes_cpu_memory_accel():
    clk, node, pm = _setup(n_gpus=2)
    clk.advance(0.3)
    for name in ("energy", "cpu_energy", "memory_energy", "accel0_energy",
                 "accel1_energy"):
        assert pm.read_energy_j(name) >= 0.0


def test_accel_counter_is_per_card_on_mi250x():
    clk, node, pm = _setup(n_gpus=4, spec=mi250x_gcd)
    node.gpus[0].execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    clk.advance(0.2)
    card0 = pm.read_energy_j("accel0_energy")
    assert card0 == pytest.approx(
        node.gpus[0].energy_j + node.gpus[1].energy_j, rel=0.05
    )
    assert "accel2_energy" not in ""  # 4 GCDs -> 2 cards only
    with pytest.raises(FileNotFoundError):
        pm.read_energy_j("accel2_energy")


def test_power_files_report_average_over_tick():
    clk, node, pm = _setup()
    clk.advance(0.2)
    power = pm.read_power_w("power")
    # Node draws cpu idle-ish + memory + aux + gpu idle.
    expected = (
        node.cpu.power_w() + 75.0 + 235.0 + node.gpus[0].power_w()
    )
    assert power == pytest.approx(expected, rel=0.05)


def test_unknown_counter_file_raises():
    clk, node, pm = _setup()
    with pytest.raises(FileNotFoundError):
        pm.read_energy_j("nonsense")
    with pytest.raises(FileNotFoundError):
        pm.read_file("nonsense")


def test_file_format_cray_style():
    clk, node, pm = _setup()
    clk.advance(0.2)
    content = pm.read_file("energy")
    value, unit, ts = content.split()
    assert unit == "J"
    assert int(value) >= 0
    assert int(ts) == int(0.2 * 1e6)
    assert pm.read_file("version") == "1"
    assert int(pm.read_file("freshness")) == 2


def test_export_to_disk(tmp_path):
    export = str(tmp_path / "pm_counters")
    clk, node, pm = _setup(export_dir=export)
    clk.advance(0.2)
    files = os.listdir(export)
    assert "energy" in files and "cpu_energy" in files
    with open(os.path.join(export, "energy")) as fh:
        assert fh.read().strip().endswith(str(int(0.2 * 1e6)))


def test_files_listing():
    clk, node, pm = _setup(n_gpus=2)
    names = pm.files()
    assert "accel1_power" in names
    assert "generation" in names
