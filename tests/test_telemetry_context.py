"""TraceContext: minting, derivation, event stamping, durable writes."""

import os

import pytest

from repro.hardware import VirtualClock
from repro.telemetry import (
    InstantEvent,
    SpanEvent,
    TraceCollector,
    TraceContext,
    atomic_write_lines,
    mint_context,
)


# ---------------------------------------------------------------------------
# minting and derivation
# ---------------------------------------------------------------------------


def test_mint_is_deterministic_per_seed():
    a = mint_context(seed="tenant:c-abc")
    b = mint_context(seed="tenant:c-abc")
    c = mint_context(seed="tenant:c-def")
    assert a == b
    assert a.trace_id != c.trace_id
    assert len(a.trace_id) == 32
    assert len(a.span_id) == 16


def test_mint_without_seed_is_unique():
    assert mint_context().trace_id != mint_context().trace_id


def test_traceparent_round_trip():
    ctx = mint_context(seed="rt")
    parsed = TraceContext.from_traceparent(ctx.to_traceparent())
    assert parsed.trace_id == ctx.trace_id
    assert parsed.span_id == ctx.span_id


def test_traceparent_rejects_malformed():
    with pytest.raises(ValueError):
        TraceContext.from_traceparent("not-a-traceparent")


def test_dict_round_trip_preserves_parent():
    child = mint_context(seed="p").child("unit:k")
    assert TraceContext.from_dict(child.to_dict()) == child


def test_child_derivation_is_deterministic_and_linked():
    root = mint_context(seed="root")
    a = root.child("unit:k1")
    b = root.child("unit:k1")
    c = root.child("unit:k2")
    assert a == b
    assert a.span_id != c.span_id
    assert a.trace_id == root.trace_id
    assert a.parent_span_id == root.span_id


def test_restarted_keeps_trace_id_with_new_lineage():
    root = mint_context(seed="root")
    restarted = root.restarted(3)
    assert restarted.trace_id == root.trace_id
    assert restarted.span_id != root.span_id
    assert restarted.parent_span_id == root.span_id
    # Generation-sensitive: a second restart derives differently.
    assert root.restarted(4).span_id != restarted.span_id


# ---------------------------------------------------------------------------
# collector stamping
# ---------------------------------------------------------------------------


def test_collector_stamps_span_and_instant_events():
    clk = VirtualClock()
    collector = TraceCollector(clocks=[clk])
    ctx = mint_context(seed="stamp")
    collector.configure_tracing(ctx)

    collector.before_function("XMass", 0)
    clk.advance(0.1)
    collector.after_function("XMass", 0)
    collector.emit_instant("tick", 0, ts=0.2)

    stamped = [
        e for e in collector.events
        if isinstance(e, (SpanEvent, InstantEvent))
    ]
    assert stamped
    assert all(e.args["trace_id"] == ctx.trace_id for e in stamped)
    span_ids = [e.args["span_id"] for e in stamped]
    assert len(set(span_ids)) == len(span_ids)  # unique per event


def test_collector_without_context_leaves_events_unstamped():
    clk = VirtualClock()
    collector = TraceCollector(clocks=[clk])
    collector.before_function("XMass", 0)
    clk.advance(0.1)
    collector.after_function("XMass", 0)
    (span,) = collector.spans()
    assert "trace_id" not in span.args


def test_explicit_trace_args_win_over_injection():
    collector = TraceCollector()
    collector.configure_tracing(mint_context(seed="x"))
    collector.emit_instant("hop", 0, ts=0.0, trace_id="feedface" * 4)
    (event,) = collector.events
    assert event.args["trace_id"] == "feedface" * 4


def test_checkpoint_restore_keeps_trace_id_new_lineage():
    collector = TraceCollector(clocks=[VirtualClock()])
    ctx = mint_context(seed="ckpt")
    collector.configure_tracing(ctx)
    state = collector.state_dict()

    resumed = TraceCollector(clocks=[VirtualClock()])
    resumed.restore_state(state)
    assert resumed.context is not None
    assert resumed.context.trace_id == ctx.trace_id
    assert resumed.context.span_id != ctx.span_id
    assert resumed.context.parent_span_id == ctx.span_id


def test_restore_without_context_stays_untraced():
    collector = TraceCollector(clocks=[VirtualClock()])
    state = collector.state_dict()
    resumed = TraceCollector(clocks=[VirtualClock()])
    resumed.restore_state(state)
    assert resumed.context is None


# ---------------------------------------------------------------------------
# atomic writes
# ---------------------------------------------------------------------------


def test_atomic_write_lines_writes_and_replaces(tmp_path):
    path = tmp_path / "out.jsonl"
    atomic_write_lines(str(path), ["a", "b"])
    assert path.read_text() == "a\nb\n"
    atomic_write_lines(str(path), ["c"])
    assert path.read_text() == "c\n"
    assert os.listdir(tmp_path) == ["out.jsonl"]  # no tmp leftovers
