"""Cell-list neighbor search cross-validated against KD-tree/brute force."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sph import ParticleSet, find_neighbors, find_neighbors_bruteforce
from repro.sph.init import TurbulenceConfig, make_turbulence
from repro.sph.neighbors_cell import find_neighbors_cell_list


def _random_particles(n, seed, h, box=1.0):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, box, size=(n, 3))
    return ParticleSet(
        x=pos[:, 0], y=pos[:, 1], z=pos[:, 2],
        vx=np.zeros(n), vy=np.zeros(n), vz=np.zeros(n),
        m=np.full(n, 1.0 / n), h=np.full(n, h), u=np.ones(n),
    )


def _same(nl_a, nl_b):
    assert np.array_equal(nl_a.offsets, nl_b.offsets)
    for i in range(nl_a.n):
        assert set(nl_a.of(i)) == set(nl_b.of(i)), i


def test_matches_kdtree_open_box():
    p = _random_particles(120, seed=1, h=0.12)
    _same(find_neighbors_cell_list(p), find_neighbors(p))


def test_matches_kdtree_periodic():
    p = _random_particles(100, seed=2, h=0.09)
    _same(
        find_neighbors_cell_list(p, box_size=1.0),
        find_neighbors(p, box_size=1.0),
    )


def test_matches_bruteforce_small_periodic_grid():
    # Large h relative to the box -> few cells per axis (aliasing path).
    p = _random_particles(40, seed=3, h=0.3)
    _same(
        find_neighbors_cell_list(p, box_size=1.0),
        find_neighbors_bruteforce(p, box_size=1.0),
    )


def test_variable_smoothing_lengths():
    p = _random_particles(80, seed=4, h=0.1)
    rng = np.random.default_rng(5)
    p.h = rng.uniform(0.05, 0.15, size=p.n)
    _same(find_neighbors_cell_list(p), find_neighbors(p))


def test_turbulence_ic_agreement():
    p = make_turbulence(TurbulenceConfig(nside=8, seed=9))
    _same(
        find_neighbors_cell_list(p, box_size=1.0),
        find_neighbors(p, box_size=1.0),
    )


def test_empty_and_single_particle():
    empty = ParticleSet.zeros(0)
    nl = find_neighbors_cell_list(
        ParticleSet(
            x=np.array([0.5]), y=np.array([0.5]), z=np.array([0.5]),
            vx=np.zeros(1), vy=np.zeros(1), vz=np.zeros(1),
            m=np.ones(1), h=np.array([0.1]), u=np.ones(1),
        )
    )
    assert nl.total_pairs == 0
    nl0 = find_neighbors_cell_list(empty) if empty.n else None


def test_out_of_box_positions_rejected():
    p = _random_particles(10, seed=6, h=0.1)
    p.x[0] = 1.5
    with pytest.raises(ValueError):
        find_neighbors_cell_list(p, box_size=1.0)


def test_zero_radius_rejected():
    p = _random_particles(5, seed=7, h=0.1)
    p.h[:] = 0.0
    with pytest.raises(ValueError):
        find_neighbors_cell_list(p)


@given(st.integers(min_value=0, max_value=50))
@settings(max_examples=20, deadline=None)
def test_property_agreement_with_kdtree(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 60))
    h = float(rng.uniform(0.05, 0.35))
    p = _random_particles(n, seed=seed + 1000, h=h)
    periodic = bool(rng.integers(0, 2))
    box = 1.0 if periodic else None
    _same(
        find_neighbors_cell_list(p, box_size=box),
        find_neighbors(p, box_size=box),
    )
