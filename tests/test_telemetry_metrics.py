"""Metrics registry: counters, gauges, histograms, snapshots."""

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_monotonic():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_write_wins():
    g = Gauge()
    g.set(10.0)
    g.set(3.0)
    assert g.value == 3.0


def test_histogram_buckets_and_stats():
    h = Histogram(bounds=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0, 2.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(57.5)
    assert snap["min"] == 0.5 and snap["max"] == 50.0
    assert snap["buckets"] == {"le=1": 1, "le=10": 2, "le=+inf": 1}


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=(10.0, 1.0))


def test_registry_get_or_create_by_labels():
    reg = MetricsRegistry()
    a = reg.counter("hits", rank=0)
    b = reg.counter("hits", rank=0)
    c = reg.counter("hits", rank=1)
    assert a is b and a is not c
    a.inc(3)
    c.inc(1)
    assert reg.counter_total("hits") == 4.0
    assert reg.counter_total("misses") == 0.0


def test_snapshot_series_keys():
    reg = MetricsRegistry()
    reg.counter("calls", rank=0, vendor="nvidia").inc()
    reg.counter("plain").inc(2)
    reg.gauge("power_w", rank=1).set(400.0)
    reg.histogram("latency_s", bounds=(1.0,), function="XMass").observe(0.2)
    snap = reg.snapshot()
    assert snap["counters"]["calls{rank=0,vendor=nvidia}"] == 1.0
    assert snap["counters"]["plain"] == 2.0
    assert snap["gauges"]["power_w{rank=1}"] == 400.0
    hist = snap["histograms"]["latency_s{function=XMass}"]
    assert hist["count"] == 1 and hist["mean"] == pytest.approx(0.2)


def test_empty_histogram_snapshot_has_no_minmax():
    snap = Histogram().snapshot()
    assert snap["count"] == 0
    assert snap["min"] is None and snap["max"] is None
    assert snap["mean"] == 0.0
