"""Metrics registry: counters, gauges, histograms, snapshots."""

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_monotonic():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_write_wins():
    g = Gauge()
    g.set(10.0)
    g.set(3.0)
    assert g.value == 3.0


def test_histogram_buckets_and_stats():
    h = Histogram(bounds=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0, 2.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(57.5)
    assert snap["min"] == 0.5 and snap["max"] == 50.0
    assert snap["buckets"] == {"le=1": 1, "le=10": 2, "le=+inf": 1}


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=(10.0, 1.0))


def test_registry_get_or_create_by_labels():
    reg = MetricsRegistry()
    a = reg.counter("hits", rank=0)
    b = reg.counter("hits", rank=0)
    c = reg.counter("hits", rank=1)
    assert a is b and a is not c
    a.inc(3)
    c.inc(1)
    assert reg.counter_total("hits") == 4.0
    assert reg.counter_total("misses") == 0.0


def test_snapshot_series_keys():
    reg = MetricsRegistry()
    reg.counter("calls", rank=0, vendor="nvidia").inc()
    reg.counter("plain").inc(2)
    reg.gauge("power_w", rank=1).set(400.0)
    reg.histogram("latency_s", bounds=(1.0,), function="XMass").observe(0.2)
    snap = reg.snapshot()
    assert snap["counters"]["calls{rank=0,vendor=nvidia}"] == 1.0
    assert snap["counters"]["plain"] == 2.0
    assert snap["gauges"]["power_w{rank=1}"] == 400.0
    hist = snap["histograms"]["latency_s{function=XMass}"]
    assert hist["count"] == 1 and hist["mean"] == pytest.approx(0.2)


def test_empty_histogram_snapshot_has_no_minmax():
    snap = Histogram().snapshot()
    assert snap["count"] == 0
    assert snap["min"] is None and snap["max"] is None
    assert snap["mean"] == 0.0


def test_series_key_escapes_structural_characters():
    from repro.telemetry.metrics import series_key

    # A value containing a separator must not be confusable with two
    # separate labels or a different value split.
    assert (
        series_key("calls", (("phase", "a,b"),))
        == r"calls{phase=a\,b}"
    )
    assert series_key("calls", (("k", "x=y"),)) == r"calls{k=x\=y}"
    assert series_key("calls", (("k", "{v}"),)) == r"calls{k=\{v\}}"
    assert series_key("calls", (("k", "a\nb"),)) == r"calls{k=a\nb}"
    assert series_key("calls", (("k", "a\\b"),)) == "calls{k=a\\\\b}"


def test_series_key_escaping_is_unambiguous():
    from repro.telemetry.metrics import series_key

    # Two distinct label sets that would collide without escaping.
    tricky = series_key("c", (("a", "1,b=2"),))
    plain = series_key("c", (("a", "1"), ("b", "2")))
    assert tricky != plain


def test_series_key_plain_values_unchanged():
    from repro.telemetry.metrics import series_key

    # Pre-escaping renderings must stay byte-identical.
    assert (
        series_key("calls", (("rank", "0"), ("vendor", "nvidia")))
        == "calls{rank=0,vendor=nvidia}"
    )
    assert series_key("plain", ()) == "plain"


def test_series_key_rejects_empty_name():
    from repro.telemetry.metrics import series_key

    with pytest.raises(ValueError):
        series_key("", (("rank", "0"),))


def test_registry_rejects_empty_metric_names():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("")
    with pytest.raises(ValueError):
        reg.gauge("")
    with pytest.raises(ValueError):
        reg.histogram("")


def test_snapshot_with_hostile_label_values_roundtrips():
    reg = MetricsRegistry()
    reg.counter("odd", path="a=b,c{d}").inc(7)
    snap = reg.snapshot()
    assert snap["counters"][r"odd{path=a\=b\,c\{d\}}"] == 7.0


def test_registry_iterators_yield_sorted_triples():
    reg = MetricsRegistry()
    reg.counter("b").inc()
    reg.counter("a", rank=1).inc(2)
    reg.gauge("g").set(1.0)
    reg.histogram("h", bounds=(1.0,)).observe(0.5)
    counters = list(reg.iter_counters())
    assert [(n, dict(l)) for n, l, _ in counters] == [
        ("a", {"rank": "1"}), ("b", {})
    ]
    assert counters[0][2].value == 2.0
    assert [n for n, _, _ in reg.iter_gauges()] == ["g"]
    assert [n for n, _, _ in reg.iter_histograms()] == ["h"]
