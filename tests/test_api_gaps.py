"""Coverage for API corners not exercised elsewhere."""

import numpy as np
import pytest

from repro import nvml
from repro.core import Metrics, device_breakdown_mj
from repro.core.energy import EnergyReport, FunctionEnergyRecord, RankEnergyReport
from repro.hardware import (
    KernelRecord,
    SimulatedGpu,
    VirtualClock,
    a100_sxm4_80gb,
    merge_kernel_records,
)
from repro.mpi import CommStats, SimComm
from repro.slurm import JobSetupModel
from repro.sph import hydro_gravity_propagator
from repro.sph.cornerstone import Box, assign_particles
from repro.sph.init import lattice_positions


def test_assign_particles_convenience():
    rng = np.random.default_rng(1)
    x, y, z = rng.uniform(0, 1, size=(3, 400))
    keys, order, assignment, ranks = assign_particles(
        x, y, z, Box.cube(0.0, 1.0), n_ranks=4
    )
    assert len(keys) == 400
    assert np.array_equal(np.sort(keys), keys[order])
    counts = np.bincount(ranks, minlength=4)
    assert counts.sum() == 400
    assert counts.min() > 0


def test_merge_kernel_records_accumulates():
    a = {"K": KernelRecord("K", launches=1, busy_seconds=1.0,
                           energy_joules=10.0, flops=100.0, bytes_moved=5.0)}
    b = {"K": KernelRecord("K", launches=2, busy_seconds=2.0,
                           energy_joules=20.0, flops=200.0, bytes_moved=10.0),
         "L": KernelRecord("L", launches=1)}
    merge_kernel_records(a, b)
    assert a["K"].launches == 3
    assert a["K"].energy_joules == 30.0
    assert "L" in a and a["L"].launches == 1
    with pytest.raises(ValueError):
        a["K"].merge(a["L"])


def test_device_breakdown_mj():
    rec = FunctionEnergyRecord(function="F")
    rec.device_j = {"GPU": 2.0e6, "CPU": 5.0e5, "Memory": 0.0, "Other": 5.0e5}
    report = EnergyReport(
        ranks=[RankEnergyReport(rank=0, records={"F": rec},
                                window_start_s=0.0, window_end_s=1.0)]
    )
    mj = device_breakdown_mj(report)
    assert mj["GPU"] == pytest.approx(2.0)
    assert mj["CPU"] == pytest.approx(0.5)


def test_nvml_version_strings():
    gpu = SimulatedGpu(a100_sxm4_80gb(), VirtualClock())
    nvml.attach_devices([gpu])
    nvml.nvmlInit()
    assert "sim" in nvml.nvmlSystemGetDriverVersion()
    assert "sim" in nvml.nvmlSystemGetNVMLVersion()


def test_job_setup_model_scales_with_nodes():
    model = JobSetupModel()
    assert model.setup_s(8) > model.setup_s(1)
    assert model.setup_s(1) == pytest.approx(
        model.scheduling_s + model.launch_base_s + model.launch_per_node_s
    )


def test_comm_stats_note():
    stats = CommStats()
    stats.note("allreduce", 100.0, 0.5, 0.01)
    stats.note("allreduce", 50.0, 0.1, 0.01)
    assert stats.calls["allreduce"] == 2
    assert stats.bytes_moved == 150.0
    assert stats.sync_wait_s == pytest.approx(0.6)


def test_normalized_metrics_str():
    norm = Metrics(2.0, 50.0).normalized_to(Metrics(1.0, 100.0))
    text = str(norm)
    assert "time" in text and "EDP" in text


def test_hydro_gravity_propagator_order():
    names = [f.name for f in hydro_gravity_propagator()]
    assert names.index("Gravity") == names.index("MomentumEnergy") - 1
    assert names[0] == "DomainDecompAndSync"
    assert names[-1] == "UpdateQuantities"


def test_lattice_positions_deterministic_and_in_box():
    rng1 = np.random.default_rng(3)
    rng2 = np.random.default_rng(3)
    a = lattice_positions(6, 2.0, 0.2, rng1)
    b = lattice_positions(6, 2.0, 0.2, rng2)
    assert np.array_equal(a, b)
    assert a.shape == (216, 3)
    assert np.all((0 <= a) & (a < 2.0))


def test_sendrecv_stats_and_alltoall_payloads():
    clocks = [VirtualClock() for _ in range(3)]
    comm = SimComm(clocks)
    comm.sendrecv(0, 2, 1e6)
    assert comm.stats.calls["sendrecv"] == 1
    out = comm.alltoall([[b"x" * 10] * 3 for _ in range(3)])
    assert len(out) == 3 and len(out[0]) == 3
