"""End-to-end resilience: degraded runs complete, same seed, same bytes.

The acceptance scenario of the fault-injection harness: a run with an
injected permanent ``GPU_IS_LOST`` completes end-to-end with the lost
rank degraded to its DVFS governor, the degradation is visible in the
telemetry and flagged in the :class:`~repro.core.EnergyReport`, and the
same seed reproduces byte-identical fault timing and final report.

``REPRO_FAULT_SEED`` (default 20240) selects the seed, so the CI fault
matrix can sweep seeds without touching the tests.
"""

from __future__ import annotations

import os

import pytest

from repro.core import EnergyReport, ManDynPolicy, ResilienceConfig
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    JobPreempted,
    build_plan,
    preemption_after_steps,
)
from repro.slurm import JobSpec, JobState, SlurmController
from repro.sph import run_instrumented
from repro.systems import Cluster, mini_hpc
from repro.telemetry import TRACK_FAULTS, TraceCollector

SEED = int(os.environ.get("REPRO_FAULT_SEED", "20240"))


def _mandyn():
    # Distinct off-default bins: every function boundary is a real
    # vendor call, giving injected clock faults something to strike.
    return ManDynPolicy(
        {"MomentumEnergy": 1410.0, "IADVelocityDivCurl": 1365.0},
        default_mhz=1005.0,
    )


def _run_gpu_lost(seed: int, tmp_path, tag: str):
    cluster = Cluster(mini_hpc(), 2)
    collector = TraceCollector.for_cluster(cluster)
    injector = FaultInjector(build_plan("gpu-lost", seed=seed, n_ranks=2))
    try:
        result = run_instrumented(
            cluster,
            "SedovBlast",
            n_particles_per_rank=1e5,
            n_steps=3,
            policy=_mandyn(),
            telemetry=collector,
            resilience=ResilienceConfig(),
            faults=injector,
        )
    finally:
        cluster.detach_management_library()
    path = tmp_path / f"report-{tag}.json"
    result.report.save(str(path))
    return result, injector, collector, path.read_bytes()


def test_gpu_lost_run_completes_degraded_and_flagged(tmp_path):
    result, injector, collector, _ = _run_gpu_lost(SEED, tmp_path, "a")

    # The run completed every step despite the permanent device loss.
    assert result.steps == 3
    assert not result.preempted
    assert result.degraded
    assert result.degraded_ranks == [0]
    assert result.faults_injected >= 1
    assert any(
        r.kind is FaultKind.GPU_IS_LOST for r in injector.records
    )

    # Flagged in the energy report, with the reason.
    assert result.report.degraded_ranks() == [0]
    flagged = [r for r in result.report.ranks if r.degraded]
    assert [r.rank for r in flagged] == [0]
    assert "GPU is lost" in flagged[0].degraded_reason

    # Visible on the telemetry faults track.
    names = [e.name for e in collector.events if e.track == TRACK_FAULTS]
    assert "fault-injected" in names
    assert "rank-degraded" in names


def test_same_seed_gives_byte_identical_reports_and_fault_timing(tmp_path):
    res_a, inj_a, _, bytes_a = _run_gpu_lost(SEED, tmp_path, "a")
    res_b, inj_b, _, bytes_b = _run_gpu_lost(SEED, tmp_path, "b")

    assert bytes_a == bytes_b
    timing_a = [
        (r.op, r.rank, r.kind, r.call_index, r.t_s) for r in inj_a.records
    ]
    timing_b = [
        (r.op, r.rank, r.kind, r.call_index, r.t_s) for r in inj_b.records
    ]
    assert timing_a == timing_b
    assert res_a.elapsed_s == res_b.elapsed_s
    assert res_a.gpu_energy_j == res_b.gpu_energy_j


def test_saved_degraded_report_roundtrips(tmp_path):
    result, _, _, _ = _run_gpu_lost(SEED, tmp_path, "a")
    path = tmp_path / "roundtrip.json"
    result.report.save(str(path))
    loaded = EnergyReport.load(str(path))
    assert loaded.degraded_ranks() == [0]
    flagged = [r for r in loaded.ranks if r.degraded]
    original = [r for r in result.report.ranks if r.degraded]
    assert flagged[0].degraded_reason == original[0].degraded_reason


def test_flaky_clocks_scenario_is_absorbed_by_retries():
    cluster = Cluster(mini_hpc(), 2)
    injector = FaultInjector(
        build_plan("flaky-clocks", seed=SEED, n_ranks=2)
    )
    try:
        result = run_instrumented(
            cluster,
            "SedovBlast",
            n_particles_per_rank=1e5,
            n_steps=4,
            policy=_mandyn(),
            resilience=ResilienceConfig(max_retries=3),
            faults=injector,
        )
    finally:
        cluster.detach_management_library()
    assert result.steps == 4
    assert result.faults_injected >= 1  # the scenario did fire
    assert result.retries >= 1  # and the controller retried
    assert result.degraded_ranks == []  # but nothing tripped


def test_preemption_returns_partial_flagged_result():
    cluster = Cluster(mini_hpc(), 1)
    collector = TraceCollector.for_cluster(cluster)
    plan = FaultPlan(seed=SEED).add(preemption_after_steps(2))
    injector = FaultInjector(plan)
    try:
        result = run_instrumented(
            cluster,
            "SedovBlast",
            n_particles_per_rank=1e5,
            n_steps=5,
            policy=_mandyn(),
            telemetry=collector,
            resilience=ResilienceConfig(),
            faults=injector,
        )
    finally:
        cluster.detach_management_library()
    assert result.preempted
    assert result.steps == 2  # partial, not zero and not five
    assert result.report.max_window_time_s() > 0.0
    names = [e.name for e in collector.events if e.track == TRACK_FAULTS]
    assert "job-preempted" in names


def test_slurm_controller_marks_preempted_job():
    cluster = Cluster(mini_hpc(), 1)
    controller = SlurmController()
    controller.accounting.enable_energy_accounting()
    plan = FaultPlan(seed=SEED).add(preemption_after_steps(1))
    injector = FaultInjector(plan)

    def app(cluster, job):
        # An application driving its own step loop surfaces the
        # preemption to Slurm rather than absorbing it.
        for step in range(4):
            injector.check_preemption(step)
            for clock in cluster.clocks:
                clock.advance(0.5)
        return "done"

    try:
        job = controller.submit(
            JobSpec(name="preempt-me", n_nodes=1, n_tasks=1), cluster, app
        )
    finally:
        cluster.detach_management_library()
    assert job.state is JobState.PREEMPTED
    assert job.result is None  # never finished
    assert job.end_time is not None  # accounting window still closed
    rows = controller.accounting.sacct()
    assert len(rows) == 1
    assert job.elapsed_s > 0.0


def test_injector_without_resilience_still_fails_loud():
    # The harness composes with the fail-loud default: injecting a
    # fatal error without a ResilienceConfig crashes the run, exactly
    # like an unhandled NVML error in real instrumentation.
    from repro.nvml import NVMLError

    cluster = Cluster(mini_hpc(), 1)
    plan = FaultPlan(seed=SEED).add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.GPU_IS_LOST,
        )
    )
    try:
        with pytest.raises(NVMLError):
            run_instrumented(
                cluster,
                "SedovBlast",
                n_particles_per_rank=1e5,
                n_steps=2,
                policy=_mandyn(),
                faults=FaultInjector(plan),
            )
    finally:
        cluster.detach_management_library()
