"""Pareto analysis and the online-tuning (AutoDyn) extension."""

import pytest

from repro.core import (
    Metrics,
    OnlineTuningPolicy,
    baseline_policy,
    knee_point,
    pareto_analysis,
    pareto_front,
)
from repro.sph import run_instrumented
from repro.systems import Cluster, mini_hpc

# ---------------------------------------------------------------------------
# Pareto helpers
# ---------------------------------------------------------------------------


def _series():
    return {
        "baseline": Metrics(time_s=1.00, energy_j=1.00),
        "static1005": Metrics(time_s=1.19, energy_j=0.80),
        "mandyn": Metrics(time_s=1.03, energy_j=0.90),
        "dvfs": Metrics(time_s=1.01, energy_j=1.01),  # dominated
        "bad": Metrics(time_s=1.30, energy_j=1.10),  # dominated twice
    }


def test_pareto_front_members():
    front = pareto_front(_series())
    assert "baseline" in front
    assert "mandyn" in front
    assert "static1005" in front
    assert "dvfs" not in front
    assert "bad" not in front
    # Sorted by time: the fastest Pareto point first.
    assert front[0] == "baseline"


def test_dominated_points_name_their_dominators():
    points = {p.label: p for p in pareto_analysis(_series())}
    assert "baseline" in points["dvfs"].dominated_by
    assert points["mandyn"].optimal
    assert len(points["bad"].dominated_by) >= 2


def test_knee_point_is_best_edp_on_front():
    series = _series()
    knee = knee_point(series)
    # mandyn EDP = 0.927; static EDP = 0.952; baseline = 1.0.
    assert knee == "mandyn"


def test_pareto_empty_rejected():
    with pytest.raises(ValueError):
        pareto_analysis({})


def test_single_point_is_optimal():
    points = pareto_analysis({"only": Metrics(1.0, 1.0)})
    assert points[0].optimal


# ---------------------------------------------------------------------------
# Online tuning
# ---------------------------------------------------------------------------

N = 450**3
CANDIDATES = (1410.0, 1200.0, 1005.0)


def _run_auto(steps, rounds=2):
    cluster = Cluster(mini_hpc(), 1)
    try:
        policy = OnlineTuningPolicy(
            cluster.gpus, candidates_mhz=CANDIDATES,
            rounds_per_candidate=rounds,
        )
        result = run_instrumented(
            cluster, "SubsonicTurbulence", N, steps, policy=policy
        )
        return result, policy
    finally:
        cluster.detach_management_library()


def test_autodyn_converges_to_offline_tuning_map():
    steps = 2 * len(CANDIDATES) + 2
    _, policy = _run_auto(steps)
    assert policy.fully_converged
    assert policy.converged_map["MomentumEnergy"] == 1410.0
    assert policy.converged_map["IADVelocityDivCurl"] == 1410.0
    for light in ("XMass", "NormalizationGradh", "DomainDecompAndSync"):
        assert policy.converged_map[light] == 1005.0, light


def test_autodyn_saves_energy_after_convergence():
    steps = 20
    cluster = Cluster(mini_hpc(), 1)
    try:
        base = run_instrumented(
            cluster, "SubsonicTurbulence", N, steps,
            policy=baseline_policy(1410),
        )
    finally:
        cluster.detach_management_library()
    auto, policy = _run_auto(steps)
    assert policy.fully_converged
    e = auto.gpu_energy_j / base.gpu_energy_j
    t = auto.elapsed_s / base.elapsed_s
    assert e < 0.95  # real saving despite exploration overhead
    assert t < 1.08
    assert t * e < 0.99


def test_autodyn_exploration_budget():
    policy = OnlineTuningPolicy(
        [], candidates_mhz=CANDIDATES, rounds_per_candidate=3
    )
    assert policy.exploration_steps() == 9


def test_autodyn_validation():
    with pytest.raises(ValueError):
        OnlineTuningPolicy([], candidates_mhz=())
    with pytest.raises(ValueError):
        OnlineTuningPolicy([], rounds_per_candidate=0)


def test_autodyn_initial_mode_is_max_candidate():
    policy = OnlineTuningPolicy([], candidates_mhz=(1005.0, 1410.0, 1200.0))
    assert policy.initial_mode() == 1410.0
