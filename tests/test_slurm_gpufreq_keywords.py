"""Slurm --gpu-freq keywords and CLI report/sedov paths."""

import pytest

from repro.cli import main
from repro.hardware import KernelLaunch
from repro.slurm import (
    GPU_FREQ_KEYWORDS,
    JobSpec,
    SlurmController,
    resolve_gpu_freq_keyword,
)
from repro.systems import Cluster, mini_hpc
from repro.units import to_mhz

CLOCKS = [210.0 + 15.0 * k for k in range(81)]  # A100 bins, ascending


def test_keyword_resolution_semantics():
    assert resolve_gpu_freq_keyword("low", CLOCKS) == 210.0
    assert resolve_gpu_freq_keyword("high", CLOCKS) == 1410.0
    assert resolve_gpu_freq_keyword("highm1", CLOCKS) == 1395.0
    medium = resolve_gpu_freq_keyword("medium", CLOCKS)
    assert CLOCKS[0] < medium < CLOCKS[-1]
    assert resolve_gpu_freq_keyword("HIGH", CLOCKS) == 1410.0  # case-insensitive


def test_keyword_resolution_edge_cases():
    assert resolve_gpu_freq_keyword("highm1", [1000.0]) == 1000.0
    with pytest.raises(ValueError):
        resolve_gpu_freq_keyword("turbo", CLOCKS)
    with pytest.raises(ValueError):
        resolve_gpu_freq_keyword("low", [])


def test_jobspec_rejects_unknown_keyword():
    with pytest.raises(ValueError):
        JobSpec(name="x", n_nodes=1, n_tasks=1, gpu_freq_mhz="turbo")
    # Known keywords and raw numbers are accepted.
    JobSpec(name="x", n_nodes=1, n_tasks=1, gpu_freq_mhz="highm1")
    JobSpec(name="x", n_nodes=1, n_tasks=1, gpu_freq_mhz=1005.0)
    assert set(GPU_FREQ_KEYWORDS) == {"low", "medium", "high", "highm1"}


def test_submit_with_keyword_applies_clock():
    cluster = Cluster(mini_hpc(), 2)
    controller = SlurmController()

    def app(cl, job):
        cl.gpus[0].execute(KernelLaunch("K", 1e11, 0.0, 1.0))
        cl.comm.barrier()
        return None

    try:
        controller.submit(
            JobSpec(name="kw", n_nodes=1, n_tasks=2, gpu_freq_mhz="highm1"),
            cluster,
            app,
        )
        assert to_mhz(cluster.gpus[0].application_clock_hz) == 1395.0
    finally:
        cluster.detach_management_library()


def test_cli_run_sedov_workload(capsys):
    rc = main(
        ["run", "--workload", "sedov", "--steps", "1", "--particles", "1e6"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "workload=SedovBlast" in out
    assert "Gravity" not in out  # sedov is a hydro-only propagator


def test_cli_report_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "r.json")
    assert main(["run", "--steps", "1", "--particles", "1e6",
                 "--report", path]) == 0
    capsys.readouterr()
    assert main(["report", path]) == 0
    out = capsys.readouterr().out
    assert "window time" in out
    assert "GPU energy per function" in out
    assert "CPU energy per function" in out
