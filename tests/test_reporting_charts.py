"""ASCII chart rendering."""

import pytest

from repro.reporting import bar_chart, line_chart, sparkline


def test_bar_chart_basic():
    out = bar_chart({"a": 1.0, "b": 0.5}, width=20, title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert len(lines) == 3
    # The largest bar is full width.
    assert lines[1].count("█") == 20
    assert lines[2].count("█") == 10


def test_bar_chart_baseline_marker():
    out = bar_chart({"x": 0.5}, width=20, baseline=1.0)
    assert "|" in out  # the reference mark beyond the bar


def test_bar_chart_value_suffix_and_empty():
    out = bar_chart({"x": 2.0}, width=10, unit=" J")
    assert out.endswith("2 J")
    with pytest.raises(ValueError):
        bar_chart({})


def test_bar_chart_all_zero_values():
    out = bar_chart({"a": 0.0, "b": 0.0}, width=10)
    assert "█" not in out


def test_line_chart_renders_grid():
    points = [(0.0, 0.0), (1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]
    out = line_chart(points, width=30, height=8, title="quad",
                     y_label="y", x_label="x")
    lines = out.splitlines()
    assert lines[0] == "quad"
    assert out.count("•") >= 3  # some points may share a cell
    assert "y" in out and "x" in out
    # Axis labels carry the data range.
    assert "9" in lines[1]
    assert lines[-2].strip().startswith("0")


def test_line_chart_needs_two_points():
    with pytest.raises(ValueError):
        line_chart([(0.0, 1.0)])


def test_line_chart_degenerate_ranges():
    out = line_chart([(0.0, 5.0), (0.0, 5.0), (0.0, 5.0)], width=10, height=4)
    assert "•" in out  # flat data still renders


def test_sparkline_shape():
    s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert len(s) == 8
    assert s[0] == "▁" and s[-1] == "█"
    assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
    with pytest.raises(ValueError):
        sparkline([])
