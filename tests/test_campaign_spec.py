"""Campaign specs: validation, grid expansion, content-addressed keys."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    canonical_json,
    policy_label,
    run_key,
)


def _spec(**overrides):
    base = dict(
        name="t",
        workloads=("turbulence",),
        policies=({"kind": "baseline"}, {"kind": "static"}),
        clocks_mhz=(1305.0, 1005.0),
        systems=("miniHPC",),
        particles=(30_000.0,),
        steps=2,
        seeds=(0,),
    )
    base.update(overrides)
    return CampaignSpec(**base)


# ---------------------------------------------------------------------------
# keys
# ---------------------------------------------------------------------------


def test_run_key_is_order_independent():
    a = {"x": 1, "y": {"b": 2.0, "a": 3.0}}
    b = {"y": {"a": 3.0, "b": 2.0}, "x": 1}
    assert run_key(a) == run_key(b)
    assert len(run_key(a)) == 16


def test_canonical_json_rejects_nan():
    with pytest.raises(ValueError):
        canonical_json({"x": float("nan")})


def test_unit_keys_are_stable_across_expansions():
    first = [u.key for u in _spec().expand()]
    second = [u.key for u in _spec().expand()]
    assert first == second
    assert len(set(first)) == len(first)


def test_min_unit_wall_s_does_not_enter_keys():
    plain = [u.key for u in _spec().expand()]
    paced = [u.key for u in _spec(min_unit_wall_s=0.5).expand()]
    assert plain == paced


def test_renaming_campaign_changes_every_key():
    a = {u.key for u in _spec().expand()}
    b = {u.key for u in _spec(name="other").expand()}
    assert not (a & b)


# ---------------------------------------------------------------------------
# expansion
# ---------------------------------------------------------------------------


def test_static_without_freq_expands_over_clocks():
    units = _spec().expand()
    labels = [u.label for u in units]
    assert len(units) == 3  # baseline + 2 clocks
    assert any("static-1305" in lab for lab in labels)
    assert any("static-1005" in lab for lab in labels)


def test_workload_aliases_resolve_in_units():
    units = _spec().expand()
    assert all(u.workload == "SubsonicTurbulence" for u in units)


def test_duplicate_configurations_rejected():
    spec = _spec(
        policies=({"kind": "baseline"}, {"kind": "baseline"}),
        clocks_mhz=(),
    )
    with pytest.raises(ValueError, match="duplicate"):
        spec.expand()


def test_n_units_matches_expansion():
    spec = _spec(seeds=(0, 1), particles=(1e4, 3e4))
    assert spec.n_units() == len(spec.expand()) == 3 * 2 * 2


def test_policy_labels():
    assert policy_label({"kind": "static", "freq_mhz": 1005.0}) == "static-1005"
    assert policy_label({"kind": "mandyn"}) == "mandyn"


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


def test_unknown_system_rejected():
    with pytest.raises(ValueError, match="unknown system"):
        _spec(systems=("notamachine",))


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        _spec(workloads=("notaworkload",))


def test_unknown_policy_kind_rejected():
    with pytest.raises(ValueError, match="unknown policy kind"):
        _spec(policies=({"kind": "magic"},))


def test_unknown_policy_keys_rejected():
    with pytest.raises(ValueError, match="unknown keys"):
        _spec(policies=({"kind": "static", "frequency": 1005},))


def test_static_without_freq_needs_clocks():
    with pytest.raises(ValueError, match="clocks_mhz"):
        _spec(policies=({"kind": "static"},), clocks_mhz=())


def test_unknown_fault_scenario_rejected():
    with pytest.raises(ValueError, match="unknown fault scenario"):
        _spec(fault_scenario="notascenario")


# ---------------------------------------------------------------------------
# (de)serialization
# ---------------------------------------------------------------------------


def test_round_trip_preserves_grid(tmp_path):
    spec = _spec(seeds=(0, 7))
    path = tmp_path / "spec.json"
    spec.save(str(path))
    loaded = CampaignSpec.load(str(path))
    assert [u.key for u in loaded.expand()] == [u.key for u in spec.expand()]


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown campaign spec keys"):
        CampaignSpec.from_dict({"name": "t", "color": "red"})


def test_from_dict_rejects_wrong_schema():
    with pytest.raises(ValueError, match="schema"):
        CampaignSpec.from_dict({"schema": 99, "name": "t"})


def test_load_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json", encoding="utf-8")
    with pytest.raises(ValueError, match="not valid JSON"):
        CampaignSpec.load(str(path))


def test_example_fig7_spec_expands_to_seven_units():
    spec = CampaignSpec.load("examples/campaign_fig7.json")
    units = spec.expand()
    assert len(units) == 7
    labels = {u.label.split("/")[2] for u in units}
    assert labels == {
        "baseline", "dvfs", "mandyn",
        "static-1305", "static-1200", "static-1110", "static-1005",
    }


def test_saved_spec_is_valid_json_with_header(tmp_path):
    path = tmp_path / "spec.json"
    _spec().save(str(path))
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["schema"] == 1
    assert payload["kind"] == "campaign-spec"
