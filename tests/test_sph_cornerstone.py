"""Cornerstone substrate: Morton keys, octree, decomposition, halos."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sph.cornerstone import (
    MORTON_BITS,
    Box,
    build_octree,
    decompose,
    discover_halos,
    key_at_level,
    morton_decode,
    morton_encode,
    plan_exchange,
)

UNIT = Box.cube(0.0, 1.0)


def _points(n, seed=0):
    rng = np.random.default_rng(seed)
    p = rng.uniform(0.0, 1.0, size=(n, 3))
    return p[:, 0], p[:, 1], p[:, 2]


def test_morton_roundtrip_exact():
    x, y, z = _points(500, seed=1)
    keys = morton_encode(x, y, z, UNIT)
    coords = morton_decode(keys)
    from repro.sph.cornerstone.morton import cell_coords

    expected = cell_coords(x, y, z, UNIT)
    assert np.array_equal(coords, expected)


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=25, deadline=None)
def test_morton_roundtrip_property(seed):
    x, y, z = _points(64, seed=seed)
    keys = morton_encode(x, y, z, UNIT)
    coords = morton_decode(keys)
    back = (
        coords[:, 0].astype(np.float64) / (1 << MORTON_BITS)
    )
    assert np.all(np.abs(back - x) < 2.0 ** -(MORTON_BITS - 1))


def test_morton_locality_nearby_points_share_prefix():
    x = np.array([0.5, 0.5 + 1e-7, 0.9])
    y = np.array([0.5, 0.5, 0.1])
    z = np.array([0.5, 0.5, 0.9])
    keys = morton_encode(x, y, z, UNIT)
    level8 = key_at_level(keys, 8)
    assert level8[0] == level8[1]
    assert level8[0] != level8[2]


def test_points_outside_box_rejected():
    with pytest.raises(ValueError):
        morton_encode(
            np.array([1.5]), np.array([0.5]), np.array([0.5]), UNIT
        )


def test_box_validation_and_bounding():
    with pytest.raises(ValueError):
        Box(1.0, 0.0, 0.0, 1.0, 0.0, 1.0)
    x, y, z = _points(100, seed=2)
    box = Box.bounding(x, y, z)
    assert box.xmin <= x.min() and box.xmax >= x.max()


def test_key_at_level_bounds():
    keys = morton_encode(*_points(10), UNIT)
    with pytest.raises(ValueError):
        key_at_level(keys, 25)
    assert np.all(key_at_level(keys, 0) == 0)


def test_octree_partitions_key_space():
    x, y, z = _points(2000, seed=3)
    keys = np.sort(morton_encode(x, y, z, UNIT))
    tree = build_octree(keys, bucket_size=64)
    tree.validate()
    assert tree.counts.sum() == len(keys)
    assert np.all(tree.counts <= 64)


def test_octree_single_bucket_stays_root():
    x, y, z = _points(10, seed=4)
    keys = np.sort(morton_encode(x, y, z, UNIT))
    tree = build_octree(keys, bucket_size=64)
    assert tree.n_leaves == 1


def test_octree_leaf_lookup():
    x, y, z = _points(1000, seed=5)
    keys = np.sort(morton_encode(x, y, z, UNIT))
    tree = build_octree(keys, bucket_size=32)
    leaves = tree.leaf_of_keys(keys)
    assert np.all((0 <= leaves) & (leaves < tree.n_leaves))
    # Counting keys per leaf reproduces tree.counts.
    counted = np.bincount(leaves, minlength=tree.n_leaves)
    assert np.array_equal(counted, tree.counts)


def test_octree_unsorted_keys_rejected():
    with pytest.raises(ValueError):
        build_octree(np.array([5, 3, 1], dtype=np.uint64))


def test_decompose_balances_counts():
    x, y, z = _points(4000, seed=6)
    keys = np.sort(morton_encode(x, y, z, UNIT))
    for n_ranks in (1, 2, 4, 7):
        assignment = decompose(keys, n_ranks)
        ranks = assignment.rank_of_keys(keys)
        counts = np.bincount(ranks, minlength=n_ranks)
        assert counts.sum() == len(keys)
        assert counts.max() - counts.min() <= len(keys) // n_ranks * 0.5 + 2


def test_decompose_ranges_are_contiguous_in_sfc_order():
    x, y, z = _points(1000, seed=7)
    keys = np.sort(morton_encode(x, y, z, UNIT))
    assignment = decompose(keys, 4)
    ranks = assignment.rank_of_keys(keys)
    # Sorted keys must map to non-decreasing ranks.
    assert np.all(np.diff(ranks) >= 0)


def test_plan_exchange_counts_migrations():
    current = np.array([0, 0, 1, 1])
    target = np.array([0, 1, 1, 0])
    plan = plan_exchange(current, target, 2)
    assert plan.total_migrating == 2
    assert plan.send_counts[0, 1] == 1
    assert plan.send_counts[1, 0] == 1
    assert plan.bytes_per_pair()[0, 0] == 0.0


def test_plan_exchange_mismatched_inputs():
    with pytest.raises(ValueError):
        plan_exchange(np.array([0]), np.array([0, 1]), 2)


def test_halo_discovery_finds_boundary_particles():
    rng = np.random.default_rng(8)
    pos = rng.uniform(0, 1, size=(500, 3))
    h = np.full(500, 0.05)
    # Split by x coordinate into 2 ranks.
    ranks = (pos[:, 0] > 0.5).astype(np.int64)
    plan = discover_halos(pos, h, ranks, 2)
    assert plan.total_halos > 0
    # Halos of rank 1 owned by rank 0 sit near the x=0.5 boundary.
    idx = plan.halo_indices.get((0, 1), np.empty(0, dtype=np.int64))
    assert len(idx) > 0
    assert np.all(pos[idx, 0] > 0.5 - 2 * 0.05 - 1e-9)
    consumer_halos = plan.halos_for(1)
    assert set(idx).issubset(set(consumer_halos))


def test_halo_discovery_periodic_wraps():
    pos = np.array([[0.01, 0.5, 0.5], [0.99, 0.5, 0.5]])
    h = np.full(2, 0.04)
    ranks = np.array([0, 1])
    open_plan = discover_halos(pos, h, ranks, 2)
    periodic_plan = discover_halos(pos, h, ranks, 2, box_size=1.0)
    assert periodic_plan.total_halos > open_plan.total_halos


def test_halo_discovery_input_validation():
    with pytest.raises(ValueError):
        discover_halos(np.zeros((3, 3)), np.zeros(2), np.zeros(3), 1)
