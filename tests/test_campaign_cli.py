"""CLI: `repro campaign ...` plus the `--json` output modes."""

import json

import pytest

from repro.cli import main

SPEC = {
    "schema": 1,
    "kind": "campaign-spec",
    "name": "cli-t",
    "systems": ["miniHPC"],
    "workloads": ["SedovBlast"],
    "particles": [30000.0],
    "steps": 2,
    "seeds": [0],
    "policies": [
        {"kind": "baseline"},
        {"kind": "static"},
        {"kind": "dvfs"},
        {"kind": "mandyn"},
    ],
    "clocks_mhz": [1005.0],
}


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC), encoding="utf-8")
    return str(path)


def test_campaign_run_status_resume_report(tmp_path, spec_path, capsys):
    cdir = str(tmp_path / "c")
    assert main(["campaign", "run", "--spec", spec_path, "--dir", cdir]) == 0
    out = capsys.readouterr().out
    assert "4 executed" in out

    assert main(["campaign", "status", "--dir", cdir]) == 0
    out = capsys.readouterr().out
    assert "grid units" in out and "4" in out

    assert main(["campaign", "resume", "--dir", cdir]) == 0
    out = capsys.readouterr().out
    assert "4 cached (skipped), 0 executed" in out

    assert main(["campaign", "report", "--dir", cdir]) == 0
    out = capsys.readouterr().out
    assert "SedovBlast on miniHPC" in out
    assert "EDP vs baseline" in out


def test_campaign_run_parallel_workers(tmp_path, spec_path, capsys):
    cdir = str(tmp_path / "c")
    rc = main(
        ["campaign", "run", "--spec", spec_path, "--dir", cdir,
         "--workers", "2"]
    )
    assert rc == 0
    assert "4 executed" in capsys.readouterr().out


def test_campaign_report_json_is_stable(tmp_path, spec_path, capsys):
    cdir = str(tmp_path / "c")
    main(["campaign", "run", "--spec", spec_path, "--dir", cdir])
    capsys.readouterr()
    main(["campaign", "report", "--dir", cdir, "--json"])
    first = capsys.readouterr().out
    main(["campaign", "report", "--dir", cdir, "--json"])
    second = capsys.readouterr().out
    assert first == second  # byte-identical across invocations
    payload = json.loads(first)
    assert payload["kind"] == "campaign-summary"
    assert payload["n_runs"] == 4
    rows = {r["policy"] for r in payload["groups"][0]["rows"]}
    assert rows == {"baseline", "static-1005", "dvfs", "mandyn"}


def test_campaign_report_out_writes_summary(tmp_path, spec_path, capsys):
    cdir = str(tmp_path / "c")
    main(["campaign", "run", "--spec", spec_path, "--dir", cdir])
    out_path = tmp_path / "summary.json"
    main(["campaign", "report", "--dir", cdir, "--out", str(out_path)])
    capsys.readouterr()
    payload = json.loads(out_path.read_text(encoding="utf-8"))
    assert payload["schema"] == 1


def test_campaign_max_units_limits_execution(tmp_path, spec_path, capsys):
    cdir = str(tmp_path / "c")
    main(["campaign", "run", "--spec", spec_path, "--dir", cdir,
          "--max-units", "1"])
    assert "1 executed" in capsys.readouterr().out
    main(["campaign", "resume", "--dir", cdir])
    assert "1 cached (skipped), 3 executed" in capsys.readouterr().out


def test_campaign_resume_without_spec_errors(tmp_path):
    with pytest.raises(SystemExit, match="campaign run"):
        main(["campaign", "resume", "--dir", str(tmp_path / "nope")])


def test_campaign_report_empty_store_errors(tmp_path):
    with pytest.raises(SystemExit, match="no completed runs"):
        main(["campaign", "report", "--dir", str(tmp_path / "empty")])


# ---------------------------------------------------------------------------
# --json for tune / compare
# ---------------------------------------------------------------------------


def test_tune_json_is_machine_readable_and_stable(capsys):
    argv = ["tune", "--particles", "1e6", "--stride", "9", "--iterations",
            "1", "--json"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert first == second
    payload = json.loads(first)
    assert payload["kind"] == "tune"
    assert "MomentumEnergy" in payload["freq_map"]
    assert list(payload) == sorted(payload)  # stable sorted keys


def test_tune_human_output_unchanged_by_default(capsys):
    argv = ["tune", "--particles", "1e6", "--stride", "9", "--iterations", "1"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "tuned frequencies" in out
    assert "ManDyn frequency map" in out


def test_compare_json_is_machine_readable(capsys):
    argv = ["compare", "--steps", "2", "--particles", "1e7", "--json"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "compare"
    assert payload["rows"]["baseline"]["rel_edp"] == 1.0
    assert set(payload["rows"]) == {
        "baseline", "static 1005", "dvfs", "mandyn"
    }
    for row in payload["rows"].values():
        assert set(row) == {
            "elapsed_s", "gpu_energy_j", "rel_time", "rel_energy", "rel_edp"
        }


def test_compare_human_output_unchanged_by_default(capsys):
    assert main(["compare", "--steps", "2", "--particles", "1e7"]) == 0
    assert "normalized policy comparison" in capsys.readouterr().out


def test_campaign_status_json_matches_service_serializer(
    tmp_path, spec_path, capsys
):
    cdir = str(tmp_path / "c")
    main(["campaign", "run", "--spec", spec_path, "--dir", cdir])
    capsys.readouterr()
    assert main(["campaign", "status", "--dir", cdir, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    # Identical document to the one the service embeds in
    # GET /campaigns/{id} -- one serializer, two transports.
    from repro.campaign import CampaignSpec, RunStore, build_status_doc

    spec = CampaignSpec.load(spec_path)
    assert doc == build_status_doc(RunStore(cdir), spec)
    assert doc["kind"] == "campaign-status"
    assert doc["grid_units"] == 4
    assert doc["done"] == 4 and doc["missing"] == 0
    assert doc["complete"] is True


def test_campaign_status_json_without_spec(tmp_path, capsys):
    from repro.campaign import RunStore

    cdir = str(tmp_path / "bare")
    RunStore(cdir, campaign="bare").record_done(
        "k1",
        {"campaign": "bare"},
        {"metrics": {"elapsed_s": 1.0, "gpu_energy_j": 2.0}},
    )
    assert main(["campaign", "status", "--dir", cdir, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["done"] == 1
    assert doc["grid_units"] is None  # no spec: no grid to compare to
    assert doc["complete"] is None
