"""End-to-end trace properties: completeness, export, reconciliation.

The acceptance bar of the observability layer: for an N-step run the
collector holds exactly one span per hooked function per step per rank,
clock-change instants line up with the controller's ``clock_set_calls``,
the Chrome export is valid and time-ordered, and summed span durations
reconcile with the independently gathered :class:`EnergyReport`.
"""

import json

import pytest

from repro.core import ManDynPolicy
from repro.sph import Simulation, run_instrumented
from repro.systems import Cluster, mini_hpc
from repro.telemetry import (
    RECONCILE_TOL_S,
    TRACK_CLOCKS,
    TRACK_FUNCTIONS,
    TraceCollector,
    max_drift_s,
    read_trace_jsonl,
    reconcile_with_report,
    render_summary,
    summarize_functions,
    to_chrome_trace,
    write_chrome_trace,
    write_trace_jsonl,
)

N_STEPS = 3
N_RANKS = 4


@pytest.fixture
def traced_run():
    # miniHPC allows user application-clock control, so ManDyn performs
    # real (simulated) NVML clock-set calls; 4 ranks span 2 nodes.
    cluster = Cluster(mini_hpc(), N_RANKS)
    collector = TraceCollector.for_cluster(cluster)
    policy = ManDynPolicy(
        {"MomentumEnergy": 1410.0, "XMass": 1005.0}, default_mhz=1110.0
    )
    sim = Simulation(
        cluster, "SubsonicTurbulence", 1e5, policy=policy, telemetry=collector
    )
    result = sim.run(N_STEPS)
    yield cluster, sim, collector, result
    cluster.detach_management_library()


def test_one_span_per_function_per_step_per_rank(traced_run):
    _, sim, collector, _ = traced_run
    spans = collector.spans(TRACK_FUNCTIONS)
    functions = [f.name for f in sim.functions]
    assert len(spans) == len(functions) * N_STEPS * N_RANKS
    for fn in functions:
        for rank in range(N_RANKS):
            for step in range(N_STEPS):
                matching = [
                    s
                    for s in spans
                    if s.name == fn
                    and s.rank == rank
                    and s.args["step"] == step
                ]
                assert len(matching) == 1, (fn, rank, step)


def test_clock_instants_line_up_with_clock_set_calls(traced_run):
    _, sim, collector, result = traced_run
    performed = [
        i
        for i in collector.instants(TRACK_CLOCKS)
        if i.name in ("clock-set", "clock-reset")
    ]
    assert result.clock_set_calls > 0  # ManDyn switches between bins
    assert len(performed) == result.clock_set_calls
    assert (
        collector.metrics.counter_total("clock_set_calls")
        == result.clock_set_calls
    )
    assert (
        collector.metrics.counter_total("clock_set_skipped")
        == result.clock_set_skipped
    )


def test_chrome_export_is_valid_and_ordered(tmp_path, traced_run):
    _, sim, collector, _ = traced_run
    path = str(tmp_path / "trace.json")
    write_chrome_trace(path, collector.events, label="test")
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    events = payload["traceEvents"]
    assert payload["otherData"]["schema"] == 1
    data = [e for e in events if e["ph"] != "M"]
    assert data, "export must carry events"
    assert all(e["ph"] in ("X", "i", "C") for e in data)
    # Global timestamps are non-decreasing.
    ts = [e["ts"] for e in data]
    assert ts == sorted(ts)
    # Per rank, successive spans of one function strictly advance.
    for rank in range(N_RANKS):
        for fn in (f.name for f in sim.functions):
            fn_ts = [
                e["ts"]
                for e in data
                if e["ph"] == "X" and e["pid"] == rank and e["name"] == fn
            ]
            assert len(fn_ts) == N_STEPS
            assert all(a < b for a, b in zip(fn_ts, fn_ts[1:]))
    # Spans have non-negative microsecond durations.
    assert all(e["dur"] >= 0.0 for e in data if e["ph"] == "X")
    # Process metadata names every rank.
    names = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names == {f"rank {r}" for r in range(N_RANKS)}


def test_jsonl_roundtrip_is_lossless(tmp_path, traced_run):
    _, _, collector, _ = traced_run
    path = str(tmp_path / "trace.jsonl")
    write_trace_jsonl(path, collector.events)
    loaded = read_trace_jsonl(path)
    from repro.telemetry.events import event_sort_key

    expected = sorted(collector.events, key=event_sort_key)
    assert loaded == expected  # exact: names, ranks, tracks, timestamps
    # Header is validated: a future schema version is rejected.
    lines = open(path, encoding="utf-8").read().splitlines()
    header = json.loads(lines[0])
    header["schema"] = 99
    bad = tmp_path / "bad.jsonl"
    bad.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    with pytest.raises(ValueError):
        read_trace_jsonl(str(bad))


def test_trace_reconciles_with_energy_report(traced_run):
    _, sim, collector, result = traced_run
    rows = reconcile_with_report(collector.events, result.report)
    assert {r.function for r in rows} == {f.name for f in sim.functions}
    assert max_drift_s(rows) < RECONCILE_TOL_S
    assert all(r.ok() for r in rows)
    # The roll-up really is the sum over rank spans.
    summaries = summarize_functions(collector.events)
    agg = result.report.aggregate_functions()
    for name, summary in summaries.items():
        assert summary.spans == N_STEPS * N_RANKS
        assert summary.total_s == pytest.approx(agg[name].time_s, abs=1e-9)


def test_render_summary_mentions_everything(traced_run):
    _, _, collector, result = traced_run
    text = render_summary(collector, result.report)
    assert "clock_set_calls" in text
    assert "per-function trace roll-up" in text
    assert "trace vs EnergyReport reconciliation" in text
    assert "MomentumEnergy" in text


def test_telemetry_is_opt_in_and_zero_cost():
    cluster = Cluster(mini_hpc(), 1)
    sim = Simulation(cluster, "SedovBlast", 1e5)
    baseline = sim.run(2)
    # No collector => no extra hooks beyond controller + profiler.
    assert len(sim.hooks) == 2
    assert sim.telemetry is None
    cluster.detach_management_library()

    cluster2 = Cluster(mini_hpc(), 1)
    collector = TraceCollector.for_cluster(cluster2)
    sim2 = Simulation(cluster2, "SedovBlast", 1e5, telemetry=collector)
    traced = sim2.run(2)
    assert len(sim2.hooks) == 3
    cluster2.detach_management_library()

    # Tracing must not perturb the measured run at all.
    assert traced.elapsed_s == baseline.elapsed_s
    assert traced.gpu_energy_j == baseline.gpu_energy_j
    assert traced.report.total_j() == baseline.report.total_j()
    assert traced.clock_set_calls == baseline.clock_set_calls


def test_run_instrumented_accepts_telemetry():
    cluster = Cluster(mini_hpc(), 1)
    collector = TraceCollector()  # unbound: Simulation late-binds it
    result = run_instrumented(
        cluster, "SedovBlast", 1e5, 2, telemetry=collector
    )
    cluster.detach_management_library()
    assert collector.bound
    assert len(collector.spans(TRACK_FUNCTIONS)) == 9 * 2
    assert max_drift_s(
        reconcile_with_report(collector.events, result.report)
    ) < RECONCILE_TOL_S


def test_chrome_trace_in_memory_counts(traced_run):
    _, sim, collector, _ = traced_run
    payload = to_chrome_trace(collector.events)
    spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    n_functions = len(sim.functions)
    assert len(spans) == n_functions * N_STEPS * N_RANKS


# ---------------------------------------------------------------------------
# read_trace_jsonl robustness
# ---------------------------------------------------------------------------


def _tiny_trace(tmp_path):
    collector = TraceCollector()
    collector.emit_phase("k", 0, 0.0, 1.0)
    path = str(tmp_path / "trace.jsonl")
    write_trace_jsonl(path, collector.events)
    return path


def test_read_trace_jsonl_skips_blank_lines(tmp_path):
    path = _tiny_trace(tmp_path)
    lines = open(path, encoding="utf-8").read().splitlines()
    padded = "\n\n".join([lines[0], *lines[1:]]) + "\n\n\n"
    open(path, "w", encoding="utf-8").write(padded)
    assert len(read_trace_jsonl(path)) == 1


def test_read_trace_jsonl_names_file_and_line_on_bad_json(tmp_path):
    path = _tiny_trace(tmp_path)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("{truncated\n")
    with pytest.raises(ValueError, match=r"trace\.jsonl:3: not valid JSON"):
        read_trace_jsonl(path)


def test_read_trace_jsonl_schema_mismatch_is_a_clear_error(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"schema": 99, "kind": "trace"}\n', encoding="utf-8")
    with pytest.raises(ValueError, match=r"trace\.jsonl:1: bad trace header"):
        read_trace_jsonl(str(path))


def test_read_trace_jsonl_bad_record_names_line(tmp_path):
    path = _tiny_trace(tmp_path)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"ev": "span", "name": "x"}\n')  # missing required fields
    with pytest.raises(ValueError, match=r"trace\.jsonl:3: bad trace record"):
        read_trace_jsonl(path)


def test_read_trace_jsonl_blank_only_file_is_empty_error(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text("\n\n", encoding="utf-8")
    with pytest.raises(ValueError, match="empty trace file"):
        read_trace_jsonl(str(path))
