"""SimulatedGpu: execution, energy integration, clocks, tracing."""

import pytest

from repro.hardware import (
    GpuError,
    KernelLaunch,
    SimulatedGpu,
    VirtualClock,
    a100_sxm4_80gb,
)
from repro.units import mhz, to_mhz


def _kernel(name="MomentumEnergy", flops=1e12, nbytes=1e11, intensity=1.0):
    return KernelLaunch(name, flops, nbytes, intensity)


def test_execute_advances_clock_by_duration(a100):
    d = a100.execute(_kernel())
    assert d > 0
    assert a100.clock.now == pytest.approx(d)


def test_energy_equals_power_times_time_pinned(a100):
    k = _kernel()
    d = a100.execute(k)
    # Full-intensity kernel at max clock draws exactly TDP while busy.
    assert a100.energy_j == pytest.approx(a100.spec.max_power_w * d, rel=1e-9)


def test_downclock_slows_and_saves_energy(a100):
    k = _kernel()
    d0 = a100.execute(k)
    e0 = a100.energy_j
    a100.set_application_clocks(a100.spec.memory_clock_hz, mhz(1005))
    e_before = a100.energy_j
    d1 = a100.execute(k)
    e1 = a100.energy_j - e_before
    assert d1 > d0
    assert e1 < e0


def test_set_application_clocks_quantizes_and_counts(a100):
    set_hz = a100.set_application_clocks(a100.spec.memory_clock_hz, mhz(1007))
    assert to_mhz(set_hz) == 1005.0
    assert a100.clock_transitions == 1
    # Same bin again: no transition, no latency.
    t = a100.clock.now
    a100.set_application_clocks(a100.spec.memory_clock_hz, mhz(1005))
    assert a100.clock_transitions == 1
    assert a100.clock.now == t


def test_clock_set_charges_latency(a100):
    t0 = a100.clock.now
    a100.set_application_clocks(a100.spec.memory_clock_hz, mhz(1200))
    assert a100.clock.now == pytest.approx(t0 + SimulatedGpu.CLOCK_SET_LATENCY_S)


def test_reset_application_clocks_enables_dvfs(a100):
    assert not a100.dvfs_active
    a100.reset_application_clocks()
    assert a100.dvfs_active
    assert a100.application_clock_hz is None


def test_idle_energy_accrues_on_external_advance(a100):
    a100.clock.advance(1.0)
    assert 0 < a100.energy_j <= a100.spec.idle_power_w * 1.0 + 1e-9


def test_kernel_records_accumulate(a100):
    k = _kernel()
    a100.execute(k)
    a100.execute(k)
    rec = a100.kernel_records["MomentumEnergy"]
    assert rec.launches == 2
    assert rec.flops == pytest.approx(2e12)
    assert rec.energy_joules == pytest.approx(a100.energy_j, rel=1e-9)
    assert rec.busy_seconds == pytest.approx(a100.busy_seconds)


def test_launch_overhead_draws_idle_power(a100):
    k = KernelLaunch("K", flops=0.0, bytes_moved=0.0, launch_overhead=0.5)
    d = a100.execute(k)
    assert d == pytest.approx(0.5)
    assert a100.energy_j <= a100.spec.idle_power_w * 0.5 + 1e-9
    assert a100.busy_seconds == 0.0


def test_governed_execution_tracks_governor_clock(a100):
    a100.reset_application_clocks()
    a100.execute(_kernel(intensity=1.0))
    # Full-intensity kernel boosts the governor to max clock.
    assert to_mhz(a100.current_clock_hz) == 1410.0


def test_governed_idle_decays_clock(a100):
    a100.reset_application_clocks()
    a100.execute(_kernel())
    busy_clock = a100.current_clock_hz
    a100.clock.advance(2.0)
    assert a100.current_clock_hz < busy_clock


def test_frequency_trace_records_points(a100):
    a100.reset_application_clocks()
    a100.start_frequency_trace()
    a100.execute(_kernel())
    a100.clock.advance(1.0)
    trace = a100.stop_frequency_trace()
    assert len(trace) >= 2
    times = [t for t, _ in trace]
    assert times == sorted(times)
    # Tracing stops cleanly.
    assert a100.stop_frequency_trace() == []


def test_utilization_reflects_busy_fraction(a100):
    a100.execute(_kernel(flops=5e12, nbytes=0.0))  # ~0.5s busy
    a100.clock.advance(0.5)
    u = a100.utilization(window_s=1.0)
    assert 0.3 < u < 0.8


def test_cannot_change_clocks_mid_kernel(a100):
    # Simulate re-entrancy guard via the private flag.
    a100._executing = True
    with pytest.raises(GpuError):
        a100.set_application_clocks(a100.spec.memory_clock_hz, mhz(1005))
    with pytest.raises(GpuError):
        a100.execute(_kernel())
    a100._executing = False


def test_two_gpus_on_one_clock_both_integrate():
    clk = VirtualClock()
    g1 = SimulatedGpu(a100_sxm4_80gb(), clk, index=0)
    g2 = SimulatedGpu(a100_sxm4_80gb(), clk, index=1)
    g1.execute(_kernel())
    # g2 idles while g1 runs (shared clock).
    assert g2.energy_j > 0
    assert g2.busy_seconds == 0.0
    assert g1.busy_seconds > 0
