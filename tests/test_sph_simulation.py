"""Instrumented simulation: model mode, numeric mode, policies."""

import numpy as np
import pytest

from repro.core import DvfsPolicy, ManDynPolicy, StaticFrequencyPolicy, baseline_policy
from repro.sph import NumericProblem, Simulation, run_instrumented
from repro.sph.init import (
    EvrardConfig,
    TurbulenceConfig,
    make_evrard,
    make_evrard_eos,
    make_evrard_gravity,
    make_turbulence,
    make_turbulence_eos,
)
from repro.systems import Cluster, lumi_g, mini_hpc


def test_model_mode_runs_and_reports(mini_cluster):
    result = run_instrumented(
        mini_cluster, "SubsonicTurbulence", 10e6, n_steps=3
    )
    assert result.steps == 3
    assert result.elapsed_s > 0
    assert result.gpu_energy_j > 0
    functions = result.report.aggregate_functions()
    assert "MomentumEnergy" in functions
    assert functions["MomentumEnergy"].calls == 3
    assert "Gravity" not in functions


def test_evrard_workload_includes_gravity(mini_cluster):
    result = run_instrumented(
        mini_cluster, "EvrardCollapse", 10e6, n_steps=2
    )
    assert "Gravity" in result.report.aggregate_functions()


def test_unknown_workload_rejected(mini_cluster):
    with pytest.raises(ValueError):
        Simulation(mini_cluster, "KelvinHelmholtz", 1e6)


def test_initialization_precedes_window(mini_cluster):
    sim = Simulation(mini_cluster, "SubsonicTurbulence", 10e6)
    result = sim.run(2)
    report = result.report.ranks[0]
    # Window opens after the init phase (Fig. 3's PMT-vs-Slurm gap).
    assert report.window_start_s > 0
    assert report.window_end_s > report.window_start_s


def test_initialize_is_idempotent(mini_cluster):
    sim = Simulation(mini_cluster, "SubsonicTurbulence", 10e6)
    sim.initialize()
    t = mini_cluster.elapsed_s()
    sim.initialize()
    assert mini_cluster.elapsed_s() == t


def test_mandyn_switches_clocks_per_function(mini_cluster):
    policy = ManDynPolicy({"MomentumEnergy": 1410.0}, default_mhz=1005.0)
    result = run_instrumented(
        mini_cluster, "SubsonicTurbulence", 10e6, n_steps=2, policy=policy
    )
    # Two switches per step (into MomentumEnergy and out at Timestep),
    # plus the initial pin.
    assert result.clock_set_calls >= 4


def test_static_policy_pins_once(mini_cluster):
    result = run_instrumented(
        mini_cluster,
        "SubsonicTurbulence",
        10e6,
        n_steps=3,
        policy=StaticFrequencyPolicy(1110.0),
    )
    assert result.clock_set_calls == 1
    from repro.units import to_mhz

    assert to_mhz(mini_cluster.gpus[0].application_clock_hz) == 1110.0


def test_dvfs_policy_leaves_governor_in_charge(mini_cluster):
    run_instrumented(
        mini_cluster,
        "SubsonicTurbulence",
        10e6,
        n_steps=2,
        policy=DvfsPolicy(),
    )
    assert mini_cluster.gpus[0].dvfs_active


def test_multi_rank_run_synchronizes(lumi_cluster):
    result = run_instrumented(
        lumi_cluster, "SubsonicTurbulence", 5e6, n_steps=2
    )
    times = [c.now for c in lumi_cluster.clocks]
    assert max(times) - min(times) < 1e-9  # post-collective sync
    assert len(result.report.ranks) == 16


def test_numeric_mode_turbulence_runs_physics():
    cfg = TurbulenceConfig(nside=10, seed=21)
    parts = make_turbulence(cfg)
    cluster = Cluster(mini_hpc(), 2)
    try:
        problem = NumericProblem(
            particles=parts,
            n_ranks=2,
            eos=make_turbulence_eos(cfg),
            box_size=cfg.box_size,
        )
        sim = Simulation(
            cluster,
            "SubsonicTurbulence",
            n_particles_per_rank=parts.n // 2,
            numeric=problem,
        )
        result = sim.run(3)
        assert len(result.dt_history) == 3
        assert all(dt > 0 for dt in result.dt_history)
        assert parts.rho is not None
        # Momentum stays conserved through the integration.
        assert np.all(np.abs(parts.momentum()) < 1e-10)
        # Workload models picked up the real decomposition counts.
        total_model = sum(w.n_particles for w in sim.workloads)
        assert total_model == pytest.approx(parts.n)
    finally:
        cluster.detach_management_library()


def test_numeric_mode_evrard_collapses():
    cfg = EvrardConfig(n_particles=1500, seed=22)
    parts = make_evrard(cfg)
    cluster = Cluster(mini_hpc(), 1)
    try:
        problem = NumericProblem(
            particles=parts,
            n_ranks=1,
            eos=make_evrard_eos(cfg),
            gravity=make_evrard_gravity(cfg),
        )
        sim = Simulation(
            cluster, "EvrardCollapse", parts.n, numeric=problem
        )
        r0 = np.sqrt(np.mean(parts.x**2 + parts.y**2 + parts.z**2))
        sim.run(8)
        r1 = np.sqrt(np.mean(parts.x**2 + parts.y**2 + parts.z**2))
        # Cold sphere under self-gravity: it contracts.
        assert r1 < r0
        # And gains infall kinetic energy.
        assert parts.kinetic_energy() > 0
    finally:
        cluster.detach_management_library()


def test_numeric_rank_mismatch_rejected(mini_cluster):
    parts = make_turbulence(TurbulenceConfig(nside=6))
    problem = NumericProblem(particles=parts, n_ranks=4, box_size=1.0)
    with pytest.raises(ValueError):
        Simulation(mini_cluster, "SubsonicTurbulence", 100.0, numeric=problem)


def test_run_validates_steps(mini_cluster):
    sim = Simulation(mini_cluster, "SubsonicTurbulence", 1e6)
    with pytest.raises(ValueError):
        sim.run(0)


def test_result_edp_property(mini_cluster):
    result = run_instrumented(
        mini_cluster, "SubsonicTurbulence", 10e6, n_steps=1
    )
    assert result.edp == pytest.approx(
        result.elapsed_s * result.gpu_energy_j
    )
