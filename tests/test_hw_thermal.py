"""Thermal model: temperature dynamics and clock throttling."""

import dataclasses

import pytest

from repro import nvml
from repro.hardware import (
    KernelLaunch,
    SimulatedGpu,
    ThermalSpec,
    VirtualClock,
    a100_pcie_40gb,
    a100_sxm4_80gb,
)
from repro.units import mhz, to_mhz


def _hot_spec():
    """An A100 with constrained cooling: full power exceeds the limit."""
    base = a100_pcie_40gb()
    return dataclasses.replace(
        base,
        thermal=ThermalSpec(
            ambient_c=35.0,
            resistance_c_per_w=0.24,  # steady state at 250 W: 95 C
            tau_s=5.0,
            throttle_temp_c=88.0,
        ),
    )


def test_idle_device_stays_at_ambient():
    gpu = SimulatedGpu(a100_sxm4_80gb(), VirtualClock())
    gpu.clock.advance(100.0)
    # Idle draw warms the die a little above ambient, far below limit.
    assert gpu.temperature_c < 45.0
    assert not gpu.thermal_throttle_active


def test_temperature_rises_under_load_toward_steady_state():
    gpu = SimulatedGpu(a100_sxm4_80gb(), VirtualClock())
    spec = gpu.spec
    k = KernelLaunch("K", flops=5e13, bytes_moved=0.0, power_intensity=1.0)
    t0 = gpu.temperature_c
    gpu.execute(k)  # ~5 s at full power
    assert gpu.temperature_c > t0
    steady = spec.thermal.steady_state_c(spec.max_power_w)
    assert gpu.temperature_c < steady + 1e-9
    # Long sustained load approaches (but does not exceed) steady state.
    for _ in range(20):
        gpu.execute(k)
    assert gpu.temperature_c == pytest.approx(steady, abs=1.0)


def test_stock_presets_never_throttle_at_full_power():
    for factory in (a100_sxm4_80gb, a100_pcie_40gb):
        spec = factory()
        steady = spec.thermal.steady_state_c(spec.max_power_w)
        assert steady < spec.thermal.throttle_temp_c


def test_temperature_cools_when_idle():
    gpu = SimulatedGpu(a100_sxm4_80gb(), VirtualClock())
    k = KernelLaunch("K", flops=5e13, bytes_moved=0.0, power_intensity=1.0)
    for _ in range(10):
        gpu.execute(k)
    hot = gpu.temperature_c
    gpu.clock.advance(200.0)
    assert gpu.temperature_c < hot


def test_constrained_cooling_triggers_throttling():
    gpu = SimulatedGpu(_hot_spec(), VirtualClock())
    k = KernelLaunch("K", flops=2e13, bytes_moved=0.0, power_intensity=1.0)
    for _ in range(30):
        gpu.execute(k)
    assert gpu.temperature_c > gpu.spec.thermal.throttle_temp_c
    assert gpu.thermal_throttle_active
    assert gpu.current_clock_hz < gpu.spec.max_clock_hz
    # The throttled clock is still a supported bin.
    assert gpu.current_clock_hz in gpu.spec.supported_clocks_hz()


def test_throttling_slows_execution():
    cool = SimulatedGpu(a100_pcie_40gb(), VirtualClock())
    hot = SimulatedGpu(_hot_spec(), VirtualClock())
    k = KernelLaunch("K", flops=2e13, bytes_moved=0.0, power_intensity=1.0)
    d_cool = sum(cool.execute(k) for _ in range(30))
    d_hot = sum(hot.execute(k) for _ in range(30))
    assert d_hot > d_cool * 1.02


def test_downclocking_avoids_throttling():
    gpu = SimulatedGpu(_hot_spec(), VirtualClock())
    gpu.set_application_clocks(gpu.spec.memory_clock_hz, mhz(1005))
    k = KernelLaunch("K", flops=2e13, bytes_moved=0.0, power_intensity=1.0)
    for _ in range(30):
        gpu.execute(k)
    # At 1005 MHz the power (and thus temperature) stays below the limit.
    assert not gpu.thermal_throttle_active
    assert to_mhz(gpu.current_clock_hz) == 1005.0


def test_throttle_cap_floor():
    spec = ThermalSpec(throttle_temp_c=80.0, throttle_mhz_per_c=100.0)
    cap = spec.throttle_cap_hz(200.0, mhz(1410))
    assert cap == pytest.approx(0.3 * mhz(1410))


def test_nvml_reports_model_temperature():
    clk = VirtualClock()
    gpu = SimulatedGpu(a100_sxm4_80gb(), clk)
    nvml.attach_devices([gpu])
    nvml.nvmlInit()
    h = nvml.nvmlDeviceGetHandleByIndex(0)
    gpu.execute(KernelLaunch("K", 5e13, 0.0, 1.0))
    reported = nvml.nvmlDeviceGetTemperature(h, nvml.NVML_TEMPERATURE_GPU)
    assert reported == int(round(gpu.temperature_c))
