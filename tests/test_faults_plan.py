"""FaultPlan / FaultSpec model: validation, matching, scenarios."""

from __future__ import annotations

import pytest

from repro.faults import (
    OP_JOB_STEP,
    OP_PMT_READ,
    SCENARIO_DESCRIPTIONS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    build_plan,
    preemption_after_steps,
    preemption_at,
    scenario_names,
)


def test_spec_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        FaultSpec(op="", kind=FaultKind.TIMEOUT)
    with pytest.raises(ValueError):
        FaultSpec(op="x", kind=FaultKind.TIMEOUT, after_calls=0)
    with pytest.raises(ValueError):
        FaultSpec(op="x", kind=FaultKind.TIMEOUT, count=0)
    with pytest.raises(ValueError):
        FaultSpec(op="x", kind=FaultKind.TIMEOUT, probability=0.0)
    with pytest.raises(ValueError):
        FaultSpec(op="x", kind=FaultKind.TIMEOUT, probability=1.5)
    with pytest.raises(ValueError):
        FaultSpec(op="x", kind=FaultKind.TIMEOUT, latency_s=-1.0)


def test_sensor_kinds_only_apply_to_pmt_read():
    for kind in (FaultKind.DROPOUT, FaultKind.STUCK, FaultKind.NON_MONOTONE):
        with pytest.raises(ValueError):
            FaultSpec(op="nvmlDeviceGetPowerUsage", kind=kind)
        FaultSpec(op=OP_PMT_READ, kind=kind)  # fine


def test_preempt_only_applies_to_job_op():
    with pytest.raises(ValueError):
        FaultSpec(op=OP_PMT_READ, kind=FaultKind.PREEMPT)
    FaultSpec(op=OP_JOB_STEP, kind=FaultKind.PREEMPT)  # fine


def test_matching_is_rank_aware_and_supports_wildcards():
    spec = FaultSpec(
        op="rsmi_dev_gpu_clk_freq_*", kind=FaultKind.TIMEOUT, rank=1
    )
    assert spec.matches("rsmi_dev_gpu_clk_freq_set", 1)
    assert spec.matches("rsmi_dev_gpu_clk_freq_reset", 1)
    assert not spec.matches("rsmi_dev_gpu_clk_freq_set", 0)
    assert not spec.matches("rsmi_dev_power_ave_get", 1)
    wild = FaultSpec(op="*", kind=FaultKind.TIMEOUT)
    assert wild.matches("anything", None)


def test_describe_mentions_trigger_and_extent():
    spec = FaultSpec(
        op="nvmlDeviceSetApplicationsClocks",
        kind=FaultKind.GPU_IS_LOST,
        rank=0,
        after_calls=3,
    )
    text = spec.describe()
    assert "gpu-is-lost" in text
    assert "rank 0" in text
    assert "call >= 3" in text
    assert "permanent" in text
    bounded = FaultSpec(
        op="x", kind=FaultKind.TIMEOUT, count=2, probability=0.5
    )
    assert "2x" in bounded.describe()
    assert "p=0.5" in bounded.describe()


def test_plan_builder_is_chainable_and_iterable():
    plan = (
        FaultPlan(seed=3)
        .add(FaultSpec(op="a", kind=FaultKind.TIMEOUT))
        .add(FaultSpec(op="b", kind=FaultKind.NO_PERMISSION))
    )
    assert len(plan) == 2
    assert [s.op for s in plan] == ["a", "b"]
    listing = plan.describe()
    assert "seed 3" in listing
    assert "[1]" in listing


def test_empty_plan_describes_itself():
    assert "(no faults)" in FaultPlan().describe()


def test_preemption_helpers():
    at = preemption_at(2.5)
    assert at.kind is FaultKind.PREEMPT and at.at_time_s == 2.5
    after = preemption_after_steps(3)
    assert after.after_calls == 4 and after.count == 1


def test_every_scenario_builds_and_is_described():
    names = scenario_names()
    assert set(names) == set(SCENARIO_DESCRIPTIONS)
    for name in names:
        plan = build_plan(name, seed=11, n_ranks=4)
        assert plan.seed == 11
        assert plan.name == name
        assert len(plan) >= 1


def test_unknown_scenario_raises_with_known_names():
    with pytest.raises(ValueError, match="gpu-lost"):
        build_plan("not-a-scenario")
