"""Downsampling time series and incremental estimators."""

import math

import pytest

from repro.monitor import Bucket, Ema, RateTracker, TimeSeries, WindowDelta


def test_series_below_capacity_keeps_every_sample():
    ts = TimeSeries(capacity=8)
    for i in range(5):
        ts.append(float(i), float(i * 10))
    assert len(ts) == 5
    assert ts.aggregated == 0
    assert ts.points() == [(float(i), float(i * 10)) for i in range(5)]
    assert ts.last == 40.0
    assert ts.last_t_s == 4.0


def test_series_compacts_at_capacity_and_doubles_stride():
    ts = TimeSeries(capacity=4)
    for i in range(4):
        ts.append(float(i), float(i))
    # Reaching capacity triggers a pairwise merge: 4 -> 2 buckets.
    assert ts.stride == 2
    assert len(ts._buckets) == 2
    assert ts.compactions == 1
    b0, b1 = ts.buckets()
    assert b0.n == 2 and b0.mean == pytest.approx(0.5)
    assert b1.n == 2 and b1.mean == pytest.approx(2.5)


def test_series_memory_stays_bounded_forever():
    ts = TimeSeries(capacity=16)
    for i in range(10_000):
        ts.append(float(i), math.sin(i / 100.0))
    assert len(ts) <= 16
    assert ts.n_samples == 10_000
    assert ts.aggregated == 10_000 - len(ts)
    # The envelope survives aggregation: min/max of sin are preserved.
    assert ts.min == pytest.approx(-1.0, abs=1e-3)
    assert ts.max == pytest.approx(1.0, abs=1e-3)


def test_series_mean_exact_under_compaction():
    ts = TimeSeries(capacity=4)
    values = list(range(100))
    for i, v in enumerate(values):
        ts.append(float(i), float(v))
    # Bucket means are sample-count weighted, so the global mean is exact.
    assert ts.mean == pytest.approx(sum(values) / len(values))


def test_series_spans_whole_run_after_compaction():
    ts = TimeSeries(capacity=8)
    for i in range(1000):
        ts.append(float(i), 1.0)
    buckets = ts.buckets()
    assert buckets[0].t_s < 200.0  # oldest data still represented
    assert buckets[-1].t_s == 999.0


def test_series_to_dict_roundtrips_stats():
    ts = TimeSeries(capacity=4)
    for i in range(10):
        ts.append(float(i), float(i))
    d = ts.to_dict()
    assert d["n_samples"] == 10
    assert d["aggregated"] == ts.aggregated
    assert d["last"] == 9.0
    assert len(d["points"]) == len(ts)


def test_series_rejects_tiny_capacity():
    with pytest.raises(ValueError):
        TimeSeries(capacity=1)


def test_bucket_absorb_merges_stats():
    a = Bucket.of(0.0, 10.0)
    a.absorb(Bucket.of(1.0, 20.0))
    assert a.n == 2
    assert a.mean == 15.0
    assert a.min_v == 10.0 and a.max_v == 20.0
    assert a.last == 20.0 and a.t_s == 1.0


def test_ema_converges_to_constant_signal():
    ema = Ema(tau_s=1.0)
    for i in range(100):
        v = ema.update(i * 0.1, 100.0)
    assert v == pytest.approx(100.0)


def test_ema_adapts_alpha_to_sample_spacing():
    # One 2*tau jump should weigh the new sample by 1 - e^-2 regardless
    # of how the elapsed time was delivered.
    one = Ema(tau_s=1.0)
    one.update(0.0, 0.0)
    coarse = one.update(2.0, 1.0)
    assert coarse == pytest.approx(1.0 - math.exp(-2.0))


def test_ema_rejects_bad_tau():
    with pytest.raises(ValueError):
        Ema(tau_s=0.0)


def test_rate_tracker_difference_quotient():
    r = RateTracker()
    assert r.update(0.0, 100.0) == 0.0  # no rate from one sample
    assert r.update(2.0, 150.0) == pytest.approx(25.0)
    assert r.update(2.0, 160.0) == 0.0  # zero dt guarded


def test_window_delta_trailing_window():
    w = WindowDelta(window_s=1.0)
    assert w.update(0.0, 0.0) == 0.0
    assert w.update(0.5, 5.0) == pytest.approx(5.0)
    assert w.update(1.0, 10.0) == pytest.approx(10.0)
    # At t=1.6 the t=0.0 sample ages out; the t=0.5 sample is kept as
    # the boundary so the delta always covers >= the window span.
    assert w.update(1.6, 16.0) == pytest.approx(11.0)
    assert w.span_s == pytest.approx(1.1)


def test_window_delta_rejects_bad_window():
    with pytest.raises(ValueError):
        WindowDelta(window_s=-1.0)
