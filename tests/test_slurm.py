"""Slurm emulation: jobs, energy accounting, sacct, plugins."""

import pytest

from repro.hardware import KernelLaunch
from repro.slurm import (
    AccountingDatabase,
    JobSpec,
    JobState,
    SlurmController,
    format_consumed_energy,
    format_elapsed,
    get_plugin,
)
from repro.systems import Cluster, cscs_a100, mini_hpc


def _app_kernel(steps=2):
    def app(cluster, job):
        k = KernelLaunch("MomentumEnergy", 1e12, 1e11, 1.0)
        for _ in range(steps):
            for rank in range(cluster.n_ranks):
                cluster.gpu_of_rank(rank).execute(k)
            cluster.comm.barrier()
        return "done"

    return app


@pytest.fixture
def controller():
    ctl = SlurmController()
    ctl.accounting.enable_energy_accounting()
    return ctl


def test_job_lifecycle_and_energy(controller):
    cluster = Cluster(cscs_a100(), 4)
    try:
        spec = JobSpec(name="turb", n_nodes=1, n_tasks=4)
        job = controller.submit(spec, cluster, _app_kernel())
        assert job.state is JobState.COMPLETED
        assert job.result == "done"
        assert job.start_time > job.submit_time  # scheduling delay
        assert job.elapsed_s > 0
        assert job.consumed_energy_j > 0
    finally:
        cluster.detach_management_library()


def test_accounting_window_excludes_presubmit_energy(controller):
    cluster = Cluster(cscs_a100(), 4)
    try:
        # Burn energy before the job exists.
        cluster.clocks[0].advance(100.0)
        cluster.comm.barrier()
        pre = cluster.total_node_energy_j()
        job = controller.submit(
            JobSpec(name="turb", n_nodes=1, n_tasks=4), cluster, _app_kernel()
        )
        # ConsumedEnergy covers the job window only (pm_counters staleness
        # allows a tiny slack of one publish tick).
        assert job.consumed_energy_j < cluster.total_node_energy_j() - pre * 0.5
    finally:
        cluster.detach_management_library()


def test_sacct_fields(controller):
    cluster = Cluster(cscs_a100(), 4)
    try:
        job = controller.submit(
            JobSpec(name="evrard", n_nodes=1, n_tasks=4), cluster, _app_kernel()
        )
        rows = controller.accounting.sacct(
            job.job_id,
            fields=("JobID", "JobName", "State", "Elapsed",
                    "ConsumedEnergy", "ConsumedEnergyRaw", "NNodes"),
        )
        row = rows[0]
        assert row["JobName"] == "evrard"
        assert row["State"] == "COMPLETED"
        assert row["NNodes"] == "1"
        assert float(row["ConsumedEnergyRaw"]) == pytest.approx(
            job.consumed_energy_j, abs=1.0
        )
    finally:
        cluster.detach_management_library()


def test_energy_accounting_disabled_by_default():
    db = AccountingDatabase()
    assert not db.energy_accounting_enabled
    db.enable_energy_accounting()
    assert db.energy_accounting_enabled
    db.enable_energy_accounting()  # idempotent
    assert db.tres.count("energy") == 1


def test_gpu_freq_flag_applies_on_permissive_system(controller):
    cluster = Cluster(mini_hpc(), 2)
    try:
        spec = JobSpec(name="turb", n_nodes=1, n_tasks=2, gpu_freq_mhz=900.0)
        controller.submit(spec, cluster, _app_kernel(steps=1))
        from repro.units import to_mhz

        assert to_mhz(cluster.gpus[0].application_clock_hz) == 900.0
    finally:
        cluster.detach_management_library()


def test_gpu_freq_flag_rejected_on_restricted_system(controller):
    cluster = Cluster(cscs_a100(), 4)
    try:
        spec = JobSpec(name="turb", n_nodes=1, n_tasks=4, gpu_freq_mhz=900.0)
        with pytest.raises(PermissionError):
            controller.submit(spec, cluster, _app_kernel())
    finally:
        cluster.detach_management_library()


def test_failed_app_marks_job_failed(controller):
    cluster = Cluster(cscs_a100(), 4)
    try:
        def bad_app(cluster, job):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            controller.submit(
                JobSpec(name="bad", n_nodes=1, n_tasks=4), cluster, bad_app
            )
        rows = controller.accounting.sacct()
        assert rows[0]["State"] == "FAILED"
    finally:
        cluster.detach_management_library()


def test_node_count_mismatch_rejected(controller):
    cluster = Cluster(cscs_a100(), 4)
    try:
        with pytest.raises(ValueError):
            controller.submit(
                JobSpec(name="x", n_nodes=3, n_tasks=12), cluster, _app_kernel()
            )
    finally:
        cluster.detach_management_library()


def test_jobspec_validation():
    with pytest.raises(ValueError):
        JobSpec(name="x", n_nodes=0, n_tasks=1)
    with pytest.raises(ValueError):
        JobSpec(name="x", n_nodes=4, n_tasks=2)


def test_rapl_plugin_misses_gpu_energy():
    cluster = Cluster(cscs_a100(), 4)
    try:
        rapl = get_plugin("rapl")
        ipmi = get_plugin("ipmi")
        cluster.gpus[0].execute(KernelLaunch("K", 1e13, 0.0, 1.0))
        cluster.comm.barrier()
        node = cluster.nodes[0]
        assert rapl(node, None) < ipmi(node, None)
    finally:
        cluster.detach_management_library()


def test_unknown_plugin_rejected():
    with pytest.raises(ValueError):
        get_plugin("telepathy")


def test_format_helpers():
    assert format_consumed_energy(12_500_000) == "12.50M"
    assert format_consumed_energy(999.0) == "999"
    assert format_consumed_energy(2.4e9) == "2.40G"
    assert format_elapsed(3_725) == "01:02:05"
    assert format_elapsed(90_000) == "1-01:00:00"
