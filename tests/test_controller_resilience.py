"""FrequencyController resilience: retries, circuit breaker, restore."""

from __future__ import annotations

import pytest

from repro import nvml, rocm
from repro.core import (
    DegradationRecord,
    FrequencyController,
    ManDynPolicy,
    ResilienceConfig,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.hardware import (
    SimulatedGpu,
    VirtualClock,
    a100_sxm4_80gb,
    mi250x_gcd,
)
from repro.nvml import NVMLError
from repro.telemetry import TRACK_FAULTS, TraceCollector
from repro.units import to_mhz


def _nvidia_rig(n: int = 2):
    clocks = [VirtualClock() for _ in range(n)]
    gpus = [
        SimulatedGpu(a100_sxm4_80gb(), clocks[i], index=i) for i in range(n)
    ]
    nvml.attach_devices(gpus)
    nvml.nvmlInit()
    return clocks, gpus


def _amd_rig(n: int = 2):
    clocks = [VirtualClock() for _ in range(n)]
    gpus = [SimulatedGpu(mi250x_gcd(), clocks[i], index=i) for i in range(n)]
    rocm.attach_devices(gpus)
    rocm.rsmi_init()
    return clocks, gpus


def _policy():
    # Devices boot pinned at their default clock, so every bin here is
    # off-default and distinct: each before_function is a real vendor
    # call (the same-bin skip never kicks in).
    return ManDynPolicy(
        {"Hot": 1395.0, "Cold": 1005.0}, default_mhz=1200.0
    )


def _amd_policy():
    return ManDynPolicy({"Hot": 1600.0, "Cold": 800.0}, default_mhz=1200.0)


def test_resilience_config_validation():
    with pytest.raises(ValueError):
        ResilienceConfig(max_retries=-1)
    with pytest.raises(ValueError):
        ResilienceConfig(backoff_s=-0.1)
    with pytest.raises(ValueError):
        ResilienceConfig(backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        ResilienceConfig(breaker_threshold=0)
    cfg = ResilienceConfig(backoff_s=0.01, backoff_multiplier=3.0)
    assert cfg.backoff_for_attempt(0) == pytest.approx(0.01)
    assert cfg.backoff_for_attempt(2) == pytest.approx(0.09)


def test_fail_loud_without_config():
    _, gpus = _nvidia_rig(1)
    controller = FrequencyController(gpus, _policy())
    plan = FaultPlan().add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.NO_PERMISSION,
        )
    )
    with FaultInjector(plan):
        with pytest.raises(NVMLError):
            controller.before_function("Hot", 0)
    assert controller.degradations == []


def test_transient_timeouts_are_retried_and_absorbed():
    clocks, gpus = _nvidia_rig(1)
    controller = FrequencyController(
        gpus, _policy(), resilience=ResilienceConfig(max_retries=2)
    )
    # Two timeouts, then the call goes through on the second retry.
    plan = FaultPlan().add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.TIMEOUT,
            count=2,
            latency_s=0.001,
        )
    )
    t0 = clocks[0].now
    with FaultInjector(plan, clocks=clocks):
        controller.before_function("Hot", 0)
    assert controller.retries_performed == 2
    assert controller.vendor_errors == 2
    assert controller.degradations == []
    assert gpus[0].application_clock_hz == pytest.approx(1395e6)
    # Fault latency plus both deterministic backoffs burned on the clock.
    expected = 2 * 0.001 + 0.002 + 0.004
    assert clocks[0].now - t0 >= expected - 1e-12


def test_retry_exhaustion_counts_toward_breaker_not_crash():
    _, gpus = _nvidia_rig(1)
    controller = FrequencyController(
        gpus,
        _policy(),
        resilience=ResilienceConfig(max_retries=1, breaker_threshold=2),
    )
    plan = FaultPlan().add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks", kind=FaultKind.TIMEOUT
        )
    )
    with FaultInjector(plan):
        controller.before_function("Hot", 0)  # retry, fail: strike 1
        assert not controller.is_degraded(0)
        controller.before_function("Cold", 0)  # strike 2: breaker trips
    assert controller.is_degraded(0)
    assert gpus[0].dvfs_active


def test_fatal_error_degrades_immediately_and_controller_goes_quiet():
    clocks, gpus = _nvidia_rig(2)
    collector = TraceCollector(clocks=clocks, gpus=gpus)
    controller = FrequencyController(
        gpus, _policy(), telemetry=collector,
        resilience=ResilienceConfig(),
    )
    plan = FaultPlan().add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.GPU_IS_LOST,
            rank=0,
        )
    )
    injector = FaultInjector(plan)
    with injector:
        controller.before_function("Hot", 0)
        controller.before_function("Hot", 1)
        # Degraded rank 0 stops issuing vendor calls entirely.
        calls_after_trip = len(injector.records)
        controller.before_function("Cold", 0)
        assert len(injector.records) == calls_after_trip

    assert controller.degraded_ranks == [0]
    record = controller.degradation_for(0)
    assert isinstance(record, DegradationRecord)
    assert "GPU is lost" in record.reason
    assert "set_application_clocks" in record.reason
    assert "rank 0" in record.describe()
    assert gpus[0].dvfs_active  # handed to the governor
    assert gpus[1].application_clock_hz == pytest.approx(1395e6)

    instants = [
        e.name for e in collector.events if e.track == TRACK_FAULTS
    ]
    assert "rank-degraded" in instants
    snap = collector.metrics.snapshot()
    assert snap["counters"]["ranks_degraded"] == 1


def test_breaker_threshold_on_persistent_hard_errors():
    _, gpus = _nvidia_rig(1)
    controller = FrequencyController(
        gpus,
        _policy(),
        resilience=ResilienceConfig(max_retries=0, breaker_threshold=3),
    )
    plan = FaultPlan().add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.NO_PERMISSION,
        )
    )
    with FaultInjector(plan):
        controller.before_function("Hot", 0)
        controller.before_function("Cold", 0)
        assert not controller.is_degraded(0)
        controller.before_function("Hot", 0)
    assert controller.is_degraded(0)
    assert "3 consecutive failed operations" in (
        controller.degradation_for(0).reason
    )


def test_success_resets_consecutive_failure_counter():
    _, gpus = _nvidia_rig(1)
    controller = FrequencyController(
        gpus,
        _policy(),
        resilience=ResilienceConfig(max_retries=0, breaker_threshold=2),
    )
    plan = (
        FaultPlan()
        # Strikes on calls 1 and 3 only; call 2 succeeds in between.
        .add(
            FaultSpec(
                op="nvmlDeviceSetApplicationsClocks",
                kind=FaultKind.NO_PERMISSION,
                count=1,
            )
        )
        .add(
            FaultSpec(
                op="nvmlDeviceSetApplicationsClocks",
                kind=FaultKind.NO_PERMISSION,
                after_calls=3,
                count=1,
            )
        )
    )
    with FaultInjector(plan):
        controller.before_function("Hot", 0)  # fail 1
        controller.before_function("Cold", 0)  # success: counter resets
        controller.before_function("Hot", 0)  # fail 1 again — no trip
    assert not controller.is_degraded(0)


def test_restore_defaults_pins_default_clock():
    _, gpus = _nvidia_rig(2)
    controller = FrequencyController(gpus, _policy())
    controller.apply_initial_mode()
    controller.before_function("Hot", 0)
    controller.before_function("Cold", 1)
    controller.restore_defaults()
    default_hz = gpus[0].spec.default_clock_hz
    for gpu in gpus:
        assert gpu.application_clock_hz == pytest.approx(default_hz)
        assert not gpu.dvfs_active


def test_restore_defaults_leaves_degraded_ranks_with_governor():
    _, gpus = _nvidia_rig(2)
    controller = FrequencyController(
        gpus, _policy(), resilience=ResilienceConfig()
    )
    plan = FaultPlan().add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.GPU_IS_LOST,
            rank=0,
        )
    )
    injector = FaultInjector(plan)
    with injector:
        controller.apply_initial_mode()  # rank 0 lost right away
        assert controller.degraded_ranks == [0]
        records_before = len(injector.records)
        controller.restore_defaults()
        # No further vendor calls were attempted for the degraded rank.
        assert len(injector.records) == records_before
    assert gpus[0].dvfs_active  # still the governor's device
    assert gpus[1].application_clock_hz == pytest.approx(
        gpus[1].spec.default_clock_hz
    )


# -- AMD / ROCm SMI path ------------------------------------------------------


def test_rocm_transient_busy_is_retried():
    clocks, gpus = _amd_rig(1)
    controller = FrequencyController(
        gpus, _amd_policy(), resilience=ResilienceConfig(max_retries=1)
    )
    plan = FaultPlan().add(
        FaultSpec(
            op="rsmi_dev_gpu_clk_freq_set",
            kind=FaultKind.TIMEOUT,
            count=1,
        )
    )
    with FaultInjector(plan, clocks=clocks):
        controller.before_function("Hot", 0)
    assert controller.retries_performed == 1
    assert controller.degradations == []
    assert gpus[0].application_clock_hz == pytest.approx(
        gpus[0].spec.quantize_clock_hz(1600e6)
    )


def test_rocm_device_lost_mid_run_hands_over_to_dvfs():
    clocks, gpus = _amd_rig(2)
    collector = TraceCollector(clocks=clocks, gpus=gpus)
    controller = FrequencyController(
        gpus, _amd_policy(), telemetry=collector,
        resilience=ResilienceConfig(),
    )
    plan = FaultPlan().add(
        FaultSpec(
            op="rsmi_dev_gpu_clk_freq_set",
            kind=FaultKind.GPU_IS_LOST,
            rank=1,
            after_calls=2,
        )
    )
    with FaultInjector(plan):
        controller.apply_initial_mode()  # call 1 per rank: fine
        controller.before_function("Hot", 0)
        controller.before_function("Hot", 1)  # call 2 on rank 1: lost
    assert controller.degraded_ranks == [1]
    assert "AMDGPU Restart" in controller.degradation_for(1).reason
    assert gpus[1].dvfs_active
    assert not gpus[0].dvfs_active
    # restore_defaults still works for the healthy rank.
    controller.restore_defaults()
    assert gpus[0].application_clock_hz == pytest.approx(
        gpus[0].spec.default_clock_hz
    )
    assert gpus[1].dvfs_active
    snap = collector.metrics.snapshot()
    assert snap["counters"]["ranks_degraded"] == 1


def test_rocm_reset_path_is_guarded_too():
    _, gpus = _amd_rig(1)
    gpus[0].set_application_clocks(1.6e9, 1.2e9)  # pinned: reset is real
    controller = FrequencyController(
        gpus,
        _amd_policy(),
        resilience=ResilienceConfig(max_retries=0, breaker_threshold=1),
    )
    plan = FaultPlan().add(
        FaultSpec(
            op="rsmi_dev_gpu_clk_freq_reset",
            kind=FaultKind.NO_PERMISSION,
        )
    )
    with FaultInjector(plan):
        controller._reset(0)
    assert controller.is_degraded(0)
    assert "reset_application_clocks" in controller.degradation_for(0).reason
    assert gpus[0].dvfs_active
