"""System presets and cluster assembly/topology."""

import pytest

from repro import nvml, rocm
from repro.systems import (
    Cluster,
    all_system_names,
    by_name,
    cscs_a100,
    lumi_g,
    mini_hpc,
)
from repro.units import to_mhz


def test_presets_match_table1():
    lumi = lumi_g()
    assert lumi.ranks_per_node == 8
    assert lumi.gpu_spec().vendor == "amd"
    assert lumi.has_pm_counters
    assert not lumi.allow_user_freq_control

    cscs = cscs_a100()
    assert cscs.ranks_per_node == 4
    assert to_mhz(cscs.gpu_spec().max_clock_hz) == 1410.0
    assert cscs.has_pm_counters

    mini = mini_hpc()
    assert mini.ranks_per_node == 2
    assert mini.allow_user_freq_control
    assert not mini.has_pm_counters


def test_by_name_lookup():
    assert by_name("LUMI-G").name == "LUMI-G"
    # The three Table-I systems plus the future-work Intel preset.
    assert {"CSCS-A100", "LUMI-G", "miniHPC"} <= set(all_system_names())
    assert "Aurora-PVC" in all_system_names()
    with pytest.raises(ValueError):
        by_name("Frontier")


def test_cluster_builds_whole_nodes():
    cluster = Cluster(cscs_a100(), 8)
    try:
        assert cluster.n_nodes == 2
        assert len(cluster.gpus) == 8
        assert cluster.node_of_rank == [0, 0, 0, 0, 1, 1, 1, 1]
        assert cluster.local_rank(5) == 1
        assert cluster.ranks_on_node(1) == [4, 5, 6, 7]
        assert len(cluster.pm_counters) == 2  # HPE/Cray system
    finally:
        cluster.detach_management_library()


def test_cluster_partial_node_allowed_when_smaller():
    cluster = Cluster(cscs_a100(), 2)
    try:
        assert cluster.n_nodes == 1
        assert len(cluster.gpus) == 2
    finally:
        cluster.detach_management_library()


def test_lumi_card_mapping():
    cluster = Cluster(lumi_g(), 8)
    try:
        # 8 GCDs on one node = 4 cards; ranks 0,1 share card 0.
        assert cluster.card_of_rank(0) == 0
        assert cluster.card_of_rank(1) == 0
        assert cluster.card_of_rank(2) == 1
        assert cluster.card_of_rank(7) == 3
    finally:
        cluster.detach_management_library()


def test_nvidia_cluster_attaches_nvml():
    cluster = Cluster(cscs_a100(), 4)
    try:
        assert nvml.nvmlDeviceGetCount() == 4
        # Restricted centre: users cannot set clocks through NVML.
        h = nvml.nvmlDeviceGetHandleByIndex(0)
        with pytest.raises(nvml.NVMLError):
            nvml.nvmlDeviceSetApplicationsClocks(h, 1593, 1005)
    finally:
        cluster.detach_management_library()


def test_amd_cluster_attaches_rocm():
    cluster = Cluster(lumi_g(), 8)
    try:
        assert rocm.rsmi_num_monitor_devices() == 8
    finally:
        cluster.detach_management_library()


def test_apply_and_reset_gpu_frequency():
    cluster = Cluster(mini_hpc(), 2)
    try:
        cluster.apply_gpu_frequency_mhz(1005.0)
        assert all(
            to_mhz(g.application_clock_hz) == 1005.0 for g in cluster.gpus
        )
        cluster.reset_gpu_frequency()
        assert all(g.dvfs_active for g in cluster.gpus)
    finally:
        cluster.detach_management_library()


def test_energy_helpers():
    cluster = Cluster(mini_hpc(), 2)
    try:
        for clock in cluster.clocks:
            clock.advance(1.0)
        assert cluster.total_node_energy_j() > 0
        assert cluster.total_gpu_energy_j() > 0
        breakdown = cluster.device_energy_breakdown_j()
        assert breakdown["GPU"] == pytest.approx(
            cluster.total_gpu_energy_j()
        )
        assert cluster.elapsed_s() == pytest.approx(1.0)
    finally:
        cluster.detach_management_library()


def test_invalid_rank_count_rejected():
    with pytest.raises(ValueError):
        Cluster(cscs_a100(), 0)
