"""Prometheus text exposition: rendering, parsing, file, endpoint."""

import os
import urllib.request

import pytest

from repro.monitor import (
    MetricsServer,
    PROM_CONTENT_TYPE,
    parse_prometheus_text,
    render_prometheus,
    write_prom_file,
)
from repro.monitor.exposition import escape_label_value, sanitize_metric_name
from repro.telemetry import MetricsRegistry


def _registry():
    m = MetricsRegistry()
    m.counter("clock_set_calls", rank=0).inc(3)
    m.counter("clock_set_calls", rank=1).inc(5)
    m.gauge("monitor_power_w", rank=0).set(213.5)
    m.histogram("function_time_s", bounds=(0.1, 1.0)).observe(0.5)
    m.histogram("function_time_s", bounds=(0.1, 1.0)).observe(2.0)
    return m


def test_render_output_parses_as_valid_prometheus_text():
    text = render_prometheus(_registry())
    families = parse_prometheus_text(text)
    assert "repro_clock_set_calls_total" in families
    assert families["repro_clock_set_calls_total"]["type"] == "counter"
    assert "repro_monitor_power_w" in families
    assert families["repro_monitor_power_w"]["type"] == "gauge"
    assert "repro_function_time_s" in families
    assert families["repro_function_time_s"]["type"] == "histogram"
    # Every family declares HELP text.
    assert all(f["help"] for f in families.values())


def test_counter_samples_carry_labels_and_values():
    text = render_prometheus(_registry())
    families = parse_prometheus_text(text)
    samples = families["repro_clock_set_calls_total"]["samples"]
    by_rank = {s[1]["rank"]: s[2] for s in samples}
    assert by_rank == {"0": 3.0, "1": 5.0}


def test_histogram_buckets_are_cumulative_with_inf():
    text = render_prometheus(_registry())
    families = parse_prometheus_text(text)
    samples = families["repro_function_time_s"]["samples"]
    buckets = {
        s[1]["le"]: s[2]
        for s in samples
        if s[0].endswith("_bucket")
    }
    # 0.5 falls in le=1; 2.0 only in +Inf; counts are cumulative.
    assert buckets == {"0.1": 0.0, "1": 1.0, "+Inf": 2.0}
    total = [s for s in samples if s[0].endswith("_count")]
    assert total[0][2] == 2.0
    summed = [s for s in samples if s[0].endswith("_sum")]
    assert summed[0][2] == pytest.approx(2.5)


def test_label_values_escaped_and_roundtripped():
    m = MetricsRegistry()
    m.counter("odd", path='a"b\\c\nd').inc()
    text = render_prometheus(m)
    families = parse_prometheus_text(text)
    samples = families["repro_odd_total"]["samples"]
    assert samples[0][1]["path"] == 'a"b\\c\nd'


def test_escape_label_value_spec_characters():
    assert escape_label_value('say "hi"\\') == r'say \"hi\"\\'
    assert escape_label_value("a\nb") == r"a\nb"


def test_sanitize_metric_name():
    assert sanitize_metric_name("power-w.ema") == "power_w_ema"
    assert sanitize_metric_name("0clock") == "_0clock"
    with pytest.raises(ValueError):
        sanitize_metric_name("")


def test_extra_gauges_rendered_alongside_registry():
    text = render_prometheus(
        MetricsRegistry(),
        extra_gauges={"live_power_w": [({"rank": "0"}, 99.5)]},
    )
    families = parse_prometheus_text(text)
    assert families["repro_live_power_w"]["samples"][0][2] == 99.5


def test_parser_rejects_malformed_input():
    with pytest.raises(ValueError):
        parse_prometheus_text("# TYPE x bogus\nx 1\n")
    with pytest.raises(ValueError):
        parse_prometheus_text("# TYPE x counter\nx notafloat\n")
    with pytest.raises(ValueError):
        parse_prometheus_text("orphan_sample 1.0\n")
    with pytest.raises(ValueError):
        parse_prometheus_text('# TYPE x counter\nx{bad-label="1"} 1\n')


def test_write_prom_file_atomic(tmp_path):
    path = str(tmp_path / "metrics.prom")
    write_prom_file(path, render_prometheus(_registry()))
    with open(path, encoding="utf-8") as fh:
        parse_prometheus_text(fh.read())
    # No temp litter left behind.
    assert os.listdir(tmp_path) == ["metrics.prom"]


def test_metrics_server_serves_current_state():
    m = _registry()
    server = MetricsServer(lambda: render_prometheus(m), port=0)
    with server:
        url = server.url
        with urllib.request.urlopen(url, timeout=5) as resp:
            assert resp.headers["Content-Type"] == PROM_CONTENT_TYPE
            first = resp.read().decode()
        # The provider runs per scrape: a counter bump is visible.
        m.counter("clock_set_calls", rank=0).inc(100)
        with urllib.request.urlopen(url, timeout=5) as resp:
            second = resp.read().decode()
    first_fams = parse_prometheus_text(first)
    second_fams = parse_prometheus_text(second)

    def rank0(fams):
        return [
            s[2]
            for s in fams["repro_clock_set_calls_total"]["samples"]
            if s[1]["rank"] == "0"
        ][0]

    assert rank0(second_fams) - rank0(first_fams) == 100.0
    assert not server.running


def test_metrics_server_404_off_path():
    server = MetricsServer(lambda: "", port=0)
    with server:
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/nope", timeout=5
            )
        assert err.value.code == 404
