"""TraceCollector: ring buffer, hook behavior, explicit emit APIs."""

import pytest

from repro.hardware import VirtualClock
from repro.slurm import JobSpec, SlurmController
from repro.systems import Cluster, cscs_a100, mini_hpc
from repro.telemetry import (
    TRACK_CLOCKS,
    TRACK_COUNTERS,
    TRACK_JOB,
    CounterEvent,
    InstantEvent,
    SpanEvent,
    TraceCollector,
)


def test_hook_spans_open_and_close():
    clk = VirtualClock()
    collector = TraceCollector(clocks=[clk])
    collector.before_function("XMass", 0)
    clk.advance(0.25)
    collector.after_function("XMass", 0)
    spans = collector.spans()
    assert len(spans) == 1
    assert spans[0].name == "XMass"
    assert spans[0].duration_s == pytest.approx(0.25)
    assert spans[0].args["step"] == 0


def test_step_index_attached_to_spans():
    clk = VirtualClock()
    collector = TraceCollector(clocks=[clk])
    for step in range(3):
        collector.before_function("F", 0)
        clk.advance(0.1)
        collector.after_function("F", 0)
        collector.mark_step()
    assert [s.args["step"] for s in collector.spans()] == [0, 1, 2]


def test_mismatched_close_raises():
    collector = TraceCollector(clocks=[VirtualClock()])
    collector.before_function("A", 0)
    with pytest.raises(RuntimeError):
        collector.after_function("B", 0)


def test_unbound_collector_rejects_implicit_timestamps():
    collector = TraceCollector()
    with pytest.raises(RuntimeError):
        collector.before_function("A", 0)
    # Explicit-timestamp emits still work without clocks.
    collector.emit_counter_sample("power", 0, {"watts": 1.0}, ts=0.5)
    collector.emit_phase("setup", 0, t0=0.0, t1=1.0)
    assert len(collector) == 2


def test_ring_buffer_drops_oldest_and_counts():
    collector = TraceCollector(clocks=[VirtualClock()], max_events=3)
    for i in range(5):
        collector.emit_instant(f"e{i}", 0, ts=float(i))
    assert len(collector) == 3
    assert [e.name for e in collector.events] == ["e2", "e3", "e4"]
    assert collector.dropped == 2
    snap = collector.metrics.snapshot()
    assert snap["counters"]["trace_events_dropped"] == 2.0


def test_clock_change_emits():
    collector = TraceCollector(clocks=[VirtualClock()])
    collector.record_clock_set(0, 1410.0, from_mhz=1005.0)
    collector.record_clock_skip(0, 1410.0)
    collector.record_clock_set(0, None, reset=True)
    collector.record_dvfs_handover(0)
    instants = collector.instants(TRACK_CLOCKS)
    names = [i.name for i in instants]
    # A skip emits no instant: instants track performed calls only.
    assert names == ["clock-set", "clock-reset", "dvfs-governor"]
    assert instants[0].args == {"to_mhz": 1410.0, "from_mhz": 1005.0}
    snap = collector.metrics.snapshot()
    assert snap["counters"]["clock_set_calls{rank=0}"] == 2.0
    assert snap["counters"]["clock_set_skipped{rank=0}"] == 1.0
    # Performed sets with a target also produce a clock counter sample.
    clock_counters = [
        c for c in collector.counters(TRACK_CLOCKS)
        if c.name == "application_clock"
    ]
    assert len(clock_counters) == 1
    assert clock_counters[0].values == {"mhz": 1410.0}


def test_counter_samples_update_gauges():
    collector = TraceCollector()
    collector.emit_counter_sample(
        "power", 1, {"watts": 250.0, "joules": 10.0}, ts=1.0
    )
    snap = collector.metrics.snapshot()
    assert snap["gauges"]["last_power_watts{rank=1}"] == 250.0
    assert snap["counters"]["counter_samples{name=power}"] == 1.0
    [event] = collector.counters(TRACK_COUNTERS)
    assert isinstance(event, CounterEvent)
    assert event.ts_s == 1.0


def test_for_cluster_binds_rank_clocks():
    cluster = Cluster(mini_hpc(), 1)
    collector = TraceCollector.for_cluster(cluster)
    assert collector.bound
    assert collector.now(0) == cluster.clocks[0].now


def test_span_event_validates_ordering():
    with pytest.raises(ValueError):
        SpanEvent(name="bad", rank=0, t0_s=2.0, t1_s=1.0)


def test_slurm_job_phases_appear_on_job_track():
    from repro.sph import run_instrumented

    cluster = Cluster(cscs_a100(), 4)
    collector = TraceCollector.for_cluster(cluster)
    controller = SlurmController(telemetry=collector)
    controller.accounting.enable_energy_accounting()

    def app(cl, job):
        return run_instrumented(
            cl, "SedovBlast", 1e5, 1, telemetry=collector
        )

    try:
        job = controller.submit(
            JobSpec(name="traced", n_nodes=cluster.n_nodes, n_tasks=4),
            cluster,
            app,
        )
    finally:
        cluster.detach_management_library()
    phases = collector.spans(TRACK_JOB)
    names = {p.name for p in phases}
    assert names == {"slurm:scheduling+launch", "slurm:accounting-window"}
    window = next(p for p in phases if p.name == "slurm:accounting-window")
    assert window.args["job_id"] == job.job_id
    assert window.args["state"] == "COMPLETED"
    # The Fig. 3 structure: the accounting window starts before the
    # instrumented spans and covers all of them.
    first_span = min(
        (s for s in collector.spans() if s.track != TRACK_JOB),
        key=lambda s: s.t0_s,
    )
    assert window.t0_s < first_span.t0_s
    assert window.t1_s >= max(s.t1_s for s in collector.spans())


def test_instant_event_defaults():
    e = InstantEvent(name="x", rank=0, ts_s=0.0)
    assert e.track == TRACK_CLOCKS and e.args == {}


def test_ring_buffer_drop_accounting_under_sampler_pressure():
    """Sustained DeviceSampler counter emission overflows the ring
    deterministically: drops are counted exactly and only the oldest
    events leave the buffer."""
    from repro.hardware import SimulatedGpu, a100_pcie_40gb
    from repro.monitor import DeviceSampler

    capacity = 50
    collector = TraceCollector(max_events=capacity)
    clock = VirtualClock()
    gpu = SimulatedGpu(a100_pcie_40gb(), clock)
    sampler = DeviceSampler(
        [gpu], [clock], period_s=0.01, telemetry=collector
    )
    sampler.start()
    ticks = 300
    for _ in range(ticks):
        clock.advance(0.01)
    sampler.stop()

    # One `device` counter event per sample: start + one per tick.
    emitted = sampler.samples_taken
    assert emitted == ticks + 1
    assert len(collector) == capacity
    assert collector.dropped == emitted - capacity
    snap = collector.metrics.snapshot()
    assert snap["counters"]["trace_events_dropped"] == float(
        collector.dropped
    )
    # Newest events survive; the retained window is contiguous.
    timestamps = [e.ts_s for e in collector.counters()]
    assert timestamps == sorted(timestamps)
    assert timestamps[-1] == pytest.approx(ticks * 0.01)
    assert timestamps[0] == pytest.approx((emitted - capacity) * 0.01)
