"""ComputeNode and SimulatedCpu accounting."""

import pytest

from repro.hardware import (
    ComputeNode,
    KernelLaunch,
    NodePowerSpec,
    SimulatedCpu,
    SimulatedGpu,
    VirtualClock,
    a100_sxm4_80gb,
    epyc_7713,
    mi250x_gcd,
)


def _node(n_gpus=2, spec_factory=a100_sxm4_80gb):
    clk = VirtualClock()
    gpus = [SimulatedGpu(spec_factory(), clk, index=i) for i in range(n_gpus)]
    node = ComputeNode(
        "node0", clk, epyc_7713(), NodePowerSpec(75.0, 235.0), gpus
    )
    return clk, node


def test_cpu_energy_accrues_with_time():
    clk = VirtualClock()
    cpu = SimulatedCpu(epyc_7713(), clk)
    clk.advance(10.0)
    assert cpu.energy_j == pytest.approx(cpu.power_w() * 10.0)


def test_cpu_activity_changes_power():
    clk = VirtualClock()
    cpu = SimulatedCpu(epyc_7713(), clk)
    low = cpu.power_w()
    cpu.set_activity(0.9)
    assert cpu.power_w() > low
    with pytest.raises(ValueError):
        cpu.set_activity(1.5)


def test_node_energy_is_sum_of_components():
    clk, node = _node()
    k = KernelLaunch("K", 1e12, 1e11, 1.0)
    node.gpus[0].execute(k)
    total = (
        node.cpu_energy_j
        + node.memory_energy_j
        + node.aux_energy_j
        + node.gpu_energy_j
    )
    assert node.node_energy_j == pytest.approx(total)
    assert node.node_energy_j > 0


def test_memory_and_aux_power_are_constant_draws():
    clk, node = _node()
    clk.advance(4.0)
    assert node.memory_energy_j == pytest.approx(75.0 * 4.0)
    assert node.aux_energy_j == pytest.approx(235.0 * 4.0)


def test_accel_energy_per_card_single_gcd():
    clk, node = _node(n_gpus=2)
    assert node.num_cards == 2
    node.gpus[0].execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    assert node.accel_energy_j(0) > node.accel_energy_j(1)


def test_mi250x_cards_group_two_gcds():
    clk = VirtualClock()
    gpus = [SimulatedGpu(mi250x_gcd(), clk, index=i) for i in range(8)]
    node = ComputeNode(
        "lumi0", clk, epyc_7713(), NodePowerSpec(150.0, 350.0), gpus
    )
    assert node.num_cards == 4
    assert node.gcds_per_card == 2
    gpus[0].execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    # Card 0 holds GCDs 0 and 1: its counter includes both.
    assert node.accel_energy_j(0) == pytest.approx(
        gpus[0].energy_j + gpus[1].energy_j
    )


def test_partial_trailing_card_allowed():
    # An allocation may use only one GCD of the last MI250X card.
    clk = VirtualClock()
    gpus = [SimulatedGpu(mi250x_gcd(), clk, index=i) for i in range(3)]
    node = ComputeNode(
        "partial", clk, epyc_7713(), NodePowerSpec(1.0, 1.0), gpus
    )
    assert node.num_cards == 2
    assert len(node.card_gpus(1)) == 1
    clk.advance(1.0)
    assert node.accel_energy_j(1) == pytest.approx(gpus[2].energy_j)


def test_empty_node_rejected():
    clk = VirtualClock()
    with pytest.raises(ValueError):
        ComputeNode("bad", clk, epyc_7713(), NodePowerSpec(1.0, 1.0), [])


def test_card_index_bounds():
    clk, node = _node()
    with pytest.raises(IndexError):
        node.accel_energy_j(5)


def test_device_breakdown_keys():
    clk, node = _node()
    clk.advance(1.0)
    breakdown = node.device_energy_breakdown_j()
    assert set(breakdown) == {"GPU", "CPU", "Memory", "Other"}
    assert all(v >= 0 for v in breakdown.values())
