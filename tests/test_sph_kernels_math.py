"""Smoothing kernels: normalization, compact support, derivatives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sph import CubicSplineKernel, WendlandC6Kernel, default_kernel


@pytest.fixture(params=[CubicSplineKernel, WendlandC6Kernel])
def kernel(request):
    return request.param()


def test_default_kernel_is_wendland():
    assert isinstance(default_kernel(), WendlandC6Kernel)


def test_kernel_normalizes_to_one_in_3d(kernel):
    # Integral of W over R^3 = 4 pi int_0^2h W(r) r^2 dr = 1.
    h = 1.0
    r = np.linspace(1e-9, 2.0 * h, 20_000)
    w = kernel.value(r, np.full_like(r, h))
    integral = 4.0 * np.pi * np.trapezoid(w * r**2, r)
    assert integral == pytest.approx(1.0, rel=1e-3)


def test_compact_support(kernel):
    h = np.array([1.0])
    assert kernel.value(np.array([2.0]), h)[0] == 0.0
    assert kernel.value(np.array([2.5]), h)[0] == 0.0
    assert kernel.value(np.array([1.9]), h)[0] > 0.0


def test_kernel_positive_inside_support(kernel):
    r = np.linspace(0.0, 1.99, 100)
    w = kernel.value(r, np.ones_like(r))
    assert np.all(w > 0.0)


def test_kernel_monotone_decreasing(kernel):
    r = np.linspace(0.0, 1.99, 200)
    w = kernel.value(r, np.ones_like(r))
    assert np.all(np.diff(w) <= 1e-12)


def test_gradient_negative_inside_support(kernel):
    r = np.linspace(0.05, 1.9, 100)
    g = kernel.grad_r(r, np.ones_like(r))
    assert np.all(g <= 0.0)


def test_gradient_matches_finite_difference(kernel):
    h = np.ones(1)
    eps = 1e-6
    for r0 in (0.3, 0.9, 1.5):
        num = (
            kernel.value(np.array([r0 + eps]), h)
            - kernel.value(np.array([r0 - eps]), h)
        ) / (2 * eps)
        ana = kernel.grad_r(np.array([r0]), h)
        assert ana[0] == pytest.approx(num[0], rel=1e-4, abs=1e-8)


def test_grad_h_matches_finite_difference(kernel):
    r = np.array([0.7])
    eps = 1e-6
    num = (
        kernel.value(r, np.array([1.0 + eps]))
        - kernel.value(r, np.array([1.0 - eps]))
    ) / (2 * eps)
    ana = kernel.grad_h(r, np.array([1.0]))
    assert ana[0] == pytest.approx(num[0], rel=1e-4, abs=1e-8)


def test_self_value_matches_zero_distance(kernel):
    h = np.array([0.7])
    assert kernel.self_value(h)[0] == pytest.approx(
        kernel.value(np.array([0.0]), h)[0]
    )


@given(st.floats(min_value=0.1, max_value=10.0))
def test_scaling_with_h(h):
    # W(r, h) = h^-3 W(r/h, 1).
    kernel = WendlandC6Kernel()
    r = np.array([0.5 * h])
    direct = kernel.value(r, np.array([h]))
    scaled = kernel.value(np.array([0.5]), np.array([1.0])) / h**3
    assert direct[0] == pytest.approx(scaled[0], rel=1e-9)


@given(st.floats(min_value=0.01, max_value=1.95))
def test_wendland_below_cubic_tail(q):
    # Both kernels are valid densities; check values are finite, >= 0.
    for k in (CubicSplineKernel(), WendlandC6Kernel()):
        v = k.value(np.array([q]), np.array([1.0]))[0]
        assert np.isfinite(v) and v >= 0.0
