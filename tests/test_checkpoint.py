"""Checkpoint subsystem: codec exactness, atomic files, bit-exact resume."""

import json
import math
import os

import numpy as np
import pytest

from repro.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCHEMA,
    CheckpointError,
    checkpoint_exists,
    decode_array,
    decode_state,
    encode_array,
    encode_state,
    read_checkpoint,
    write_checkpoint,
)
from repro.sph import NumericProblem, Simulation, run_instrumented
from repro.sph.init import SedovConfig, make_sedov, make_sedov_eos
from repro.systems import Cluster, mini_hpc


# ---------------------------------------------------------------------------
# array codec
# ---------------------------------------------------------------------------


def test_float_arrays_round_trip_bit_exact(rng):
    arr = rng.standard_normal(257)
    arr[3] = float("inf")
    arr[5] = float("nan")
    out = decode_array(encode_array(arr))
    assert out.dtype == arr.dtype and out.shape == arr.shape
    assert np.array_equal(
        out.view(np.uint64), arr.view(np.uint64)
    ), "float payload must be byte-identical, NaN bits included"


def test_int_arrays_narrow_losslessly():
    arr = np.array([-5, 1_000_000], dtype=np.int64)
    enc = encode_array(arr)["__ndarray__"]
    assert enc["store_dtype"] == "int32"
    out = decode_array({"__ndarray__": enc})
    assert out.dtype == np.int64 and np.array_equal(out, arr)


def test_int_arrays_too_wide_stay_unnarrowed():
    arr = np.array([-1, 2**40], dtype=np.int64)
    enc = encode_array(arr)["__ndarray__"]
    assert "store_dtype" not in enc
    assert np.array_equal(decode_array({"__ndarray__": enc}), arr)


def test_large_index_arrays_delta_encode():
    csr = np.sort(np.random.default_rng(1).integers(0, 999, 50_000))
    enc = encode_array(csr)["__ndarray__"]
    assert "store_delta" in enc
    out = decode_array({"__ndarray__": enc})
    assert out.dtype == csr.dtype and np.array_equal(out, csr)


def test_bool_arrays_pack_to_bits(rng):
    mask = rng.random((7, 13)) > 0.4
    enc = encode_array(mask)["__ndarray__"]
    assert enc["store_dtype"] == "packbits"
    # 91 flags -> 12 packed bytes -> 16 base64 chars.
    assert len(enc["data"]) == 16
    out = decode_array({"__ndarray__": enc})
    assert out.dtype == np.bool_ and np.array_equal(out, mask)


def test_empty_and_scalar_shapes_round_trip():
    for arr in (np.zeros(0), np.zeros((0, 2), dtype=np.int64),
                np.ones((2, 3, 4))):
        out = decode_array(encode_array(arr))
        assert out.shape == arr.shape and np.array_equal(out, arr)


def test_encode_state_rejects_unserializable():
    with pytest.raises(CheckpointError, match="object"):
        encode_state({"bad": object()})


def test_state_tree_round_trip():
    tree = {
        "a": 1,
        "b": [1.5, None, "x", (2, 3)],
        "c": {"nested": np.arange(4)},
        "inf": float("inf"),
    }
    out = decode_state(json.loads(json.dumps(encode_state(tree))))
    assert out["a"] == 1
    assert out["b"][:3] == [1.5, None, "x"]
    assert out["b"][3] == [2, 3]  # tuples travel as lists
    assert np.array_equal(out["c"]["nested"], np.arange(4))
    assert math.isinf(out["inf"])


# ---------------------------------------------------------------------------
# file I/O
# ---------------------------------------------------------------------------


def test_write_read_round_trip(tmp_path):
    path = tmp_path / "c.json"
    assert not checkpoint_exists(path)
    write_checkpoint(path, {"steps_done": 3, "arr": np.arange(5)})
    assert checkpoint_exists(path)
    state = read_checkpoint(path)
    assert state["steps_done"] == 3
    assert np.array_equal(state["arr"], np.arange(5))
    # Atomic idiom: no temp file survives a successful write.
    assert list(tmp_path.glob("*.tmp")) == []


def test_read_rejects_corrupt_file(tmp_path):
    path = tmp_path / "c.json"
    path.write_text("{torn")
    with pytest.raises(CheckpointError):
        read_checkpoint(path)


def test_read_rejects_wrong_kind_and_schema(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(json.dumps({"schema": CHECKPOINT_SCHEMA, "kind": "x"}))
    with pytest.raises(CheckpointError, match="kind"):
        read_checkpoint(path)
    path.write_text(
        json.dumps({"schema": CHECKPOINT_SCHEMA + 99,
                    "kind": CHECKPOINT_KIND})
    )
    with pytest.raises(CheckpointError, match="schema"):
        read_checkpoint(path)


def test_read_missing_file_is_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError):
        read_checkpoint(tmp_path / "absent.json")


# ---------------------------------------------------------------------------
# simulation restore: bit-exact vs uninterrupted
# ---------------------------------------------------------------------------

STEPS = 8


def _model_sim():
    return Simulation(Cluster(mini_hpc(), 2), "SedovBlast", 10_000.0)


def test_model_mode_resume_is_bit_exact(tmp_path):
    ref = _model_sim().run(STEPS)

    ckpt = str(tmp_path / "c.json")
    first = _model_sim()
    res_a = first.run(STEPS // 2, checkpoint_every=STEPS // 2,
                      checkpoint_path=ckpt)
    assert res_a.checkpoints_written == 1

    second = _model_sim()
    res_b = second.run(STEPS, restore_from=ckpt)
    assert res_b.resumed_from_step == STEPS // 2
    assert res_b.steps == STEPS
    assert res_b.gpu_energy_j == ref.gpu_energy_j
    assert res_b.elapsed_s == ref.elapsed_s
    assert res_b.dt_history == ref.dt_history


def test_checkpoint_cadence_and_counters(tmp_path):
    ckpt = str(tmp_path / "c.json")
    res = _model_sim().run(6, checkpoint_every=2, checkpoint_path=ckpt)
    assert res.checkpoints_written == 3
    assert read_checkpoint(ckpt)["steps_done"] == 6


def test_checkpoint_every_requires_path():
    with pytest.raises(ValueError, match="checkpoint_path"):
        _model_sim().run(2, checkpoint_every=1)


def test_fingerprint_mismatch_refuses_restore(tmp_path):
    ckpt = str(tmp_path / "c.json")
    _model_sim().run(4, checkpoint_every=2, checkpoint_path=ckpt,
                     checkpoint_fingerprint="unit-a")
    with pytest.raises(CheckpointError, match="fingerprint"):
        _model_sim().run(4, restore_from=ckpt,
                         checkpoint_fingerprint="unit-b")


def test_restore_beyond_requested_steps_refused(tmp_path):
    ckpt = str(tmp_path / "c.json")
    _model_sim().run(6, checkpoint_every=6, checkpoint_path=ckpt)
    with pytest.raises(CheckpointError, match="beyond"):
        _model_sim().run(4, restore_from=ckpt)


def test_workload_mismatch_refuses_restore(tmp_path):
    ckpt = str(tmp_path / "c.json")
    _model_sim().run(4, checkpoint_every=4, checkpoint_path=ckpt)
    other = Simulation(Cluster(mini_hpc(), 2), "Turbulence", 10_000.0)
    with pytest.raises(CheckpointError, match="workload"):
        other.run(4, restore_from=ckpt)


def _numeric_sim():
    cfg = SedovConfig(nside=6, seed=11)
    parts = make_sedov(cfg)
    numeric = NumericProblem(
        particles=parts, n_ranks=2, eos=make_sedov_eos(cfg),
        box_size=cfg.box_size, skin=0.2,
    )
    return Simulation(
        Cluster(mini_hpc(), 2), "SedovBlast", parts.n, numeric=numeric
    )


def _digest(sim):
    parts = sim.numeric.particles
    return tuple(
        np.asarray(getattr(parts, f)).tobytes()
        for f in ("x", "vx", "u", "h")
    )


def test_numeric_resume_is_bit_exact_with_verlet_skin(tmp_path):
    """The wide neighbor list survives the snapshot: resumed FP
    summation order matches the uninterrupted run exactly."""
    ref = _numeric_sim()
    ref_res = ref.run(6)

    ckpt = str(tmp_path / "c.json")

    class _Killed(RuntimeError):
        pass

    def kill(step):
        # on_step fires before the periodic snapshot of the same step,
        # so killing at 4 leaves the step-3 snapshot as the survivor.
        if step == 4:
            raise _Killed()

    killed = _numeric_sim()
    with pytest.raises(_Killed):
        killed.run(6, checkpoint_every=3, checkpoint_path=ckpt,
                   on_step=kill)

    resumed = _numeric_sim()
    res = resumed.run(6, restore_from=ckpt)
    assert res.resumed_from_step == 3
    assert res.gpu_energy_j == ref_res.gpu_energy_j
    assert _digest(resumed) == _digest(ref)


def test_run_instrumented_passthrough(tmp_path):
    ckpt = str(tmp_path / "c.json")
    cluster = Cluster(mini_hpc(), 2)
    res = run_instrumented(
        cluster, "SedovBlast", 10_000.0, 4,
        checkpoint_every=2, checkpoint_path=ckpt,
    )
    assert res.checkpoints_written == 2
    assert checkpoint_exists(ckpt)


def test_mid_step_checkpoint_refused():
    sim = _model_sim()
    sim.initialize()
    sim.profiler.open_window()
    sim.profiler.before_function("MomentumEnergyIAD", 0)
    with pytest.raises(RuntimeError, match="open measurements"):
        sim.state_dict(4, 0)
