"""NumericProblem internals: decomposition feedback, ordering guards."""

import numpy as np
import pytest

from repro.sph import NumericProblem
from repro.sph.init import TurbulenceConfig, make_turbulence, make_turbulence_eos


@pytest.fixture
def problem():
    cfg = TurbulenceConfig(nside=8, seed=31)
    parts = make_turbulence(cfg)
    return NumericProblem(
        particles=parts,
        n_ranks=4,
        eos=make_turbulence_eos(cfg),
        box_size=cfg.box_size,
    )


def test_function_order_guards(problem):
    with pytest.raises(RuntimeError):
        problem.xmass()  # FindNeighbors has not run
    problem.find_neighbors()
    problem.xmass()
    with pytest.raises(RuntimeError):
        problem.update_quantities()  # no global dt yet


def test_gravity_guard(problem):
    with pytest.raises(RuntimeError):
        problem.gravity_step()  # gravity not enabled


def test_domain_decomp_populates_exchange_plan(problem):
    problem.domain_decomp_and_sync()
    assert problem.exchange_bytes is not None
    assert problem.exchange_bytes.shape == (4, 4)
    # First decomposition: no migrations yet, only halo traffic.
    assert np.all(np.diag(problem.exchange_bytes) == 0.0)
    assert problem.exchange_bytes.sum() > 0.0  # halos exist


def test_migration_traffic_appears_after_motion(problem):
    problem.domain_decomp_and_sync()
    halo_only = problem.exchange_bytes.sum()
    # Move particles significantly (in every coordinate: the Morton
    # z-bits are the most significant, so x-only motion on a uniform
    # lattice never crosses rank boundaries) and re-decompose.
    rng = np.random.default_rng(5)
    p = problem.particles
    for arr in (p.x, p.y, p.z):
        arr[:] = np.mod(arr + rng.uniform(0, 0.3, size=p.n), 1.0)
    problem.domain_decomp_and_sync()
    assert problem.exchange_bytes.sum() > halo_only


def test_local_counts_balance(problem):
    problem.domain_decomp_and_sync()
    counts = problem.local_particle_counts()
    assert counts.sum() == problem.particles.n
    assert counts.max() - counts.min() <= problem.particles.n // 4


def test_local_counts_before_decomposition_are_even(problem):
    counts = problem.local_particle_counts()
    assert counts.sum() == problem.particles.n
    assert counts.max() - counts.min() <= 1


def test_mean_neighbor_counts_per_rank(problem):
    problem.domain_decomp_and_sync()
    problem.find_neighbors()
    means = problem.mean_neighbor_counts()
    assert len(means) == 4
    assert np.all(means > 10)


def test_full_step_sequence(problem):
    problem.domain_decomp_and_sync()
    problem.find_neighbors()
    problem.xmass()
    problem.normalization_gradh()
    problem.equation_of_state()
    problem.iad_velocity_div_curl()
    problem.momentum_energy()
    dts = problem.local_timesteps()
    assert len(dts) == 4
    assert all(d == dts[0] for d in dts)
    problem.set_global_dt(min(dts))
    problem.update_quantities()
    assert problem.step_index == 1
    assert problem.previous_dt == min(dts)
