"""Failure injection: the instrumentation must fail loudly and cleanly."""

import pytest

from repro import nvml
from repro.core import (
    FrequencyController,
    ManDynPolicy,
    StaticFrequencyPolicy,
    make_profiler,
)
from repro.hardware import KernelLaunch
from repro.slurm import JobSpec, JobState, SlurmController
from repro.sph import Simulation, run_instrumented
from repro.systems import Cluster, cscs_a100, mini_hpc


def test_mandyn_on_restricted_system_fails_with_permission_error():
    """ManDyn needs user-level clock control; CSCS-A100 denies it."""
    cluster = Cluster(cscs_a100(), 4)
    try:
        policy = ManDynPolicy({"MomentumEnergy": 1410.0}, default_mhz=1005.0)
        with pytest.raises(nvml.NVMLError) as exc:
            run_instrumented(
                cluster, "SubsonicTurbulence", 1e6, 1, policy=policy
            )
        assert exc.value.value == nvml.NVML_ERROR_NO_PERMISSION
    finally:
        cluster.detach_management_library()


def test_static_policy_on_restricted_system_also_denied():
    cluster = Cluster(cscs_a100(), 4)
    try:
        with pytest.raises(nvml.NVMLError):
            run_instrumented(
                cluster, "SubsonicTurbulence", 1e6, 1,
                policy=StaticFrequencyPolicy(1005.0),
            )
    finally:
        cluster.detach_management_library()


def test_device_vanishing_mid_run_raises_not_found():
    """A lost GPU surfaces as an NVML error, not silent wrong numbers."""
    cluster = Cluster(mini_hpc(), 2)
    try:
        ctl = FrequencyController(
            cluster.gpus, ManDynPolicy({"A": 1410.0}, default_mhz=1005.0)
        )
        ctl.apply_initial_mode()
        # The node "loses" a device: NVML now only exposes one.
        nvml.attach_devices(cluster.gpus[:1])
        with pytest.raises(nvml.NVMLError):
            ctl.before_function("A", 1)
    finally:
        cluster.detach_management_library()


def test_slurm_app_crash_preserves_accounting():
    cluster = Cluster(cscs_a100(), 4)
    try:
        controller = SlurmController()
        controller.accounting.enable_energy_accounting()

        def crashing_app(cl, job):
            cl.gpus[0].execute(KernelLaunch("K", 1e12, 0.0, 1.0))
            raise MemoryError("device OOM")

        with pytest.raises(MemoryError):
            controller.submit(
                JobSpec(name="oom", n_nodes=1, n_tasks=4),
                cluster,
                crashing_app,
            )
        rows = controller.accounting.sacct(
            fields=("JobName", "State", "ConsumedEnergyRaw")
        )
        assert rows[0]["State"] == JobState.FAILED.value
        # Energy consumed before the crash is still accounted.
        assert float(rows[0]["ConsumedEnergyRaw"]) > 0.0
    finally:
        cluster.detach_management_library()


def test_profiler_detects_unbalanced_instrumentation(mini_cluster):
    profiler = make_profiler(mini_cluster)
    profiler.before_function("XMass", 0)
    # Forgetting after_function then starting the next one is a bug in
    # the instrumented code; the profiler refuses to mis-attribute.
    with pytest.raises(RuntimeError):
        profiler.before_function("MomentumEnergy", 0)


def test_simulation_survives_policy_for_unsupported_clock(mini_cluster):
    # Requesting a clock outside the supported range: ManDyn quantizes
    # through the spec (controller path), so execution proceeds at the
    # nearest bin rather than crashing mid-run.
    policy = ManDynPolicy({"MomentumEnergy": 5000.0}, default_mhz=50.0)
    result = run_instrumented(
        mini_cluster, "SubsonicTurbulence", 1e6, 1, policy=policy
    )
    assert result.steps == 1


def test_failed_rank_clock_desync_is_visible():
    """If a rank stops participating, collectives surface the hang as
    monotonically growing wait time rather than wrong results."""
    cluster = Cluster(cscs_a100(), 4)
    try:
        # Rank 2 races ahead (e.g. it skipped its barrier in a buggy
        # code path); the next barrier drags everyone to its time.
        cluster.clocks[2].advance(100.0)
        before = cluster.comm.stats.sync_wait_s
        cluster.comm.barrier()
        assert cluster.comm.stats.sync_wait_s - before > 250.0
        times = [c.now for c in cluster.clocks]
        assert max(times) - min(times) < 1e-9
    finally:
        cluster.detach_management_library()
