"""HTML run report: sparklines, alert timeline, reconciliation table."""

import json

import pytest

from repro.monitor import (
    Monitor,
    MonitorConfig,
    build_report,
    render_html,
    write_html_report,
    write_json_snapshot,
)
from repro.sph import run_instrumented
from repro.systems import Cluster, mini_hpc
from repro.telemetry import TraceCollector


@pytest.fixture(scope="module")
def monitored_run():
    """One real monitored sedov run shared by the report tests."""
    collector = TraceCollector(max_events=50_000)
    monitor = Monitor(MonitorConfig(period_s=0.02), telemetry=collector)
    cluster = Cluster(mini_hpc(), 1)
    try:
        result = run_instrumented(
            cluster, "SedovBlast", 100_000, 4,
            telemetry=collector, monitor=monitor,
        )
    finally:
        cluster.detach_management_library()
    return monitor, collector, result


def test_build_report_payload_shape(monitored_run):
    monitor, collector, result = monitored_run
    data = monitor.snapshot(collector=collector, report=result.report,
                            meta={"workload": "sedov"})
    assert data["schema"] == 1 and data["kind"] == "monitor-report"
    assert data["n_ranks"] == 1
    names = {s["name"] for s in data["series"]}
    assert {"power_w", "clock_mhz", "temp_c", "energy_j"} <= names
    assert data["t_max_s"] > data["t_min_s"]
    assert data["functions"]  # energy table present
    assert data["reconciliation"]["ok"] is True
    json.dumps(data)  # fully JSON-serializable


def test_report_has_at_least_four_sparklines_from_real_run(monitored_run):
    monitor, collector, result = monitored_run
    html = render_html(
        monitor.snapshot(collector=collector, report=result.report)
    )
    # Acceptance: >= 4 device time-series sparklines, self-contained.
    assert html.count('<svg class="spark"') >= 4
    assert "<style>" in html
    for forbidden in ("http://", "https://", "<script", "<link", "<img"):
        assert forbidden not in html, forbidden


def test_report_renders_alert_timeline():
    data = {
        "schema": 1, "kind": "monitor-report", "title": "t", "meta": {},
        "t_min_s": 0.0, "t_max_s": 10.0, "n_ranks": 1, "period_s": 0.05,
        "samples_taken": 3, "series": [], "rules": [], "gaps": [],
        "functions": [], "reconciliation": {}, "metrics": {},
        "alerts": [
            {"rule": "clock_throttle_detected", "severity": "critical",
             "rank": 0, "series": "throttle_active", "condition": "x",
             "t_start_s": 2.0, "t_fired_s": 2.0, "t_resolved_s": 6.0,
             "value": 1.0},
            {"rule": "sampler_gap", "severity": "warning", "rank": 0,
             "series": "sampler_gap_ticks", "condition": "y",
             "t_start_s": 7.0, "t_fired_s": 7.0, "t_resolved_s": None,
             "value": 3.0},
        ],
    }
    html = render_html(data)
    assert '<svg class="timeline"' in html
    assert "clock_throttle_detected" in html
    assert "sampler_gap" in html
    assert "active" in html  # unresolved alert is marked


def test_report_escapes_untrusted_strings():
    data = {
        "schema": 1, "kind": "monitor-report",
        "title": "<script>alert(1)</script>", "meta": {},
        "t_min_s": 0.0, "t_max_s": 1.0, "n_ranks": 1, "period_s": 0.05,
        "samples_taken": 0, "series": [], "rules": [], "alerts": [],
        "gaps": [], "functions": [], "reconciliation": {}, "metrics": {},
    }
    html = render_html(data)
    assert "<script>" not in html
    assert "&lt;script&gt;" in html


def test_write_html_report_atomic(tmp_path, monitored_run):
    monitor, collector, result = monitored_run
    path = tmp_path / "report.html"
    data = monitor.snapshot(collector=collector, report=result.report)
    text = write_html_report(str(path), data)
    assert path.read_text(encoding="utf-8") == text
    assert [p.name for p in tmp_path.iterdir()] == ["report.html"]


def test_write_json_snapshot_roundtrips(tmp_path, monitored_run):
    monitor, collector, result = monitored_run
    path = tmp_path / "snapshot.json"
    data = monitor.snapshot(collector=collector, report=result.report)
    write_json_snapshot(str(path), data)
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert loaded["kind"] == "monitor-report"
    assert len(loaded["series"]) == len(data["series"])


def test_build_report_flat_series_renders():
    # A constant series (vmin == vmax) must not divide by zero.
    from repro.hardware import SimulatedGpu, VirtualClock, a100_pcie_40gb
    from repro.monitor import DeviceSampler

    clock = VirtualClock()
    sampler = DeviceSampler(
        [SimulatedGpu(a100_pcie_40gb(), clock)], [clock], period_s=0.1
    )
    sampler.start()
    for _ in range(5):
        clock.advance(0.1)
    sampler.stop()
    html = render_html(build_report(sampler))
    assert '<svg class="spark"' in html
