"""Catalog schema validation: strict, actionable rejections."""

import copy
import os

import pytest

from repro.catalog import (
    CATALOG_SCHEMA_VERSION,
    SchemaError,
    load_payload,
    shipped_catalog_dir,
    validate_system_payload,
)


@pytest.fixture()
def payload():
    """A known-good payload (the shipped miniHPC spec), deep-copied."""
    path = os.path.join(shipped_catalog_dir(), "minihpc.yaml")
    return copy.deepcopy(load_payload(path))


def _reject(payload, match):
    with pytest.raises(SchemaError, match=match):
        validate_system_payload(payload, source="spec.yaml")


# ---------------------------------------------------------------------------
# header
# ---------------------------------------------------------------------------


def test_valid_payload_passes(payload):
    out = validate_system_payload(payload, source="spec.yaml")
    assert out["name"] == "miniHPC"
    assert out["schema"] == CATALOG_SCHEMA_VERSION


def test_missing_schema_version_says_what_to_add(payload):
    del payload["schema"]
    _reject(payload, r"add 'schema: 1'")


def test_future_schema_version_is_rejected(payload):
    payload["schema"] = CATALOG_SCHEMA_VERSION + 1
    _reject(payload, r"this build reads 1")


def test_boolean_schema_version_is_rejected(payload):
    payload["schema"] = True
    _reject(payload, r"expected an integer")


def test_wrong_kind_is_rejected(payload):
    payload["kind"] = "campaign-spec"
    _reject(payload, r"expected a 'system-spec' file")


def test_non_mapping_payload_is_rejected():
    with pytest.raises(SchemaError, match="expected a mapping"):
        validate_system_payload(["not", "a", "spec"], source="spec.yaml")


# ---------------------------------------------------------------------------
# unknown keys
# ---------------------------------------------------------------------------


def test_unknown_top_level_key_lists_known_keys(payload):
    payload["gpus"] = {}
    _reject(payload, r"unknown key\(s\) 'gpus'.*known:.*gpu.*measurement")


def test_unknown_nested_key_names_the_path(payload):
    payload["gpu"]["clocks"]["boost_mhz"] = 1500
    _reject(payload, r"gpu\.clocks: unknown key\(s\) 'boost_mhz'")


def test_unknown_overlay_knob_is_rejected(payload):
    payload["gpu"]["governor"] = {"quantums_ms": 20}
    _reject(payload, r"gpu\.governor: unknown key\(s\) 'quantums_ms'")


# ---------------------------------------------------------------------------
# units and ranges
# ---------------------------------------------------------------------------


def test_clock_in_hz_is_caught_by_plausibility_window(payload):
    payload["gpu"]["clocks"]["max_mhz"] = 1.41e9  # Hz, not MHz
    _reject(payload, r"outside the plausible range.*check the unit")


def test_boolean_where_number_expected_is_rejected(payload):
    payload["gpu"]["power"]["idle_w"] = True
    _reject(payload, r"gpu\.power\.idle_w: expected a number, got True")


def test_missing_required_key_names_unit(payload):
    del payload["gpu"]["power"]["idle_w"]
    _reject(payload, r"missing required key 'idle_w' \[a power draw")


def test_idle_power_above_max_power_is_rejected(payload):
    payload["gpu"]["power"]["idle_w"] = 500.0
    payload["gpu"]["power"]["max_w"] = 250.0
    _reject(payload, r"idle_w 500 must be below max_w 250")


def test_clock_window_must_be_whole_bins(payload):
    payload["gpu"]["clocks"]["step_mhz"] = 17.0  # 210..1410 not divisible
    _reject(payload, r"not a[\s\S]*whole number of 17 MHz bins")


def test_default_clock_outside_window_is_rejected(payload):
    payload["gpu"]["clocks"]["default_mhz"] = 2000.0
    _reject(payload, r"gpu\.clocks\.default_mhz.*outside")


def test_unknown_vendor_lists_choices(payload):
    payload["gpu"]["vendor"] = "cerebras"
    _reject(payload, r"'cerebras' is not one of amd, intel, nvidia")


def test_arch_efficiency_must_be_unit_interval(payload):
    payload["gpu"]["arch_efficiency"] = {"MomentumEnergy": 1.5}
    _reject(payload, r"gpu\.arch_efficiency\.MomentumEnergy")


def test_cpu_min_clock_above_nominal_is_rejected(payload):
    payload["cpu"]["nominal_mhz"] = 2000.0
    payload["cpu"]["min_mhz"] = 2400.0
    _reject(payload, r"min_mhz 2400 exceeds nominal_mhz 2000")


def test_unknown_pmt_backend_is_rejected(payload):
    payload["measurement"]["pmt_backend"] = "powercap"
    _reject(payload, r"not one of cray, levelzero, nvml, rocm")


def test_user_freq_control_must_be_boolean(payload):
    payload["measurement"]["allow_user_freq_control"] = "yes"
    _reject(payload, r"expected true/false, got 'yes'")


# ---------------------------------------------------------------------------
# error ergonomics
# ---------------------------------------------------------------------------


def test_schema_error_is_a_value_error_with_location(payload):
    payload["gpu"]["power"]["exponent"] = 9.0
    with pytest.raises(ValueError) as excinfo:
        validate_system_payload(payload, source="specs/box.yaml")
    err = excinfo.value
    assert isinstance(err, SchemaError)
    assert err.source == "specs/box.yaml"
    assert err.path == "gpu.power.exponent"
    assert str(err).startswith("specs/box.yaml: gpu.power.exponent:")
