"""Command-line interface."""

import json

import pytest

from repro.cli import main


def test_systems_lists_presets(capsys):
    assert main(["systems"]) == 0
    out = capsys.readouterr().out
    assert "LUMI-G" in out and "CSCS-A100" in out and "miniHPC" in out
    assert "pm_counters" in out


def test_run_baseline(capsys):
    rc = main(
        ["run", "--steps", "2", "--particles", "1e7", "--policy", "baseline"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "time-to-solution" in out
    assert "GPU energy per function" in out
    assert "MomentumEnergy" in out


def test_run_mandyn_with_freq_map(capsys):
    freq_map = json.dumps({"MomentumEnergy": 1410.0, "XMass": 1005.0})
    rc = main(
        [
            "run", "--steps", "2", "--particles", "1e7",
            "--policy", "mandyn", "--freq", "1110",
            "--freq-map", freq_map,
        ]
    )
    assert rc == 0
    assert "policy=ManDyn" in capsys.readouterr().out


def test_run_static_requires_freq():
    with pytest.raises(SystemExit):
        main(["run", "--policy", "static", "--steps", "1"])


def test_run_unknown_policy_and_workload():
    with pytest.raises(SystemExit):
        main(["run", "--policy", "chaotic"])
    with pytest.raises(SystemExit):
        main(["run", "--workload", "sedov-not-a-workload"])


def test_run_writes_report(tmp_path, capsys):
    path = str(tmp_path / "report.json")
    rc = main(
        ["run", "--steps", "1", "--particles", "1e6", "--report", path]
    )
    assert rc == 0
    from repro.core import EnergyReport

    report = EnergyReport.load(path)
    assert report.total_j() > 0


def test_run_evrard_on_lumi(capsys):
    rc = main(
        [
            "run", "--system", "LUMI-G", "--workload", "evrard",
            "--ranks", "8", "--steps", "1", "--particles", "1e6",
        ]
    )
    assert rc == 0
    assert "Gravity" in capsys.readouterr().out


def test_tune_prints_map(capsys):
    rc = main(
        [
            "tune", "--particles", "91125000", "--stride", "9",
            "--iterations", "1",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "MomentumEnergy" in out
    # The JSON map line is machine-readable.
    json_line = [l for l in out.splitlines() if l.startswith("{")][0]
    mapping = json.loads(json_line)
    assert mapping["MomentumEnergy"] >= mapping["XMass"]


def test_tune_on_amd_system(capsys):
    rc = main(
        [
            "tune", "--system", "LUMI-G", "--particles", "1e7",
            "--min-freq", "1200", "--stride", "4", "--iterations", "1",
        ]
    )
    assert rc == 0
    assert "LUMI-G" in capsys.readouterr().out


def test_compare_table(capsys):
    rc = main(
        ["compare", "--steps", "2", "--particles", "2e7", "--freq", "1110"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "static 1110" in out
    assert "mandyn" in out


def test_version_flag_prints_and_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert out.startswith("repro ")
    assert out.strip() != "repro"  # an actual version string follows


def test_help_lists_trace_and_version():
    from repro.cli import build_parser

    text = build_parser().format_help()
    assert "--version" in text
    assert "trace" in text


def test_trace_record_writes_chrome_and_jsonl(tmp_path, capsys):
    chrome = str(tmp_path / "trace.json")
    jsonl = str(tmp_path / "trace.jsonl")
    rc = main(
        [
            "trace", "record", "--workload", "sedov", "--steps", "4",
            "--particles", "1e6", "--export", chrome, "--jsonl", jsonl,
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "recorded" in out and "trace events" in out
    drift_line = [
        l for l in out.splitlines() if "max trace-vs-report drift" in l
    ][0]
    assert float(drift_line.split(":")[1].split("s")[0]) < 1e-6
    with open(chrome, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["otherData"]["schema"] == 1
    assert any(e["ph"] == "X" for e in payload["traceEvents"])
    from repro.telemetry import read_trace_jsonl

    assert len(read_trace_jsonl(jsonl)) > 0


def test_trace_summary_mandyn_counts_clock_sets(capsys):
    rc = main(
        [
            "trace", "summary", "--workload", "sedov", "--steps", "2",
            "--particles", "1e6", "--policy", "mandyn",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "policy=ManDyn" in out
    counts_line = [
        l for l in out.splitlines() if "clock_set_calls (total)" in l
    ][0]
    assert float(counts_line.split()[-1]) > 0
    assert "trace vs EnergyReport reconciliation" in out


def test_trace_export_rerenders_jsonl(tmp_path, capsys):
    jsonl = str(tmp_path / "trace.jsonl")
    chrome = str(tmp_path / "rendered.json")
    assert main(
        [
            "trace", "record", "--workload", "sedov", "--steps", "1",
            "--particles", "1e6", "--jsonl", jsonl,
        ]
    ) == 0
    assert main(["trace", "export", jsonl, chrome]) == 0
    assert "re-rendered" in capsys.readouterr().out
    with open(chrome, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert any(e["ph"] == "X" for e in payload["traceEvents"])


def test_sacct_reports_energy(capsys):
    rc = main(
        [
            "sacct", "--system", "CSCS-A100", "--ranks", "4",
            "--steps", "2", "--particles", "1e7",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "ConsumedEnergy" in out
    assert "COMPLETED" in out
    assert "instrumented (PMT) window" in out


def test_faults_list_shows_scenarios(capsys):
    assert main(["faults", "list"]) == 0
    out = capsys.readouterr().out
    assert "fault scenarios" in out
    assert "gpu-lost" in out
    assert "flaky-clocks" in out
    assert "preempt-mid-run" in out
    assert "chaos" in out


def test_faults_run_gpu_lost_degrades_and_reports(tmp_path, capsys):
    path = str(tmp_path / "degraded.json")
    rc = main(
        [
            "faults", "run", "--scenario", "gpu-lost",
            "--ranks", "2", "--steps", "3", "--particles", "1e5",
            "--seed", "20240", "--report", path,
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "steps completed  : 3/3" in out
    assert "degraded ranks   : 0" in out
    assert "gpu-is-lost" in out
    assert "rank 0 DEGRADED" in out
    from repro.core import EnergyReport

    assert EnergyReport.load(path).degraded_ranks() == [0]


def test_faults_run_preemption_scenario(capsys):
    rc = main(
        [
            "faults", "run", "--scenario", "preempt-mid-run",
            "--steps", "6", "--particles", "1e5",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "(preempted)" in out
    assert "steps completed  : 3/6" in out


def test_faults_run_power_dropout_reports_sampler_gaps(capsys):
    rc = main(
        [
            "faults", "run", "--scenario", "power-dropout",
            "--steps", "4", "--particles", "1e5", "--seed", "7",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "power sampling" in out


def test_faults_run_unknown_scenario_fails_loud():
    with pytest.raises(ValueError, match="gpu-lost"):
        main(["faults", "run", "--scenario", "not-a-scenario"])


def test_help_lists_faults():
    with pytest.raises(SystemExit):
        main(["--help"])


# ---------------------------------------------------------------------------
# catalog: systems listings and calibrate
# ---------------------------------------------------------------------------


def test_systems_json_is_machine_readable(capsys):
    assert main(["systems", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 1
    assert doc["kind"] == "system-catalog"
    by_name = {s["name"]: s for s in doc["systems"]}
    assert "H100-SXM" in by_name
    entry = by_name["miniHPC"]
    assert entry["vendor"] == "nvidia"
    assert entry["clock_mhz"] == [210.0, 1410.0]
    assert entry["source"].endswith("minihpc.yaml")
    assert entry["schema"] == 1


def test_systems_validate_checks_shipped_catalog(capsys):
    assert main(["systems", "--validate"]) == 0
    out = capsys.readouterr().out
    assert "OK miniHPC" in out
    assert "spec(s) valid" in out


def test_calibrate_sweep_and_fit(tmp_path, capsys):
    out_dir = str(tmp_path / "sweep")
    assert main(["calibrate", "sweep", "--system", "miniHPC",
                 "--out-dir", out_dir]) == 0
    capsys.readouterr()
    trace = f"{out_dir}/calibration.trace.jsonl"
    spec_out = str(tmp_path / "refit.yaml")
    assert main(["calibrate", "fit", "--trace", trace, "--json",
                 "--out", spec_out, "--base-system", "miniHPC",
                 "--name", "minihpc-refit"]) == 0
    out = capsys.readouterr().out
    doc = json.loads(out[:out.index("spec written")])
    assert doc["kind"] == "calibration-fit"
    assert abs(doc["idle_power_w"] - 45.0) < 1.0
    from repro.catalog import load_system

    assert load_system(spec_out).name == "minihpc-refit"


def test_calibrate_smoke_passes(capsys):
    assert main(["calibrate", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "calibration smoke passed" in out
    assert "FAIL" not in out


def test_calibrate_without_subcommand_fails_loud():
    with pytest.raises(SystemExit, match="sweep | fit"):
        main(["calibrate"])
