"""Sedov-Taylor blast: ICs, expansion, analytic similarity check."""

import numpy as np
import pytest

from repro.sph import NumericProblem, Simulation, propagator_for
from repro.sph.init import (
    SedovConfig,
    analytic_shock_radius,
    make_sedov,
    make_sedov_eos,
    shock_radius,
)
from repro.systems import Cluster, mini_hpc


def test_sedov_ic_energy_budget():
    cfg = SedovConfig(nside=10, blast_energy=1.0)
    p = make_sedov(cfg)
    assert p.n == 1000
    assert p.total_mass() == pytest.approx(1.0)
    # Total internal energy = blast + cold background.
    e_int = p.internal_energy()
    assert e_int == pytest.approx(
        cfg.blast_energy + cfg.u_background * 1.0, rel=1e-6
    )
    # The spike is concentrated at the box center.
    center = cfg.box_size / 2.0
    r = np.sqrt((p.x - center) ** 2 + (p.y - center) ** 2 + (p.z - center) ** 2)
    hot = p.u > 100.0 * cfg.u_background
    assert hot.sum() <= cfg.spike_particles
    assert np.max(r[hot]) < 0.25 * cfg.box_size


def test_sedov_ic_is_initially_static():
    p = make_sedov(SedovConfig(nside=6))
    assert p.kinetic_energy() == 0.0


def test_analytic_shock_radius_scaling():
    cfg = SedovConfig()
    r1 = analytic_shock_radius(cfg, 0.01)
    r2 = analytic_shock_radius(cfg, 0.02)
    assert r2 / r1 == pytest.approx(2.0**0.4, rel=1e-9)
    assert analytic_shock_radius(cfg, 0.0) == 0.0
    with pytest.raises(ValueError):
        analytic_shock_radius(cfg, -1.0)


def test_sedov_uses_hydro_propagator():
    names = [f.name for f in propagator_for("SedovBlast")]
    assert "Gravity" not in names
    assert "MomentumEnergy" in names


def test_sedov_blast_expands_and_conserves_energy():
    cfg = SedovConfig(nside=12, seed=5)
    p = make_sedov(cfg)
    cluster = Cluster(mini_hpc(), 1)
    try:
        problem = NumericProblem(
            particles=p,
            n_ranks=1,
            eos=make_sedov_eos(cfg),
            box_size=cfg.box_size,
        )
        sim = Simulation(cluster, "SedovBlast", p.n, numeric=problem)
        e0 = p.internal_energy()  # all internal at t=0
        radii = []
        times = []
        t = 0.0
        sim.initialize()
        sim.profiler.open_window()
        for _ in range(8):
            sim._run_step()
            t += problem.dt
            times.append(t)
            radii.append(shock_radius(p, cfg))
        sim.profiler.close_window()

        # The blast converts internal to kinetic energy and expands.
        assert p.kinetic_energy() > 0.01 * e0
        assert radii[-1] > radii[0] > 0.0
        assert radii == sorted(radii)
        # Total energy is conserved to a few percent (AV is conservative).
        e_total = p.kinetic_energy() + p.internal_energy()
        assert e_total == pytest.approx(e0, rel=0.05)
        # The measured radius tracks the analytic t^(2/5) within a factor
        # ~2 at this resolution (energy is injected over a finite region).
        expected = analytic_shock_radius(cfg, times[-1])
        assert 0.3 * expected < radii[-1] < 3.0 * expected
    finally:
        cluster.detach_management_library()


def test_sedov_momentum_stays_zero():
    cfg = SedovConfig(nside=10, seed=6)
    p = make_sedov(cfg)
    cluster = Cluster(mini_hpc(), 1)
    try:
        problem = NumericProblem(
            particles=p, n_ranks=1, eos=make_sedov_eos(cfg),
            box_size=cfg.box_size,
        )
        sim = Simulation(cluster, "SedovBlast", p.n, numeric=problem)
        sim.run(4)
        assert np.all(np.abs(p.momentum()) < 1e-10)
    finally:
        cluster.detach_management_library()
