"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import Metrics, StaticFrequencyPolicy, energy_delay_product
from repro.hardware import (
    GpuPerfModel,
    GpuPowerModel,
    KernelLaunch,
    SimulatedGpu,
    VirtualClock,
    a100_sxm4_80gb,
)
from repro.sph import WorkloadModel
from repro.units import mhz

SPEC = a100_sxm4_80gb()

clock_mhz = st.sampled_from(
    [round(c / 1e6) for c in SPEC.supported_clocks_hz()]
)
work = st.tuples(
    st.floats(min_value=1e8, max_value=1e13),  # flops
    st.floats(min_value=1e7, max_value=1e12),  # bytes
    st.floats(min_value=0.05, max_value=1.0),  # intensity
)


@given(work, clock_mhz)
@settings(max_examples=60, deadline=None)
def test_energy_is_power_times_time(w, f):
    """For any kernel at any pinned clock, E = integral of P dt exactly."""
    flops, nbytes, intensity = w
    gpu = SimulatedGpu(SPEC, VirtualClock())
    gpu.set_application_clocks(SPEC.memory_clock_hz, mhz(f), charge_latency=False)
    e0, t0 = gpu.energy_j, gpu.clock.now
    gpu.execute(KernelLaunch("K", flops, nbytes, intensity))
    dt = gpu.clock.now - t0
    power = GpuPowerModel(SPEC).busy_power_w(gpu.current_clock_hz, intensity)
    assert gpu.energy_j - e0 == pytest.approx(power * dt, rel=1e-9)


@given(work)
@settings(max_examples=40, deadline=None)
def test_downclocking_never_speeds_up_and_never_costs_energy(w):
    """Monotonicity: lower clock => time up (weakly), energy down (weakly)
    for any single kernel (idle power is small vs dynamic here)."""
    flops, nbytes, intensity = w
    assume(intensity >= 0.3)  # very light kernels can invert energy
    perf = GpuPerfModel(SPEC)
    power = GpuPowerModel(SPEC)
    k = KernelLaunch("K", flops, nbytes, intensity)
    prev_t, prev_e = None, None
    for f in (1410, 1290, 1170, 1050):
        t = perf.duration(k, mhz(f))
        e = power.busy_power_w(mhz(f), intensity) * t
        if prev_t is not None:
            assert t >= prev_t
            # Energy monotone when dynamic power dominates the idle floor.
            kappa = perf.compute_fraction(k, mhz(f))
            if intensity >= 0.5 or kappa < 0.5:
                assert e <= prev_e * 1.001
        prev_t, prev_e = t, e


@given(
    st.floats(min_value=1e-3, max_value=1e4),
    st.floats(min_value=1e-3, max_value=1e7),
)
@settings(max_examples=50)
def test_edp_normalization_identity(t, e):
    m = Metrics(time_s=t, energy_j=e)
    norm = m.normalized_to(m)
    assert norm.time == pytest.approx(1.0)
    assert norm.energy == pytest.approx(1.0)
    assert norm.edp == pytest.approx(1.0)
    assert energy_delay_product(e, t) == pytest.approx(m.edp)


@given(
    st.floats(min_value=1e4, max_value=2e8),
    st.floats(min_value=10.0, max_value=400.0),
)
@settings(max_examples=40, deadline=None)
def test_workload_total_nominal_time_is_particle_linear(n, neighbors):
    """Whole-step nominal work scales linearly in N at fixed neighbors."""
    a = WorkloadModel(n, neighbors)
    b = WorkloadModel(2.0 * n, neighbors)

    def nominal(model):
        total = 0.0
        for fn in model.order:
            for launch in model.launches_for(fn):
                total += launch.flops / 9.7e12 + launch.bytes_moved / 2e12
        return total

    assert nominal(b) == pytest.approx(2.0 * nominal(a), rel=1e-6)


@given(st.floats(min_value=100.0, max_value=2000.0))
@settings(max_examples=50)
def test_static_policy_names_and_values(freq):
    policy = StaticFrequencyPolicy(freq)
    assert policy.initial_mode() == freq
    assert policy.frequency_for("anything") is None
    assert f"{freq:.0f}" in policy.name


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_governor_estimate_stays_bounded(signals):
    from repro.hardware import DvfsGovernor

    gov = DvfsGovernor(SPEC)
    for s in signals:
        gov.note_launch(s)
        gov.observe_busy(0.005, s)
        assert 0.0 <= gov.utilization_estimate <= 1.0
        assert (
            SPEC.governor.idle_clock_hz
            <= gov.clock_hz
            <= SPEC.max_clock_hz
        )
        assert gov.clock_hz in SPEC.supported_clocks_hz()


@given(st.lists(st.floats(min_value=1e-4, max_value=10.0), min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_gpu_energy_monotone_over_time(dts):
    gpu = SimulatedGpu(SPEC, VirtualClock())
    last = gpu.energy_j
    for dt in dts:
        gpu.clock.advance(dt)
        assert gpu.energy_j >= last
        last = gpu.energy_j


@given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_comm_allreduce_is_deterministic_and_rank_symmetric(n, seed):
    from repro.hardware import VirtualClock as VC
    from repro.mpi import SimComm

    rng = np.random.default_rng(seed)
    values = list(rng.uniform(0, 1, size=n))
    a = SimComm([VC() for _ in range(n)]).allreduce(list(values))
    b = SimComm([VC() for _ in range(n)]).allreduce(list(values))
    assert a == b
    assert a == pytest.approx(sum(values))
