"""DeviceSampler: clock-driven polling, gap detection, external feeds."""

import pytest

from repro.hardware import KernelLaunch, SimulatedGpu, VirtualClock, a100_pcie_40gb
from repro.monitor import DEVICE_SERIES, DeviceSampler
from repro.systems import Cluster, mini_hpc
from repro.telemetry import TRACK_FAULTS, TraceCollector


def _sampler(period_s=0.05, **kwargs):
    clock = VirtualClock()
    gpu = SimulatedGpu(a100_pcie_40gb(), clock)
    return DeviceSampler([gpu], [clock], period_s=period_s, **kwargs), gpu, clock


def test_sampler_records_every_device_series():
    sampler, gpu, clock = _sampler()
    sampler.start()
    for _ in range(10):
        clock.advance(0.05)
    sampler.stop()
    for name in DEVICE_SERIES:
        series = sampler.series(name, rank=0)
        assert series.n_samples >= 10, name
    assert sampler.series("power_w").last == pytest.approx(gpu.power_w())
    assert sampler.series("energy_j").last == pytest.approx(gpu.energy_j)


def test_sampler_respects_period():
    sampler, gpu, clock = _sampler(period_s=0.1)
    sampler.start()
    for _ in range(100):
        clock.advance(0.01)  # 1.0 s total, 10 periods
    sampler.stop()
    # 1 start + 10 periodic + (stop pins only if needed): t=1.0 is a
    # period boundary, so the final sample was already taken.
    assert sampler.series("power_w").n_samples == 11


def test_long_advance_is_recorded_as_gap():
    sampler, gpu, clock = _sampler(period_s=0.05, gap_factor=4.0)
    sampler.start()
    clock.advance(1.0)  # 20 periods in one unobservable advance
    sampler.stop()
    assert len(sampler.gaps) == 1
    gap = sampler.gaps[0]
    assert gap.rank == 0
    assert gap.t0_s == 0.0 and gap.t1_s == 1.0
    assert gap.missed_ticks == 19
    assert sampler.metrics.counter("sampler_gaps", rank=0).value == 1.0


def test_short_advances_are_not_gaps():
    sampler, gpu, clock = _sampler(period_s=0.05, gap_factor=4.0)
    sampler.start()
    for _ in range(20):
        clock.advance(0.06)  # slightly late, never gap_factor late
    sampler.stop()
    assert sampler.gaps == []


def test_gap_emits_fault_instant_in_telemetry():
    collector = TraceCollector()
    sampler, gpu, clock = _sampler(period_s=0.05, telemetry=collector)
    sampler.start()
    clock.advance(2.0)
    sampler.stop()
    gaps = [
        e for e in collector.instants(TRACK_FAULTS) if e.name == "sampler-gap"
    ]
    assert len(gaps) == 1
    assert gaps[0].args["missed_ticks"] == 39


def test_sampler_mirrors_samples_into_telemetry():
    collector = TraceCollector()
    sampler, gpu, clock = _sampler(telemetry=collector)
    sampler.start()
    clock.advance(0.05)
    sampler.stop()
    device_counters = [
        c for c in collector.counters() if c.name == "device"
    ]
    assert device_counters
    assert set(device_counters[0].values) == {
        "power_w", "clock_mhz", "temp_c", "utilization"
    }
    # The shared registry carries live gauges for every series.
    snap = collector.metrics.snapshot()
    assert "monitor_power_w{rank=0}" in snap["gauges"]


def test_sampler_sees_kernel_activity():
    sampler, gpu, clock = _sampler(period_s=0.01)
    sampler.start()
    gpu.execute(KernelLaunch("K", flops=1e12, bytes_moved=0.0,
                             power_intensity=1.0))
    clock.advance(0.05)
    sampler.stop()
    energy = sampler.series("energy_j")
    assert energy.last > 0.0
    assert sampler.series("power_ema_w").last > 0.0


def test_observe_external_feeds_named_series():
    sampler, gpu, clock = _sampler()
    sampler.observe_external("pmt_power_w", 0, 0.1, 240.0)
    sampler.observe_external("pmt_power_w", 0, 0.2, 260.0)
    series = sampler.series("pmt_power_w")
    assert series.n_samples == 2
    assert series.last == 260.0
    assert ("pmt_power_w", 0) in sampler.series_names()


def test_observe_external_gap_counts_ticks():
    sampler, gpu, clock = _sampler(period_s=0.1)
    sampler.observe_external_gap(0, 1.0, 2.0)
    assert len(sampler.gaps) == 1
    assert sampler.gaps[0].missed_ticks == 10


def test_for_cluster_covers_every_rank():
    cluster = Cluster(mini_hpc(), 2)
    try:
        sampler = DeviceSampler.for_cluster(cluster, period_s=0.05)
        sampler.start()
        for clock in cluster.clocks:
            clock.advance(0.2)
        sampler.stop()
    finally:
        cluster.detach_management_library()
    assert sampler.n_ranks == 2
    for rank in range(2):
        assert sampler.series("power_w", rank).n_samples > 0
    snap = sampler.snapshot()
    assert "power_w[0]" in snap and "power_w[1]" in snap


def test_sampler_lifecycle_guards():
    sampler, gpu, clock = _sampler()
    with pytest.raises(RuntimeError):
        sampler.stop()
    sampler.start()
    with pytest.raises(RuntimeError):
        sampler.start()
    sampler.stop()


def test_sampler_validates_construction():
    clock = VirtualClock()
    gpu = SimulatedGpu(a100_pcie_40gb(), clock)
    with pytest.raises(ValueError):
        DeviceSampler([gpu], [])
    with pytest.raises(ValueError):
        DeviceSampler([], [])
    with pytest.raises(ValueError):
        DeviceSampler([gpu], [clock], period_s=0.0)
    with pytest.raises(ValueError):
        DeviceSampler([gpu], [clock], gap_factor=0.5)
