"""Simulated MPI: collectives, synchronization, cost model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hardware import VirtualClock
from repro.mpi import CommModel, LocalBackend, MpiError, SimComm, make_backend


def _comm(n=4, node_of_rank=None):
    clocks = [VirtualClock() for _ in range(n)]
    return SimComm(clocks, node_of_rank=node_of_rank), clocks


def test_barrier_synchronizes_clocks():
    comm, clocks = _comm()
    clocks[2].advance(5.0)
    comm.barrier()
    times = [c.now for c in clocks]
    assert max(times) == min(times)
    assert times[0] > 5.0  # collective latency added


def test_allreduce_default_sum():
    comm, _ = _comm()
    assert comm.allreduce([1.0, 2.0, 3.0, 4.0]) == 10.0


def test_allreduce_min_op():
    comm, _ = _comm()
    assert comm.allreduce([0.4, 0.1, 0.3, 0.2], op=min) == 0.1


def test_allreduce_numpy_arrays():
    comm, _ = _comm(2)
    out = comm.allreduce([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
    assert np.allclose(out, [4.0, 6.0])


def test_wrong_contribution_count_rejected():
    comm, _ = _comm(4)
    with pytest.raises(MpiError):
        comm.allreduce([1.0, 2.0])


def test_bcast_returns_copies_per_rank():
    comm, _ = _comm(3)
    out = comm.bcast("hello", root=0)
    assert out == ["hello"] * 3


def test_gather_and_allgather():
    comm, _ = _comm(3)
    assert comm.gather([10, 20, 30]) == [10, 20, 30]
    assert comm.allgather(["a", "b", "c"]) == ["a", "b", "c"]


def test_alltoall_transposes():
    comm, _ = _comm(2)
    matrix = [["00", "01"], ["10", "11"]]
    out = comm.alltoall(matrix)
    assert out[0] == ["00", "10"]
    assert out[1] == ["01", "11"]


def test_sendrecv_advances_only_endpoints():
    comm, clocks = _comm(4)
    comm.sendrecv(0, 1, 1e6)
    assert clocks[0].now == clocks[1].now > 0
    assert clocks[2].now == 0.0


def test_sendrecv_self_is_noop():
    comm, clocks = _comm(2)
    comm.sendrecv(1, 1, 1e9)
    assert clocks[1].now == 0.0


def test_invalid_rank_rejected():
    comm, _ = _comm(2)
    with pytest.raises(MpiError):
        comm.sendrecv(0, 5, 10.0)
    with pytest.raises(MpiError):
        comm.bcast("x", root=9)


def test_stats_accumulate():
    comm, clocks = _comm(2)
    clocks[0].advance(1.0)
    comm.barrier()
    comm.allreduce([1.0, 2.0])
    assert comm.stats.calls["barrier"] == 1
    assert comm.stats.calls["allreduce"] == 1
    assert comm.stats.sync_wait_s > 0  # rank 1 waited for rank 0


def test_intra_vs_inter_node_costs():
    model = CommModel()
    fast = model.point_to_point_s(1e6, same_node=True)
    slow = model.point_to_point_s(1e6, same_node=False)
    assert fast < slow


def test_collective_scales_with_log_ranks():
    model = CommModel()
    t8 = model.collective_s(8, 1e3)
    t64 = model.collective_s(64, 1e3)
    assert t8 < t64


def test_multi_node_detection():
    comm, _ = _comm(4, node_of_rank=[0, 0, 1, 1])
    assert comm.multi_node
    comm2, _ = _comm(4, node_of_rank=[0, 0, 0, 0])
    assert not comm2.multi_node


def test_empty_comm_rejected():
    with pytest.raises(MpiError):
        SimComm([])


def test_reduce_scatter_column_sums():
    comm, clocks = _comm(4)
    matrix = [[float(src * 10 + dst) for dst in range(4)] for src in range(4)]
    out = comm.reduce_scatter(matrix)
    # rank dst receives sum over src of matrix[src][dst]
    assert out == [60.0, 64.0, 68.0, 72.0]
    assert comm.stats.calls["reduce_scatter"] == 1
    assert max(c.now for c in clocks) > 0.0


def test_reduce_scatter_custom_op_and_shape_check():
    comm, _ = _comm(2)
    assert comm.reduce_scatter([[3.0, 1.0], [2.0, 4.0]], op=min) == [2.0, 1.0]
    with pytest.raises(MpiError):
        comm.reduce_scatter([[1.0], [2.0]])  # row shorter than n_ranks
    with pytest.raises(MpiError):
        comm.reduce_scatter([[1.0, 2.0]])  # missing a contributor


def test_reduce_scatter_costs_more_than_allreduce():
    comm_a, clocks_a = _comm(4)
    comm_b, clocks_b = _comm(4)
    comm_a.allreduce([1.0] * 4)
    comm_b.reduce_scatter([[1.0] * 4] * 4)
    assert max(c.now for c in clocks_b) > max(c.now for c in clocks_a)


def test_alltoall_stats_accounting():
    comm, _ = _comm(3)
    comm.alltoall([[b"x" * 10] * 3 for _ in range(3)])
    assert comm.stats.calls["alltoall"] == 1
    assert comm.stats.bytes_moved > 0


def test_per_rank_wait_accounting():
    comm, clocks = _comm(3)
    clocks[0].advance(2.0)
    comm.barrier()
    waits = comm.stats.rank_wait_s
    assert len(waits) == 3
    assert waits[0] == 0.0  # the late rank never waits
    assert waits[1] == pytest.approx(2.0)
    assert waits[2] == pytest.approx(2.0)
    assert comm.stats.sync_wait_s == pytest.approx(sum(waits))


def test_stats_state_roundtrip_keeps_rank_waits():
    comm, clocks = _comm(2)
    clocks[1].advance(1.0)
    comm.barrier()
    state = comm.stats.state_dict()
    comm2, _ = _comm(2)
    comm2.stats.restore_state(state)
    assert comm2.stats.rank_wait_s == comm.stats.rank_wait_s
    # Old checkpoints predate per-rank waits: restore must tolerate it.
    del state["rank_wait_s"]
    comm2.stats.restore_state(state)
    assert comm2.stats.rank_wait_s == []


def test_make_backend_selects_and_rejects():
    assert isinstance(make_backend("local", 2), LocalBackend)
    backend = make_backend("process", 2)
    assert backend.name == "process" and backend.parallel
    with pytest.raises(MpiError):
        make_backend("threads", 2)


def test_local_backend_paces_serially():
    backend = LocalBackend()
    assert not backend.parallel
    wall = backend.pace([0.0, 0.0, 0.0])
    assert wall >= 0.0
    backend.shutdown()  # no-op, must not raise


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=8))
def test_allreduce_sum_matches_python_sum(values):
    comm, _ = _comm(len(values))
    assert comm.allreduce(list(values)) == pytest.approx(sum(values))


@given(
    st.integers(min_value=1, max_value=128),
    st.floats(min_value=0.0, max_value=1e9),
)
def test_collective_time_positive_and_finite(n, nbytes):
    model = CommModel()
    t = model.collective_s(n, nbytes)
    assert 0.0 < t < 10.0
