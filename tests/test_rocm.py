"""rocm-smi shim: card-level sensors over per-GCD devices."""

import pytest

from repro import rocm
from repro.hardware import KernelLaunch, SimulatedGpu, VirtualClock, mi250x_gcd
from repro.units import mhz


@pytest.fixture
def gcds():
    clk = VirtualClock()
    devices = [SimulatedGpu(mi250x_gcd(), clk, index=i) for i in range(4)]
    rocm.attach_devices(devices)
    rocm.rsmi_init()
    return devices


def test_uninitialized_raises():
    rocm.attach_devices([])
    rocm.rsmi_shut_down()
    with pytest.raises(rocm.RocmSmiError):
        rocm.rsmi_num_monitor_devices()


def test_device_enumeration(gcds):
    assert rocm.rsmi_num_monitor_devices() == 4
    assert "MI250X" in rocm.rsmi_dev_name_get(0)


def test_power_is_card_level(gcds):
    # GCDs 0 and 1 share a card: they report identical power.
    gcds[0].execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    p0 = rocm.rsmi_dev_power_ave_get(0)
    p1 = rocm.rsmi_dev_power_ave_get(1)
    assert p0 == p1
    # And the card power is the sum of both GCDs' true draws.
    expected = (gcds[0].power_w() + gcds[1].power_w()) * 1e6
    assert p0 == pytest.approx(expected, abs=1.0)


def test_energy_counter_card_level_double_counts_if_summed(gcds):
    gcds[0].execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    card_uj = rocm.rsmi_dev_energy_count_get(0)
    true_j = gcds[0].energy_j + gcds[1].energy_j
    assert card_uj == pytest.approx(true_j * 1e6, rel=1e-6)
    # Summing "per-device" readings over all 4 GCDs counts every card
    # twice — the paper's measurement pitfall (section III-B).
    naive_sum = sum(rocm.rsmi_dev_energy_count_get(i) for i in range(4))
    true_total = sum(g.energy_j for g in gcds) * 1e6
    assert naive_sum == pytest.approx(2.0 * true_total, rel=1e-6)


def test_clock_get_and_set_per_gcd(gcds):
    assert rocm.rsmi_dev_gpu_clk_freq_get(0, rocm.RSMI_CLK_TYPE_SYS) == int(
        mhz(1700)
    )
    rocm.rsmi_dev_gpu_clk_freq_set(0, rocm.RSMI_CLK_TYPE_SYS, mhz(1200))
    assert rocm.rsmi_dev_gpu_clk_freq_get(0, rocm.RSMI_CLK_TYPE_SYS) == int(
        mhz(1200)
    )
    # Clock control is per GCD: the sibling is untouched.
    assert rocm.rsmi_dev_gpu_clk_freq_get(1, rocm.RSMI_CLK_TYPE_SYS) == int(
        mhz(1700)
    )


def test_clock_reset_returns_to_governor(gcds):
    rocm.rsmi_dev_gpu_clk_freq_set(2, rocm.RSMI_CLK_TYPE_SYS, mhz(1000))
    rocm.rsmi_dev_gpu_clk_freq_reset(2)
    assert gcds[2].dvfs_active


def test_memory_clock_readable_not_settable(gcds):
    assert rocm.rsmi_dev_gpu_clk_freq_get(0, rocm.RSMI_CLK_TYPE_MEM) == int(
        mhz(1600)
    )
    with pytest.raises(rocm.RocmSmiError):
        rocm.rsmi_dev_gpu_clk_freq_set(0, rocm.RSMI_CLK_TYPE_MEM, mhz(1000))


def test_bad_index_raises(gcds):
    with pytest.raises(rocm.RocmSmiError):
        rocm.rsmi_dev_power_ave_get(9)


def test_gcds_per_card_topology(gcds):
    assert rocm.gcds_per_card(0) == 2


def test_status_string_unknown_code_formats_readably():
    assert rocm.rsmi_status_string(rocm.RSMI_STATUS_BUSY) == "Device Busy"
    assert rocm.rsmi_status_string(12345) == "unknown rsmi status 12345"
    assert rocm.rsmi_status_string(None) == "unknown rsmi status None"
    err = rocm.RocmSmiError(777)
    assert err.status == 777
    assert "unknown rsmi status 777" in str(err)
