"""Fair scheduling, backpressure, and the thread->loop event bus."""

import asyncio
import threading

import pytest

from repro.service import (
    BackpressureError,
    EventBus,
    FairScheduler,
    SchedulerConfig,
)


class Job:
    """Minimal scheduler job: a tenant plus a completion gate."""

    def __init__(self, tenant, tag):
        self.tenant = tenant
        self.tag = tag
        self.gate = asyncio.Event()


def _scheduler(config, started):
    async def runner(job):
        started.append(job.tag)
        await job.gate.wait()

    return FairScheduler(runner, config=config)


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_running": 0},
        {"per_tenant_running": 0},
        {"queue_depth": 0},
        {"retry_after_s": 0.0},
    ],
)
def test_scheduler_config_rejects_nonpositive(kwargs):
    with pytest.raises(ValueError):
        SchedulerConfig(**kwargs)


# ---------------------------------------------------------------------------
# fairness and backpressure
# ---------------------------------------------------------------------------


def test_per_tenant_running_cap_and_round_robin():
    async def scenario():
        started = []
        sched = _scheduler(
            SchedulerConfig(max_running=2, per_tenant_running=1,
                            queue_depth=8),
            started,
        )
        a1, a2 = Job("a", "a1"), Job("a", "a2")
        b1 = Job("b", "b1")
        sched.submit(a1)
        sched.submit(a2)
        sched.submit(b1)
        await asyncio.sleep(0)
        # a2 must NOT start even though a slot is free: tenant "a" is
        # capped at 1, so the free slot goes to tenant "b".
        assert started == ["a1", "b1"]
        assert sched.queued("a") == 1
        a1.gate.set()
        b1.gate.set()
        for _ in range(5):
            await asyncio.sleep(0)
        assert started == ["a1", "b1", "a2"]
        a2.gate.set()
        await sched.drain()
        assert sched.stats()["dispatched"] == 3

    asyncio.run(scenario())


def test_bounded_queue_rejects_with_retry_hint():
    async def scenario():
        started = []
        sched = _scheduler(
            SchedulerConfig(max_running=1, per_tenant_running=1,
                            queue_depth=1, retry_after_s=2.5),
            started,
        )
        running = Job("a", "run")
        queued = Job("a", "wait")
        sched.submit(running)
        sched.submit(queued)
        with pytest.raises(BackpressureError) as err:
            sched.submit(Job("a", "reject"))
        assert err.value.retry_after_s == 2.5
        assert sched.stats()["rejected"] == 1
        # Another tenant still gets in: the bound is per tenant.
        other = Job("b", "other")
        sched.submit(other)
        running.gate.set()
        queued.gate.set()
        other.gate.set()
        await sched.drain()
        assert set(started) == {"run", "wait", "other"}

    asyncio.run(scenario())


def test_cancel_queued_removes_before_start():
    async def scenario():
        started = []
        sched = _scheduler(SchedulerConfig(max_running=1), started)
        first, second = Job("a", "first"), Job("a", "second")
        sched.submit(first)
        sched.submit(second)
        assert sched.cancel_queued(second)
        assert not sched.cancel_queued(second)  # already gone
        first.gate.set()
        await sched.drain()
        assert started == ["first"]

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# event bus
# ---------------------------------------------------------------------------


def test_event_bus_replay_and_live_subscription():
    async def scenario():
        bus = EventBus(loop=asyncio.get_running_loop())
        bus.publish({"event": "one"})
        bus.publish({"event": "two"})

        seen = []

        async def consume():
            async for event in bus.subscribe():
                seen.append(event)

        task = asyncio.ensure_future(consume())
        await asyncio.sleep(0.01)
        # Publish from a worker thread, like the executor does.
        thread = threading.Thread(
            target=lambda: (bus.publish({"event": "three"}), bus.close())
        )
        thread.start()
        await asyncio.wait_for(task, timeout=5)
        thread.join()
        assert [e["event"] for e in seen] == ["one", "two", "three"]
        assert [e["seq"] for e in seen] == [0, 1, 2]

    asyncio.run(scenario())


def test_event_bus_resume_from_sequence():
    async def scenario():
        bus = EventBus(loop=asyncio.get_running_loop())
        for i in range(5):
            bus.publish({"event": f"e{i}"})
        bus.close()
        assert [e["seq"] for e in bus.replay(from_seq=3)] == [3, 4]
        seen = [e async for e in bus.subscribe(from_seq=3)]
        assert [e["event"] for e in seen] == ["e3", "e4"]

    asyncio.run(scenario())


def test_event_bus_bounded_history():
    bus = EventBus(history=3)
    for i in range(10):
        bus.publish({"event": f"e{i}"})
    assert bus.dropped == 7
    assert [e["seq"] for e in bus.replay()] == [7, 8, 9]


def test_event_bus_publish_after_close_is_noop():
    bus = EventBus()
    bus.publish({"event": "kept"})
    bus.close()
    bus.publish({"event": "dropped"})
    assert len(bus) == 1
