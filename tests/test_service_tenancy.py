"""Multi-tenant namespacing and the cross-tenant result cache."""

import json

import pytest

from repro.service import (
    DEFAULT_TENANT,
    MultiTenantRunStore,
    SharedResultCache,
    campaign_slug,
    validate_tenant,
)

UNIT = {"campaign": "t", "system": "miniHPC", "seed": 0}
RESULT = {"metrics": {"elapsed_s": 1.0, "gpu_energy_j": 2.0}}


# ---------------------------------------------------------------------------
# tenant names and campaign slugs
# ---------------------------------------------------------------------------


def test_validate_tenant_defaults_and_accepts():
    assert validate_tenant(None) == DEFAULT_TENANT
    assert validate_tenant("") == DEFAULT_TENANT
    assert validate_tenant("team-a.42") == "team-a.42"


@pytest.mark.parametrize(
    "bad", ["../escape", "a/b", "-leading", ".hidden", "x" * 65, "sp ace"]
)
def test_validate_tenant_rejects_unsafe_names(bad):
    with pytest.raises(ValueError, match="invalid tenant"):
        validate_tenant(bad)


def test_campaign_slug_is_safe_and_collision_free():
    slug = campaign_slug("fig7 dynamic/static sweep")
    assert "/" not in slug and " " not in slug
    # Same digest length suffix disambiguates sanitization collisions.
    assert campaign_slug("a b") != campaign_slug("a/b")
    assert campaign_slug("a b") != campaign_slug("a-b")


# ---------------------------------------------------------------------------
# shared result cache
# ---------------------------------------------------------------------------


def _artifact():
    return {"schema": 1, "kind": "campaign-run", "unit": UNIT,
            "result": RESULT}


def test_shared_cache_roundtrip(tmp_path):
    cache = SharedResultCache(str(tmp_path / "shared"))
    assert cache.get("k1") is None
    assert "k1" not in cache
    cache.put("k1", _artifact())
    assert "k1" in cache and len(cache) == 1
    assert cache.get("k1")["unit"] == UNIT
    # Overwrites are idempotent, no tmp litter.
    cache.put("k1", _artifact())
    assert len(cache) == 1
    assert not list(tmp_path.rglob("*.tmp"))


def test_shared_cache_rejects_foreign_documents(tmp_path):
    cache = SharedResultCache(str(tmp_path))
    cache.path("bad").write_text(json.dumps({"kind": "other"}))
    with pytest.raises(ValueError, match="not a campaign run artifact"):
        cache.get("bad")


# ---------------------------------------------------------------------------
# multi-tenant store
# ---------------------------------------------------------------------------


def test_store_for_is_cached_and_namespaced(tmp_path):
    stores = MultiTenantRunStore(str(tmp_path))
    a = stores.store_for("alice", "c1")
    assert stores.store_for("alice", "c1") is a  # same instance: dedup works
    b = stores.store_for("bob", "c1")
    assert b is not a
    a.record_done("k1", UNIT, RESULT)
    assert b.completed_keys() == set()  # namespaces are disjoint
    assert stores.tenants() == ["alice", "bob"]


def test_adopt_and_publish_shared(tmp_path):
    stores = MultiTenantRunStore(str(tmp_path))
    a = stores.store_for("alice", "c1")
    a.record_done("k1", UNIT, RESULT)

    # Write-through: alice's artifact reaches the shared cache once.
    assert stores.publish_shared(a, ["k1", "k-missing"]) == 1
    assert stores.publish_shared(a, ["k1"]) == 0  # already shared

    # Read-through: bob adopts it without executing anything.
    b = stores.store_for("bob", "c1")
    adopted = stores.adopt_shared(b, ["k1", "k-unknown"])
    assert adopted == ["k1"]
    assert b.completed_keys() == {"k1"}
    assert b.load_result("k1")["result"] == RESULT
    # Re-adoption is a no-op (already completed locally).
    assert stores.adopt_shared(b, ["k1"]) == []


def test_shared_cache_disabled(tmp_path):
    stores = MultiTenantRunStore(str(tmp_path), shared_cache=False)
    a = stores.store_for("alice", "c1")
    a.record_done("k1", UNIT, RESULT)
    assert stores.publish_shared(a, ["k1"]) == 0
    b = stores.store_for("bob", "c1")
    assert stores.adopt_shared(b, ["k1"]) == []
    assert not (tmp_path / "shared").exists()


def test_tenant_root_rejects_traversal(tmp_path):
    stores = MultiTenantRunStore(str(tmp_path))
    with pytest.raises(ValueError):
        stores.store_for("../../etc", "c1")
