"""Workload model: costs, utilization behaviour, function ordering."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware import GpuPerfModel, a100_pcie_40gb
from repro.sph import (
    FULL_UTILIZATION_PARTICLES,
    WorkloadModel,
    function_names,
    max_particles_per_gpu,
)
from repro.units import GIB, mhz


def test_function_order_matches_paper_loop():
    names = function_names()
    assert names[0] == "DomainDecompAndSync"
    assert names[-1] == "UpdateQuantities"
    assert names.index("IADVelocityDivCurl") < names.index("MomentumEnergy")
    assert "Gravity" not in names
    withg = function_names(with_gravity=True)
    assert withg.index("Gravity") == withg.index("MomentumEnergy") - 1


def test_momentum_energy_dominates_step_time():
    model = WorkloadModel(91e6)
    perf = GpuPerfModel(a100_pcie_40gb())
    f = a100_pcie_40gb().max_clock_hz
    times = {
        fn: sum(perf.duration(l, f) for l in model.launches_for(fn))
        for fn in model.order
    }
    total = sum(times.values())
    assert times["MomentumEnergy"] == max(times.values())
    assert 0.25 < times["MomentumEnergy"] / total < 0.55
    assert times["IADVelocityDivCurl"] / total > 0.1


def test_momentum_energy_is_compute_bound_lights_are_not():
    model = WorkloadModel(91e6)
    perf = GpuPerfModel(a100_pcie_40gb())
    f = a100_pcie_40gb().max_clock_hz

    def kappa(fn):
        launch = model.launches_for(fn)[0]
        return perf.compute_fraction(launch, f)

    assert kappa("MomentumEnergy") > 0.7
    assert kappa("IADVelocityDivCurl") > 0.55
    assert kappa("XMass") < 0.3
    assert kappa("NormalizationGradh") < 0.3
    assert kappa("DomainDecompAndSync") < 0.2


def test_neighbor_scaling_applies_to_pair_kernels_only():
    base = WorkloadModel(1e6, mean_neighbors=100.0)
    dense = base.with_neighbors(200.0)
    mom_base = base.launches_for("MomentumEnergy")[0]
    mom_dense = dense.launches_for("MomentumEnergy")[0]
    assert mom_dense.flops == pytest.approx(2.0 * mom_base.flops)
    ts_base = base.launches_for("Timestep")[0]
    ts_dense = dense.launches_for("Timestep")[0]
    assert ts_dense.flops == pytest.approx(ts_base.flops)


def test_domain_decomp_is_many_lightweight_launches():
    model = WorkloadModel(91e6)
    launches = model.launches_for("DomainDecompAndSync")
    assert len(launches) == 40
    assert all(l.launch_overhead > 0 for l in launches)
    single = model.launches_for("MomentumEnergy")
    assert len(single) == 1


def test_underutilized_problem_becomes_latency_bound():
    full = WorkloadModel(FULL_UTILIZATION_PARTICLES)
    small = WorkloadModel(8e6)  # 200^3
    assert small.utilization < 1.0
    assert full.utilization == 1.0
    l_small = small.launches_for("MomentumEnergy")[0]
    l_full = full.launches_for("MomentumEnergy")[0]
    # Compute work shifts into clock-independent memory-latency time.
    assert l_small.flops / 8e6 < l_full.flops / FULL_UTILIZATION_PARTICLES
    assert (
        l_small.bytes_moved / 8e6
        > l_full.bytes_moved / FULL_UTILIZATION_PARTICLES
    )
    # And power intensity drops.
    assert l_small.power_intensity < l_full.power_intensity
    # Net effect: frequency sensitivity (kappa) falls.
    perf = GpuPerfModel(a100_pcie_40gb())
    f_max = a100_pcie_40gb().max_clock_hz
    assert perf.compute_fraction(l_small, f_max) < perf.compute_fraction(
        l_full, f_max
    )


def test_gravity_only_in_evrard_workload():
    turb = WorkloadModel(91e6, with_gravity=False)
    evr = WorkloadModel(91e6, with_gravity=True)
    with pytest.raises(KeyError):
        turb.launches_for("Gravity")
    assert evr.launches_for("Gravity")[0].power_intensity > 0.9


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        WorkloadModel(0)
    with pytest.raises(ValueError):
        WorkloadModel(100, mean_neighbors=0)


def test_max_particles_per_gpu_memory_cap():
    cap_40gb = max_particles_per_gpu(40.0 * GIB)
    cap_80gb = max_particles_per_gpu(80.0 * GIB)
    # miniHPC (40 GB) fits 450^3 = 91M but not 150M (paper section IV-C).
    assert cap_40gb >= 450**3
    assert cap_40gb < 150e6
    assert cap_80gb >= 150e6


@given(st.floats(min_value=1e4, max_value=2e8))
def test_nominal_work_scales_linearly_with_particles(n):
    a = WorkloadModel(n)
    b = WorkloadModel(2.0 * n)
    la = a.launches_for("MomentumEnergy")[0]
    lb = b.launches_for("MomentumEnergy")[0]

    # The nominal reference-device time is conserved by the
    # latency-bound shift and linear in the particle count.
    def nominal(l):
        return l.flops / 9.7e12 + l.bytes_moved / 2.0e12

    assert nominal(lb) == pytest.approx(2.0 * nominal(la), rel=1e-6)
