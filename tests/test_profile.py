"""Distributed tracing & profiling: shards, merge determinism, analysis.

The acceptance bar from the observability issue: every rank-process
span of a campaign unit carries the originating request's trace id, the
merged per-unit trace is byte-identical under the ``local`` and
``process`` comm backends, a checkpointed restore keeps the trace
identity (same trace id, new span lineage), and the critical-path
extraction agrees with the communicator's ``rank_wait_s``.
"""

import json
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.worker import run_unit_safe
from repro.hardware import VirtualClock
from repro.telemetry import (
    SpanEvent,
    TraceCollector,
    collapsed_stacks,
    critical_path,
    diff_traces,
    gating_consistent_with_waits,
    merge_shards,
    merged_trace_path,
    mint_context,
    read_trace_jsonl,
    read_trace_shard,
)
from repro.telemetry.events import TRACK_FAULTS, TRACK_FUNCTIONS
from repro.telemetry.profile import (
    MAIN_SHARD,
    RANK_PROCESS_SPAN,
    shard_name_for,
)


def _span(name, rank, t0, t1, step=None):
    args = {} if step is None else {"step": step}
    return SpanEvent(
        name=name, rank=rank, t0_s=t0, t1_s=t1,
        track=TRACK_FUNCTIONS, args=args,
    )


def _spec(**overrides):
    base = dict(
        name="prof-t",
        workloads=("sedov",),
        policies=({"kind": "baseline"},),
        systems=("miniHPC",),
        particles=(10_000.0,),
        steps=3,
        ranks=2,
        seeds=(0,),
    )
    base.update(overrides)
    return CampaignSpec(**base)


# ---------------------------------------------------------------------------
# shard partitioning and flush
# ---------------------------------------------------------------------------


def test_shard_name_rule():
    assert shard_name_for(_span("F", 1, 0.0, 1.0)) == "rank-1"
    fault = SpanEvent(
        name="phase", rank=0, t0_s=0.0, t1_s=1.0, track=TRACK_FAULTS
    )
    assert shard_name_for(fault) == MAIN_SHARD


def test_flush_shards_partitions_and_synthesizes_rank_spans(tmp_path):
    clocks = [VirtualClock(), VirtualClock()]
    collector = TraceCollector(clocks=clocks)
    root = mint_context(seed="flush")
    collector.configure_tracing(root, shard_dir=str(tmp_path))
    for rank in (0, 1):
        collector.before_function("XMass", rank)
        clocks[rank].advance(0.1 * (rank + 1))
        collector.after_function("XMass", rank)
    collector.emit_instant("note", 0, ts=0.0, track=TRACK_FAULTS)

    paths = collector.flush_shards()
    names = sorted(p.rsplit("/", 1)[-1] for p in paths)
    assert names == ["main.jsonl", "rank-0.jsonl", "rank-1.jsonl"]

    header, events = read_trace_shard(str(tmp_path / "rank-1.jsonl"))
    assert header["trace_id"] == root.trace_id
    assert header["span_id"] == root.child("rank-1").span_id
    assert header["parent_span_id"] == root.span_id
    lifetimes = [e for e in events if e.name == RANK_PROCESS_SPAN]
    assert len(lifetimes) == 1
    assert lifetimes[0].args["parent_span_id"] == root.span_id

    trace_id, merged = merge_shards(str(tmp_path))
    assert trace_id == root.trace_id
    # Every span/instant of the merged trace carries the root trace id.
    stamped = [e for e in merged if "trace_id" in getattr(e, "args", {})]
    assert stamped
    assert {e.args["trace_id"] for e in stamped} == {root.trace_id}


def test_flush_without_context_or_dir_raises(tmp_path):
    collector = TraceCollector(clocks=[VirtualClock()])
    with pytest.raises(RuntimeError):
        collector.flush_shards(str(tmp_path))
    collector.configure_tracing(mint_context(seed="x"))
    with pytest.raises(RuntimeError):
        collector.flush_shards()


def test_merge_shards_rejects_mixed_traces(tmp_path):
    a = TraceCollector(clocks=[VirtualClock()])
    a.configure_tracing(mint_context(seed="a"))
    a.emit_instant("x", 0, ts=0.0)
    a.flush_shards(str(tmp_path))
    # A foreign shard under a different trace id poisons the merge.
    b = TraceCollector(clocks=[VirtualClock()])
    b.configure_tracing(mint_context(seed="b"))
    b.emit_instant("y", 0, ts=0.0)
    (line_path,) = b.flush_shards(str(tmp_path / "other"))
    (tmp_path / "stray.jsonl").write_bytes(
        (tmp_path / "other" / "rank-0.jsonl").read_bytes()
        if (tmp_path / "other" / "rank-0.jsonl").exists()
        else open(line_path, "rb").read()
    )
    with pytest.raises(ValueError):
        merge_shards(str(tmp_path))


# ---------------------------------------------------------------------------
# end-to-end: unit execution under both backends
# ---------------------------------------------------------------------------


def _run_traced_unit(tmp_path, comm_backend, label, trace=None):
    spec = _spec(comm_backend=comm_backend)
    (unit,) = spec.expand()
    if trace is None:
        root = mint_context(seed="determinism")
        trace = root.child(f"unit:{unit.key}").to_dict()
    trace_dir = str(tmp_path / label)
    outcome = run_unit_safe(unit.config(), trace=trace, trace_dir=trace_dir)
    assert outcome["ok"], outcome.get("error")
    return outcome, trace_dir


def test_merged_trace_identical_across_backends(tmp_path):
    """The tentpole determinism claim: shard content is parent-computed,
    so `local` and `process` backends merge to byte-identical traces.
    The same unit context is handed to both runs (the unit key itself
    encodes the backend, so per-key derivation would differ by design)."""
    trace = mint_context(seed="determinism").child("unit:same").to_dict()
    out_local, dir_local = _run_traced_unit(
        tmp_path, "local", "local", trace=trace
    )
    out_proc, dir_proc = _run_traced_unit(
        tmp_path, "process", "proc", trace=trace
    )

    merged_local = Path(merged_trace_path(dir_local)).read_bytes()
    merged_proc = Path(merged_trace_path(dir_proc)).read_bytes()
    assert merged_local == merged_proc
    assert out_local["result"]["trace"] == out_proc["result"]["trace"]
    assert out_local["result"]["trace"]["events"] > 0


def test_unit_payload_records_trace_identity(tmp_path):
    outcome, trace_dir = _run_traced_unit(tmp_path, "local", "one")
    doc = outcome["result"]["trace"]
    events = read_trace_jsonl(str(merged_trace_path(trace_dir)))
    stamped = {
        e.args["trace_id"]
        for e in events
        if "trace_id" in getattr(e, "args", {})
    }
    assert stamped == {doc["trace_id"]}
    lifetimes = [
        e for e in events if getattr(e, "name", None) == RANK_PROCESS_SPAN
    ]
    assert len(lifetimes) == 2  # one per rank


def test_untraced_unit_has_no_trace_artifacts(tmp_path):
    spec = _spec(comm_backend="local")
    (unit,) = spec.expand()
    outcome = run_unit_safe(unit.config())
    assert outcome["ok"]
    assert "trace" not in outcome["result"]


# ---------------------------------------------------------------------------
# continuity: checkpointed restore under a preempted (killed) lane
# ---------------------------------------------------------------------------


def test_preempted_unit_keeps_trace_id_with_new_lineage(tmp_path):
    """A unit kicked out mid-run and resumed from its checkpoint stays
    on the originating trace id, but its post-restore rank processes
    are new spans parented on the restarted context."""
    spec = _spec(
        fault_scenario="preempt-mid-run", steps=8, checkpoint_every=2,
    )
    collector = TraceCollector(max_events=100_000)
    root = mint_context(seed="continuity")
    collector.configure_tracing(root)
    status, store = run_campaign(
        spec, str(tmp_path / "store"), telemetry=collector
    )
    assert status.failed == 0
    assert status.retries >= 1
    assert status.checkpoint_hits == 1

    (unit,) = spec.expand()
    unit_ctx = root.child(f"unit:{unit.key}")
    events = read_trace_jsonl(
        str(merged_trace_path(str(store.unit_trace_dir(unit.key))))
    )
    stamped = {
        e.args["trace_id"]
        for e in events
        if "trace_id" in getattr(e, "args", {})
    }
    assert stamped == {root.trace_id}

    lifetimes = [
        e for e in events if getattr(e, "name", None) == RANK_PROCESS_SPAN
    ]
    assert lifetimes
    for span in lifetimes:
        assert span.args["trace_id"] == root.trace_id
        # New lineage: the resumed attempt's shards are parented on the
        # checkpoint-restarted context, not the original unit span.
        assert span.args["parent_span_id"] != unit_ctx.span_id


# ---------------------------------------------------------------------------
# analysis: critical path, stacks, diff
# ---------------------------------------------------------------------------


def test_critical_path_names_latest_arrival():
    events = [
        _span("K", 0, 0.0, 1.0, step=0),
        _span("K", 1, 0.0, 1.5, step=0),  # rank 1 arrives last
        _span("K", 0, 1.5, 3.0, step=1),  # rank 0 arrives last
        _span("K", 1, 1.5, 2.0, step=1),
    ]
    steps = critical_path(events)
    assert [(s.step, s.gating_rank) for s in steps] == [(0, 1), (1, 0)]
    assert steps[0].slack_s[0] == pytest.approx(0.5)
    assert steps[0].slack_s[1] == 0.0


def test_critical_path_tie_breaks_to_lowest_rank():
    events = [
        _span("K", 0, 0.0, 1.0, step=0),
        _span("K", 1, 0.0, 1.0, step=0),
    ]
    (step,) = critical_path(events)
    assert step.gating_rank == 0


def test_gating_consistency_with_rank_waits():
    steps = critical_path(
        [
            _span("K", 0, 0.0, 1.0, step=0),
            _span("K", 1, 0.0, 1.5, step=0),
        ]
    )
    # Rank 1 gates, so it must carry the minimum accumulated wait.
    assert gating_consistent_with_waits(steps, [0.5, 0.0])
    assert not gating_consistent_with_waits(steps, [0.0, 0.5])
    assert gating_consistent_with_waits([], [0.0, 0.5])  # vacuous
    assert gating_consistent_with_waits(steps, [])  # vacuous


def test_collapsed_stacks_shape():
    lines = collapsed_stacks(
        [_span("XMass", 0, 0.0, 0.5), _span("XMass", 0, 1.0, 1.5)]
    )
    assert lines == ["rank 0;XMass 1000000"]


def test_diff_traces_flags_regressions_and_new_costs():
    a = [_span("F", 0, 0.0, 1.0)]
    b = [_span("F", 0, 0.0, 1.1), _span("G", 0, 0.0, 0.2)]
    result = diff_traces(a, b, threshold=0.05)
    assert result["regressions"] == ["F", "G"]
    by_name = {r["function"]: r for r in result["functions"]}
    assert by_name["F"]["delta_frac"] == pytest.approx(0.1)
    assert by_name["G"]["delta_frac"] == float("inf")
    # Within threshold: not a regression.
    calm = diff_traces(a, [_span("F", 0, 0.0, 1.01)], threshold=0.05)
    assert calm["regressions"] == []


def test_merged_trace_round_trips_through_jsonl(tmp_path):
    _, trace_dir = _run_traced_unit(tmp_path, "local", "rt")
    path = str(merged_trace_path(trace_dir))
    events = read_trace_jsonl(path)
    assert events
    payload = json.loads(open(path, encoding="utf-8").readline())
    assert payload["kind"] == "trace"
    assert "trace_id" in payload
