"""StepGeometry cache, Verlet-skin reuse, and pair-closure regression.

The numeric hot-path overhaul must not change the physics: running the
step loop through the shared :class:`StepGeometry` cache (with and
without a Verlet skin) has to reproduce the uncached per-kernel
recomputation path trajectory-for-trajectory — bit-exact at
``skin=0`` (same neighbor list, same summation order) and to tight
rounding tolerance at ``skin>0`` (identical pair sets, neighbor order
inherited from the wide query).
"""

import numpy as np
import pytest

from repro.sph import NumericProblem, ParticleSet, find_neighbors
from repro.sph.eos import IdealGasEOS
from repro.sph.init import (
    SedovConfig,
    TurbulenceConfig,
    TurbulenceDriver,
    make_sedov,
    make_sedov_eos,
    make_turbulence,
    make_turbulence_eos,
)
from repro.sph.kernels_math import default_kernel
from repro.sph.neighbors import (
    mirror_missing,
    pairs_member_mask,
    symmetric_pairs,
)
from repro.sph.physics import (
    ArtificialViscosity,
    TimestepControl,
    compute_density_gradh,
    compute_iad_divv_curlv,
    compute_momentum_energy,
    compute_xmass,
    local_timestep,
    update_quantities,
)
from repro.sph.physics.positions import IntegrationConfig

TRACKED_FIELDS = ("rho", "gradh", "divv", "ax", "du")


def _snapshot(particles):
    return {f: np.copy(getattr(particles, f)) for f in TRACKED_FIELDS}


def _run_cached(particles, eos, box_size, steps, skin, driver=None):
    """Drive the step loop through NumericProblem (shared geometry)."""
    problem = NumericProblem(
        particles=particles,
        n_ranks=1,
        eos=eos,
        box_size=box_size,
        driver=driver,
        skin=skin,
    )
    trajectory = []
    for _ in range(steps):
        problem.find_neighbors()
        problem.xmass()
        problem.normalization_gradh()
        problem.equation_of_state()
        problem.iad_velocity_div_curl()
        problem.momentum_energy()
        problem.set_global_dt(min(problem.local_timesteps()))
        trajectory.append(_snapshot(particles))
        problem.update_quantities()
    return trajectory, problem


def _run_uncached(particles, eos, box_size, steps, driver=None):
    """Reference loop: fresh search and per-kernel geometry each step."""
    kernel = default_kernel()
    av = ArtificialViscosity()
    control = TimestepControl()
    integration = IntegrationConfig()
    previous_dt = None
    trajectory = []
    for _ in range(steps):
        nlist = find_neighbors(
            particles,
            support_radius=kernel.support_radius,
            box_size=box_size,
        )
        compute_xmass(particles, nlist, kernel, box_size)
        compute_density_gradh(particles, nlist, kernel, box_size)
        eos.apply(particles)
        compute_iad_divv_curlv(particles, nlist, kernel, box_size)
        ext = None if driver is None else driver.acceleration(particles)
        compute_momentum_energy(
            particles,
            nlist,
            kernel,
            av=av,
            box_size=box_size,
            external_ax=None if ext is None else ext[:, 0],
            external_ay=None if ext is None else ext[:, 1],
            external_az=None if ext is None else ext[:, 2],
        )
        dt = local_timestep(
            particles,
            nlist,
            control=control,
            previous_dt=previous_dt,
            box_size=box_size,
        )
        trajectory.append(_snapshot(particles))
        update_quantities(
            particles,
            dt,
            nlist=nlist,
            config=integration,
            box_size=box_size,
        )
        previous_dt = dt
    return trajectory


def _assert_trajectories_match(cached, reference, exact):
    assert len(cached) == len(reference)
    for step, (got, want) in enumerate(zip(cached, reference)):
        for field in TRACKED_FIELDS:
            if exact:
                assert np.array_equal(got[field], want[field]), (
                    f"step {step}: {field} differs bit-for-bit"
                )
            else:
                scale = max(1.0, float(np.max(np.abs(want[field]))))
                np.testing.assert_allclose(
                    got[field],
                    want[field],
                    rtol=1e-12,
                    atol=1e-12 * scale,
                    err_msg=f"step {step}: {field}",
                )


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("skin", [0.0, 0.1])
    def test_sedov(self, skin):
        cfg = SedovConfig(nside=10, seed=5)
        cached, _ = _run_cached(
            make_sedov(cfg), make_sedov_eos(cfg), cfg.box_size,
            steps=3, skin=skin,
        )
        reference = _run_uncached(
            make_sedov(cfg), make_sedov_eos(cfg), cfg.box_size, steps=3
        )
        _assert_trajectories_match(cached, reference, exact=(skin == 0.0))

    @pytest.mark.parametrize("skin", [0.0, 0.1])
    def test_subsonic_turbulence(self, skin):
        cfg = TurbulenceConfig(nside=8, mach_rms=0.3, seed=42)
        cached, _ = _run_cached(
            make_turbulence(cfg),
            make_turbulence_eos(cfg),
            cfg.box_size,
            steps=3,
            skin=skin,
            driver=TurbulenceDriver(cfg, amplitude=0.4),
        )
        reference = _run_uncached(
            make_turbulence(cfg),
            make_turbulence_eos(cfg),
            cfg.box_size,
            steps=3,
            driver=TurbulenceDriver(cfg, amplitude=0.4),
        )
        _assert_trajectories_match(cached, reference, exact=(skin == 0.0))


class TestVerletReuse:
    def _problem(self, skin=0.5):
        cfg = SedovConfig(nside=8, seed=5)
        return NumericProblem(
            particles=make_sedov(cfg),
            n_ranks=1,
            eos=make_sedov_eos(cfg),
            box_size=cfg.box_size,
            skin=skin,
        )

    def test_static_particles_reuse_wide_list(self):
        problem = self._problem()
        problem.find_neighbors()
        assert (problem.neighbor_rebuilds, problem.neighbor_reuses) == (1, 0)
        problem.find_neighbors()
        problem.find_neighbors()
        assert (problem.neighbor_rebuilds, problem.neighbor_reuses) == (1, 2)

    def test_large_displacement_forces_rebuild(self):
        problem = self._problem()
        problem.find_neighbors()
        # Move one particle much farther than the skin budget allows.
        p = problem.particles
        p.x[0] = (p.x[0] + 10.0 * p.h[0]) % problem.box_size
        problem.find_neighbors()
        assert problem.neighbor_rebuilds == 2
        assert problem.neighbor_reuses == 0

    def test_smoothing_length_growth_forces_rebuild(self):
        problem = self._problem()
        problem.find_neighbors()
        problem.particles.h *= 1.5
        problem.find_neighbors()
        assert problem.neighbor_rebuilds == 2

    def test_masked_list_matches_fresh_search(self):
        """The wide list masked to true support = a fresh 2h search."""
        problem = self._problem(skin=0.3)
        problem.find_neighbors()
        # Drift everything a little (inside the skin budget) and reuse.
        rng = np.random.default_rng(3)
        p = problem.particles
        budget = 0.05 * float(np.min(p.h))
        for arr in (p.x, p.y, p.z):
            arr += rng.uniform(-budget, budget, p.n)
            arr %= problem.box_size
        problem.find_neighbors()
        assert problem.neighbor_reuses == 1
        fresh = find_neighbors(
            p, support_radius=2.0, box_size=problem.box_size
        )
        masked = problem.nlist
        assert np.array_equal(masked.offsets, fresh.offsets)
        for i in range(masked.n):
            assert set(masked.of(i)) == set(fresh.of(i))


class TestSymmetricPairsRegression:
    def _asymmetric_particles(self, n=300, seed=9):
        rng = np.random.default_rng(seed)
        p = ParticleSet.zeros(n)
        p.x[:] = rng.random(n)
        p.y[:] = rng.random(n)
        p.z[:] = rng.random(n)
        p.m[:] = 1.0 / n
        # Strongly asymmetric smoothing lengths: many pairs where j is
        # inside 2 h_i but i is outside 2 h_j.
        p.h[:] = 0.06 * (1.0 + 2.0 * rng.random(n))
        p.u[:] = 1.0
        return p

    def test_matches_bruteforce_closure(self):
        p = self._asymmetric_particles()
        nlist = find_neighbors(p, support_radius=2.0, box_size=1.0)
        directed = {
            (i, j) for i in range(nlist.n) for j in nlist.of(i)
        }
        # The asymmetry must actually be exercised.
        asymmetric = {(i, j) for (i, j) in directed if (j, i) not in directed}
        assert asymmetric
        closure = directed | {(j, i) for (i, j) in directed}
        i_idx, j_idx = symmetric_pairs(nlist)
        got = set(zip(i_idx.tolist(), j_idx.tolist()))
        assert got == closure
        assert len(i_idx) == len(closure)  # no duplicates introduced

    def test_member_mask_no_overflow_on_huge_indices(self):
        """Indices above 2^31 take the lexsort path and must not wrap
        (the historical ``i * n + j`` key encoding overflowed here)."""
        big = 1 << 62
        i_idx = np.array([big, big, 5, big - 3], dtype=np.int64)
        j_idx = np.array([big - 1, 7, big, 5], dtype=np.int64)
        pair_set = set(zip(i_idx.tolist(), j_idx.tolist()))
        expected = np.array(
            [(j, i) in pair_set for i, j in zip(i_idx, j_idx)]
        )
        got = ~mirror_missing(i_idx, j_idx)
        assert np.array_equal(got, expected)

    def test_member_mask_paths_agree(self):
        """Packed-key fast path and lexsort fallback give identical
        answers on the same (shifted) pair set."""
        rng = np.random.default_rng(1)
        m = 500
        i_idx = rng.integers(0, 40, m).astype(np.int64)
        j_idx = rng.integers(0, 40, m).astype(np.int64)
        qi = rng.integers(0, 40, m).astype(np.int64)
        qj = rng.integers(0, 40, m).astype(np.int64)
        fast = pairs_member_mask(i_idx, j_idx, qi, qj)
        shift = np.int64(1) << 33  # push everything past the 31-bit cap
        slow = pairs_member_mask(
            i_idx + shift, j_idx + shift, qi + shift, qj + shift
        )
        assert np.array_equal(fast, slow)

    def test_member_mask_empty_inputs(self):
        empty = np.empty(0, dtype=np.int64)
        some = np.array([1, 2], dtype=np.int64)
        assert pairs_member_mask(empty, empty, some, some).tolist() == [
            False,
            False,
        ]
        assert pairs_member_mask(some, some, empty, empty).size == 0
