"""Sod shock tube vs the exact Riemann solution."""

import numpy as np
import pytest

from repro.sph import NumericProblem, Simulation
from repro.sph.init import SodConfig, make_sod, make_sod_eos
from repro.sph.riemann import GasState, sample_solution, solve_star_region
from repro.systems import Cluster, mini_hpc

# ---------------------------------------------------------------------------
# Exact solver unit checks
# ---------------------------------------------------------------------------

SOD_L = GasState(1.0, 0.0, 1.0)
SOD_R = GasState(0.125, 0.0, 0.1)


def test_star_region_matches_toro_reference():
    p_star, u_star = solve_star_region(SOD_L, SOD_R, gamma=1.4)
    assert p_star == pytest.approx(0.30313, abs=2e-5)
    assert u_star == pytest.approx(0.92745, abs=2e-5)


def test_sampled_profile_structure():
    # The right shock moves at ~1.75 for gamma=1.4: sample beyond it.
    xi = np.linspace(-2.0, 2.0, 801)
    rho, u, p = sample_solution(xi, SOD_L, SOD_R, gamma=1.4)
    # Far field recovers the initial states.
    assert rho[0] == pytest.approx(1.0)
    assert rho[-1] == pytest.approx(0.125)
    assert p[0] == pytest.approx(1.0) and p[-1] == pytest.approx(0.1)
    # Pressure is continuous across the contact but density jumps.
    p_star, u_star = solve_star_region(SOD_L, SOD_R, gamma=1.4)
    near_contact = np.abs(xi - u_star) < 0.05
    assert np.all(np.abs(p[near_contact] - p_star) < 1e-6)
    assert rho[np.searchsorted(xi, u_star) - 3] > rho[
        np.searchsorted(xi, u_star) + 3
    ]
    # Velocity is non-negative everywhere for this problem.
    assert np.all(u >= -1e-12)


def test_symmetric_problem_gives_symmetric_solution():
    state = GasState(1.0, 0.0, 1.0)
    p_star, u_star = solve_star_region(state, state)
    assert u_star == pytest.approx(0.0, abs=1e-12)
    assert p_star == pytest.approx(1.0, rel=1e-9)


def test_strong_shock_case_converges():
    left = GasState(1.0, 0.0, 1000.0)
    right = GasState(1.0, 0.0, 0.01)
    p_star, u_star = solve_star_region(left, right, gamma=1.4)
    assert 0.01 < p_star < 1000.0
    assert u_star > 0.0


# ---------------------------------------------------------------------------
# SPH vs exact
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sod_run():
    cfg = SodConfig(nside=16)
    particles = make_sod(cfg)
    cluster = Cluster(mini_hpc(), 1)
    try:
        problem = NumericProblem(
            particles=particles,
            n_ranks=1,
            eos=make_sod_eos(cfg),
            box_size=cfg.box_size,
        )
        sim = Simulation(
            cluster, "SodShockTube", particles.n, numeric=problem
        )
        sim.initialize()
        sim.profiler.open_window()
        t = 0.0
        while t < 0.08:
            sim._run_step()
            t += problem.dt
        sim.profiler.close_window()
        return cfg, particles, t
    finally:
        cluster.detach_management_library()


def test_sod_ic_states(sod_run):
    cfg = SodConfig(nside=8)
    p = make_sod(cfg)
    # Equal particle masses across the jump.
    assert np.allclose(p.m, p.m[0])
    # Internal energies realize the two pressures.
    left = p.x < cfg.x_mid
    gamma = cfg.gamma
    assert np.allclose(
        (gamma - 1.0) * cfg.rho_left * p.u[left], cfg.p_left
    )
    assert np.allclose(
        (gamma - 1.0) * cfg.rho_right * p.u[~left], cfg.p_right
    )


def test_sod_ic_requires_density_ratio():
    with pytest.raises(ValueError):
        make_sod(SodConfig(rho_right=0.5))


def test_sod_wave_structure(sod_run):
    cfg, particles, t_end = sod_run
    # Sample SPH density/velocity in x bins inside the central window.
    window = (particles.x > 0.25) & (particles.x < 0.75)
    x = particles.x[window]
    xi = (x - cfg.x_mid) / t_end
    rho_exact, u_exact, _ = sample_solution(
        xi, cfg.left_state(), cfg.right_state(), cfg.gamma
    )
    rho_sph = particles.rho[window]
    u_sph = particles.vx[window]

    # Exclude particles within a smoothing length of the two sharp
    # features (contact and shock), where SPH legitimately smears.
    p_star, u_star = solve_star_region(
        cfg.left_state(), cfg.right_state(), cfg.gamma
    )
    a_r = cfg.right_state().sound_speed(cfg.gamma)
    gm1, gp1 = cfg.gamma - 1.0, cfg.gamma + 1.0
    s_shock = a_r * np.sqrt(
        gp1 / (2 * cfg.gamma) * p_star / cfg.p_right + gm1 / (2 * cfg.gamma)
    )
    h_local = particles.h[window]
    sharp = (np.abs(xi - u_star) * t_end < 2.5 * h_local) | (
        np.abs(xi - s_shock) * t_end < 2.5 * h_local
    )
    smooth = ~sharp
    assert smooth.sum() > 50  # the comparison set must be non-trivial

    rel_rho = np.abs(rho_sph[smooth] - rho_exact[smooth]) / rho_exact[smooth]
    # Median within a few percent; allow lattice-relaxation noise tails.
    assert np.median(rel_rho) < 0.06
    assert np.percentile(rel_rho, 90) < 0.20
    # Velocity: the star region moves right at ~u*.
    star = (np.abs(xi - u_star * 0.5) < 0.2) & smooth
    if star.sum() > 10:
        assert np.mean(u_sph[star]) > 0.2
    # Gross structure: shocked-right density exceeds the ambient right
    # state, rarefied-left density below the left state.
    shocked = (xi > 0.5 * s_shock) & (
        xi < s_shock - 2.5 * h_local.max() / t_end
    )
    if shocked.sum() > 5:
        assert np.mean(rho_sph[shocked]) > 1.5 * cfg.rho_right
    fan = xi < -0.3
    if fan.sum() > 5:
        assert np.mean(rho_sph[fan]) < 1.05 * cfg.rho_left


def test_sod_conserves_energy_and_momentum(sod_run):
    cfg, particles, _ = sod_run
    e_total = particles.kinetic_energy() + particles.internal_energy()
    # Initial energy: internal only.
    u_l = cfg.p_left / ((cfg.gamma - 1.0) * cfg.rho_left)
    u_r = cfg.p_right / ((cfg.gamma - 1.0) * cfg.rho_right)
    mass_half = cfg.rho_left * 0.5
    e0 = mass_half * u_l + cfg.rho_right * 0.5 * u_r
    assert e_total == pytest.approx(e0, rel=0.05)
    # Transverse momentum stays zero; axial momentum cancels between the
    # two (mirrored) diaphragms of the periodic box.
    mom = particles.momentum()
    assert abs(mom[1]) < 1e-10 and abs(mom[2]) < 1e-10
    assert abs(mom[0]) < 1e-8
