"""FaultInjector mechanics: patching, triggers, sensors, determinism."""

from __future__ import annotations

import pytest

from repro import nvml, rocm
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    JobPreempted,
    OP_PMT_READ,
    preemption_after_steps,
)
from repro.hardware import SimulatedGpu, VirtualClock, a100_sxm4_80gb
from repro.nvml import NVML_ERROR_GPU_IS_LOST, NVML_ERROR_TIMEOUT, NVMLError
from repro.pmt import PMT, PowerReadError, State
from repro.rocm import RSMI_STATUS_BUSY, RocmSmiError


class ConstantPowerPMT(PMT):
    """Test sensor: a perfect counter integrating constant watts."""

    platform = "test"

    def __init__(self, clock: VirtualClock, watts: float = 100.0) -> None:
        self._clock = clock
        self._watts = watts

    def read(self) -> State:
        t = self._clock.now
        return State(timestamp_s=t, joules=self._watts * t, watts=self._watts)


@pytest.fixture
def device():
    clock = VirtualClock()
    gpu = SimulatedGpu(a100_sxm4_80gb(), clock)
    nvml.attach_devices([gpu])
    nvml.nvmlInit()
    return gpu


def _set_clock(index: int = 0, mhz: int = 1410) -> None:
    handle = nvml.nvmlDeviceGetHandleByIndex(index)
    mem = nvml.nvmlDeviceGetSupportedMemoryClocks(handle)[0]
    nvml.nvmlDeviceSetApplicationsClocks(handle, mem, mhz)


def test_install_uninstall_restores_package_attributes(device):
    original = nvml.nvmlDeviceSetApplicationsClocks
    injector = FaultInjector(FaultPlan())
    injector.install()
    assert nvml.nvmlDeviceSetApplicationsClocks is not original
    injector.uninstall()
    assert nvml.nvmlDeviceSetApplicationsClocks is original


def test_install_is_reference_counted(device):
    original = nvml.nvmlDeviceSetApplicationsClocks
    injector = FaultInjector(FaultPlan())
    injector.install()
    injector.install()
    injector.uninstall()
    assert nvml.nvmlDeviceSetApplicationsClocks is not original
    injector.uninstall()
    assert nvml.nvmlDeviceSetApplicationsClocks is original
    # Extra uninstalls are harmless.
    injector.uninstall()


def test_empty_plan_passes_calls_through(device):
    with FaultInjector(FaultPlan()):
        _set_clock()
    assert device.application_clock_hz == pytest.approx(1410e6)


def test_after_calls_trigger_strikes_on_nth_call(device):
    plan = FaultPlan().add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.GPU_IS_LOST,
            after_calls=3,
        )
    )
    injector = FaultInjector(plan)
    with injector:
        _set_clock(mhz=1410)
        _set_clock(mhz=1395)
        with pytest.raises(NVMLError) as err:
            _set_clock(mhz=1380)
    assert err.value.value == NVML_ERROR_GPU_IS_LOST
    assert len(injector.records) == 1
    assert injector.records[0].call_index == 3


def test_at_time_trigger_uses_rank_clock(device):
    plan = FaultPlan().add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.NOT_SUPPORTED,
            at_time_s=1.0,
        )
    )
    injector = FaultInjector(plan, clocks=[device.clock])
    with injector:
        _set_clock(mhz=1410)  # t < 1s: passes
        device.clock.advance(2.0)
        with pytest.raises(NVMLError):
            _set_clock(mhz=1395)


def test_count_limits_strikes_per_rank(device):
    plan = FaultPlan().add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.NO_PERMISSION,
            count=1,
        )
    )
    with FaultInjector(plan):
        with pytest.raises(NVMLError):
            _set_clock(mhz=1410)
        _set_clock(mhz=1410)  # spent: passes now
    assert device.application_clock_hz == pytest.approx(1410e6)


def test_timeout_burns_latency_then_raises(device):
    plan = FaultPlan().add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.TIMEOUT,
            count=1,
            latency_s=0.25,
        )
    )
    injector = FaultInjector(plan, clocks=[device.clock])
    t0 = device.clock.now
    with injector:
        with pytest.raises(NVMLError) as err:
            _set_clock()
    assert err.value.value == NVML_ERROR_TIMEOUT
    assert device.clock.now == pytest.approx(t0 + 0.25)


def test_latency_burns_time_but_succeeds(device):
    plan = FaultPlan().add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.LATENCY,
            count=1,
            latency_s=0.1,
        )
    )
    injector = FaultInjector(plan, clocks=[device.clock])
    with injector:
        _set_clock()
    assert device.application_clock_hz == pytest.approx(1410e6)
    assert len(injector.records) == 1


def test_rank_filter_spares_other_ranks():
    clock = VirtualClock()
    gpus = [SimulatedGpu(a100_sxm4_80gb(), clock, index=i) for i in range(2)]
    nvml.attach_devices(gpus)
    nvml.nvmlInit()
    plan = FaultPlan().add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.NO_PERMISSION,
            rank=0,
        )
    )
    with FaultInjector(plan):
        with pytest.raises(NVMLError):
            _set_clock(index=0)
        _set_clock(index=1)  # rank 1 untouched
    assert gpus[1].application_clock_hz == pytest.approx(1410e6)


def test_rocm_ops_raise_rocm_errors():
    clock = VirtualClock()
    from repro.hardware import mi250x_gcd

    gpus = [SimulatedGpu(mi250x_gcd(), clock, index=0)]
    rocm.attach_devices(gpus)
    rocm.rsmi_init()
    plan = FaultPlan().add(
        FaultSpec(op="rsmi_dev_gpu_clk_freq_set", kind=FaultKind.TIMEOUT)
    )
    with FaultInjector(plan, clocks=[clock]):
        with pytest.raises(RocmSmiError) as err:
            rocm.rsmi_dev_gpu_clk_freq_set(0, rocm.RSMI_CLK_TYPE_SYS, 1.0e9)
    assert err.value.status == RSMI_STATUS_BUSY


def test_probability_draws_are_seed_deterministic(device):
    def run(seed: int) -> list:
        plan = FaultPlan(seed=seed).add(
            FaultSpec(
                op="nvmlDeviceSetApplicationsClocks",
                kind=FaultKind.NO_PERMISSION,
                probability=0.5,
            )
        )
        injector = FaultInjector(plan)
        outcomes = []
        with injector:
            for i in range(12):
                mhz = 1410 - 15 * (i % 2)
                try:
                    _set_clock(mhz=mhz)
                    outcomes.append(False)
                except NVMLError:
                    outcomes.append(True)
        return outcomes

    first = run(99)
    second = run(99)
    different = run(100)
    assert first == second
    assert True in first and False in first
    assert first != different  # overwhelmingly likely for 12 draws


def test_faulty_sensor_dropout_and_stuck_and_non_monotone():
    clock = VirtualClock()
    sensor = ConstantPowerPMT(clock, watts=100.0)
    plan = (
        FaultPlan()
        .add(FaultSpec(op=OP_PMT_READ, kind=FaultKind.DROPOUT, after_calls=2, count=1))
        .add(FaultSpec(op=OP_PMT_READ, kind=FaultKind.STUCK, after_calls=3, count=1))
        .add(
            FaultSpec(
                op=OP_PMT_READ,
                kind=FaultKind.NON_MONOTONE,
                after_calls=4,
                count=1,
                magnitude_j=5.0,
            )
        )
    )
    injector = FaultInjector(plan, clocks=[clock])
    wrapped = injector.wrap_sensor(sensor, rank=0)

    first = wrapped.read()  # call 1: clean
    clock.advance(1.0)
    with pytest.raises(PowerReadError):
        wrapped.read()  # call 2: dropout
    clock.advance(1.0)
    stuck = wrapped.read()  # call 3: stuck at the last good reading
    assert stuck == first
    clock.advance(1.0)
    bogus = wrapped.read()  # call 4: runs backwards by magnitude_j
    real = sensor.read()
    assert bogus.joules == pytest.approx(real.joules - 5.0)
    clock.advance(1.0)
    clean = wrapped.read()  # call 5: clean again
    assert clean.joules > bogus.joules


def test_stuck_before_first_read_degrades_to_dropout():
    clock = VirtualClock()
    sensor = ConstantPowerPMT(clock, watts=50.0)
    plan = FaultPlan().add(
        FaultSpec(op=OP_PMT_READ, kind=FaultKind.STUCK, count=1)
    )
    wrapped = FaultInjector(plan).wrap_sensor(sensor, rank=0)
    with pytest.raises(PowerReadError):
        wrapped.read()


def test_check_preemption_counts_steps():
    plan = FaultPlan().add(preemption_after_steps(2))
    injector = FaultInjector(plan)
    injector.check_preemption(0)  # before step 1
    injector.check_preemption(1)  # before step 2
    with pytest.raises(JobPreempted) as err:
        injector.check_preemption(2)  # before step 3: strikes
    assert err.value.steps_done == 2


def test_summary_aggregates_by_kind_op_and_rank(device):
    plan = FaultPlan(seed=5, name="agg").add(
        FaultSpec(
            op="nvmlDeviceSetApplicationsClocks",
            kind=FaultKind.NO_PERMISSION,
            count=2,
        )
    )
    injector = FaultInjector(plan)
    with injector:
        for mhz in (1410, 1395):
            with pytest.raises(NVMLError):
                _set_clock(mhz=mhz)
    summary = injector.summary()
    assert summary["plan"] == "agg"
    assert summary["seed"] == 5
    assert summary["total_injected"] == 2
    assert summary["by_kind"] == {"no-permission": 2}
    assert summary["by_op"] == {"nvmlDeviceSetApplicationsClocks": 2}
    assert summary["by_rank"] == {"0": 2}
