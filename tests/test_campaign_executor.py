"""Executor semantics: resume, retries, interruption, aggregation.

The centerpiece is the resumability contract from the campaign design:
a campaign interrupted after *k* of *n* units re-runs exactly *n − k*
missing units, and the final aggregate report is **byte-identical** to
the report of an uninterrupted campaign.
"""

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignExecutor,
    ExecutorConfig,
    RunStore,
    build_summary,
    classify_error,
    edp_ranking,
    run_campaign,
    summary_json,
)
from repro.campaign import executor as executor_mod
from repro.faults import JobPreempted
from repro.nvml.errors import (
    NVML_ERROR_GPU_IS_LOST,
    NVML_ERROR_TIMEOUT,
    NVMLError,
)
from repro.pmt.base import PowerReadError
from repro.telemetry import TraceCollector, read_trace_jsonl


def _spec(**overrides):
    base = dict(
        name="exec-t",
        workloads=("sedov",),
        policies=(
            {"kind": "baseline"},
            {"kind": "static"},
            {"kind": "dvfs"},
            {"kind": "mandyn"},
        ),
        clocks_mhz=(1305.0, 1005.0),
        systems=("miniHPC",),
        particles=(30_000.0,),
        steps=2,
        seeds=(0,),
    )
    base.update(overrides)
    return CampaignSpec(**base)


# ---------------------------------------------------------------------------
# error taxonomy
# ---------------------------------------------------------------------------


def test_classify_nvml_timeout_transient():
    assert classify_error(NVMLError(NVML_ERROR_TIMEOUT)) == "transient"


def test_classify_gpu_lost_permanent():
    assert classify_error(NVMLError(NVML_ERROR_GPU_IS_LOST)) == "permanent"


def test_classify_campaign_level_failures():
    assert classify_error(PowerReadError("dropout")) == "transient"
    assert classify_error(JobPreempted(1.0, 2)) == "transient"
    assert classify_error(TimeoutError("wall")) == "transient"
    assert classify_error(ValueError("bug")) == "permanent"


# ---------------------------------------------------------------------------
# resume: interrupted after k of n re-runs exactly n - k
# ---------------------------------------------------------------------------


def test_interrupted_campaign_resumes_missing_units_only(tmp_path):
    spec = _spec()
    n = spec.n_units()
    assert n == 5
    k = 2

    interrupted_dir = tmp_path / "interrupted"
    status1, store1 = run_campaign(
        spec, str(interrupted_dir), ExecutorConfig(max_units=k)
    )
    assert status1.executed == k
    assert not status1.complete
    assert len(store1.completed_keys()) == k

    status2, store2 = run_campaign(spec, str(interrupted_dir))
    assert status2.skipped == k
    assert status2.executed == n - k
    assert status2.complete

    grid = {u.key for u in spec.expand()}
    assert store2.completed_keys() == grid

    fresh_dir = tmp_path / "fresh"
    status3, store3 = run_campaign(spec, str(fresh_dir))
    assert status3.executed == n

    keys = [u.key for u in spec.expand()]
    resumed = summary_json(build_summary(store2, keys=keys))
    uninterrupted = summary_json(build_summary(store3, keys=keys))
    assert resumed == uninterrupted  # byte-identical aggregate report


def test_rerun_of_finished_campaign_is_noop(tmp_path):
    spec = _spec()
    run_campaign(spec, str(tmp_path / "c"))
    status, _ = run_campaign(spec, str(tmp_path / "c"))
    assert status.executed == 0
    assert status.skipped == spec.n_units()


def test_parallel_pool_matches_serial_results(tmp_path):
    spec = _spec()
    keys = [u.key for u in spec.expand()]
    _, serial = run_campaign(spec, str(tmp_path / "s"), ExecutorConfig(workers=1))
    _, pooled = run_campaign(spec, str(tmp_path / "p"), ExecutorConfig(workers=2))
    assert summary_json(build_summary(serial, keys=keys)) == summary_json(
        build_summary(pooled, keys=keys)
    )


# ---------------------------------------------------------------------------
# retries and failures (inline path, stubbed worker)
# ---------------------------------------------------------------------------


def _stub_worker(outcomes):
    calls = {"n": 0}

    def fake_run_unit_safe(config, min_wall_s=0.0, *args, **kwargs):
        outcome = outcomes[min(calls["n"], len(outcomes) - 1)]
        calls["n"] += 1
        return outcome

    return calls, fake_run_unit_safe


def test_transient_failure_retries_then_succeeds(tmp_path, monkeypatch):
    spec = _spec(policies=({"kind": "baseline"},), clocks_mhz=())
    ok = {"ok": True, "result": {"metrics": {}, "report": {}}, "wall_s": 0.0}
    bad = {
        "ok": False,
        "error": {"type": "NVMLError", "message": "t", "severity": "transient"},
        "wall_s": 0.0,
    }
    calls, fake = _stub_worker([bad, bad, ok])
    monkeypatch.setattr(executor_mod, "run_unit_safe", fake)

    store = RunStore(str(tmp_path), campaign=spec.name)
    config = ExecutorConfig(max_retries=2, retry_backoff_s=0.0)
    status = CampaignExecutor(store, config).run(spec.expand())
    assert calls["n"] == 3
    assert status.executed == 1
    assert status.retries == 2
    assert status.failed == 0


def test_transient_failure_exhausts_retries(tmp_path, monkeypatch):
    spec = _spec(policies=({"kind": "baseline"},), clocks_mhz=())
    bad = {
        "ok": False,
        "error": {"type": "NVMLError", "message": "t", "severity": "transient"},
        "wall_s": 0.0,
    }
    _, fake = _stub_worker([bad])
    monkeypatch.setattr(executor_mod, "run_unit_safe", fake)

    store = RunStore(str(tmp_path), campaign=spec.name)
    config = ExecutorConfig(max_retries=1, retry_backoff_s=0.0)
    status = CampaignExecutor(store, config).run(spec.expand())
    assert status.failed == 1
    assert status.retries == 1
    assert store.failed_keys() == {u.key for u in spec.expand()}


def test_permanent_failure_never_retries(tmp_path, monkeypatch):
    spec = _spec(policies=({"kind": "baseline"},), clocks_mhz=())
    bad = {
        "ok": False,
        "error": {"type": "ValueError", "message": "b", "severity": "permanent"},
        "wall_s": 0.0,
    }
    calls, fake = _stub_worker([bad])
    monkeypatch.setattr(executor_mod, "run_unit_safe", fake)

    store = RunStore(str(tmp_path), campaign=spec.name)
    status = CampaignExecutor(store, ExecutorConfig(max_retries=3)).run(
        spec.expand()
    )
    assert calls["n"] == 1
    assert status.failed == 1
    assert status.retries == 0


def test_failed_unit_is_retried_on_resume(tmp_path, monkeypatch):
    spec = _spec(policies=({"kind": "baseline"},), clocks_mhz=())
    bad = {
        "ok": False,
        "error": {"type": "ValueError", "message": "b", "severity": "permanent"},
        "wall_s": 0.0,
    }
    _, fake = _stub_worker([bad])
    monkeypatch.setattr(executor_mod, "run_unit_safe", fake)
    store = RunStore(str(tmp_path), campaign=spec.name)
    CampaignExecutor(store, ExecutorConfig()).run(spec.expand())
    monkeypatch.undo()

    status = CampaignExecutor(RunStore(str(tmp_path)), ExecutorConfig()).run(
        spec.expand()
    )
    assert status.executed == 1
    assert status.failed == 0


def test_keyboard_interrupt_drains_and_flags(tmp_path, monkeypatch):
    spec = _spec()
    real = executor_mod.run_unit_safe
    calls = {"n": 0}

    def interrupting(config, min_wall_s=0.0, *args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 3:
            raise KeyboardInterrupt
        return real(config, min_wall_s, *args, **kwargs)

    monkeypatch.setattr(executor_mod, "run_unit_safe", interrupting)
    store = RunStore(str(tmp_path), campaign=spec.name)
    status = CampaignExecutor(store, ExecutorConfig()).run(spec.expand())
    assert status.interrupted
    assert status.executed == 2
    assert len(store.completed_keys()) == 2


def test_executor_config_validation():
    with pytest.raises(ValueError):
        ExecutorConfig(timeout_s=0)
    with pytest.raises(ValueError):
        ExecutorConfig(max_retries=-1)
    with pytest.raises(ValueError):
        ExecutorConfig(backoff_multiplier=0.5)
    assert ExecutorConfig(retry_backoff_s=0.1).backoff_for_attempt(2) == 0.4


def test_campaign_name_mismatch_rejected(tmp_path):
    run_campaign(_spec(), str(tmp_path))
    with pytest.raises(ValueError, match="belongs to campaign"):
        run_campaign(_spec(name="other"), str(tmp_path))


# ---------------------------------------------------------------------------
# telemetry
# ---------------------------------------------------------------------------


def test_campaign_emits_telemetry_and_trace_file(tmp_path):
    spec = _spec()
    collector = TraceCollector()
    status, store = run_campaign(
        spec, str(tmp_path), telemetry=collector
    )
    spans = collector.spans()
    names = {s.name for s in spans}
    assert "campaign" in names
    assert any(name.startswith("SedovBlast/") for name in names)
    assert len(spans) == status.executed + 1

    events = read_trace_jsonl(str(store.trace_path))
    assert len(events) == len(collector.events)

    collector2 = TraceCollector()
    status2, _ = run_campaign(spec, str(tmp_path), telemetry=collector2)
    skips = [e for e in collector2.events if e.name == "unit-skipped"]
    assert len(skips) == status2.skipped == spec.n_units()


# ---------------------------------------------------------------------------
# aggregation reproduces the Fig. 7 ranking from the example spec
# ---------------------------------------------------------------------------


def test_example_campaign_reproduces_fig7_ranking(tmp_path):
    spec = CampaignSpec.load("examples/campaign_fig7.json")
    _, store = run_campaign(spec, str(tmp_path))
    summary = build_summary(store, keys=[u.key for u in spec.expand()])
    assert len(summary["groups"]) == 1
    group = summary["groups"][0]
    rows = {r["policy"]: r for r in group["rows"]}

    # ManDyn headline numbers (paper §IV-D).
    mandyn = rows["mandyn"]
    assert mandyn["rel_time"] < 1.04
    assert 0.90 <= mandyn["rel_energy"] <= 0.95
    assert mandyn["rel_edp"] < 0.97
    # Static 1005: big time loss, big energy saving.
    assert rows["static-1005"]["rel_time"] > 1.12
    assert rows["static-1005"]["rel_energy"] < 0.88
    # DVFS: time-neutral, costs energy.
    assert 0.99 < rows["dvfs"]["rel_time"] < 1.05
    assert rows["dvfs"]["rel_energy"] > 1.0

    # The ManDyn-vs-static ranking: ManDyn wins EDP, DVFS loses to all.
    ranking = edp_ranking(group)
    assert ranking[0] == "mandyn"
    assert ranking[-1] == "dvfs"
    statics = [r for r in ranking if r.startswith("static-")]
    assert ranking.index("mandyn") < min(ranking.index(s) for s in statics)
    assert group["knee"] == "mandyn"
    assert mandyn["pareto"]


# ---------------------------------------------------------------------------
# worker heartbeats (consumed by `repro monitor watch`)
# ---------------------------------------------------------------------------


def test_campaign_writes_heartbeats_and_parks_lanes_idle(tmp_path):
    spec = _spec(policies=({"kind": "baseline"},), clocks_mhz=(1305.0,))
    _, store = run_campaign(spec, str(tmp_path / "c"))
    beats = store.read_heartbeats()
    assert beats, "executor must leave a heartbeat file behind"
    # After a clean drain every lane is parked idle so watchers never
    # mistake a finished campaign for a stalled one.
    assert all(r["state"] == "idle" for r in beats.values())
    assert all(r["updated_s"] > 0 for r in beats.values())
    snap = store.read_heartbeats()  # stable across re-reads
    assert snap == beats


def test_pool_heartbeats_cover_every_lane(tmp_path):
    spec = _spec()
    _, store = run_campaign(
        spec, str(tmp_path / "c"), ExecutorConfig(workers=2)
    )
    beats = store.read_heartbeats()
    assert set(beats) == {"0", "1"}
    assert all(r["state"] == "idle" for r in beats.values())


def test_heartbeat_write_failure_does_not_kill_campaign(tmp_path, monkeypatch):
    spec = _spec(policies=({"kind": "baseline"},), clocks_mhz=(1305.0,))

    def boom(self, lanes):
        raise OSError("disk full")

    monkeypatch.setattr(RunStore, "write_heartbeats", boom)
    status, store = run_campaign(spec, str(tmp_path / "c"))
    assert status.complete  # monitoring is best-effort, runs are not


# ---------------------------------------------------------------------------
# cooperative cancel, progress events, in-flight dedup, provenance
# ---------------------------------------------------------------------------


def test_should_stop_interrupts_between_units(tmp_path):
    spec = _spec()
    store = RunStore(str(tmp_path), campaign=spec.name)
    executed = []

    def stop_after_two():
        return len(executed) >= 2

    executor = CampaignExecutor(
        store,
        on_event=lambda e: (
            executed.append(e["key"]) if e["event"] == "unit-done" else None
        ),
        should_stop=stop_after_two,
    )
    status = executor.run(spec.expand())
    assert status.interrupted
    assert status.executed == 2
    assert len(store.completed_keys()) == 2  # finished units stay durable


def test_on_event_stream_covers_lifecycle(tmp_path):
    spec = _spec(policies=({"kind": "baseline"},), clocks_mhz=(1305.0,))
    store = RunStore(str(tmp_path), campaign=spec.name)
    events = []
    CampaignExecutor(store, on_event=events.append).run(spec.expand())
    assert [e["event"] for e in events] == ["unit-start", "unit-done"]

    # A re-drain reports the same unit as served from the store.
    events.clear()
    status = CampaignExecutor(store, on_event=events.append).run(spec.expand())
    assert [e["event"] for e in events] == ["unit-cached"]
    assert status.skipped == 1


def test_observer_exceptions_do_not_break_the_drain(tmp_path):
    spec = _spec(policies=({"kind": "baseline"},), clocks_mhz=(1305.0,))
    store = RunStore(str(tmp_path), campaign=spec.name)

    def broken_observer(event):
        raise RuntimeError("observer bug")

    status = CampaignExecutor(store, on_event=broken_observer).run(
        spec.expand()
    )
    assert status.executed == 1


def test_inflight_registry_claim_release_wait():
    reg = executor_mod.InFlightRegistry()
    assert reg.claim("k1")
    assert not reg.claim("k1")  # second claimant defers
    assert reg.in_flight() == {"k1"}
    assert not reg.wait("k1", timeout=0.01)  # still running
    reg.release("k1")
    assert reg.wait("k1", timeout=0.01)  # resolved instantly
    assert reg.in_flight() == set()
    assert reg.claim("k1")  # reusable after release


def test_provenance_tracks_cached_vs_executed(tmp_path):
    spec = _spec()
    store = RunStore(str(tmp_path), campaign=spec.name)
    keys = [u.key for u in spec.expand()]
    first = CampaignExecutor(store, config=ExecutorConfig(max_units=2)).run(
        spec.expand()
    )
    assert sorted(first.provenance.values()) == ["executed", "executed"]
    second = CampaignExecutor(store).run(spec.expand())
    assert set(second.provenance) == set(keys)
    counts = {}
    for prov in second.provenance.values():
        counts[prov] = counts.get(prov, 0) + 1
    assert counts == {"cached": 2, "executed": len(keys) - 2}


def test_concurrent_campaigns_share_inflight_units(tmp_path):
    """Two concurrent drains over one store never execute a key twice."""
    import threading

    spec = _spec()
    store = RunStore(str(tmp_path), campaign=spec.name)
    registry = executor_mod.InFlightRegistry()
    statuses = {}

    def drain(tag):
        executor = CampaignExecutor(
            store, inflight=registry, min_unit_wall_s=0.01
        )
        statuses[tag] = executor.run(spec.expand())

    threads = [
        threading.Thread(target=drain, args=(tag,)) for tag in ("a", "b")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    n = spec.n_units()
    a, b = statuses["a"], statuses["b"]
    # Every unit computed exactly once across both drains...
    assert a.executed + b.executed == n
    # ...and each drain accounts for all n units one way or another.
    for status in (a, b):
        assert status.executed + status.skipped + status.attached == n
        assert status.complete
    assert store.completed_keys() == {u.key for u in spec.expand()}
