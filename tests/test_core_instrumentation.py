"""Hooks, energy profiler, frequency policies and controller."""

import pytest

from repro.core import (
    DvfsPolicy,
    EnergyReport,
    FrequencyController,
    HookRegistry,
    ManDynPolicy,
    Metrics,
    StaticFrequencyPolicy,
    baseline_policy,
    energy_delay_product,
    make_profiler,
)
from repro.hardware import KernelLaunch
from repro.units import to_mhz


class RecordingHook:
    def __init__(self):
        self.events = []

    def before_function(self, function, rank):
        self.events.append(("before", function, rank))

    def after_function(self, function, rank):
        self.events.append(("after", function, rank))


def test_hooks_fire_in_registration_order_and_reverse():
    reg = HookRegistry()
    a, b = RecordingHook(), RecordingHook()
    reg.register(a)
    reg.register(b)
    order = []
    a.before_function = lambda f, r: order.append("a-before")
    b.before_function = lambda f, r: order.append("b-before")
    a.after_function = lambda f, r: order.append("a-after")
    b.after_function = lambda f, r: order.append("b-after")
    reg.fire_before("F", 0)
    reg.fire_after("F", 0)
    assert order == ["a-before", "b-before", "b-after", "a-after"]


def test_hook_registry_validation():
    reg = HookRegistry()
    h = RecordingHook()
    reg.register(h)
    with pytest.raises(ValueError):
        reg.register(h)
    reg.unregister(h)
    with pytest.raises(ValueError):
        reg.unregister(h)


def test_policies_initial_modes():
    assert StaticFrequencyPolicy(1005).initial_mode() == 1005.0
    assert DvfsPolicy().initial_mode() is None
    assert baseline_policy(1410).name == "baseline"
    md = ManDynPolicy({"MomentumEnergy": 1410.0}, default_mhz=1005.0)
    assert md.initial_mode() == 1005.0
    assert md.frequency_for("MomentumEnergy") == 1410.0
    assert md.frequency_for("XMass") == 1005.0


def test_policy_validation():
    with pytest.raises(ValueError):
        StaticFrequencyPolicy(-5)
    with pytest.raises(ValueError):
        ManDynPolicy({"A": -1.0}, default_mhz=1000.0)
    with pytest.raises(ValueError):
        ManDynPolicy({}, default_mhz=0.0)


def test_controller_applies_mandyn_per_function(mini_cluster):
    policy = ManDynPolicy({"MomentumEnergy": 1410.0}, default_mhz=1005.0)
    ctl = FrequencyController(mini_cluster.gpus, policy)
    ctl.apply_initial_mode()
    assert ctl.current_clock_mhz(0) == 1005.0
    ctl.before_function("MomentumEnergy", 0)
    assert ctl.current_clock_mhz(0) == 1410.0
    ctl.before_function("XMass", 0)
    assert ctl.current_clock_mhz(0) == 1005.0
    # Repeated set to the same bin is skipped.
    calls = ctl.clock_set_calls
    ctl.before_function("XMass", 0)
    assert ctl.clock_set_calls == calls


def test_redundant_clock_set_skips_vendor_call(mini_cluster, monkeypatch):
    """Regression: a repeated set to the current bin must not reach NVML.

    The spy wraps ``nvmlDeviceSetApplicationsClocks`` so a skipped call
    is observable at the vendor boundary, not just in the counters.
    """
    from repro import nvml
    from repro.telemetry import TraceCollector

    real_set = nvml.nvmlDeviceSetApplicationsClocks
    vendor_calls = []

    def spy(handle, mem_mhz, gfx_mhz):
        vendor_calls.append(gfx_mhz)
        return real_set(handle, mem_mhz, gfx_mhz)

    monkeypatch.setattr(nvml, "nvmlDeviceSetApplicationsClocks", spy)

    collector = TraceCollector(clocks=mini_cluster.clocks)
    policy = ManDynPolicy({"MomentumEnergy": 1410.0}, default_mhz=1005.0)
    ctl = FrequencyController(
        mini_cluster.gpus, policy, telemetry=collector
    )
    ctl.apply_initial_mode()  # 1005: performed
    ctl.before_function("MomentumEnergy", 0)  # 1410: performed
    assert len(vendor_calls) == 2
    calls, skips = ctl.clock_set_calls, ctl.clock_set_skipped

    # Same bin again: elided before the vendor library.
    ctl.before_function("MomentumEnergy", 0)
    assert len(vendor_calls) == 2
    assert ctl.clock_set_calls == calls
    assert ctl.clock_set_skipped == skips + 1

    snap = collector.metrics.snapshot()
    assert snap["counters"]["clock_set_skipped{rank=0}"] == 1.0
    assert snap["counters"]["clock_set_calls{rank=0}"] == 2.0
    # Skips emit no instant: the clock track reflects performed calls.
    assert len(collector.instants()) == 2


def test_controller_dvfs_mode(mini_cluster):
    ctl = FrequencyController(mini_cluster.gpus, DvfsPolicy())
    ctl.apply_initial_mode()
    assert mini_cluster.gpus[0].dvfs_active
    ctl.restore_defaults()
    assert not mini_cluster.gpus[0].dvfs_active
    assert to_mhz(mini_cluster.gpus[0].application_clock_hz) == 1410.0


def test_controller_requires_devices():
    with pytest.raises(ValueError):
        FrequencyController([], DvfsPolicy())


def test_profiler_measures_function_energy(mini_cluster):
    profiler = make_profiler(mini_cluster)
    gpu = mini_cluster.gpus[0]
    profiler.open_window()
    profiler.before_function("MomentumEnergy", 0)
    gpu.execute(KernelLaunch("MomentumEnergy", 1e12, 1e11, 1.0))
    profiler.after_function("MomentumEnergy", 0)
    profiler.close_window()
    rec = profiler.reports[0].records["MomentumEnergy"]
    assert rec.calls == 1
    assert rec.time_s > 0
    assert rec.device_j["GPU"] == pytest.approx(gpu.energy_j, rel=1e-6)
    assert rec.device_j["CPU"] > 0  # time-proportional attribution
    assert profiler.reports[0].window_gpu_j == pytest.approx(
        gpu.energy_j, rel=1e-6
    )


def test_profiler_rejects_nesting_and_mismatches(mini_cluster):
    profiler = make_profiler(mini_cluster)
    profiler.before_function("A", 0)
    with pytest.raises(RuntimeError):
        profiler.before_function("B", 0)
    with pytest.raises(RuntimeError):
        profiler.after_function("B", 0)
    profiler.after_function("A", 0)


def test_profiler_window_must_open_before_close(mini_cluster):
    profiler = make_profiler(mini_cluster)
    with pytest.raises(RuntimeError):
        profiler.close_window()


def test_report_gather_save_load(tmp_path, mini_cluster):
    profiler = make_profiler(mini_cluster)
    gpu = mini_cluster.gpus[0]
    profiler.open_window()
    for fn in ("XMass", "MomentumEnergy"):
        profiler.before_function(fn, 0)
        gpu.execute(KernelLaunch(fn, 1e11, 1e10, 0.8))
        profiler.after_function(fn, 0)
    profiler.close_window()
    report = profiler.gather(mini_cluster.comm)
    path = str(tmp_path / "report.json")
    report.save(path)
    loaded = EnergyReport.load(path)
    assert loaded.total_j() == pytest.approx(report.total_j())
    assert set(loaded.aggregate_functions()) == {"XMass", "MomentumEnergy"}
    assert loaded.max_window_time_s() == pytest.approx(
        report.max_window_time_s()
    )


def test_edp_metric():
    assert energy_delay_product(100.0, 2.0) == 200.0
    with pytest.raises(ValueError):
        energy_delay_product(-1.0, 1.0)
    m = Metrics(time_s=2.0, energy_j=100.0)
    base = Metrics(time_s=1.0, energy_j=100.0)
    norm = m.normalized_to(base)
    assert norm.time == 2.0
    assert norm.energy == 1.0
    assert norm.edp == 2.0
    with pytest.raises(ValueError):
        m.normalized_to(Metrics(time_s=0.0, energy_j=0.0))
