"""Catalog loader and resolver: preset equivalence, stable run keys.

The contract that matters most here is *byte stability*: moving the
four Table-I presets into catalog files must not change a single
content-addressed run key, or every previously stored campaign unit
would be orphaned. The pinned hashes below were computed when the
presets were still pure Python — they must never change.
"""

import dataclasses
import json
import os

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.catalog import (
    available_entries,
    build_system,
    is_path_ref,
    known_system_names,
    load_payload,
    load_system,
    resolve_system,
    shipped_catalog_dir,
    spec_payload_from_system,
    validate_shipped_catalog,
    write_spec_file,
)
from repro.systems import all_system_names, by_name
from repro.systems.presets import _PRESETS

LEGACY_NAMES = ("LUMI-G", "CSCS-A100", "miniHPC", "Aurora-PVC")
CATALOG_ONLY_NAMES = ("H100-SXM", "GH200-Superchip")

#: Run keys of a fixed two-unit campaign per system, pinned forever.
PINNED_RUN_KEYS = {
    "LUMI-G": ("5fc30f57b8ee4950", "10c54cdee7edb74e"),
    "CSCS-A100": ("a1c680564c3f315f", "e03966e12acef0e4"),
    "miniHPC": ("e1cd6f7560c70e92", "5b7c60f3f937ad76"),
    "Aurora-PVC": ("9cde70d2379b147a", "f0777e0c4aa56965"),
    "H100-SXM": ("1a7e99b9a9a12bf7", "90517669b8408785"),
    "GH200-Superchip": ("8733b46b66b79261", "49c5c672862de937"),
}


def _stability_spec(system):
    return CampaignSpec(
        name="catalog-stability",
        workloads=("sedov",),
        policies=({"kind": "baseline"}, {"kind": "static"}),
        clocks_mhz=(1005.0,),
        systems=(system,),
        particles=(30_000.0,),
        steps=2,
        seeds=(0,),
    )


# ---------------------------------------------------------------------------
# preset equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", LEGACY_NAMES)
def test_catalog_file_equals_python_preset(name):
    preset = _PRESETS[name]()
    path = os.path.join(shipped_catalog_dir(), f"{name.lower()}.yaml")
    loaded = load_system(path)
    assert loaded.gpu_spec() == preset.gpu_spec()
    for field in dataclasses.fields(type(preset)):
        if field.name == "gpu_spec_factory":
            continue
        assert getattr(loaded, field.name) == getattr(preset, field.name), (
            f"{name}.{field.name} differs between catalog file and preset"
        )


def test_shipped_catalog_validates_and_constructs():
    entries = validate_shipped_catalog()
    names = {e.name for e in entries}
    assert set(LEGACY_NAMES) <= names
    assert set(CATALOG_ONLY_NAMES) <= names


@pytest.mark.parametrize("name", LEGACY_NAMES + CATALOG_ONLY_NAMES)
def test_spec_payload_round_trips(name, tmp_path):
    system = by_name(name)
    payload = spec_payload_from_system(system)
    rebuilt = build_system(payload, source=f"<{name}>")
    assert rebuilt.gpu_spec() == system.gpu_spec()
    path = str(tmp_path / "spec.yaml")
    write_spec_file(path, payload)
    assert load_system(path).gpu_spec() == system.gpu_spec()


# ---------------------------------------------------------------------------
# run-key stability
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(PINNED_RUN_KEYS))
def test_run_keys_are_pinned(name):
    units = _stability_spec(name).expand()
    assert tuple(u.key for u in units) == PINNED_RUN_KEYS[name]


# ---------------------------------------------------------------------------
# resolver
# ---------------------------------------------------------------------------


def test_by_name_resolves_catalog_only_system():
    system = by_name("H100-SXM")
    assert system.gpu_spec().name == "NVIDIA H100-SXM5-80GB"
    assert "H100-SXM" in all_system_names()


def test_unknown_name_error_lists_catalog_entries():
    with pytest.raises(ValueError) as excinfo:
        by_name("Frontier")
    message = str(excinfo.value)
    assert "unknown system 'Frontier'" in message
    for name in LEGACY_NAMES + CATALOG_ONLY_NAMES:
        assert name in message


def test_path_refs_resolve(tmp_path):
    payload = spec_payload_from_system(by_name("miniHPC"))
    payload["name"] = "minihpc-copy"
    path = str(tmp_path / "copy.yaml")
    write_spec_file(path, payload)
    assert is_path_ref(path)
    assert is_path_ref(f"path:{path}")
    assert not is_path_ref("miniHPC")
    assert resolve_system(path).name == "minihpc-copy"
    assert resolve_system(f"path:{path}").name == "minihpc-copy"


def test_user_catalog_dir_shadows_shipped(tmp_path, monkeypatch):
    payload = spec_payload_from_system(by_name("miniHPC"))
    payload["description"] = "user override"
    write_spec_file(str(tmp_path / "minihpc.yaml"), payload)
    monkeypatch.setenv("REPRO_CATALOG_PATH", str(tmp_path))
    entries = available_entries()
    assert entries["miniHPC"].origin == "user"
    assert entries["miniHPC"].description == "user override"
    assert "H100-SXM" in entries  # shipped entries still visible


def test_known_system_names_is_sorted_union():
    names = known_system_names()
    assert list(names) == sorted(names)
    assert set(LEGACY_NAMES) | set(CATALOG_ONLY_NAMES) <= set(names)


# ---------------------------------------------------------------------------
# campaign integration
# ---------------------------------------------------------------------------


def test_campaign_spec_accepts_catalog_name_and_path_ref(tmp_path):
    payload = spec_payload_from_system(by_name("miniHPC"))
    path = str(tmp_path / "site.yaml")
    write_spec_file(path, payload)
    spec = _stability_spec("H100-SXM")
    assert spec.systems == ("H100-SXM",)
    via_path = _stability_spec(path)
    assert via_path.systems == (path,)


def test_campaign_spec_rejects_unknown_system_with_catalog_list():
    with pytest.raises(ValueError, match="H100-SXM"):
        _stability_spec("Frontier")


def test_campaign_runs_end_to_end_on_catalog_only_system(tmp_path):
    from repro.campaign import build_summary

    spec = _stability_spec("H100-SXM")
    status, store = run_campaign(spec, str(tmp_path / "camp"))
    assert status.failed == 0
    assert status.executed == 2
    assert store.completed_keys() == set(PINNED_RUN_KEYS["H100-SXM"])
    summary = build_summary(store)
    assert summary["n_runs"] == 2
    assert {g["system"] for g in summary["groups"]} == {"H100-SXM"}


def test_campaign_runs_via_path_ref(tmp_path):
    payload = spec_payload_from_system(by_name("miniHPC"))
    payload["name"] = "site-box"
    path = str(tmp_path / "site-box.yaml")
    write_spec_file(path, payload)
    spec = _stability_spec(path)
    status, store = run_campaign(spec, str(tmp_path / "camp"))
    assert status.failed == 0
    assert status.executed == 2


def test_service_runs_catalog_only_campaign(tmp_path):
    """The control plane accepts and drains a catalog-only system."""
    import asyncio

    from repro.service import CampaignService, ServiceConfig

    spec_doc = {
        "schema": 1,
        "kind": "campaign-spec",
        "name": "catalog-svc",
        "systems": ["H100-SXM"],
        "workloads": ["sedov"],
        "particles": [30_000.0],
        "steps": 2,
        "seeds": [0],
        "policies": [{"kind": "baseline"}],
        "clocks_mhz": [1005.0],
    }

    async def main():
        service = CampaignService(
            ServiceConfig(root=str(tmp_path / "service-root"))
        )
        await service.start()
        try:
            job, created = service.submit("acme", spec_doc)
            assert created
            deadline = asyncio.get_running_loop().time() + 60.0
            while job.state not in ("done", "failed", "cancelled"):
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            assert job.state == "done"
            report = service.report(job)
            assert {g["system"] for g in report["groups"]} == {"H100-SXM"}
        finally:
            await service.close()

    asyncio.run(main())
