"""Checkpoint / restart round-trips."""

import numpy as np
import pytest

from repro.sph import NumericProblem, Simulation
from repro.sph.init import TurbulenceConfig, make_turbulence, make_turbulence_eos
from repro.sph.io import CheckpointMeta, load_checkpoint, save_checkpoint
from repro.systems import Cluster, mini_hpc


def test_roundtrip_is_bit_exact(tmp_path, small_turbulence):
    p = small_turbulence
    path = str(tmp_path / "ck.npz")
    meta = CheckpointMeta(step=42, physical_time=1.5, last_dt=1e-3,
                          workload="SubsonicTurbulence")
    save_checkpoint(path, p, meta)
    loaded, meta2 = load_checkpoint(path)
    assert np.array_equal(loaded.x, p.x)
    assert np.array_equal(loaded.vx, p.vx)
    assert np.array_equal(loaded.u, p.u)
    assert meta2.step == 42
    assert meta2.physical_time == 1.5
    assert meta2.workload == "SubsonicTurbulence"


def test_uncomputed_derived_fields_stay_none(tmp_path):
    p = make_turbulence(TurbulenceConfig(nside=5, seed=3))
    path = str(tmp_path / "ck.npz")
    save_checkpoint(path, p)
    loaded, _ = load_checkpoint(path)
    assert loaded.rho is None
    assert loaded.c11 is None


def test_computed_derived_fields_roundtrip(tmp_path):
    p = make_turbulence(TurbulenceConfig(nside=5, seed=4))
    p.ensure_derived()
    p.rho[:] = 2.0
    path = str(tmp_path / "ck.npz")
    save_checkpoint(path, p)
    loaded, _ = load_checkpoint(path)
    assert np.all(loaded.rho == 2.0)


def test_wrong_format_rejected(tmp_path):
    path = str(tmp_path / "bogus.npz")
    np.savez(path, meta_format=np.array("something-else"))
    with pytest.raises(ValueError):
        load_checkpoint(path)


def test_restart_continues_identically(tmp_path):
    """Running 4 steps equals running 2, checkpointing, restarting, 2."""
    cfg = TurbulenceConfig(nside=8, seed=17)

    def fresh_sim(particles):
        cluster = Cluster(mini_hpc(), 1)
        problem = NumericProblem(
            particles=particles, n_ranks=1,
            eos=make_turbulence_eos(cfg), box_size=cfg.box_size,
        )
        sim = Simulation(
            cluster, "SubsonicTurbulence", particles.n, numeric=problem
        )
        return cluster, sim, problem

    # Continuous 4-step reference.
    p_ref = make_turbulence(cfg)
    cl1, sim1, prob1 = fresh_sim(p_ref)
    sim1.run(4)
    cl1.detach_management_library()

    # 2 steps, checkpoint, restart, 2 more steps.
    p_a = make_turbulence(cfg)
    cl2, sim2, prob2 = fresh_sim(p_a)
    sim2.run(2)
    cl2.detach_management_library()
    path = str(tmp_path / "restart.npz")
    save_checkpoint(
        path, p_a, CheckpointMeta(step=2, last_dt=prob2.previous_dt or 0.0)
    )

    p_b, meta = load_checkpoint(path)
    cl3, sim3, prob3 = fresh_sim(p_b)
    prob3.previous_dt = meta.last_dt if meta.last_dt > 0 else None
    sim3.run(2)
    cl3.detach_management_library()

    # Positions agree to tight tolerance (identical numerics, the only
    # difference being the restart boundary).
    assert np.allclose(p_b.x, p_ref.x, atol=1e-12)
    assert np.allclose(p_b.vx, p_ref.vx, atol=1e-12)
    assert np.allclose(p_b.u, p_ref.u, atol=1e-12)
