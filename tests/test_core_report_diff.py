"""Report diffing (A/B comparison) and its CLI subcommand."""

import pytest

from repro.cli import main
from repro.core import (
    ManDynPolicy,
    baseline_policy,
    diff_reports,
)
from repro.sph import run_instrumented
from repro.systems import Cluster, mini_hpc

N = 450**3


def _run(policy):
    cluster = Cluster(mini_hpc(), 1)
    try:
        return run_instrumented(
            cluster, "SubsonicTurbulence", N, 2, policy=policy
        )
    finally:
        cluster.detach_management_library()


@pytest.fixture(scope="module")
def ab_reports():
    a = _run(baseline_policy(1410.0)).report
    b = _run(
        ManDynPolicy(
            {"MomentumEnergy": 1410.0, "IADVelocityDivCurl": 1410.0},
            default_mhz=1005.0,
        )
    ).report
    return a, b


def test_diff_whole_run_ratios(ab_reports):
    a, b = ab_reports
    diff = diff_reports(a, b)
    assert 1.0 < diff.time_ratio < 1.05
    assert diff.gpu_energy_ratio < 0.95
    assert diff.edp_ratio == pytest.approx(
        diff.time_ratio * diff.gpu_energy_ratio
    )
    assert set(diff.device_ratios) == {"GPU", "CPU", "Memory", "Other"}


def test_diff_identity(ab_reports):
    a, _ = ab_reports
    diff = diff_reports(a, a)
    assert diff.time_ratio == pytest.approx(1.0)
    assert diff.gpu_energy_ratio == pytest.approx(1.0)
    for d in diff.functions:
        assert d.edp_ratio == pytest.approx(1.0)


def test_diff_per_function_structure(ab_reports):
    a, b = ab_reports
    diff = diff_reports(a, b)
    by_fn = {d.function: d for d in diff.functions}
    # ManDyn keeps the compute-bound pair at 1410: unchanged.
    assert by_fn["MomentumEnergy"].time_ratio == pytest.approx(1.0, abs=0.02)
    # Light kernels were down-clocked: slower but cheaper.
    assert by_fn["XMass"].time_ratio > 1.0
    assert by_fn["XMass"].gpu_energy_ratio < 0.85
    # Sorted by EDP ratio, best savings first.
    edps = [d.edp_ratio for d in diff.functions]
    assert edps == sorted(edps)


def test_cli_diff(tmp_path, capsys):
    a_path = str(tmp_path / "a.json")
    b_path = str(tmp_path / "b.json")
    assert main(["run", "--steps", "1", "--particles", "1e7",
                 "--report", a_path]) == 0
    assert main(["run", "--steps", "1", "--particles", "1e7",
                 "--policy", "mandyn", "--report", b_path]) == 0
    capsys.readouterr()
    assert main(["diff", a_path, b_path]) == 0
    out = capsys.readouterr().out
    assert "GPU energy  : x0." in out
    assert "per-function ratios" in out
