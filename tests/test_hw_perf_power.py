"""Performance and power model responses to frequency."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware import (
    GpuPerfModel,
    GpuPowerModel,
    KernelLaunch,
    a100_sxm4_80gb,
    mi250x_gcd,
)
from repro.units import mhz


@pytest.fixture
def perf():
    return GpuPerfModel(a100_sxm4_80gb())


@pytest.fixture
def power():
    return GpuPowerModel(a100_sxm4_80gb())


def _kernel(flops=1e12, nbytes=1e11, intensity=1.0):
    return KernelLaunch("K", flops, nbytes, intensity)


def test_compute_time_scales_inversely_with_clock(perf):
    k = KernelLaunch("K", flops=1e12, bytes_moved=0.0)
    t_full = perf.duration(k, mhz(1410))
    t_half = perf.duration(k, mhz(705))
    assert t_half == pytest.approx(2.0 * t_full)


def test_memory_time_is_clock_independent(perf):
    k = KernelLaunch("K", flops=0.0, bytes_moved=1e11)
    assert perf.duration(k, mhz(1410)) == pytest.approx(
        perf.duration(k, mhz(705))
    )


def test_mixed_kernel_slowdown_follows_kappa(perf):
    k = _kernel()
    kappa = perf.compute_fraction(k, mhz(1410))
    slow = perf.slowdown(k, mhz(1005))
    expected = 1.0 + kappa * (1410.0 / 1005.0 - 1.0)
    assert slow == pytest.approx(expected, rel=1e-6)


def test_arch_efficiency_slows_named_kernels():
    amd = GpuPerfModel(mi250x_gcd())
    mom = KernelLaunch("MomentumEnergy", flops=1e12, bytes_moved=0.0)
    other = KernelLaunch("XMass", flops=1e12, bytes_moved=0.0)
    f = mi250x_gcd().max_clock_hz
    assert amd.duration(mom, f) > amd.duration(other, f)


def test_zero_clock_rejected(perf):
    with pytest.raises(ValueError):
        perf.duration(_kernel(), 0.0)


def test_busy_power_at_max_clock_full_intensity_is_tdp(power):
    spec = a100_sxm4_80gb()
    p = power.busy_power_w(spec.max_clock_hz, 1.0)
    assert p == pytest.approx(spec.max_power_w)


def test_busy_power_decreases_with_clock(power):
    spec = a100_sxm4_80gb()
    assert power.busy_power_w(mhz(1005), 1.0) < power.busy_power_w(
        spec.max_clock_hz, 1.0
    )


def test_busy_power_increases_with_intensity(power):
    f = mhz(1410)
    assert power.busy_power_w(f, 0.3) < power.busy_power_w(f, 0.9)


def test_voltage_margin_raises_power_up_to_cap(power):
    f = mhz(1200)
    base = power.busy_power_w(f, 0.8)
    margined = power.busy_power_w(f, 0.8, voltage_margin_hz=mhz(150))
    assert margined > base
    capped = power.busy_power_w(mhz(1410), 0.8, voltage_margin_hz=mhz(500))
    assert capped == pytest.approx(power.busy_power_w(mhz(1410), 0.8))


def test_idle_power_below_busy_and_clock_dependent(power):
    spec = a100_sxm4_80gb()
    idle_hi = power.idle_power_w(spec.max_clock_hz)
    idle_lo = power.idle_power_w(spec.min_clock_hz)
    assert idle_lo < idle_hi <= spec.idle_power_w
    assert idle_hi < power.busy_power_w(spec.max_clock_hz, 0.1)


def test_invalid_intensity_rejected(power):
    with pytest.raises(ValueError):
        power.busy_power_w(mhz(1410), 1.5)


@given(
    st.floats(min_value=210.0, max_value=1410.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_power_bounded_by_idle_and_tdp(f_mhz, intensity):
    power = GpuPowerModel(a100_sxm4_80gb())
    spec = a100_sxm4_80gb()
    p = power.busy_power_w(mhz(f_mhz), intensity)
    assert spec.idle_power_w <= p <= spec.max_power_w + 1e-9


@given(st.floats(min_value=210.0, max_value=1409.0))
def test_power_monotone_in_clock(f_mhz):
    power = GpuPowerModel(a100_sxm4_80gb())
    assert power.busy_power_w(mhz(f_mhz), 1.0) <= power.busy_power_w(
        mhz(f_mhz + 1.0), 1.0
    )


def test_kernel_launch_validation():
    with pytest.raises(ValueError):
        KernelLaunch("K", flops=-1.0, bytes_moved=0.0)
    with pytest.raises(ValueError):
        KernelLaunch("K", flops=0.0, bytes_moved=0.0, power_intensity=2.0)
    with pytest.raises(ValueError):
        KernelLaunch("K", flops=0.0, bytes_moved=0.0, launch_overhead=-1.0)


def test_kernel_scaled_halves_work():
    k = KernelLaunch("K", flops=10.0, bytes_moved=20.0)
    half = k.scaled(0.5)
    assert half.flops == 5.0 and half.bytes_moved == 10.0
    assert half.name == "K"
