"""DVFS governor behaviour (Fig. 9 dynamics)."""

import pytest

from repro.hardware import DvfsGovernor, a100_sxm4_80gb
from repro.units import mhz, to_mhz


@pytest.fixture
def gov():
    return DvfsGovernor(a100_sxm4_80gb())


def test_initial_clock_is_supported(gov):
    spec = a100_sxm4_80gb()
    assert gov.clock_hz in spec.supported_clocks_hz()


def test_full_intensity_launch_boosts_to_max(gov):
    gov.note_launch(1.0)
    gov.observe_busy(0.1, 1.0)
    assert to_mhz(gov.clock_hz) == 1410.0


def test_compute_heavy_reaches_above_1350(gov):
    gov.note_launch(0.92)
    for _ in range(20):
        gov.observe_busy(0.01, 0.92)
    assert to_mhz(gov.clock_hz) > 1350.0


def test_lightweight_burst_sits_near_1200(gov):
    # DomainDecompAndSync: many tiny launches, low real intensity.
    for _ in range(50):
        gov.note_launch(0.3)
        gov.observe_busy(0.002, 0.3)
    assert 1100.0 <= to_mhz(gov.clock_hz) <= 1300.0


def test_idle_decays_below_1000(gov):
    gov.note_launch(1.0)
    gov.observe_busy(0.05, 1.0)
    gov.observe_idle(0.5)
    assert to_mhz(gov.clock_hz) < 1000.0


def test_long_idle_approaches_idle_clock(gov):
    gov.observe_idle(5.0)
    assert gov.clock_hz <= a100_sxm4_80gb().governor.idle_clock_hz + mhz(30)


def test_utilization_estimate_bounded(gov):
    for _ in range(100):
        gov.note_launch(1.0)
        gov.observe_busy(0.01, 1.0)
    assert 0.0 <= gov.utilization_estimate <= 1.0


def test_transitions_counted(gov):
    start = gov.transitions
    gov.note_launch(1.0)
    gov.observe_busy(0.1, 1.0)
    gov.observe_idle(1.0)
    assert gov.transitions > start


def test_boost_residency_window(gov):
    gov.note_launch(1.0)
    gov.observe_busy(0.02, 1.0)
    # Immediately after a launch: residency power held.
    assert gov.residency_intensity > 0.0
    gov.observe_idle(1.0)
    assert gov.residency_intensity == 0.0


def test_negative_dt_rejected(gov):
    with pytest.raises(ValueError):
        gov.observe_busy(-1.0, 0.5)
    with pytest.raises(ValueError):
        gov.observe_idle(-1.0)


def test_decision_snapshot_consistent(gov):
    gov.note_launch(0.8)
    d = gov.decision()
    assert d.clock_hz == gov.clock_hz
    assert d.voltage_margin_hz == gov.voltage_margin_hz
