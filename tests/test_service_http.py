"""End-to-end control-plane tests: real sockets, real campaigns.

Each scenario boots a :class:`CampaignService` plus its HTTP front end
on an ephemeral port inside one ``asyncio.run`` and talks to it over a
plain stream connection — the same wire a curl/urllib client sees.
"""

import asyncio
import json

import pytest

from repro.service import (
    CampaignService,
    SchedulerConfig,
    ServiceConfig,
    serve,
)

# ---------------------------------------------------------------------------
# a tiny stdlib HTTP client for the tests
# ---------------------------------------------------------------------------


def _parse_chunked(payload):
    body = b""
    rest = payload
    while rest:
        size_line, _, rest = rest.partition(b"\r\n")
        size = int(size_line, 16)
        if size == 0:
            break
        body += rest[:size]
        rest = rest[size + 2:]
    return body


def _parse_response(raw):
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding") == "chunked":
        body = _parse_chunked(body)
    return status, headers, body.decode("utf-8")


async def request(server, method, path, body=None, tenant=None):
    reader, writer = await asyncio.open_connection(server.host, server.port)
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    head = [
        f"{method} {path} HTTP/1.1",
        f"Host: {server.host}",
        "Connection: close",
        f"Content-Length: {len(payload)}",
    ]
    if tenant is not None:
        head.append(f"X-Repro-Tenant: {tenant}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    await writer.wait_closed()
    return _parse_response(raw)


async def request_json(server, method, path, body=None, tenant=None):
    status, headers, text = await request(
        server, method, path, body=body, tenant=tenant
    )
    return status, headers, json.loads(text)


async def poll_until_terminal(server, cid, tenant=None, timeout=30.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        _, _, doc = await request_json(
            server, "GET", f"/campaigns/{cid}", tenant=tenant
        )
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"campaign {cid} stuck in {doc['state']}")
        await asyncio.sleep(0.02)


# ---------------------------------------------------------------------------
# scenario harness
# ---------------------------------------------------------------------------


def spec_doc(name="svc-t", policies=None, clocks=(1305.0,), min_wall=0.0):
    doc = {
        "schema": 1,
        "kind": "campaign-spec",
        "name": name,
        "systems": ["miniHPC"],
        "workloads": ["sedov"],
        "particles": [30000.0],
        "steps": 2,
        "seeds": [0],
        "policies": policies or [{"kind": "baseline"}],
        "clocks_mhz": list(clocks),
    }
    if min_wall:
        doc["min_unit_wall_s"] = min_wall
    return doc


def run_scenario(tmp_path, scenario, **config_kwargs):
    async def main():
        config_kwargs.setdefault("root", str(tmp_path / "service-root"))
        service = CampaignService(ServiceConfig(**config_kwargs))
        server = await serve(service, port=0)
        try:
            await asyncio.wait_for(scenario(service, server), timeout=60)
        finally:
            await server.close()
            await service.close()

    asyncio.run(main())


# ---------------------------------------------------------------------------
# plumbing endpoints
# ---------------------------------------------------------------------------


def test_healthz_metrics_and_routing(tmp_path):
    async def scenario(service, server):
        status, _, doc = await request_json(server, "GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["scheduler"]["running"] == 0

        status, headers, text = await request(server, "GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert "service_uptime_s" in text

        status, _, _ = await request_json(server, "GET", "/nope")
        assert status == 404
        status, _, _ = await request_json(server, "PUT", "/campaigns")
        assert status == 405
        status, _, _ = await request_json(
            server, "GET", "/campaigns/c-ffffffffffff"
        )
        assert status == 404

    run_scenario(tmp_path, scenario)


def test_invalid_submissions_get_400(tmp_path):
    async def scenario(service, server):
        status, _, doc = await request_json(
            server, "POST", "/campaigns", body={"kind": "not-a-spec"}
        )
        assert status == 400
        assert "invalid campaign spec" in doc["error"]

        reader, writer = await asyncio.open_connection(
            server.host, server.port
        )
        writer.write(
            b"POST /campaigns HTTP/1.1\r\nHost: x\r\n"
            b"Connection: close\r\nContent-Length: 9\r\n\r\nnot json!"
        )
        await writer.drain()
        raw = await reader.read(-1)
        status, _, _ = _parse_response(raw)
        assert status == 400
        writer.close()
        await writer.wait_closed()

    run_scenario(tmp_path, scenario)


# ---------------------------------------------------------------------------
# the core lifecycle
# ---------------------------------------------------------------------------


def test_submit_poll_events_report(tmp_path):
    doc = spec_doc(policies=[{"kind": "baseline"}, {"kind": "static"}],
                   clocks=(1305.0, 1005.0))

    async def scenario(service, server):
        status, _, sub = await request_json(
            server, "POST", "/campaigns", body=doc
        )
        assert status == 202
        assert sub["created"] and sub["units"] == 3
        cid = sub["id"]

        final = await poll_until_terminal(server, cid)
        assert final["state"] == "done"
        assert final["drain"]["executed"] == 3
        assert final["drain"]["failed"] == 0
        assert final["campaign"]["complete"] is True
        assert final["alerts"] == []
        provs = {u["provenance"] for u in final["units"].values()}
        assert provs == {"executed"}

        # The SSE stream replays the full history, then ends.
        status, headers, text = await request(
            server, "GET", f"/campaigns/{cid}/events"
        )
        assert status == 200
        assert headers["content-type"].startswith("text/event-stream")
        names = [
            line.split(": ", 1)[1]
            for line in text.splitlines()
            if line.startswith("event: ")
        ]
        assert names[0] == "campaign-start"
        assert names[-2:] == ["campaign-done", "end"]
        assert names.count("unit-done") == 3

        # Resume from a mid-stream sequence number: no duplicates.
        status, _, tail = await request(
            server, "GET", f"/campaigns/{cid}/events?from=3"
        )
        assert "campaign-start" not in tail

        status, _, report = await request_json(
            server, "GET", f"/campaigns/{cid}/report"
        )
        assert status == 200
        assert report["kind"] == "campaign-summary"
        assert report["n_runs"] == 3

        status, _, listing = await request_json(server, "GET", "/campaigns")
        assert [c["id"] for c in listing["campaigns"]] == [cid]

    run_scenario(tmp_path, scenario)


def test_resubmit_completed_campaign_never_recomputes(tmp_path):
    doc = spec_doc(policies=[{"kind": "baseline"}, {"kind": "dvfs"}])

    async def scenario(service, server):
        _, _, sub = await request_json(server, "POST", "/campaigns", body=doc)
        cid = sub["id"]
        await poll_until_terminal(server, cid)
        executed_before = service.metrics.counter_total(
            "service_units_executed"
        )
        assert executed_before == 2

        status, _, again = await request_json(
            server, "POST", "/campaigns", body=doc
        )
        assert status == 200  # already terminal: answered immediately
        assert again["id"] == cid
        assert not again["created"]
        assert again["submissions"] == 2

        _, _, report = await request_json(
            server, "GET", f"/campaigns/{cid}/report"
        )
        assert report["n_runs"] == 2
        # A second read of an unchanged grid is a pure cache hit.
        _, _, report2 = await request_json(
            server, "GET", f"/campaigns/{cid}/report"
        )
        assert report2 == report
        assert service.metrics.counter_total(
            "service_report_cache_hits"
        ) == 1
        # The executed-units counter is the ground truth: nothing ran.
        assert service.metrics.counter_total(
            "service_units_executed"
        ) == executed_before

    run_scenario(tmp_path, scenario)


def test_report_before_any_completed_run_is_409(tmp_path):
    async def scenario(service, server):
        _, _, sub = await request_json(
            server, "POST", "/campaigns",
            body=spec_doc(name="slow", min_wall=5.0),
        )
        status, _, doc = await request_json(
            server, "GET", f"/campaigns/{sub['id']}/report"
        )
        assert status == 409
        assert "no completed runs" in doc["error"]
        await request_json(server, "DELETE", f"/campaigns/{sub['id']}")

    run_scenario(tmp_path, scenario)


# ---------------------------------------------------------------------------
# backpressure and cancellation
# ---------------------------------------------------------------------------


def test_full_tenant_queue_answers_429_with_retry_after(tmp_path):
    async def scenario(service, server):
        # The running campaign needs several units: cancellation is
        # cooperative and lands at the next unit boundary.
        specs = [
            spec_doc(
                name=f"queue-{i}", min_wall=1.0,
                policies=[{"kind": "baseline"}, {"kind": "static"},
                          {"kind": "dvfs"}],
            )
            for i in range(3)
        ]
        _, _, running = await request_json(
            server, "POST", "/campaigns", body=specs[0]
        )
        _, _, queued = await request_json(
            server, "POST", "/campaigns", body=specs[1]
        )
        status, headers, doc = await request_json(
            server, "POST", "/campaigns", body=specs[2]
        )
        assert status == 429
        assert headers["retry-after"] == "1"
        assert doc["retry_after_s"] == pytest.approx(0.5)
        assert "queue is full" in doc["error"]

        # Cancel both: the queued one drops, the running one stops at
        # the next unit boundary.
        for sub in (queued, running):
            status, _, _ = await request_json(
                server, "DELETE", f"/campaigns/{sub['id']}"
            )
            assert status == 202
        assert (await poll_until_terminal(server, queued["id"]))[
            "state"] == "cancelled"
        assert (await poll_until_terminal(server, running["id"]))[
            "state"] == "cancelled"

        _, _, health = await request_json(server, "GET", "/healthz")
        assert health["scheduler"]["rejected"] == 1

    run_scenario(
        tmp_path,
        scenario,
        scheduler=SchedulerConfig(
            max_running=1, per_tenant_running=1, queue_depth=1,
            retry_after_s=0.5,
        ),
    )


# ---------------------------------------------------------------------------
# caching across submissions, campaigns, tenants
# ---------------------------------------------------------------------------


def test_concurrent_overlapping_specs_share_units(tmp_path):
    """Satellite: concurrent submissions of overlapping specs attach to
    in-flight units instead of recomputing, with cache_hit provenance."""
    # Same campaign name => overlapping unit keys; the baseline unit is
    # shared between both grids, dvfs/static are disjoint.
    doc_a = spec_doc(name="overlap",
                     policies=[{"kind": "baseline"}, {"kind": "static"}],
                     clocks=(1005.0,), min_wall=0.3)
    doc_b = spec_doc(name="overlap",
                     policies=[{"kind": "baseline"}, {"kind": "dvfs"}],
                     clocks=(1005.0,), min_wall=0.3)

    async def scenario(service, server):
        (_, _, sub_a), (_, _, sub_b) = await asyncio.gather(
            request_json(server, "POST", "/campaigns", body=doc_a),
            request_json(server, "POST", "/campaigns", body=doc_b),
        )
        assert sub_a["id"] != sub_b["id"]
        fin_a, fin_b = await asyncio.gather(
            poll_until_terminal(server, sub_a["id"]),
            poll_until_terminal(server, sub_b["id"]),
        )
        assert fin_a["state"] == "done" and fin_b["state"] == "done"

        # Three distinct unit keys exist; exactly three executions
        # happened service-wide even though four units were requested.
        all_keys = set(fin_a["units"]) | set(fin_b["units"])
        assert len(all_keys) == 3
        assert service.metrics.counter_total("service_units_executed") == 3

        shared = set(fin_a["units"]) & set(fin_b["units"])
        assert len(shared) == 1
        (key,) = shared
        provs = sorted(
            doc["units"][key]["provenance"] for doc in (fin_a, fin_b)
        )
        # One campaign computed it, the other saw a cache hit (either
        # attached in-flight or read back from the store, depending on
        # scheduling).
        assert provs == ["cache_hit", "executed"]
        hit = next(
            doc["units"][key] for doc in (fin_a, fin_b)
            if doc["units"][key]["provenance"] == "cache_hit"
        )
        assert hit["via"] in ("inflight", "store")

    run_scenario(
        tmp_path,
        scenario,
        scheduler=SchedulerConfig(max_running=2, per_tenant_running=2),
    )


def test_cross_tenant_shared_cache_and_isolation(tmp_path):
    doc = spec_doc(name="shared-work",
                   policies=[{"kind": "baseline"}, {"kind": "static"}],
                   clocks=(1005.0,))

    async def scenario(service, server):
        _, _, sub_a = await request_json(
            server, "POST", "/campaigns", body=doc, tenant="alice"
        )
        await poll_until_terminal(server, sub_a["id"], tenant="alice")

        # Isolation: bob cannot see alice's campaign at all.
        status, _, _ = await request_json(
            server, "GET", f"/campaigns/{sub_a['id']}", tenant="bob"
        )
        assert status == 404

        # Same spec from bob: different job id (identity includes the
        # tenant), but every unit arrives via the shared result cache.
        _, _, sub_b = await request_json(
            server, "POST", "/campaigns", body=doc, tenant="bob"
        )
        assert sub_b["id"] != sub_a["id"]
        fin_b = await poll_until_terminal(
            server, sub_b["id"], tenant="bob"
        )
        assert fin_b["state"] == "done"
        assert fin_b["drain"]["executed"] == 0
        assert all(
            u["provenance"] == "cache_hit" and u["via"] == "shared"
            for u in fin_b["units"].values()
        )
        assert service.metrics.counter_total("service_units_executed") == 2
        assert service.metrics.counter_total("service_unit_cache_hits") == 2

        # And bob's report aggregates the adopted artifacts.
        status, _, report = await request_json(
            server, "GET", f"/campaigns/{sub_b['id']}/report", tenant="bob"
        )
        assert status == 200 and report["n_runs"] == 2

    run_scenario(tmp_path, scenario)


def test_invalid_tenant_header_is_rejected(tmp_path):
    async def scenario(service, server):
        status, _, doc = await request_json(
            server, "POST", "/campaigns", body=spec_doc(),
            tenant="../escape",
        )
        assert status == 400
        assert "invalid" in doc["error"]

    run_scenario(tmp_path, scenario)
