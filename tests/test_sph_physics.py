"""SPH physics kernels: density, grad-h, IAD, momentum/energy, timestep."""

import numpy as np
import pytest

from repro.sph import ParticleSet, default_kernel, find_neighbors
from repro.sph.eos import IdealGasEOS, IsothermalEOS
from repro.sph.init import TurbulenceConfig, make_turbulence
from repro.sph.physics import (
    ArtificialViscosity,
    TimestepControl,
    compute_density_gradh,
    compute_iad_divv_curlv,
    compute_momentum_energy,
    compute_xmass,
    local_timestep,
    signal_velocity,
)
from repro.sph.physics.positions import IntegrationConfig, update_quantities


@pytest.fixture(scope="module")
def uniform_box():
    """Uniform periodic box with the full pipeline up to EOS."""
    parts = make_turbulence(TurbulenceConfig(nside=10, seed=11, jitter=0.1))
    kernel = default_kernel()
    nlist = find_neighbors(parts, box_size=1.0)
    compute_xmass(parts, nlist, kernel, box_size=1.0)
    compute_density_gradh(parts, nlist, kernel, box_size=1.0)
    IdealGasEOS().apply(parts)
    return parts, nlist, kernel


def test_xmass_requires_then_fills_kx(uniform_box):
    parts, nlist, kernel = uniform_box
    assert parts.kx is not None
    assert np.all(parts.kx > 0)


def test_density_close_to_uniform_value(uniform_box):
    parts, nlist, kernel = uniform_box
    # rho0 = 1 in the unit box; summation density should be within a few
    # percent away from lattice artifacts.
    assert parts.rho.mean() == pytest.approx(1.0, rel=0.05)
    assert parts.rho.std() < 0.1


def test_gradh_near_unity_for_uniform_medium(uniform_box):
    parts, nlist, kernel = uniform_box
    assert np.all(parts.gradh > 0.5)
    assert np.all(parts.gradh < 1.5)
    assert parts.gradh.mean() == pytest.approx(1.0, abs=0.15)


def test_density_requires_xmass():
    parts = make_turbulence(TurbulenceConfig(nside=6, seed=1))
    nlist = find_neighbors(parts, box_size=1.0)
    with pytest.raises(ValueError):
        compute_density_gradh(parts, nlist, default_kernel(), box_size=1.0)


def test_eos_ideal_gas_relations(uniform_box):
    parts, _, _ = uniform_box
    gamma = 5.0 / 3.0
    assert np.allclose(parts.p, (gamma - 1.0) * parts.rho * parts.u)
    assert np.allclose(parts.c, np.sqrt(gamma * parts.p / parts.rho))


def test_eos_isothermal():
    parts = make_turbulence(TurbulenceConfig(nside=6, seed=2))
    nlist = find_neighbors(parts, box_size=1.0)
    kernel = default_kernel()
    compute_xmass(parts, nlist, kernel, 1.0)
    compute_density_gradh(parts, nlist, kernel, 1.0)
    IsothermalEOS(sound_speed=2.0).apply(parts)
    assert np.allclose(parts.c, 2.0)
    assert np.allclose(parts.p, 4.0 * parts.rho)


def test_iad_inverse_property(uniform_box):
    parts, nlist, kernel = uniform_box
    compute_iad_divv_curlv(parts, nlist, kernel, box_size=1.0)
    # For a quasi-uniform isotropic neighborhood, the C tensor is close
    # to isotropic: C ~ (3 / trace(tau)) I; check symmetry values exist
    # and diagonals dominate.
    assert np.all(np.abs(parts.c12) < np.abs(parts.c11))
    assert np.all(parts.c11 > 0)
    assert np.all(parts.c22 > 0)
    assert np.all(parts.c33 > 0)


def test_iad_divergence_of_linear_field(uniform_box):
    parts, nlist, kernel = uniform_box
    p = parts.select(np.arange(parts.n))  # copy
    # v = (x, y, z) has div v = 3, curl v = 0 — but the periodic wrap
    # breaks linearity at the boundary, so test interior particles only.
    p.vx = np.copy(p.x)
    p.vy = np.copy(p.y)
    p.vz = np.copy(p.z)
    compute_iad_divv_curlv(p, nlist, kernel, box_size=None)
    interior = (
        (p.x > 0.25) & (p.x < 0.75)
        & (p.y > 0.25) & (p.y < 0.75)
        & (p.z > 0.25) & (p.z < 0.75)
    )
    assert np.median(p.divv[interior]) == pytest.approx(3.0, rel=0.1)
    assert np.median(p.curlv[interior]) < 0.5


def test_momentum_energy_requires_pipeline():
    parts = make_turbulence(TurbulenceConfig(nside=6, seed=3))
    nlist = find_neighbors(parts, box_size=1.0)
    with pytest.raises(ValueError):
        compute_momentum_energy(parts, nlist, default_kernel(), box_size=1.0)


def test_momentum_conservation(uniform_box):
    parts, nlist, kernel = uniform_box
    p = parts.select(np.arange(parts.n))
    compute_iad_divv_curlv(p, nlist, kernel, box_size=1.0)
    compute_momentum_energy(p, nlist, kernel, box_size=1.0)
    # Pairwise-symmetric forces: net momentum change ~ 0.
    net = np.array(
        [np.sum(p.m * p.ax), np.sum(p.m * p.ay), np.sum(p.m * p.az)]
    )
    scale = np.sum(p.m * np.abs(p.ax)) + 1e-30
    assert np.all(np.abs(net) / scale < 1e-8)


def test_uniform_static_box_has_tiny_accelerations():
    # A perfect (unjittered) lattice is symmetric: pressure forces cancel.
    from repro.sph import find_neighbors as _fn
    from repro.sph.physics import compute_xmass as _xm

    p = make_turbulence(
        TurbulenceConfig(nside=8, seed=12, jitter=0.0, mach_rms=0.0)
    )
    kernel = default_kernel()
    nlist = _fn(p, box_size=1.0)
    _xm(p, nlist, kernel, 1.0)
    compute_density_gradh(p, nlist, kernel, 1.0)
    IdealGasEOS().apply(p)
    compute_iad_divv_curlv(p, nlist, kernel, box_size=1.0)
    compute_momentum_energy(p, nlist, kernel, box_size=1.0)
    typical = np.sqrt(np.mean(p.ax**2 + p.ay**2 + p.az**2))
    # Compare against the acceleration scale of the pressure field p/rho/h.
    scale = np.mean(p.p / p.rho / p.h)
    assert typical < 0.01 * scale


def test_external_acceleration_added(uniform_box):
    parts, nlist, kernel = uniform_box
    p = parts.select(np.arange(parts.n))
    compute_iad_divv_curlv(p, nlist, kernel, box_size=1.0)
    compute_momentum_energy(p, nlist, kernel, box_size=1.0)
    base_ax = np.copy(p.ax)
    ext = np.ones(p.n)
    compute_momentum_energy(
        p, nlist, kernel, box_size=1.0, external_ax=ext
    )
    assert np.allclose(p.ax, base_ax + 1.0)


def test_artificial_viscosity_heats_on_compression():
    # Two streams colliding: AV must produce positive du for particles
    # in the compression region.
    parts = make_turbulence(TurbulenceConfig(nside=8, seed=4, mach_rms=0.0))
    kernel = default_kernel()
    parts.vx = np.where(parts.x < 0.5, 0.5, -0.5)
    nlist = find_neighbors(parts, box_size=1.0)
    compute_xmass(parts, nlist, kernel, 1.0)
    compute_density_gradh(parts, nlist, kernel, 1.0)
    IdealGasEOS().apply(parts)
    compute_iad_divv_curlv(parts, nlist, kernel, 1.0)
    compute_momentum_energy(parts, nlist, kernel, box_size=1.0)
    mid = (np.abs(parts.x - 0.5) < 0.05) | (np.abs(parts.x) < 0.05) | (
        np.abs(parts.x - 1.0) < 0.05
    )
    assert parts.du[mid].mean() > 0.0


def test_balsara_factor_bounds(uniform_box):
    parts, _, _ = uniform_box
    av = ArtificialViscosity()
    f = av.balsara_factor(parts)
    assert np.all((0.0 <= f) & (f <= 1.0))
    no_limiter = ArtificialViscosity(use_balsara=False)
    assert np.all(no_limiter.balsara_factor(parts) == 1.0)


def test_signal_velocity_at_least_sound_speed(uniform_box):
    parts, nlist, _ = uniform_box
    vsig = signal_velocity(parts, nlist, box_size=1.0)
    assert np.all(vsig >= parts.c - 1e-12)


def test_local_timestep_cfl_bound(uniform_box):
    parts, nlist, _ = uniform_box
    control = TimestepControl(cfl=0.3)
    dt = local_timestep(parts, nlist, control, box_size=1.0)
    hard_bound = 0.3 * np.min(parts.h / parts.c)
    assert 0.0 < dt <= hard_bound + 1e-12


def test_timestep_growth_limited(uniform_box):
    parts, nlist, _ = uniform_box
    control = TimestepControl(max_growth=1.1)
    dt = local_timestep(parts, nlist, control, previous_dt=1e-6, box_size=1.0)
    assert dt <= 1.1e-6


def test_update_quantities_integrates():
    parts = make_turbulence(TurbulenceConfig(nside=6, seed=5))
    parts.ensure_derived()
    parts.ax = np.full(parts.n, 1.0)
    parts.ay = np.zeros(parts.n)
    parts.az = np.zeros(parts.n)
    parts.du = np.full(parts.n, -1e9)  # drives u below the floor
    x0 = np.copy(parts.x)
    vx0 = np.copy(parts.vx)
    update_quantities(parts, 0.1, box_size=1.0)
    assert np.allclose(parts.vx, vx0 + 0.1)
    assert np.all((0.0 <= parts.x) & (parts.x < 1.0))  # wrapped
    assert np.all(parts.u == IntegrationConfig().u_floor)  # positivity


def test_update_quantities_validation():
    parts = make_turbulence(TurbulenceConfig(nside=4, seed=6))
    with pytest.raises(ValueError):
        update_quantities(parts, 0.1)
    parts.ensure_derived()
    with pytest.raises(ValueError):
        update_quantities(parts, -0.1)


def test_smoothing_length_relaxes_toward_target():
    parts = make_turbulence(TurbulenceConfig(nside=8, seed=7))
    nlist = find_neighbors(parts, box_size=1.0)
    before = np.copy(parts.h)
    parts.ensure_derived()
    parts.ax = np.zeros(parts.n)
    parts.ay = np.zeros(parts.n)
    parts.az = np.zeros(parts.n)
    parts.du = np.zeros(parts.n)
    cfg = IntegrationConfig(target_neighbors=200)
    update_quantities(parts, 1e-6, nlist=nlist, config=cfg, box_size=1.0)
    # Current count ~100 < 200 target: h must grow (bounded by limit).
    assert np.all(parts.h >= before)
    assert np.all(parts.h <= before * (1.0 + cfg.h_change_limit) + 1e-12)
