"""Cross-subsystem: AutoDyn online tuning under transient NVML faults.

The online tuner (`OnlineTuningPolicy`, the §V "AutoDyn" extension)
drives per-function clock changes through the same
`FrequencyController` the resilience layer protects. Under the
`flaky-clocks` scenario — 20 % of `nvmlDeviceSetApplicationsClocks`
calls time out transiently — the controller's retry/backoff must absorb
every injected timeout so the tuner still observes every candidate
clock and converges to the same pinned per-function map as a
fault-free run.
"""

import pytest

from repro.core import OnlineTuningPolicy, ResilienceConfig
from repro.faults import FaultInjector, build_plan
from repro.sph import run_instrumented
from repro.systems import Cluster, mini_hpc

N = 450**3
CANDIDATES = (1410.0, 1200.0, 1005.0)
ROUNDS = 2


def _run_autodyn(faults_seed=None):
    cluster = Cluster(mini_hpc(), 1)
    try:
        policy = OnlineTuningPolicy(
            cluster.gpus, candidates_mhz=CANDIDATES,
            rounds_per_candidate=ROUNDS,
        )
        kwargs = {}
        if faults_seed is not None:
            plan = build_plan("flaky-clocks", seed=faults_seed, n_ranks=1)
            kwargs["faults"] = FaultInjector(plan)
            kwargs["resilience"] = ResilienceConfig()
        steps = ROUNDS * len(CANDIDATES) + 4
        result = run_instrumented(
            cluster, "SubsonicTurbulence", N, steps, policy=policy, **kwargs
        )
        return result, policy, kwargs.get("faults")
    finally:
        cluster.detach_management_library()


@pytest.mark.parametrize("seed", [7, 20240])
def test_autodyn_converges_despite_transient_nvml_timeouts(seed):
    result, policy, injector = _run_autodyn(faults_seed=seed)

    # Faults really fired and the resilience layer absorbed them.
    assert result.faults_injected > 0
    assert result.retries > 0
    assert not result.degraded_ranks  # transient-only scenario
    assert not result.preempted

    # The tuner still converged to a pinned per-function clock map.
    assert policy.fully_converged
    pinned = policy.converged_map
    assert pinned["MomentumEnergy"] == 1410.0
    assert pinned["IADVelocityDivCurl"] == 1410.0
    for light in ("XMass", "NormalizationGradh", "DomainDecompAndSync"):
        assert pinned[light] == 1005.0, light
    assert set(pinned.values()) <= set(CANDIDATES)


def test_autodyn_map_matches_fault_free_run():
    _, faulty_policy, _ = _run_autodyn(faults_seed=7)
    _, clean_policy, _ = _run_autodyn(faults_seed=None)
    assert faulty_policy.converged_map == clean_policy.converged_map
