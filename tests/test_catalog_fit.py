"""Calibration round trip: sweep a known device, recover its spec.

The acceptance bar from the catalog design: ``P_idle``, ``P_dyn`` and
``alpha`` within 2 % of ground truth, per-kernel roofline fractions
within 5 % — via *both* ingest paths (self-contained telemetry trace,
and PMT dump + schedule sidecar).
"""

import json
import os

import pytest

from repro.catalog import build_system, load_system
from repro.catalog.fit import (
    CalibrationError,
    fit_from_dump,
    fit_from_trace,
    fit_to_spec_payload,
    load_schedule,
    run_calibration_sweep,
    verify_fit,
)
from repro.systems import by_name

POWER_TOL = 0.02
ROOFLINE_TOL = 0.05


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """One shared miniHPC sweep (the artifacts are read-only)."""
    out = str(tmp_path_factory.mktemp("sweep"))
    system = by_name("miniHPC")
    return system, run_calibration_sweep(system, out)


def _assert_within_tolerance(fit, spec):
    errors = verify_fit(fit, spec)
    assert errors["idle_power_w"] <= POWER_TOL
    assert errors["dynamic_power_w"] <= POWER_TOL
    assert errors["power_exponent"] <= POWER_TOL
    assert errors["fp_throughput"] <= POWER_TOL
    assert errors["mem_bandwidth"] <= POWER_TOL
    assert errors["kernels"], "no per-kernel roofline fits"
    for kernel_errors in errors["kernels"].values():
        assert kernel_errors["efficiency"] <= ROOFLINE_TOL
        assert kernel_errors["compute_fraction_max"] <= ROOFLINE_TOL


def test_trace_path_recovers_spec(sweep):
    system, result = sweep
    fit = fit_from_trace(result.trace_path)
    _assert_within_tolerance(fit, system.gpu_spec())


def test_dump_path_recovers_spec(sweep):
    system, result = sweep
    fit = fit_from_dump(result.dump_path, result.schedule_path)
    _assert_within_tolerance(fit, system.gpu_spec())


def test_both_paths_agree(sweep):
    _, result = sweep
    via_trace = fit_from_trace(result.trace_path)
    via_dump = fit_from_dump(result.dump_path, result.schedule_path)
    assert via_trace.idle_power_w == pytest.approx(via_dump.idle_power_w)
    assert via_trace.dynamic_power_w == pytest.approx(
        via_dump.dynamic_power_w
    )
    assert via_trace.power_exponent == pytest.approx(via_dump.power_exponent)


def test_sweep_artifacts_are_versioned(sweep):
    _, result = sweep
    with open(result.trace_path, encoding="utf-8") as fh:
        header = json.loads(fh.readline())
    assert header["schema"] == 1
    with open(result.schedule_path, encoding="utf-8") as fh:
        schedule = json.load(fh)
    assert schedule["schema"] == 1
    assert schedule["kind"] == "calibration-schedule"
    with open(result.dump_path, encoding="ascii") as fh:
        assert fh.readline().startswith("# {")


def test_throttled_windows_are_flagged_not_fitted(sweep):
    _, result = sweep
    meta, windows = load_schedule(result.schedule_path)
    assert all(not w.throttled for w in windows)  # cool sweep by design
    assert meta["system"] == "miniHPC"


def test_arch_efficiency_recovered_on_lumi(tmp_path):
    system = by_name("LUMI-G")
    result = run_calibration_sweep(system, str(tmp_path))
    fit = fit_from_trace(result.trace_path)
    payload = fit_to_spec_payload(fit, system)
    eff = payload["gpu"]["arch_efficiency"]
    truth = system.gpu_spec().arch_efficiency
    for kernel, value in truth.items():
        assert eff[kernel] == pytest.approx(value, rel=ROOFLINE_TOL)


def test_fitted_spec_file_builds_equivalent_system(sweep, tmp_path):
    from repro.catalog import write_spec_file

    system, result = sweep
    fit = fit_from_trace(result.trace_path)
    payload = fit_to_spec_payload(fit, system, name="minihpc-refit")
    rebuilt = build_system(payload, source="<fit>")
    truth = system.gpu_spec()
    spec = rebuilt.gpu_spec()
    assert spec.idle_power_w == pytest.approx(truth.idle_power_w,
                                              rel=POWER_TOL)
    assert spec.max_power_w == pytest.approx(truth.max_power_w,
                                             rel=POWER_TOL)
    assert spec.power_exponent == pytest.approx(truth.power_exponent,
                                                rel=POWER_TOL)
    path = str(tmp_path / "refit.yaml")
    write_spec_file(path, payload)
    assert load_system(path).name == "minihpc-refit"


# ---------------------------------------------------------------------------
# failure modes
# ---------------------------------------------------------------------------


def test_sweep_rejects_misaligned_window():
    with pytest.raises(ValueError, match="multiple"):
        run_calibration_sweep(by_name("miniHPC"), "/tmp/unused",
                              period_s=0.03, window_s=0.2)


def test_sweep_rejects_too_few_clocks(tmp_path):
    with pytest.raises(ValueError, match="3 distinct probe clocks"):
        run_calibration_sweep(by_name("miniHPC"), str(tmp_path),
                              clocks_mhz=[1410.0, 1005.0])


def test_fit_rejects_non_calibration_trace(tmp_path):
    path = str(tmp_path / "plain.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"schema": 1, "kind": "trace"}) + "\n")
    with pytest.raises(CalibrationError, match="calibration-meta"):
        fit_from_trace(path)


def test_fit_rejects_empty_dump(sweep, tmp_path):
    _, result = sweep
    empty = str(tmp_path / "empty.dat")
    with open(result.dump_path, encoding="ascii") as src, \
            open(empty, "w", encoding="ascii") as dst:
        dst.write(src.readline())  # header only
    with pytest.raises(CalibrationError, match="no samples"):
        fit_from_dump(empty, result.schedule_path)


def test_fit_needs_enough_probe_phases(sweep, tmp_path):
    _, result = sweep
    meta, windows = load_schedule(result.schedule_path)
    gutted = {
        "schema": 1,
        "kind": "calibration-schedule",
        "meta": meta,
        "probes": [w.to_dict() for w in windows if w.phase == "idle"][:1],
    }
    path = str(tmp_path / "gutted.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(gutted, fh)
    with pytest.raises(CalibrationError, match="idle"):
        fit_from_dump(result.dump_path, path)
