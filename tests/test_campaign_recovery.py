"""Campaign crash tolerance: checkpoints, lane supervision, kill matrix.

The acceptance bar from the robustness issue: a campaign SIGKILLed
mid-unit resumes from its last checkpoint (not step 0) and the final
aggregate summary is **byte-identical** to an uninterrupted campaign's.
The kill-matrix test at the bottom exercises that end to end in a real
subprocess; everything above it pins the pieces (store helpers, worker
provenance, missed-heartbeat verdicts, lane reaping).
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignExecutor,
    CampaignSpec,
    ExecutorConfig,
    RunStore,
    build_summary,
    run_campaign,
    summary_json,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _spec(**overrides):
    base = dict(
        name="recov-t",
        workloads=("sedov",),
        policies=({"kind": "baseline"},),
        clocks_mhz=(1305.0,),
        systems=("miniHPC",),
        particles=(10_000.0,),
        steps=8,
        seeds=(0,),
        checkpoint_every=2,
    )
    base.update(overrides)
    return CampaignSpec(**base)


# ---------------------------------------------------------------------------
# store: checkpoint + liveness file helpers
# ---------------------------------------------------------------------------


def test_store_checkpoint_helpers(tmp_path):
    store = RunStore(str(tmp_path), campaign="c")
    assert not store.has_checkpoint("u1")
    assert store.checkpoint_keys() == set()

    path = store.checkpoint_path("u1")
    path.write_text("{}")
    assert store.has_checkpoint("u1")
    assert store.checkpoint_keys() == {"u1"}

    store.clear_checkpoint("u1")
    assert not store.has_checkpoint("u1")
    store.clear_checkpoint("u1")  # idempotent


def test_store_lane_beats_round_trip(tmp_path):
    store = RunStore(str(tmp_path), campaign="c")
    assert store.read_lane_beats() == {}

    beat = {"updated_s": 12.5, "pid": 41, "key": "u1", "step": 3}
    store.lane_beat_path(0).write_text(json.dumps(beat))
    store.lane_beat_path(1).write_text("{torn")  # tolerated, not fatal
    beats = store.read_lane_beats()
    assert beats == {"0": beat}

    store.reset_lane_beats()
    assert store.read_lane_beats() == {}


def test_executor_run_resets_stale_liveness(tmp_path):
    """A killed drain's frozen liveness files must not survive into the
    next invocation (stale-heartbeat false alarms, ghost lane beats)."""
    store = RunStore(str(tmp_path), campaign="recov-t")
    store.write_heartbeats({"99": {"updated_s": 1.0, "state": "running"}})
    store.lane_beat_path(99).write_text(json.dumps({"pid": 1, "key": "x"}))

    CampaignExecutor(store).run([])

    assert "99" not in store.read_heartbeats()
    assert "99" not in store.read_lane_beats()


# ---------------------------------------------------------------------------
# worker provenance: preemption resume, corrupt-checkpoint fallback
# ---------------------------------------------------------------------------


def test_preemption_resumes_from_checkpoint(tmp_path):
    """preempt-mid-run kicks the unit out after step 3; the retry must
    restore the rescue snapshot (checkpoint *hit*, not step 0) and the
    finished unit must clear its snapshot from the store."""
    spec = _spec(fault_scenario="preempt-mid-run")
    status, store = run_campaign(spec, str(tmp_path / "store"))

    assert status.failed == 0 and status.executed == 1
    assert status.retries >= 1
    assert status.checkpoint_hits == 1
    assert "resumed from checkpoints" in status.describe()

    (artifact,) = store.results()
    assert artifact["result"]["checkpoint"] == "hit"
    metrics = artifact["result"]["metrics"]
    assert metrics["resumed_from_step"] == 3
    assert metrics["steps"] == spec.steps
    assert store.checkpoint_keys() == set()

    # Bit-exact economics: the preempted-and-resumed unit reports the
    # same simulated wall/energy as a never-preempted run of the grid.
    ref_status, ref_store = run_campaign(
        _spec(name="recov-ref"), str(tmp_path / "ref")
    )
    (ref,) = ref_store.results()
    assert metrics["elapsed_s"] == ref["result"]["metrics"]["elapsed_s"]
    assert metrics["gpu_energy_j"] == ref["result"]["metrics"]["gpu_energy_j"]


def test_corrupt_checkpoint_falls_back_to_fresh_start(tmp_path):
    spec = _spec()
    (unit,) = spec.expand()
    store = RunStore(str(tmp_path), campaign=spec.name)
    store.checkpoint_path(unit.key).write_text("{torn garbage")

    status = CampaignExecutor(
        store, checkpoint_every=spec.checkpoint_every
    ).run(spec.expand())

    assert status.failed == 0 and status.executed == 1
    assert status.checkpoint_hits == 0
    (artifact,) = store.results()
    assert artifact["result"]["checkpoint"] == "miss"
    assert store.checkpoint_keys() == set()


# ---------------------------------------------------------------------------
# lane supervision: missed-heartbeat verdicts, reaping, poll cadence
# ---------------------------------------------------------------------------


def _supervised(tmp_path, dead_after=10.0):
    store = RunStore(str(tmp_path), campaign="recov-t")
    executor = CampaignExecutor(
        store, config=ExecutorConfig(lane_dead_after_s=dead_after)
    )
    return store, executor


def test_lane_dead_verdicts(tmp_path):
    store, executor = _supervised(tmp_path)
    (unit,) = _spec().expand()
    now = time.time()

    # No beat yet: the dispatch time anchors the grace period.
    assert not executor._lane_is_dead(unit, 0, dispatched_wall=now)
    assert executor._lane_is_dead(unit, 0, dispatched_wall=now - 60.0)

    # A fresh beat for *this* unit vouches for the lane...
    store.lane_beat_path(0).write_text(
        json.dumps({"updated_s": now, "pid": 1, "key": unit.key, "step": 2})
    )
    assert not executor._lane_is_dead(unit, 0, dispatched_wall=now - 60.0)

    # ...a stale beat for this unit does not...
    store.lane_beat_path(0).write_text(
        json.dumps({"updated_s": now - 60.0, "pid": 1, "key": unit.key})
    )
    assert executor._lane_is_dead(unit, 0, dispatched_wall=now - 60.0)

    # ...and a fresh beat left by the lane's *previous* occupant must
    # not vouch for the current one.
    store.lane_beat_path(0).write_text(
        json.dumps({"updated_s": now, "pid": 1, "key": "other-unit"})
    )
    assert executor._lane_is_dead(unit, 0, dispatched_wall=now - 60.0)


def test_reap_lane_sigterms_recorded_pid(tmp_path):
    store, executor = _supervised(tmp_path)
    proc = subprocess.Popen([sys.executable, "-c", "import time; time.sleep(60)"])
    try:
        store.lane_beat_path(3).write_text(
            json.dumps({"updated_s": time.time(), "pid": proc.pid, "key": "u"})
        )
        executor._reap_lane(3)
        assert proc.wait(timeout=10) == -signal.SIGTERM
    finally:
        if proc.poll() is None:
            proc.kill()


def test_reap_lane_without_pid_is_noop(tmp_path):
    _, executor = _supervised(tmp_path)
    executor._reap_lane(0)  # no beat file at all: nothing to signal


def test_poll_interval_tracks_supervision(tmp_path):
    store = RunStore(str(tmp_path), campaign="c")

    def poll(**cfg):
        return CampaignExecutor(
            store, config=ExecutorConfig(**cfg)
        )._poll_interval()

    assert poll() is None  # no timeout, no supervision: block freely
    assert poll(lane_dead_after_s=8.0) == 2.0  # quarter of the deadline
    assert poll(timeout_s=1.0, lane_dead_after_s=8.0) == 1.0
    assert poll(lane_dead_after_s=0.12) == 0.05  # floored


# ---------------------------------------------------------------------------
# SIGKILLed worker process: pool rebuild + checkpoint resume
# ---------------------------------------------------------------------------


def test_sigkilled_worker_resumes_from_checkpoint(tmp_path):
    """SIGKILL the worker *process* mid-unit (BrokenProcessPool in the
    executor): the pool is rebuilt, the unit retries as transient, and
    the retry restores the on-disk checkpoint instead of step 0."""
    spec = _spec(steps=400, checkpoint_every=25)
    store = RunStore(str(tmp_path), campaign=spec.name)
    executor = CampaignExecutor(
        store,
        config=ExecutorConfig(workers=2),
        checkpoint_every=spec.checkpoint_every,
    )

    box = {}

    def drain():
        box["status"] = executor.run(spec.expand())

    thread = threading.Thread(target=drain)
    thread.start()
    killed = False
    deadline = time.time() + 60.0
    while time.time() < deadline:
        beats = store.read_lane_beats()
        if store.checkpoint_keys() and beats:
            pid = next(
                (b.get("pid") for b in beats.values() if b.get("pid")), None
            )
            if pid and pid != os.getpid():
                os.kill(int(pid), signal.SIGKILL)
                killed = True
                break
        time.sleep(0.005)
    thread.join(timeout=120.0)
    assert killed, "no checkpoint+beat appeared before the drain finished"
    assert not thread.is_alive()

    status = box["status"]
    assert status.failed == 0 and status.executed == 1
    assert status.retries >= 1
    assert status.checkpoint_hits == 1
    (artifact,) = store.results()
    assert artifact["result"]["metrics"]["resumed_from_step"] > 0


# ---------------------------------------------------------------------------
# kill matrix: SIGKILL the whole campaign process, resume, compare bytes
# ---------------------------------------------------------------------------

_DRIVER = textwrap.dedent(
    """
    import json, sys
    sys.path.insert(0, {src!r})
    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec.from_dict(json.loads(open(sys.argv[1]).read()))
    run_campaign(spec, sys.argv[2])
    """
)


def test_kill_matrix_sigkill_resume_byte_identical(tmp_path):
    """The issue's acceptance bar, literally: SIGKILL a two-seed
    campaign mid-unit; the resumed campaign restarts from checkpoints
    (not step 0) and its summary is byte-identical to an uninterrupted
    reference campaign's."""
    spec = _spec(steps=400, checkpoint_every=25, seeds=(0, 1))
    root = tmp_path / "store"
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec.to_dict()))
    driver = tmp_path / "driver.py"
    driver.write_text(_DRIVER.format(src=SRC))

    proc = subprocess.Popen(
        [sys.executable, str(driver), str(spec_path), str(root)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        killed = False
        ckpt_dir = root / "checkpoints"
        deadline = time.time() + 120.0
        while time.time() < deadline and proc.poll() is None:
            if ckpt_dir.is_dir() and any(ckpt_dir.glob("*.json")):
                proc.kill()  # SIGKILL: no handlers, no rescue snapshot
                killed = True
                break
            time.sleep(0.005)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert killed, "campaign finished before a checkpoint ever appeared"

    # Resume on the same store: cached units stay cached, the killed
    # unit restores its surviving periodic snapshot.
    status, store = run_campaign(spec, str(root))
    assert status.failed == 0
    assert status.executed + status.skipped == 2
    assert status.checkpoint_hits >= 1

    resumed_steps = [
        a["result"]["metrics"]["resumed_from_step"] for a in store.results()
    ]
    assert len(resumed_steps) == 2
    assert max(resumed_steps) > 0, "resume must not re-run from step 0"

    ref_status, ref_store = run_campaign(spec, str(tmp_path / "ref"))
    assert ref_status.failed == 0
    assert summary_json(build_summary(store)) == summary_json(
        build_summary(ref_store)
    )
