"""Two-run kernel characterization and analytic frequency recommendation."""

import pytest

from repro.core import (
    KernelCharacter,
    ManDynPolicy,
    StaticFrequencyPolicy,
    baseline_policy,
    characterize_functions,
    recommend_frequencies,
)
from repro.sph import run_instrumented
from repro.systems import Cluster, mini_hpc
from repro.tuner import tune_all_sph_functions

N = 450**3
CANDIDATES = [1410.0, 1305.0, 1200.0, 1110.0, 1005.0]


def _run(policy, steps=3):
    cluster = Cluster(mini_hpc(), 1)
    try:
        return run_instrumented(
            cluster, "SubsonicTurbulence", N, steps, policy=policy
        )
    finally:
        cluster.detach_management_library()


@pytest.fixture(scope="module")
def characters():
    ref = _run(baseline_policy(1410.0))
    low = _run(StaticFrequencyPolicy(1110.0))
    return characterize_functions(ref.report, low.report, 1410.0, 1110.0)


def test_kappa_separates_kernel_classes(characters):
    assert characters["MomentumEnergy"].kappa > 0.7
    assert characters["IADVelocityDivCurl"].kappa > 0.55
    for light in ("XMass", "NormalizationGradh", "DomainDecompAndSync",
                  "Timestep"):
        assert characters[light].kappa < 0.25, light


def test_estimates_within_physical_bounds(characters):
    for ch in characters.values():
        assert 0.0 <= ch.kappa <= 1.0
        assert 0.0 <= ch.idle_fraction <= 1.0


def test_predictions_match_third_run(characters):
    """The fitted model must predict an *unseen* clock's measurements."""
    from repro.core import per_function_metrics

    probe = _run(StaticFrequencyPolicy(1005.0))
    measured = per_function_metrics(probe.report)
    for fn, ch in characters.items():
        t_pred = ch.predict_time(1005.0)
        e_pred = ch.predict_energy(1005.0)
        assert t_pred == pytest.approx(measured[fn].time_s, rel=0.05), fn
        assert e_pred == pytest.approx(measured[fn].energy_j, rel=0.08), fn


def test_recommendations_match_kernel_tuner(characters):
    recommended = recommend_frequencies(characters, CANDIDATES)
    cluster = Cluster(mini_hpc(), 1)
    try:
        tuned = tune_all_sph_functions(
            cluster.gpus[0], N, CANDIDATES, iterations=1
        )
    finally:
        cluster.detach_management_library()
    # Two production runs reproduce the full tuner sweep's decisions
    # (within one clock bin on the near-tied compute kernels).
    for fn in tuned:
        assert abs(recommended[fn] - tuned[fn]) <= 105.0, fn


def test_recommended_mandyn_policy_works(characters):
    recommended = recommend_frequencies(characters, CANDIDATES)
    base = _run(baseline_policy(1410.0), steps=4)
    mandyn = _run(
        ManDynPolicy.from_tuning(recommended, default_mhz=1410.0), steps=4
    )
    assert mandyn.gpu_energy_j < 0.95 * base.gpu_energy_j
    assert mandyn.elapsed_s < 1.05 * base.elapsed_s


def test_character_input_validation(characters):
    ch = characters["MomentumEnergy"]
    with pytest.raises(ValueError):
        ch.predict_time(0.0)
    with pytest.raises(ValueError):
        ch.best_clock([])
    ref = _run(baseline_policy(1410.0), steps=1)
    with pytest.raises(ValueError):
        characterize_functions(ref.report, ref.report, 1110.0, 1410.0)


def test_kernel_character_predicts_reference_exactly():
    ch = KernelCharacter(
        function="F", kappa=0.5, idle_fraction=0.2, alpha=1.7,
        ref_freq_mhz=1410.0, ref_time_s=2.0, ref_energy_j=600.0,
    )
    assert ch.predict_time(1410.0) == pytest.approx(2.0)
    assert ch.predict_energy(1410.0) == pytest.approx(600.0)
    assert ch.predict_edp(1410.0) == pytest.approx(1200.0)
