"""Process backend: equivalence with local, parallel reduce, rank death.

The contract under test is the one the campaign layer relies on:
virtual-time results are **bit-identical** between the ``local`` and
``process`` backends (and at any ``pace_scale``), shared-memory array
reductions reproduce the serial fold to the last bit, and a killed rank
worker surfaces promptly as a transient :class:`RankDied` instead of a
hang.
"""

import functools
import os
import signal
import time

import numpy as np
import pytest

from repro.campaign.worker import classify_error
from repro.hardware import VirtualClock
from repro.mpi import RankDied, SimComm, make_backend
from repro.sph import NumericProblem, Simulation
from repro.sph.init import SedovConfig, make_sedov, make_sedov_eos
from repro.systems import Cluster, mini_hpc

N_RANKS = 8
NSIDE = 6
STEPS = 2


def _run_sedov(
    comm_backend,
    pace_scale=0.0,
    steps=STEPS,
    checkpoint_every=0,
    checkpoint_path=None,
    restore_from=None,
):
    """One seeded Sedov run; returns its complete virtual-state snapshot."""
    cfg = SedovConfig(nside=NSIDE, blast_energy=1.0, seed=11)
    particles = make_sedov(cfg)
    cluster = Cluster(mini_hpc(), N_RANKS, comm_backend=comm_backend)
    try:
        problem = NumericProblem(
            particles=particles,
            n_ranks=N_RANKS,
            eos=make_sedov_eos(cfg),
            box_size=cfg.box_size,
            skin=0.0,
        )
        sim = Simulation(
            cluster,
            "SedovBlast",
            n_particles_per_rank=particles.n / N_RANKS,
            numeric=problem,
            pace_scale=pace_scale,
        )
        result = sim.run(
            steps,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            restore_from=restore_from,
        )
        return {
            "clocks": [c.now for c in cluster.clocks],
            "dt_history": list(sim.dt_history),
            "gpu_energy_j": result.gpu_energy_j,
            "report": result.report.to_dict(),
        }
    finally:
        cluster.detach_management_library()


def test_backends_bit_identical_and_pacing_invariant():
    local = _run_sedov("local")
    process = _run_sedov("process")
    paced = _run_sedov("process", pace_scale=0.05)
    # Not approx-equal: the backends share every virtual-time code path,
    # so the runs must agree to the last bit, pacing included.
    assert process == local
    assert paced == local


def test_shared_memory_reduce_is_bit_exact():
    rng = np.random.default_rng(7)
    arrays = [rng.standard_normal(1500) * 1e3 for _ in range(4)]
    expected = functools.reduce(np.add, [a.copy() for a in arrays])
    backend = make_backend("process", 4)
    try:
        assert backend.can_reduce(arrays)
        out = backend.reduce_arrays([a.copy() for a in arrays])
        assert out.tobytes() == expected.tobytes()
    finally:
        backend.shutdown()


def test_simcomm_allreduce_matches_across_backends():
    rng = np.random.default_rng(3)
    arrays = [rng.standard_normal(600) for _ in range(4)]

    def reduce_with(name):
        clocks = [VirtualClock() for _ in range(4)]
        comm = SimComm(clocks, backend=make_backend(name, 4))
        try:
            return comm.allreduce([a.copy() for a in arrays])
        finally:
            comm.backend.shutdown()

    assert reduce_with("process").tobytes() == reduce_with("local").tobytes()


def test_killed_rank_raises_rank_died_not_hang():
    backend = make_backend("process", 2)
    try:
        backend.start()
        os.kill(backend.worker_pids()[0], signal.SIGKILL)
        t0 = time.perf_counter()
        with pytest.raises(RankDied) as excinfo:
            backend.pace([0.01, 0.01])
        assert time.perf_counter() - t0 < 30.0
        assert excinfo.value.rank == 0
        assert classify_error(excinfo.value) == "transient"
    finally:
        backend.shutdown()


def test_shutdown_idempotent_and_lazy_respawn():
    backend = make_backend("process", 2)
    backend.start()
    assert backend.started
    backend.shutdown()
    backend.shutdown()  # second teardown must be a no-op
    assert not backend.started
    # Lazy respawn: the next paced round brings a fresh team up.
    backend.pace([0.0, 0.0])
    assert backend.started
    backend.shutdown()


def test_checkpoint_roundtrip_across_backends(tmp_path):
    path = str(tmp_path / "sedov.ckpt")
    uninterrupted = _run_sedov("local", steps=3)
    # Write a checkpoint at step 2 under the process backend...
    _run_sedov("process", steps=3, checkpoint_every=2, checkpoint_path=path)
    # ...and finish the remaining step under the local backend: the
    # snapshot format is backend-independent, so the resumed run must
    # reproduce the uninterrupted one exactly.
    resumed = _run_sedov("local", steps=3, restore_from=path)
    assert resumed == uninterrupted


def test_state_dict_refuses_snapshot_with_dead_rank():
    cfg = SedovConfig(nside=NSIDE, blast_energy=1.0, seed=11)
    particles = make_sedov(cfg)
    cluster = Cluster(mini_hpc(), N_RANKS, comm_backend="process")
    try:
        problem = NumericProblem(
            particles=particles,
            n_ranks=N_RANKS,
            eos=make_sedov_eos(cfg),
            box_size=cfg.box_size,
            skin=0.0,
        )
        sim = Simulation(
            cluster,
            "SedovBlast",
            n_particles_per_rank=particles.n / N_RANKS,
            numeric=problem,
            pace_scale=0.01,
        )
        sim.initialize()
        sim.profiler.open_window()
        sim._run_step()
        backend = cluster.comm.backend
        assert backend.started
        os.kill(backend.worker_pids()[-1], signal.SIGKILL)
        with pytest.raises(RankDied):
            sim.state_dict(n_steps=2, steps_done=1)
    finally:
        cluster.detach_management_library()
