"""Periodic PMT sampling (dump mode)."""

import numpy as np
import pytest

from repro import nvml
from repro.hardware import KernelLaunch, SimulatedGpu, VirtualClock, a100_sxm4_80gb
from repro.pmt import PmtSampler, create


@pytest.fixture
def rig():
    clk = VirtualClock()
    gpu = SimulatedGpu(a100_sxm4_80gb(), clk)
    nvml.attach_devices([gpu])
    sensor = create("nvml", device_index=0)
    return clk, gpu, sensor


def test_sampler_takes_samples_at_period(rig):
    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    sampler.start()
    clk.advance(1.05)
    series = sampler.stop()
    # First immediate sample + 10 ticks inside [0, 1.05].
    assert len(series) == 11
    times = [s.timestamp_s for s in series]
    assert times == sorted(times)
    assert times[1] == pytest.approx(0.1)
    assert times[-1] == pytest.approx(1.0)


def test_sampler_power_matches_device_draw(rig):
    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.05)
    sampler.start()
    gpu.execute(KernelLaunch("K", flops=5e12, bytes_moved=0.0,
                             power_intensity=1.0))
    series = sampler.stop()
    # Interior samples during a full-power kernel read ~TDP.
    busy = [s.watts for s in series[2:-1]]
    assert len(busy) > 3
    assert np.allclose(busy, gpu.spec.max_power_w, rtol=1e-2)


def test_sampler_energy_is_consistent_with_counter(rig):
    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.2)
    sampler.start()
    gpu.execute(KernelLaunch("K", flops=2e12, bytes_moved=1e11,
                             power_intensity=0.8))
    clk.advance(0.5)
    series = sampler.stop()
    # Cumulative joules are monotone and end near the device counter.
    joules = [s.joules for s in series]
    assert all(b >= a for a, b in zip(joules, joules[1:]))
    assert joules[-1] <= gpu.energy_j + 1e-9
    assert joules[-1] > 0.9 * gpu.energy_j  # last tick close to the end


def test_sampler_interpolates_within_long_advances(rig):
    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    sampler.start()
    clk.advance(1.0)  # one advance crossing 10 ticks, idle power
    series = sampler.stop()
    idle_w = gpu.power_model.idle_power_w(gpu.current_clock_hz)
    for s in series[1:]:
        assert s.watts == pytest.approx(idle_w, rel=1e-6)


def test_sampler_lifecycle_errors(rig):
    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    with pytest.raises(RuntimeError):
        sampler.stop()
    sampler.start()
    with pytest.raises(RuntimeError):
        sampler.start()
    sampler.stop()
    with pytest.raises(ValueError):
        PmtSampler(sensor, clk, period_s=0.0)


def test_dump_roundtrip(tmp_path, rig):
    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    sampler.start()
    gpu.execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    sampler.stop()
    path = str(tmp_path / "pmt.dump")
    sampler.dump(path)
    loaded = PmtSampler.load_dump(path)
    assert len(loaded) == len(sampler.samples)
    assert loaded[-1].joules == pytest.approx(
        sampler.samples[-1].joules, abs=1e-5
    )


def test_dump_has_versioned_header_and_roundtrips_exactly(tmp_path, rig):
    import json

    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.07)
    sampler.start()
    gpu.execute(KernelLaunch("K", 3e12, 1e11, 0.9))
    clk.advance(0.31)
    sampler.stop()
    path = str(tmp_path / "pmt.dump")
    sampler.dump(path)

    lines = open(path, encoding="ascii").read().splitlines()
    assert lines[0].startswith("# {")
    header = json.loads(lines[0][1:].strip())
    assert header["schema"] == 1
    assert header["kind"] == "pmt-dump"
    assert header["columns"] == ["timestamp_s", "joules", "watts"]
    assert header["period_s"] == pytest.approx(0.07)

    # repr-formatted floats make the round trip bit-exact.
    assert PmtSampler.load_dump(path) == sampler.samples


def test_dump_load_rejects_future_schema(tmp_path, rig):
    import json

    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    sampler.start()
    clk.advance(0.2)
    sampler.stop()
    path = tmp_path / "pmt.dump"
    sampler.dump(str(path))
    lines = path.read_text(encoding="ascii").splitlines()
    header = json.loads(lines[0][1:].strip())
    header["schema"] = 99
    lines[0] = "# " + json.dumps(header)
    bad = tmp_path / "future.dump"
    bad.write_text("\n".join(lines) + "\n", encoding="ascii")
    with pytest.raises(ValueError):
        PmtSampler.load_dump(str(bad))


def test_load_dump_accepts_legacy_headerless_files(tmp_path):
    path = tmp_path / "legacy.dump"
    path.write_text(
        "# timestamp_s joules watts\n"
        "0.0 0.0 0.0\n"
        "0.1 25.0 250.0\n",
        encoding="ascii",
    )
    loaded = PmtSampler.load_dump(str(path))
    assert len(loaded) == 2
    assert loaded[1].watts == 250.0


def test_sampler_mirrors_samples_to_telemetry(rig):
    from repro.telemetry import TraceCollector

    clk, gpu, sensor = rig
    collector = TraceCollector()
    sampler = PmtSampler(
        sensor, clk, period_s=0.1, telemetry=collector, rank=3
    )
    sampler.start()
    gpu.execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    clk.advance(0.25)
    series = sampler.stop()
    counters = [c for c in collector.counters() if c.name == "power"]
    assert len(counters) == len(series)
    for event, sample in zip(counters, series):
        assert event.rank == 3
        assert event.ts_s == sample.timestamp_s
        assert event.values == {
            "watts": sample.watts, "joules": sample.joules
        }
    snap = collector.metrics.snapshot()
    assert snap["counters"]["counter_samples{name=power}"] == len(series)
    assert snap["gauges"]["last_power_joules{rank=3}"] == series[-1].joules


# -- resilience: failed reads, gaps, monotonicity ----------------------------


class _FlakySensor:
    """Scriptable sensor: perfect counter unless told to fail or skew.

    Integrates energy on its own clock subscription, like the device
    models do — construct it *before* the sampler so its counter is
    up to date when the sampler's listener reads it.
    """

    platform = "test"

    def __init__(self, clock, watts=100.0):
        self._clock = clock
        self._watts = watts
        self._joules = 0.0
        self.fail_now = False
        self.offset_j = 0.0
        clock.subscribe(self._integrate)

    def _integrate(self, t0, t1):
        self._joules += self._watts * (t1 - t0)

    def read(self):
        from repro.pmt import PowerReadError, State

        if self.fail_now:
            raise PowerReadError("injected sensor failure")
        return State(
            self._clock.now, self._joules + self.offset_j, self._watts
        )


def test_start_with_broken_sensor_does_not_wedge():
    from repro.pmt import PmtSampler, PowerReadError

    clk = VirtualClock()
    sensor = _FlakySensor(clk)
    sensor.fail_now = True
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    # Regression: the first read used to happen after _running was set,
    # leaving a failed start() wedged (start and stop both unusable).
    with pytest.raises(PowerReadError):
        sampler.start()
    assert not sampler.running
    with pytest.raises(RuntimeError):
        sampler.stop()  # never started
    sensor.fail_now = False
    sampler.start()  # recovers cleanly
    clk.advance(0.2)
    series = sampler.stop()
    assert len(series) == 3


def test_failed_reads_become_gaps_and_ticks_are_backfilled():
    from repro.pmt import PmtSampler

    clk = VirtualClock()
    sensor = _FlakySensor(clk, watts=100.0)
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    sampler.start()
    clk.advance(0.2)  # good: ticks 0.1, 0.2
    sensor.fail_now = True
    clk.advance(0.2)  # failed
    assert sampler.in_gap
    clk.advance(0.2)  # failed again: same gap
    sensor.fail_now = False
    clk.advance(0.2)  # recovery read at t=0.8 back-fills the gap
    series = sampler.stop()

    assert sampler.failed_reads == 2
    assert sampler.gaps == [(pytest.approx(0.2), pytest.approx(0.8))]
    assert not sampler.in_gap
    # The series stays on the sampling grid with no holes.
    times = [s.timestamp_s for s in series]
    assert times == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8])
    # Constant draw makes the linear back-fill exact.
    for s in series[1:]:
        assert s.joules == pytest.approx(100.0 * s.timestamp_s)
        assert s.watts == pytest.approx(100.0)


def test_monotonicity_guard_clamps_backwards_counter():
    from repro.pmt import PmtSampler

    clk = VirtualClock()
    sensor = _FlakySensor(clk, watts=100.0)
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    sampler.start()
    clk.advance(0.1)  # 10 J at t=0.1
    sensor.offset_j = -30.0  # counter appears to run backwards
    clk.advance(0.1)
    sensor.offset_j = 0.0
    clk.advance(0.1)
    series = sampler.stop()

    assert sampler.monotonicity_violations == 1
    joules = [s.joules for s in series]
    assert joules == sorted(joules)  # still monotone
    assert all(s.watts >= 0.0 for s in series)  # never negative power
    assert series[2].joules == pytest.approx(10.0)  # clamped, not -10


def test_gap_still_open_at_stop_is_closed_at_stop_time():
    from repro.pmt import PmtSampler

    clk = VirtualClock()
    sensor = _FlakySensor(clk)
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    sampler.start()
    sensor.fail_now = True
    clk.advance(0.5)  # the sensor never comes back
    series = sampler.stop()
    assert len(series) == 1  # just the immediate first sample
    assert sampler.gaps == [(pytest.approx(0.0), pytest.approx(0.5))]
    assert not sampler.in_gap


def test_power_gaps_are_visible_on_the_telemetry_faults_track():
    from repro.pmt import PmtSampler
    from repro.telemetry import TRACK_FAULTS, TraceCollector

    clk = VirtualClock()
    sensor = _FlakySensor(clk)
    collector = TraceCollector(clocks=[clk])
    sampler = PmtSampler(
        sensor, clk, period_s=0.1, telemetry=collector, rank=0
    )
    sampler.start()
    sensor.fail_now = True
    clk.advance(0.2)
    sensor.fail_now = False
    clk.advance(0.2)
    sampler.stop()
    spans = [
        e for e in collector.events
        if e.track == TRACK_FAULTS and e.name == "power-gap"
    ]
    assert len(spans) == 1
    snap = collector.metrics.snapshot()
    assert snap["counters"]["power_read_gaps{rank=0}"] == 1
