"""Periodic PMT sampling (dump mode)."""

import numpy as np
import pytest

from repro import nvml
from repro.hardware import KernelLaunch, SimulatedGpu, VirtualClock, a100_sxm4_80gb
from repro.pmt import PmtSampler, create


@pytest.fixture
def rig():
    clk = VirtualClock()
    gpu = SimulatedGpu(a100_sxm4_80gb(), clk)
    nvml.attach_devices([gpu])
    sensor = create("nvml", device_index=0)
    return clk, gpu, sensor


def test_sampler_takes_samples_at_period(rig):
    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    sampler.start()
    clk.advance(1.05)
    series = sampler.stop()
    # First immediate sample + 10 ticks inside [0, 1.05].
    assert len(series) == 11
    times = [s.timestamp_s for s in series]
    assert times == sorted(times)
    assert times[1] == pytest.approx(0.1)
    assert times[-1] == pytest.approx(1.0)


def test_sampler_power_matches_device_draw(rig):
    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.05)
    sampler.start()
    gpu.execute(KernelLaunch("K", flops=5e12, bytes_moved=0.0,
                             power_intensity=1.0))
    series = sampler.stop()
    # Interior samples during a full-power kernel read ~TDP.
    busy = [s.watts for s in series[2:-1]]
    assert len(busy) > 3
    assert np.allclose(busy, gpu.spec.max_power_w, rtol=1e-2)


def test_sampler_energy_is_consistent_with_counter(rig):
    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.2)
    sampler.start()
    gpu.execute(KernelLaunch("K", flops=2e12, bytes_moved=1e11,
                             power_intensity=0.8))
    clk.advance(0.5)
    series = sampler.stop()
    # Cumulative joules are monotone and end near the device counter.
    joules = [s.joules for s in series]
    assert all(b >= a for a, b in zip(joules, joules[1:]))
    assert joules[-1] <= gpu.energy_j + 1e-9
    assert joules[-1] > 0.9 * gpu.energy_j  # last tick close to the end


def test_sampler_interpolates_within_long_advances(rig):
    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    sampler.start()
    clk.advance(1.0)  # one advance crossing 10 ticks, idle power
    series = sampler.stop()
    idle_w = gpu.power_model.idle_power_w(gpu.current_clock_hz)
    for s in series[1:]:
        assert s.watts == pytest.approx(idle_w, rel=1e-6)


def test_sampler_lifecycle_errors(rig):
    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    with pytest.raises(RuntimeError):
        sampler.stop()
    sampler.start()
    with pytest.raises(RuntimeError):
        sampler.start()
    sampler.stop()
    with pytest.raises(ValueError):
        PmtSampler(sensor, clk, period_s=0.0)


def test_dump_roundtrip(tmp_path, rig):
    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    sampler.start()
    gpu.execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    sampler.stop()
    path = str(tmp_path / "pmt.dump")
    sampler.dump(path)
    loaded = PmtSampler.load_dump(path)
    assert len(loaded) == len(sampler.samples)
    assert loaded[-1].joules == pytest.approx(
        sampler.samples[-1].joules, abs=1e-5
    )


def test_dump_has_versioned_header_and_roundtrips_exactly(tmp_path, rig):
    import json

    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.07)
    sampler.start()
    gpu.execute(KernelLaunch("K", 3e12, 1e11, 0.9))
    clk.advance(0.31)
    sampler.stop()
    path = str(tmp_path / "pmt.dump")
    sampler.dump(path)

    lines = open(path, encoding="ascii").read().splitlines()
    assert lines[0].startswith("# {")
    header = json.loads(lines[0][1:].strip())
    assert header["schema"] == 1
    assert header["kind"] == "pmt-dump"
    assert header["columns"] == ["timestamp_s", "joules", "watts"]
    assert header["period_s"] == pytest.approx(0.07)

    # repr-formatted floats make the round trip bit-exact.
    assert PmtSampler.load_dump(path) == sampler.samples


def test_dump_load_rejects_future_schema(tmp_path, rig):
    import json

    clk, gpu, sensor = rig
    sampler = PmtSampler(sensor, clk, period_s=0.1)
    sampler.start()
    clk.advance(0.2)
    sampler.stop()
    path = tmp_path / "pmt.dump"
    sampler.dump(str(path))
    lines = path.read_text(encoding="ascii").splitlines()
    header = json.loads(lines[0][1:].strip())
    header["schema"] = 99
    lines[0] = "# " + json.dumps(header)
    bad = tmp_path / "future.dump"
    bad.write_text("\n".join(lines) + "\n", encoding="ascii")
    with pytest.raises(ValueError):
        PmtSampler.load_dump(str(bad))


def test_load_dump_accepts_legacy_headerless_files(tmp_path):
    path = tmp_path / "legacy.dump"
    path.write_text(
        "# timestamp_s joules watts\n"
        "0.0 0.0 0.0\n"
        "0.1 25.0 250.0\n",
        encoding="ascii",
    )
    loaded = PmtSampler.load_dump(str(path))
    assert len(loaded) == 2
    assert loaded[1].watts == 250.0


def test_sampler_mirrors_samples_to_telemetry(rig):
    from repro.telemetry import TraceCollector

    clk, gpu, sensor = rig
    collector = TraceCollector()
    sampler = PmtSampler(
        sensor, clk, period_s=0.1, telemetry=collector, rank=3
    )
    sampler.start()
    gpu.execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    clk.advance(0.25)
    series = sampler.stop()
    counters = [c for c in collector.counters() if c.name == "power"]
    assert len(counters) == len(series)
    for event, sample in zip(counters, series):
        assert event.rank == 3
        assert event.ts_s == sample.timestamp_s
        assert event.values == {
            "watts": sample.watts, "joules": sample.joules
        }
    snap = collector.metrics.snapshot()
    assert snap["counters"]["counter_samples{name=power}"] == len(series)
    assert snap["gauges"]["last_power_joules{rank=3}"] == series[-1].joules
