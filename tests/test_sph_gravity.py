"""Barnes-Hut gravity: accuracy vs direct summation, tree invariants."""

import numpy as np
import pytest

from repro.sph import ParticleSet
from repro.sph.init import EvrardConfig, make_evrard
from repro.sph.physics import (
    GravityConfig,
    build_gravity_tree,
    compute_gravity,
    compute_gravity_direct,
    potential_energy,
)


def _sphere(n=300, seed=0):
    return make_evrard(EvrardConfig(n_particles=n, seed=seed))


def test_tree_mass_equals_total_mass():
    p = _sphere(200)
    root = build_gravity_tree(p)
    assert root.mass == pytest.approx(p.total_mass())


def test_tree_com_matches_direct():
    p = _sphere(200)
    root = build_gravity_tree(p)
    com = np.average(p.positions(), axis=0, weights=p.m)
    assert np.allclose(root.com, com, atol=1e-12)


def test_bh_matches_direct_summation():
    p = _sphere(300, seed=1)
    cfg = GravityConfig(theta=0.4, softening=0.02)
    bh = compute_gravity(p, cfg)
    direct = compute_gravity_direct(p, cfg)
    norm = np.sqrt(np.sum(direct**2, axis=1))
    err = np.sqrt(np.sum((bh - direct) ** 2, axis=1)) / np.maximum(
        norm, 1e-12
    )
    assert np.median(err) < 0.02
    assert np.percentile(err, 95) < 0.10


def test_smaller_theta_is_more_accurate():
    p = _sphere(250, seed=2)
    direct = compute_gravity_direct(p, GravityConfig(softening=0.02))
    errs = []
    for theta in (0.9, 0.3):
        bh = compute_gravity(p, GravityConfig(theta=theta, softening=0.02))
        errs.append(
            float(np.mean(np.sqrt(np.sum((bh - direct) ** 2, axis=1))))
        )
    assert errs[1] < errs[0]


def test_two_body_force_is_newtonian():
    p = ParticleSet(
        x=np.array([0.0, 1.0]), y=np.zeros(2), z=np.zeros(2),
        vx=np.zeros(2), vy=np.zeros(2), vz=np.zeros(2),
        m=np.array([1.0, 2.0]), h=np.full(2, 0.1), u=np.ones(2),
    )
    cfg = GravityConfig(softening=0.0, G=1.0)
    acc = compute_gravity(p, cfg)
    # a_0 = G m_1 / r^2 toward +x; a_1 = G m_0 / r^2 toward -x.
    assert acc[0, 0] == pytest.approx(2.0, rel=1e-9)
    assert acc[1, 0] == pytest.approx(-1.0, rel=1e-9)
    # Newton's third law: momentum rate sums to zero.
    assert p.m[0] * acc[0, 0] + p.m[1] * acc[1, 0] == pytest.approx(0.0)


def test_gravity_acceleration_points_inward_for_sphere():
    p = _sphere(400, seed=3)
    acc = compute_gravity(p, GravityConfig(theta=0.5, softening=0.02))
    pos = p.positions()
    com = np.average(pos, axis=0, weights=p.m)
    radial = np.sum((pos - com) * acc, axis=1)
    # The vast majority of particles feel inward pull.
    assert np.mean(radial < 0) > 0.95


def test_potential_energy_negative_and_scales():
    p = _sphere(150, seed=4)
    e1 = potential_energy(p, GravityConfig(softening=0.01))
    assert e1 < 0
    # Evrard sphere: E_pot ~ -0.6 G M^2 / R for rho ~ 1/r... exact value
    # for this profile is -2/3; sampled estimate should be close.
    assert e1 == pytest.approx(-2.0 / 3.0, rel=0.15)


def test_empty_particle_set():
    p = ParticleSet.zeros(0)
    assert compute_gravity(p).shape == (0, 3)


def test_coincident_particles_stay_finite():
    p = ParticleSet(
        x=np.zeros(3), y=np.zeros(3), z=np.zeros(3),
        vx=np.zeros(3), vy=np.zeros(3), vz=np.zeros(3),
        m=np.ones(3), h=np.full(3, 0.1), u=np.ones(3),
    )
    acc = compute_gravity(p, GravityConfig(softening=0.1))
    assert np.all(np.isfinite(acc))
