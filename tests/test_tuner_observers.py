"""Tuner observers measured directly against device ground truth."""

import pytest

from repro.hardware import KernelLaunch, SimulatedGpu, VirtualClock, a100_sxm4_80gb
from repro.tuner import (
    EnergyObserver,
    PowerObserver,
    TimeObserver,
    default_observers,
)


@pytest.fixture
def gpu():
    return SimulatedGpu(a100_sxm4_80gb(), VirtualClock())


KERNEL = KernelLaunch("K", flops=1e12, bytes_moved=1e11, power_intensity=1.0)


def _observe(gpu, observer, iterations=3):
    for _ in range(iterations):
        observer.before_start(gpu)
        gpu.execute(KERNEL)
        observer.after_finish(gpu)
    return observer.get_results()


def test_time_observer_averages_duration(gpu):
    results = _observe(gpu, TimeObserver())
    expected = gpu.perf_model.duration(KERNEL, gpu.current_clock_hz)
    assert results["time"] == pytest.approx(expected, rel=1e-9)


def test_energy_observer_matches_counter_delta(gpu):
    e0 = gpu.energy_j
    results = _observe(gpu, EnergyObserver())
    assert results["energy"] == pytest.approx(
        (gpu.energy_j - e0) / 3.0, rel=1e-9
    )


def test_power_observer_reads_busy_power(gpu):
    results = _observe(gpu, PowerObserver())
    assert results["power"] == pytest.approx(
        gpu.spec.max_power_w, rel=1e-6
    )


def test_observers_before_any_iteration_return_zero(gpu):
    assert TimeObserver().get_results() == {"time": 0.0}
    assert EnergyObserver().get_results() == {"energy": 0.0}
    assert PowerObserver().get_results() == {"power": 0.0}


def test_default_observer_set(gpu):
    observers = default_observers()
    kinds = {type(o).__name__ for o in observers}
    assert kinds == {"TimeObserver", "EnergyObserver", "PowerObserver"}
    merged = {}
    for o in observers:
        _observe(gpu, o, iterations=1)
        merged.update(o.get_results())
    assert merged["time"] > 0
    assert merged["energy"] == pytest.approx(
        merged["power"] * merged["time"], rel=1e-6
    )
