"""VirtualClock semantics: monotonicity, listeners, exact integration."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware import ClockError, VirtualClock


def test_clock_starts_at_zero_by_default():
    assert VirtualClock().now == 0.0


def test_clock_advances_and_returns_new_time():
    clk = VirtualClock()
    assert clk.advance(1.5) == 1.5
    assert clk.now == 1.5


def test_advance_to_absolute_time():
    clk = VirtualClock(start=2.0)
    clk.advance_to(5.0)
    assert clk.now == 5.0


def test_zero_advance_is_noop_and_skips_listeners():
    clk = VirtualClock()
    calls = []
    clk.subscribe(lambda a, b: calls.append((a, b)))
    clk.advance(0.0)
    assert calls == []


def test_negative_advance_rejected():
    clk = VirtualClock()
    with pytest.raises(ClockError):
        clk.advance(-0.1)


def test_advance_to_backwards_rejected():
    clk = VirtualClock(start=3.0)
    with pytest.raises(ClockError):
        clk.advance_to(1.0)


def test_listeners_receive_interval_endpoints():
    clk = VirtualClock()
    seen = []
    clk.subscribe(lambda t0, t1: seen.append((t0, t1)))
    clk.advance(1.0)
    clk.advance(0.5)
    assert seen == [(0.0, 1.0), (1.0, 1.5)]


def test_listener_fires_before_now_updates():
    clk = VirtualClock()
    observed = []
    clk.subscribe(lambda t0, t1: observed.append(clk.now))
    clk.advance(1.0)
    assert observed == [0.0]


def test_duplicate_subscription_rejected():
    clk = VirtualClock()
    fn = lambda a, b: None
    clk.subscribe(fn)
    with pytest.raises(ClockError):
        clk.subscribe(fn)


def test_unsubscribe_stops_callbacks():
    clk = VirtualClock()
    calls = []
    fn = lambda a, b: calls.append(1)
    clk.subscribe(fn)
    clk.advance(1.0)
    clk.unsubscribe(fn)
    clk.advance(1.0)
    assert len(calls) == 1


def test_unsubscribe_unknown_listener_raises():
    clk = VirtualClock()
    with pytest.raises(ClockError):
        clk.unsubscribe(lambda a, b: None)


def test_reentrant_advance_rejected():
    clk = VirtualClock()

    def reenter(t0, t1):
        clk.advance(1.0)

    clk.subscribe(reenter)
    with pytest.raises(ClockError):
        clk.advance(1.0)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
def test_clock_is_monotone_under_any_advance_sequence(dts):
    clk = VirtualClock()
    last = clk.now
    for dt in dts:
        clk.advance(dt)
        assert clk.now >= last
        last = clk.now


@given(st.lists(st.floats(min_value=1e-9, max_value=1e3), min_size=1, max_size=30))
def test_listener_intervals_tile_the_timeline(dts):
    clk = VirtualClock()
    intervals = []
    clk.subscribe(lambda a, b: intervals.append((a, b)))
    for dt in dts:
        clk.advance(dt)
    # Intervals are contiguous and cover [0, now].
    assert intervals[0][0] == 0.0
    for (a0, b0), (a1, b1) in zip(intervals, intervals[1:]):
        assert b0 == a1
    assert intervals[-1][1] == pytest.approx(clk.now)
