"""Property-based tests on SPH numerics invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sph import ParticleSet, default_kernel, find_neighbors
from repro.sph.eos import IdealGasEOS
from repro.sph.physics import (
    compute_density_gradh,
    compute_iad_divv_curlv,
    compute_momentum_energy,
    compute_xmass,
    signal_velocity,
)


def _random_gas(seed: int, n: int = 60) -> ParticleSet:
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, 1, size=(n, 3))
    return ParticleSet(
        x=pos[:, 0], y=pos[:, 1], z=pos[:, 2],
        vx=rng.normal(0, 0.3, n), vy=rng.normal(0, 0.3, n),
        vz=rng.normal(0, 0.3, n),
        m=rng.uniform(0.5, 2.0, n) / n,
        h=rng.uniform(0.12, 0.25, n),
        u=rng.uniform(0.5, 2.0, n),
    )


def _pipeline(p: ParticleSet):
    kernel = default_kernel()
    nlist = find_neighbors(p, box_size=1.0)
    compute_xmass(p, nlist, kernel, 1.0)
    compute_density_gradh(p, nlist, kernel, 1.0)
    IdealGasEOS().apply(p)
    compute_iad_divv_curlv(p, nlist, kernel, 1.0)
    return nlist, kernel


@given(st.integers(min_value=0, max_value=60))
@settings(max_examples=15, deadline=None)
def test_density_pressure_positive_for_any_configuration(seed):
    p = _random_gas(seed)
    _pipeline(p)
    assert np.all(p.rho > 0)
    assert np.all(p.p > 0)
    assert np.all(p.c > 0)
    assert np.all(np.isfinite(p.rho))


@given(st.integers(min_value=0, max_value=60))
@settings(max_examples=10, deadline=None)
def test_momentum_conservation_for_any_configuration(seed):
    p = _random_gas(seed)
    nlist, kernel = _pipeline(p)
    compute_momentum_energy(p, nlist, kernel, box_size=1.0)
    net = np.array(
        [np.sum(p.m * p.ax), np.sum(p.m * p.ay), np.sum(p.m * p.az)]
    )
    scale = np.sum(p.m * np.abs(p.ax)) + np.sum(p.m * np.abs(p.ay)) + 1e-30
    assert np.all(np.abs(net) / scale < 1e-8)


@given(st.integers(min_value=0, max_value=60))
@settings(max_examples=10, deadline=None)
def test_signal_velocity_dominates_sound_speed(seed):
    p = _random_gas(seed)
    nlist, _ = _pipeline(p)
    vsig = signal_velocity(p, nlist, box_size=1.0)
    assert np.all(vsig >= p.c - 1e-12)
    assert np.all(np.isfinite(vsig))


@given(st.integers(min_value=0, max_value=60))
@settings(max_examples=10, deadline=None)
def test_galilean_invariance_of_accelerations(seed):
    """Boosting every velocity by a constant must not change dv/dt."""
    p1 = _random_gas(seed)
    p2 = _random_gas(seed)
    p2.vx += 5.0
    p2.vy -= 3.0
    for p in (p1, p2):
        nlist, kernel = _pipeline(p)
        compute_momentum_energy(p, nlist, kernel, box_size=1.0)
    assert np.allclose(p1.ax, p2.ax, atol=1e-10)
    assert np.allclose(p1.ay, p2.ay, atol=1e-10)
    assert np.allclose(p1.du, p2.du, atol=1e-10)


@given(
    st.integers(min_value=0, max_value=30),
    st.floats(min_value=0.5, max_value=3.0),
)
@settings(max_examples=10, deadline=None)
def test_mass_scaling_scales_density_linearly(seed, factor):
    p1 = _random_gas(seed)
    p2 = _random_gas(seed)
    p2.m *= factor
    _pipeline(p1)
    _pipeline(p2)
    assert np.allclose(p2.rho, factor * p1.rho, rtol=1e-10)
