"""Analysis helpers over gathered energy reports (card-share mapping)."""

import pytest

from repro.core import (
    CardShareGpuSource,
    DEVICE_CLASSES,
    device_breakdown_percent,
    function_share_percent,
    make_gpu_sources,
    normalize_series,
    per_function_metrics,
    run_metrics,
    top_functions,
)
from repro.core.edp import Metrics
from repro.core.energy import EnergyReport, FunctionEnergyRecord, RankEnergyReport
from repro.hardware import KernelLaunch


def _fake_report():
    ranks = []
    for r in range(2):
        rec_a = FunctionEnergyRecord(function="MomentumEnergy")
        rec_a.calls = 10
        rec_a.time_s = 4.0
        rec_a.device_j = {"GPU": 800.0, "CPU": 100.0, "Memory": 40.0, "Other": 60.0}
        rec_b = FunctionEnergyRecord(function="XMass")
        rec_b.calls = 10
        rec_b.time_s = 1.0
        rec_b.device_j = {"GPU": 200.0, "CPU": 25.0, "Memory": 10.0, "Other": 15.0}
        ranks.append(
            RankEnergyReport(
                rank=r,
                records={"MomentumEnergy": rec_a, "XMass": rec_b},
                window_start_s=0.0,
                window_end_s=5.0,
                window_gpu_j=1000.0,
            )
        )
    return EnergyReport(ranks=ranks)


def test_device_breakdown_sums_to_100():
    report = _fake_report()
    pct = device_breakdown_percent(report)
    assert set(pct) == set(DEVICE_CLASSES)
    assert sum(pct.values()) == pytest.approx(100.0)
    assert pct["GPU"] == pytest.approx(1000.0 / 1250.0 * 100.0)


def test_function_share_per_device():
    shares = function_share_percent(_fake_report(), device="GPU")
    assert shares["MomentumEnergy"] == pytest.approx(80.0)
    assert shares["XMass"] == pytest.approx(20.0)
    with pytest.raises(ValueError):
        function_share_percent(_fake_report(), device="TPU")


def test_top_functions_ranked():
    top = top_functions(_fake_report(), k=1)
    assert top[0][0] == "MomentumEnergy"


def test_run_metrics_total_vs_gpu_only():
    report = _fake_report()
    total = run_metrics(report)
    gpu = run_metrics(report, gpu_only=True)
    assert total.time_s == 5.0
    assert gpu.energy_j == 2000.0
    assert total.energy_j == 2500.0


def test_per_function_metrics_averages_rank_time():
    m = per_function_metrics(_fake_report())
    assert m["MomentumEnergy"].time_s == pytest.approx(4.0)
    assert m["MomentumEnergy"].energy_j == pytest.approx(1600.0)


def test_normalize_series():
    series = {
        "1410": Metrics(time_s=1.0, energy_j=100.0),
        "1005": Metrics(time_s=1.2, energy_j=80.0),
    }
    norm = normalize_series(series, "1410")
    assert norm["1410"] == (1.0, 1.0, 1.0)
    t, e, edp = norm["1005"]
    assert t == pytest.approx(1.2)
    assert e == pytest.approx(0.8)
    assert edp == pytest.approx(0.96)
    with pytest.raises(KeyError):
        normalize_series(series, "missing")


def test_card_share_source_splits_card_energy(lumi_cluster):
    sources = make_gpu_sources(lumi_cluster)
    assert all(isinstance(s, CardShareGpuSource) for s in sources)
    gpus = lumi_cluster.gpus
    gpus[0].execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    lumi_cluster.comm.barrier()
    # Ranks 0 and 1 share card 0; each is attributed half the card.
    card_total = gpus[0].energy_j + gpus[1].energy_j
    assert sources[0].read_j() == pytest.approx(card_total / 2.0)
    assert sources[1].read_j() == pytest.approx(card_total / 2.0)
    # The share is inexact per GCD (the section IV-A caveat)...
    assert sources[0].read_j() != pytest.approx(gpus[0].energy_j, rel=0.01)
    # ...but exact for the card when summed.
    assert sources[0].read_j() + sources[1].read_j() == pytest.approx(
        card_total
    )


def test_nvidia_sources_are_exact(cscs_cluster):
    sources = make_gpu_sources(cscs_cluster)
    gpu = cscs_cluster.gpus[3]
    gpu.execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    assert sources[3].read_j() == pytest.approx(gpu.energy_j)


def test_card_share_validation(lumi_cluster):
    with pytest.raises(ValueError):
        CardShareGpuSource(lumi_cluster.nodes[0], 0, 0)
