"""PMT interface and backends (NVML, ROCm, RAPL wrap-around, Cray, dummy)."""

import pytest

from repro import nvml, pmt, rocm
from repro.craypm import PmCounters
from repro.hardware import (
    ComputeNode,
    KernelLaunch,
    NodePowerSpec,
    SimulatedCpu,
    SimulatedGpu,
    VirtualClock,
    a100_sxm4_80gb,
    epyc_7713,
    mi250x_gcd,
)
from repro.pmt import PMT, RaplPMT, State, create
from repro.pmt.rapl_backend import RAPL_ENERGY_UNIT_J


def test_state_diff_helpers():
    a = State(timestamp_s=1.0, joules=100.0)
    b = State(timestamp_s=3.0, joules=400.0)
    assert PMT.seconds(a, b) == 2.0
    assert PMT.joules(a, b) == 300.0
    assert PMT.watts(a, b) == 150.0
    assert PMT.watts(a, a) == 0.0


def test_create_unknown_platform():
    with pytest.raises(ValueError):
        create("quantum")


def test_dummy_backend_zero_but_timed():
    clk = VirtualClock()
    sensor = create("dummy", clock=clk)
    s0 = sensor.read()
    clk.advance(2.0)
    s1 = sensor.read()
    assert PMT.seconds(s0, s1) == 2.0
    assert PMT.joules(s0, s1) == 0.0


def test_nvml_backend_measures_kernel():
    clk = VirtualClock()
    gpu = SimulatedGpu(a100_sxm4_80gb(), clk)
    nvml.attach_devices([gpu])
    sensor = create("nvml", device_index=0)
    begin = sensor.read()
    gpu.execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    end = sensor.read()
    assert PMT.joules(begin, end) == pytest.approx(gpu.energy_j, rel=1e-3)
    assert PMT.seconds(begin, end) > 0


def test_nvml_backend_measure_context():
    clk = VirtualClock()
    gpu = SimulatedGpu(a100_sxm4_80gb(), clk)
    nvml.attach_devices([gpu])
    sensor = create("nvml", device_index=0)
    with sensor.measure() as m:
        gpu.execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    assert m.joules > 0
    assert m.watts == pytest.approx(m.joules / m.seconds)


def test_rocm_backend_card_share():
    clk = VirtualClock()
    gcds = [SimulatedGpu(mi250x_gcd(), clk, index=i) for i in range(2)]
    rocm.attach_devices(gcds)
    raw = create("rocm", device_index=0)
    shared = create("rocm", device_index=0, card_share=True)
    gcds[0].execute(KernelLaunch("K", 1e12, 0.0, 1.0))
    assert raw.read().joules == pytest.approx(2.0 * shared.read().joules)


def test_rapl_backend_unwraps_counter():
    clk = VirtualClock()
    cpu = SimulatedCpu(epyc_7713(), clk)
    sensor = RaplPMT(cpu)
    # One wrap is ~65.5 kJ; at ~110 W idle-ish that's ~600 s. Advance
    # in sub-wrap chunks past several wraps and check continuity.
    total_expected = 0.0
    last = sensor.read()
    for _ in range(30):
        clk.advance(100.0)
        now = sensor.read()
        delta = PMT.joules(last, now)
        assert delta >= 0.0
        total_expected += delta
        last = now
    assert total_expected == pytest.approx(cpu.energy_j, abs=1.0)
    assert cpu.energy_j > sensor.wrap_joules  # we actually wrapped


def test_rapl_raw_counter_wraps():
    clk = VirtualClock()
    cpu = SimulatedCpu(epyc_7713(), clk)
    from repro.pmt.rapl_backend import RAPL_COUNTER_WRAP, RaplCounter

    counter = RaplCounter(cpu)
    clk.advance(1000.0)
    assert 0 <= counter.read_raw() < RAPL_COUNTER_WRAP


def test_likwid_alias_is_rapl():
    clk = VirtualClock()
    cpu = SimulatedCpu(epyc_7713(), clk)
    sensor = create("likwid", cpu=cpu)
    assert isinstance(sensor, RaplPMT)


def test_cray_backend_reads_pm_counters():
    clk = VirtualClock()
    gpus = [SimulatedGpu(a100_sxm4_80gb(), clk)]
    node = ComputeNode("n0", clk, epyc_7713(), NodePowerSpec(75, 235), gpus)
    pm = PmCounters(node)
    sensor = create("cray", counters=pm, counter="energy", clock=clk)
    s0 = sensor.read()
    clk.advance(1.0)
    s1 = sensor.read()
    assert PMT.joules(s0, s1) > 0


def test_cray_backend_invalid_counter():
    clk = VirtualClock()
    gpus = [SimulatedGpu(a100_sxm4_80gb(), clk)]
    node = ComputeNode("n0", clk, epyc_7713(), NodePowerSpec(75, 235), gpus)
    pm = PmCounters(node)
    with pytest.raises(FileNotFoundError):
        create("cray", counters=pm, counter="bogus_energy", clock=clk)
