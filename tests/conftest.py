"""Shared fixtures: clean device registries, small clusters, particles."""

from __future__ import annotations

import numpy as np
import pytest

from repro import levelzero, nvml, rocm
from repro.hardware import SimulatedGpu, VirtualClock, a100_sxm4_80gb, mi250x_gcd
from repro.sph.init import TurbulenceConfig, make_turbulence
from repro.systems import Cluster, cscs_a100, lumi_g, mini_hpc


@pytest.fixture(autouse=True)
def clean_device_registries():
    """Detach NVML/ROCm device registries around every test."""
    yield
    nvml.detach_devices()
    rocm.detach_devices()
    levelzero.detach_devices()


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def a100(clock):
    return SimulatedGpu(a100_sxm4_80gb(), clock)


@pytest.fixture
def gcd(clock):
    return SimulatedGpu(mi250x_gcd(), clock)


@pytest.fixture
def mini_cluster():
    cluster = Cluster(mini_hpc(), 1)
    yield cluster
    cluster.detach_management_library()


@pytest.fixture
def cscs_cluster():
    cluster = Cluster(cscs_a100(), 8)
    yield cluster
    cluster.detach_management_library()


@pytest.fixture
def lumi_cluster():
    cluster = Cluster(lumi_g(), 16)
    yield cluster
    cluster.detach_management_library()


@pytest.fixture(scope="session")
def small_turbulence():
    """A small, reusable turbulence particle set (session-scoped; copy
    before mutating)."""
    return make_turbulence(TurbulenceConfig(nside=10, seed=7))


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
