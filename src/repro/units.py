"""Physical units and formatting helpers.

All quantities in the library are carried in SI base units:

* time        — seconds (simulated time, never wall clock)
* frequency   — hertz (GPU clocks are usually quoted in MHz; helpers below)
* power       — watts
* energy      — joules

The helpers here keep unit conversions in one place so that magic
constants like ``1e6`` never appear inline in device models or
benchmarks.
"""

from __future__ import annotations

#: One megahertz in hertz.
MHZ = 1.0e6

#: One gigahertz in hertz.
GHZ = 1.0e9

#: One kilojoule in joules.
KILOJOULE = 1.0e3

#: One megajoule in joules.
MEGAJOULE = 1.0e6

#: One millisecond in seconds.
MILLISECOND = 1.0e-3

#: One microsecond in seconds.
MICROSECOND = 1.0e-6

#: One gigabyte in bytes.
GIB = float(1 << 30)


def mhz(value: float) -> float:
    """Convert a frequency quoted in MHz to Hz."""
    return value * MHZ


def to_mhz(hz: float) -> float:
    """Convert a frequency in Hz to MHz."""
    return hz / MHZ


def megajoules(joules: float) -> float:
    """Convert joules to megajoules."""
    return joules / MEGAJOULE


def format_energy(joules: float) -> str:
    """Human-readable energy string with an adaptive unit.

    >>> format_energy(1234.0)
    '1.23 kJ'
    """
    a = abs(joules)
    if a >= MEGAJOULE:
        return f"{joules / MEGAJOULE:.2f} MJ"
    if a >= KILOJOULE:
        return f"{joules / KILOJOULE:.2f} kJ"
    return f"{joules:.2f} J"


def format_time(seconds: float) -> str:
    """Human-readable duration string with an adaptive unit.

    >>> format_time(0.25)
    '250.0 ms'
    """
    a = abs(seconds)
    if a >= 60.0:
        return f"{seconds / 60.0:.2f} min"
    if a >= 1.0:
        return f"{seconds:.2f} s"
    if a >= MILLISECOND:
        return f"{seconds / MILLISECOND:.1f} ms"
    return f"{seconds / MICROSECOND:.1f} us"


def format_frequency(hz: float) -> str:
    """Human-readable frequency string (always MHz, as in the paper)."""
    return f"{to_mhz(hz):.0f} MHz"
