"""rocm-smi-style interface over simulated AMD GCDs (DESIGN.md §2)."""

from .smi import (
    RSMI_CLK_TYPE_MEM,
    RSMI_CLK_TYPE_SYS,
    RSMI_STATUS_INIT_ERROR,
    RSMI_STATUS_INVALID_ARGS,
    RSMI_STATUS_NOT_SUPPORTED,
    RSMI_STATUS_SUCCESS,
    RocmSmiError,
    attach_devices,
    detach_devices,
    gcds_per_card,
    rsmi_dev_energy_count_get,
    rsmi_dev_gpu_clk_freq_get,
    rsmi_dev_gpu_clk_freq_reset,
    rsmi_dev_gpu_clk_freq_set,
    rsmi_dev_name_get,
    rsmi_dev_power_ave_get,
    rsmi_init,
    rsmi_num_monitor_devices,
    rsmi_shut_down,
)
