"""rocm-smi-style interface over simulated AMD GCDs.

On an MI250X, ROCm SMI enumerates each GCD (half card) as a separate
device, but the power/energy sensors sit on the *card*: both GCDs of a
card report the card-level value. This is exactly the measurement
discrepancy the paper works around in its analysis (§III-B, §IV-A) —
summing naive per-device readings over all ranks double counts card
energy. The shim reproduces that behaviour faithfully.

Unit conventions follow the real library: power in microwatts, energy
counters in microjoules, clocks in Hz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..hardware.gpu import SimulatedGpu

RSMI_STATUS_SUCCESS = 0
RSMI_STATUS_INVALID_ARGS = 1
RSMI_STATUS_NOT_SUPPORTED = 2
RSMI_STATUS_PERMISSION = 4
RSMI_STATUS_INIT_ERROR = 8
RSMI_STATUS_BUSY = 16
RSMI_STATUS_AMDGPU_RESTART_ERR = 19

#: rsmi_clk_type_t subset
RSMI_CLK_TYPE_SYS = 0
RSMI_CLK_TYPE_MEM = 4

_STATUS_STRINGS = {
    RSMI_STATUS_SUCCESS: "Success",
    RSMI_STATUS_INVALID_ARGS: "Invalid Arguments",
    RSMI_STATUS_NOT_SUPPORTED: "Not Supported",
    RSMI_STATUS_PERMISSION: "Insufficient Permissions",
    RSMI_STATUS_INIT_ERROR: "Initialization Error",
    RSMI_STATUS_BUSY: "Device Busy",
    RSMI_STATUS_AMDGPU_RESTART_ERR: "AMDGPU Restart (device lost)",
}

#: Statuses worth retrying: the call may succeed moments later.
RSMI_TRANSIENT_STATUS_CODES = frozenset({RSMI_STATUS_BUSY})

#: Statuses after which the device will not come back this run.
RSMI_FATAL_STATUS_CODES = frozenset({RSMI_STATUS_AMDGPU_RESTART_ERR})


def rsmi_status_string(status: int) -> str:
    """Human-readable string for an rsmi status code.

    Unknown statuses degrade to a readable ``"unknown rsmi status <n>"``
    message, same contract as :func:`repro.nvml.errors.nvmlErrorString`.
    """
    try:
        return _STATUS_STRINGS[status]
    except (KeyError, TypeError):
        return f"unknown rsmi status {status}"


class RocmSmiError(Exception):
    """Raised by failing rsmi calls, carrying the status code."""

    def __init__(self, status: int) -> None:
        self.status = status
        super().__init__(rsmi_status_string(status))


@dataclass
class _State:
    devices: List[SimulatedGpu]
    initialized: bool = False


_state = _State(devices=[])


def attach_devices(devices: Sequence[SimulatedGpu]) -> None:
    """Expose simulated GCD devices to this process's ROCm SMI."""
    _state.devices = list(devices)


def detach_devices() -> None:
    """Remove all attached devices (test teardown helper)."""
    _state.devices = []
    _state.initialized = False


def rsmi_init(flags: int = 0) -> None:
    _state.initialized = True


def rsmi_shut_down() -> None:
    _state.initialized = False


def _device(index: int) -> SimulatedGpu:
    if not _state.initialized:
        raise RocmSmiError(RSMI_STATUS_INIT_ERROR)
    if not 0 <= index < len(_state.devices):
        raise RocmSmiError(RSMI_STATUS_INVALID_ARGS)
    return _state.devices[index]


def _card_devices(index: int) -> List[SimulatedGpu]:
    """All GCDs sharing the physical card of device ``index``.

    Devices are attached in card order (GCD pairs adjacent), matching
    the node topology of LUMI-G.
    """
    dev = _device(index)
    per_card = dev.spec.gcds_per_card
    base = (index // per_card) * per_card
    return [_device(i) for i in range(base, base + per_card)]


def rsmi_num_monitor_devices() -> int:
    if not _state.initialized:
        raise RocmSmiError(RSMI_STATUS_INIT_ERROR)
    return len(_state.devices)


def rsmi_dev_name_get(index: int) -> str:
    return _device(index).spec.name


def rsmi_dev_power_ave_get(index: int, sensor: int = 0) -> int:
    """Average socket power in microwatts — *card level* on MI250X."""
    return int(round(sum(g.power_w() for g in _card_devices(index)) * 1e6))


def rsmi_dev_energy_count_get(index: int) -> int:
    """Cumulative energy counter in microjoules — card level."""
    return int(round(sum(g.energy_j for g in _card_devices(index)) * 1e6))


def rsmi_dev_gpu_clk_freq_get(index: int, clk_type: int) -> int:
    """Current clock of the GCD in Hz."""
    dev = _device(index)
    if clk_type == RSMI_CLK_TYPE_SYS:
        return int(round(dev.current_clock_hz))
    if clk_type == RSMI_CLK_TYPE_MEM:
        return int(round(dev.memory_clock_hz))
    raise RocmSmiError(RSMI_STATUS_NOT_SUPPORTED)


def rsmi_dev_gpu_clk_freq_set(index: int, clk_type: int, freq_hz: float) -> None:
    """Pin the GCD's clock (per GCD, unlike the card-level sensors)."""
    dev = _device(index)
    if clk_type != RSMI_CLK_TYPE_SYS:
        raise RocmSmiError(RSMI_STATUS_NOT_SUPPORTED)
    dev.set_application_clocks(dev.memory_clock_hz, float(freq_hz))


def rsmi_dev_gpu_clk_freq_reset(index: int) -> None:
    """Return the GCD to governor-managed clocks."""
    _device(index).reset_application_clocks()


def gcds_per_card(index: int) -> int:
    """Topology helper used by the analysis layer's rank->card mapping."""
    return _device(index).spec.gcds_per_card
