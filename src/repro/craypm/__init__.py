"""HPE/Cray pm_counters sysfs emulation at 10 Hz (DESIGN.md §2)."""

from .pm_counters import PM_COUNTERS_VERSION, PUBLISH_PERIOD_S, PmCounters

__all__ = ["PM_COUNTERS_VERSION", "PUBLISH_PERIOD_S", "PmCounters"]
