"""HPE/Cray ``pm_counters`` sysfs emulation.

Cray-built nodes publish out-of-band power/energy telemetry through
read-only sysfs files under ``/sys/cray/pm_counters/`` at a default
rate of 10 Hz (Martin, CUG'14/'18; paper §II-A):

* ``energy`` / ``power``               — whole node
* ``cpu_energy`` / ``cpu_power``       — CPU package
* ``memory_energy`` / ``memory_power`` — DIMMs
* ``accelN_energy`` / ``accelN_power`` — accelerator *card* N
* ``freshness``, ``generation``, ``startup``, ``version``

The emulation samples a :class:`~repro.hardware.node.ComputeNode` at
exact 0.1 s boundaries of simulated time (with linear interpolation
inside each clock advance, which is exact because power is piecewise
constant), so a reader always sees the value as of the last publish
tick — including the staleness a real 10 Hz feed has.

On MI250X nodes each ``accelN`` counter covers one card = two GCDs =
two MPI ranks; that granularity mismatch is preserved (§III-B).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..hardware.node import ComputeNode

#: Default out-of-band collection period in (simulated) seconds.
PUBLISH_PERIOD_S = 0.1

#: Counter file format version advertised by the emulation.
PM_COUNTERS_VERSION = "1"


class PmCounters:
    """One node's ``/sys/cray/pm_counters`` view.

    Construct it *after* the node (its devices must already be
    subscribed to the clock) so the publish listener observes
    post-update energies.
    """

    def __init__(
        self, node: ComputeNode, export_dir: Optional[str] = None
    ) -> None:
        self._node = node
        self._export_dir = export_dir
        self._startup = node.clock.now
        self._freshness = 0
        self._generation = 1
        self._last_publish_t = node.clock.now
        self._prev_t = node.clock.now
        self._prev = self._raw_now()
        self._published = dict(self._prev)
        self._published_power = {k: 0.0 for k in self._prev}
        node.clock.subscribe(self._on_advance)
        if export_dir is not None:
            os.makedirs(export_dir, exist_ok=True)
            self._export()

    # -- sampling -----------------------------------------------------------

    def _raw_now(self) -> Dict[str, float]:
        node = self._node
        raw = {
            "energy": node.node_energy_j,
            "cpu_energy": node.cpu_energy_j,
            "memory_energy": node.memory_energy_j,
        }
        for card in range(node.num_cards):
            raw[f"accel{card}_energy"] = node.accel_energy_j(card)
        return raw

    def _on_advance(self, t0: float, t1: float) -> None:
        # Subscribed after every device, so raw values are already at t1.
        now_vals = self._raw_now()
        span = t1 - t0
        boundary = self._next_boundary(t0)
        while boundary <= t1 + 1e-12:
            frac = 0.0 if span <= 0 else (boundary - t0) / span
            snapshot = {
                k: self._prev[k] + (now_vals[k] - self._prev[k]) * frac
                for k in now_vals
            }
            self._publish(boundary, snapshot)
            boundary += PUBLISH_PERIOD_S
        self._prev = now_vals
        self._prev_t = t1

    def _next_boundary(self, after: float) -> float:
        n = int(after / PUBLISH_PERIOD_S) + 1
        b = n * PUBLISH_PERIOD_S
        # Guard against float droop putting the boundary at/before `after`.
        while b <= after + 1e-12:
            n += 1
            b = n * PUBLISH_PERIOD_S
        return b

    def _publish(self, t: float, snapshot: Dict[str, float]) -> None:
        dt = t - self._last_publish_t
        for key, value in snapshot.items():
            if dt > 0:
                self._published_power[key] = (value - self._published[key]) / dt
            self._published[key] = value
        self._last_publish_t = t
        self._freshness += 1
        if self._export_dir is not None:
            self._export()

    # -- reading --------------------------------------------------------------

    @property
    def freshness(self) -> int:
        """Publish tick counter (increments at 10 Hz of simulated time)."""
        return self._freshness

    @property
    def startup(self) -> float:
        return self._startup

    def files(self) -> List[str]:
        """Names of all counter files this node publishes."""
        names = ["version", "startup", "freshness", "generation"]
        for key in self._published:
            names.append(key)
            names.append(key.replace("energy", "power"))
        return names

    def read_energy_j(self, counter: str) -> float:
        """Last published value of an energy counter, joules.

        ``counter`` is the sysfs file name, e.g. ``"energy"``,
        ``"cpu_energy"``, ``"accel0_energy"``.
        """
        try:
            return self._published[counter]
        except KeyError:
            raise FileNotFoundError(
                f"/sys/cray/pm_counters/{counter}"
            ) from None

    def read_power_w(self, counter: str) -> float:
        """Last published average power of a counter, watts."""
        key = counter.replace("power", "energy")
        try:
            return self._published_power[key]
        except KeyError:
            raise FileNotFoundError(
                f"/sys/cray/pm_counters/{counter}"
            ) from None

    def read_file(self, name: str) -> str:
        """Raw file content in the Cray text format: ``<value> <unit> <ts>``."""
        ts_us = int(self._last_publish_t * 1e6)
        if name == "version":
            return PM_COUNTERS_VERSION
        if name == "startup":
            return f"{int(self._startup * 1e6)}"
        if name == "freshness":
            return f"{self._freshness}"
        if name == "generation":
            return f"{self._generation}"
        if name.endswith("_energy") or name == "energy":
            return f"{int(self.read_energy_j(name))} J {ts_us}"
        if name.endswith("_power") or name == "power":
            return f"{int(self.read_power_w(name))} W {ts_us}"
        raise FileNotFoundError(f"/sys/cray/pm_counters/{name}")

    # -- checkpoint ------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "startup": self._startup,
            "freshness": self._freshness,
            "generation": self._generation,
            "last_publish_t": self._last_publish_t,
            "prev_t": self._prev_t,
            "prev": dict(self._prev),
            "published": dict(self._published),
            "published_power": dict(self._published_power),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._startup = float(state["startup"])
        self._freshness = int(state["freshness"])
        self._generation = int(state["generation"])
        self._last_publish_t = float(state["last_publish_t"])
        self._prev_t = float(state["prev_t"])
        self._prev = {k: float(v) for k, v in state["prev"].items()}
        self._published = {
            k: float(v) for k, v in state["published"].items()
        }
        self._published_power = {
            k: float(v) for k, v in state["published_power"].items()
        }
        if self._export_dir is not None:
            self._export()

    # -- optional on-disk export ----------------------------------------------

    def _export(self) -> None:
        assert self._export_dir is not None
        for name in self.files():
            path = os.path.join(self._export_dir, name)
            with open(path, "w", encoding="ascii") as fh:
                fh.write(self.read_file(name) + "\n")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PmCounters(node={self._node.name!r}, "
            f"freshness={self._freshness}, "
            f"energy={self._published.get('energy', 0.0):.0f} J)"
        )
