"""Behavioural model of the GPU's built-in DVFS governor.

The paper's §IV-E measures what the A100's default clock management
actually does during an SPH-EXA time-step (Fig. 9):

* compute-heavy kernels (MomentumEnergy) push the clock to the 1410 MHz
  maximum; IADVelocityDivCurl reaches > 1350 MHz;
* the kernels in between sit at 1300-1350 MHz;
* ``DomainDecompAndSync`` — a burst of thousands of *lightweight*
  launches — holds ~1200 MHz because every launch boosts the clock
  before any utilization information exists (the launch-presence
  over-estimation of [25]);
* end-of-step collective communication lets the clock dip below
  1000 MHz.

This module reproduces those dynamics with a quantized
utilization-tracking governor: an EWMA utilization estimate drives a
clock target between an active floor and the maximum, launches assert a
presence floor on the estimate, and idling decays the estimate to zero.
The governor also maintains a voltage margin and a post-launch boost
residency, which are what make whole-run DVFS *less* energy efficient
than the pinned baseline (Fig. 7) despite the lower average clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import GpuSpec


@dataclass
class GovernorDecision:
    """Clock + power-state outcome of one governor evaluation."""

    clock_hz: float
    voltage_margin_hz: float
    residency_intensity: float


class DvfsGovernor:
    """Quantized utilization-driven clock governor for one device."""

    #: Power intensity held during post-launch boost residency windows
    #: (clock gating is ineffective while the governor expects more work).
    BOOST_RESIDENCY_INTENSITY = 0.30

    #: Seconds after the last launch during which residency power is held.
    BOOST_HOLD_S = 0.040

    #: Seconds of continuous idleness before decaying toward the idle clock.
    IDLE_HOLDOFF_S = 0.200

    #: Per-quantum EWMA factor for decaying the estimate while idle.
    IDLE_DECAY = 0.35

    def __init__(self, spec: GpuSpec) -> None:
        self._spec = spec
        self._gov = spec.governor
        self._util_estimate = 0.0
        self._idle_elapsed = 0.0
        self._since_launch = float("inf")
        self._transitions = 0
        self._clock_hz = spec.quantize_clock_hz(self._target_hz())

    # -- state ------------------------------------------------------------

    @property
    def clock_hz(self) -> float:
        """Clock currently selected by the governor."""
        return self._clock_hz

    @property
    def utilization_estimate(self) -> float:
        """Governor-internal utilization estimate in [0, 1]."""
        return self._util_estimate

    @property
    def transitions(self) -> int:
        """Number of clock-bin changes performed so far."""
        return self._transitions

    @property
    def quantum(self) -> float:
        """Governor decision quantum in seconds."""
        return self._gov.quantum

    @property
    def voltage_margin_hz(self) -> float:
        """Voltage headroom currently maintained above the clock."""
        return self._gov.voltage_margin_hz

    @property
    def residency_intensity(self) -> float:
        """Power intensity to charge while idle under boost residency."""
        if self._since_launch <= self.BOOST_HOLD_S:
            return self.BOOST_RESIDENCY_INTENSITY
        return 0.0

    # -- events -----------------------------------------------------------

    def _busy_signal(self, intensity: float) -> float:
        """Utilization the governor *perceives* for a busy quantum.

        The governor watches occupancy, not power: a memory-bound kernel
        keeping most SMs resident looks much busier than its power
        intensity suggests (sqrt compression), and any quantum merely
        containing launches asserts the presence floor — the
        over-estimation of [25] discussed in §IV-E.
        """
        occupancy = min(intensity, 1.0) ** 0.5
        return max(occupancy, self._gov.launch_presence_floor)

    def note_launch(self, intensity: float) -> None:
        """Record a kernel launch arriving at the device.

        Launches immediately assert the presence floor: the governor has
        no occupancy information yet, so it boosts first and asks
        questions later (paper §IV-E).
        """
        self._util_estimate = max(
            self._util_estimate, self._busy_signal(intensity)
        )
        self._since_launch = 0.0
        self._idle_elapsed = 0.0
        self._retarget(boost=True)

    def observe_busy(self, dt: float, intensity: float) -> None:
        """Advance the governor over ``dt`` seconds of kernel execution."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        self._step_estimate(dt, self._busy_signal(intensity))
        self._since_launch = 0.0
        self._idle_elapsed = 0.0
        self._retarget(boost=False)

    def observe_idle(self, dt: float) -> None:
        """Advance the governor over ``dt`` seconds with no resident kernel."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        self._since_launch += dt
        self._idle_elapsed += dt
        quanta = max(dt / self._gov.quantum, 0.0)
        decay = (1.0 - self.IDLE_DECAY) ** quanta
        self._util_estimate *= decay
        self._retarget(boost=False)

    # -- internals ----------------------------------------------------------

    def _step_estimate(self, dt: float, signal: float) -> None:
        quanta = dt / self._gov.quantum
        # Apply the per-quantum EWMA `quanta` times in closed form.
        keep = (1.0 - self._gov.ewma) ** quanta
        self._util_estimate = signal + (self._util_estimate - signal) * keep

    def _target_hz(self, boost: bool = False) -> float:
        spec, gov = self._spec, self._gov
        if self._idle_elapsed > self.IDLE_HOLDOFF_S:
            # Deep idle: glide toward the idle clock as idleness persists.
            over = self._idle_elapsed - self.IDLE_HOLDOFF_S
            frac = min(over / 0.5, 1.0)
            return gov.active_floor_hz + frac * (
                gov.idle_clock_hz - gov.active_floor_hz
            )
        target = gov.active_floor_hz + self._util_estimate * (
            spec.max_clock_hz - gov.active_floor_hz
        )
        if boost:
            target += gov.boost_hz * (1.0 - self._util_estimate)
        return min(target, spec.max_clock_hz)

    def _retarget(self, boost: bool) -> None:
        new_hz = self._spec.quantize_clock_hz(self._target_hz(boost=boost))
        if new_hz != self._clock_hz:
            self._transitions += 1
            self._clock_hz = new_hz

    # -- checkpoint ----------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpointable governor state.

        ``since_launch`` starts at ``inf``; the checkpoint writer keeps
        JSON's default ``allow_nan=True`` so it round-trips.
        """
        return {
            "util_estimate": self._util_estimate,
            "idle_elapsed": self._idle_elapsed,
            "since_launch": self._since_launch,
            "transitions": self._transitions,
            "clock_hz": self._clock_hz,
        }

    def restore_state(self, state: dict) -> None:
        self._util_estimate = float(state["util_estimate"])
        self._idle_elapsed = float(state["idle_elapsed"])
        self._since_launch = float(state["since_launch"])
        self._transitions = int(state["transitions"])
        self._clock_hz = float(state["clock_hz"])

    def decision(self) -> GovernorDecision:
        """Snapshot the governor's current clock/power decision."""
        return GovernorDecision(
            clock_hz=self._clock_hz,
            voltage_margin_hz=self._gov.voltage_margin_hz,
            residency_intensity=self.residency_intensity,
        )
