"""The simulated GPU device.

:class:`SimulatedGpu` executes :class:`~repro.hardware.kernel.KernelLaunch`
work units on a :class:`~repro.hardware.clock.VirtualClock`, integrating
board energy exactly (power is piecewise constant over every advanced
interval). The device runs in one of two clock-management modes:

* **application clocks** — pinned to a supported bin via
  :meth:`set_application_clocks` (what the paper's static and ManDyn
  strategies do through NVML);
* **governor** — the built-in DVFS model of
  :class:`~repro.hardware.dvfs.DvfsGovernor` decides the clock.

The device keeps per-kernel aggregate records, counts clock
transitions, and can record a frequency trace (time, clock) for the
Fig. 9 reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .clock import VirtualClock
from .dvfs import DvfsGovernor
from .kernel import KernelLaunch, KernelRecord
from .perf_model import GpuPerfModel
from .power_model import GpuPowerModel
from .specs import GpuSpec


class GpuError(RuntimeError):
    """Raised on invalid device operations (bad clocks, re-entrancy...)."""


@dataclass
class _PowerState:
    """Instantaneous power-relevant device state."""

    busy: bool
    clock_hz: float
    intensity: float
    voltage_margin_hz: float
    kernel_name: Optional[str]


class SimulatedGpu:
    """One GPU (or one MI250X GCD) attached to a rank-local clock."""

    #: Simulated latency of one application-clock change (NVML call +
    #: clock relock). Paid by static/ManDyn policies on every change.
    CLOCK_SET_LATENCY_S = 0.003

    def __init__(
        self, spec: GpuSpec, clock: VirtualClock, index: int = 0
    ) -> None:
        self.spec = spec
        self.index = index
        self._clock = clock
        self._perf = GpuPerfModel(spec)
        self._power = GpuPowerModel(spec)
        self._governor = DvfsGovernor(spec)
        self._app_clock_hz: Optional[float] = spec.default_clock_hz
        self._memory_clock_hz: float = spec.memory_clock_hz
        self._temp_c = spec.thermal.ambient_c
        self._state = _PowerState(
            busy=False,
            clock_hz=self.current_clock_hz,
            intensity=0.0,
            voltage_margin_hz=0.0,
            kernel_name=None,
        )
        self._energy_j = 0.0
        self._busy_seconds = 0.0
        self._kernel_records: Dict[str, KernelRecord] = {}
        self._clock_transitions = 0
        self._trace: Optional[List[Tuple[float, float]]] = None
        self._busy_intervals: List[Tuple[float, float]] = []
        self._executing = False
        clock.subscribe(self._on_advance)

    # ------------------------------------------------------------------
    # Clock management
    # ------------------------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        """The rank-local simulated clock this device integrates over."""
        return self._clock

    @property
    def perf_model(self) -> GpuPerfModel:
        return self._perf

    @property
    def power_model(self) -> GpuPowerModel:
        return self._power

    @property
    def governor(self) -> DvfsGovernor:
        return self._governor

    @property
    def application_clock_hz(self) -> Optional[float]:
        """Pinned application graphics clock, or ``None`` under DVFS."""
        return self._app_clock_hz

    @property
    def memory_clock_hz(self) -> float:
        return self._memory_clock_hz

    @property
    def current_clock_hz(self) -> float:
        """Graphics clock the device is running at right now.

        Thermal throttling caps the requested clock (pinned or
        governor-selected) when the die is above the throttle limit.
        """
        requested = (
            self._app_clock_hz
            if self._app_clock_hz is not None
            else self._governor.clock_hz
        )
        cap = self.spec.thermal.throttle_cap_hz(
            self._temp_c, self.spec.max_clock_hz
        )
        if cap >= requested:
            return requested
        return self.spec.quantize_clock_hz(cap)

    @property
    def temperature_c(self) -> float:
        """Current die temperature, degC."""
        return self._temp_c

    @property
    def thermal_throttle_active(self) -> bool:
        """True when the thermal cap is limiting the requested clock."""
        requested = (
            self._app_clock_hz
            if self._app_clock_hz is not None
            else self._governor.clock_hz
        )
        return self.current_clock_hz < requested

    @property
    def clock_transitions(self) -> int:
        """Application-clock changes performed (ManDyn switch count)."""
        return self._clock_transitions

    def set_application_clocks(
        self, memory_hz: float, graphics_hz: float, charge_latency: bool = True
    ) -> float:
        """Pin application clocks, as ``nvmlDeviceSetApplicationsClocks``.

        The requested graphics clock is snapped to the nearest supported
        bin. Returns the clock actually set. Changing the clock costs
        :data:`CLOCK_SET_LATENCY_S` of simulated time unless the device
        is already at the requested bin.
        """
        if self._executing:
            raise GpuError("cannot change application clocks mid-kernel")
        quantized = self.spec.quantize_clock_hz(graphics_hz)
        self._memory_clock_hz = memory_hz
        if self._app_clock_hz == quantized:
            return quantized
        self._app_clock_hz = quantized
        self._clock_transitions += 1
        if charge_latency:
            self._clock.advance(self.CLOCK_SET_LATENCY_S)
        self._record_trace_point()
        return quantized

    def reset_application_clocks(self) -> None:
        """Unpin application clocks; the DVFS governor takes over."""
        if self._executing:
            raise GpuError("cannot change application clocks mid-kernel")
        if self._app_clock_hz is not None:
            self._app_clock_hz = None
            self._clock_transitions += 1
            self._record_trace_point()

    @property
    def dvfs_active(self) -> bool:
        """True when the governor (not pinned clocks) controls the device."""
        return self._app_clock_hz is None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, kernel: KernelLaunch) -> float:
        """Execute one kernel, advancing simulated time.

        Returns the total duration in seconds (launch overhead plus
        device busy time). Energy is integrated into the device total
        and attributed to the kernel's :class:`KernelRecord`.
        """
        if self._executing:
            raise GpuError("device is already executing a kernel")
        self._executing = True
        try:
            start = self._clock.now
            record = self._kernel_records.setdefault(
                kernel.name, KernelRecord(name=kernel.name)
            )
            if self.dvfs_active:
                self._governor.note_launch(kernel.power_intensity)
            if kernel.launch_overhead > 0.0:
                # Host-side launch latency: device not yet busy.
                self._set_idle_state()
                self._clock.advance(kernel.launch_overhead)
            energy_before = self._energy_j
            if self.dvfs_active:
                busy = self._execute_governed(kernel)
            else:
                busy = self._execute_pinned(kernel)
            self._set_idle_state()
            record.launches += 1
            record.busy_seconds += busy
            record.energy_joules += self._energy_j - energy_before
            record.flops += kernel.flops
            record.bytes_moved += kernel.bytes_moved
            return self._clock.now - start
        finally:
            self._executing = False

    #: Slice length for re-evaluating thermal caps during pinned kernels.
    THERMAL_SLICE_S = 0.25

    def _execute_pinned(self, kernel: KernelLaunch) -> float:
        remaining_flops = kernel.flops
        remaining_bytes = kernel.bytes_moved
        busy_total = 0.0
        while remaining_flops > 1e-9 or remaining_bytes > 1e-9:
            clock_hz = self.current_clock_hz  # thermal cap applies
            part = KernelLaunch(
                name=kernel.name,
                flops=remaining_flops,
                bytes_moved=remaining_bytes,
                power_intensity=kernel.power_intensity,
            )
            timing = self._perf.timing(part, clock_hz)
            full = timing.compute_seconds + timing.memory_seconds
            if full <= 0.0:
                break
            # Full-slice execution unless the die is near the throttle
            # limit, where the cap must be re-evaluated frequently.
            near_limit = (
                self._temp_c
                > self.spec.thermal.throttle_temp_c - 3.0
            )
            dt = min(full, self.THERMAL_SLICE_S) if near_limit else full
            frac = dt / full
            remaining_flops *= 1.0 - frac
            remaining_bytes *= 1.0 - frac
            self._state = _PowerState(
                busy=True,
                clock_hz=clock_hz,
                intensity=kernel.power_intensity,
                voltage_margin_hz=0.0,
                kernel_name=kernel.name,
            )
            self._clock.advance(dt)
            busy_total += dt
        return busy_total

    def _execute_governed(self, kernel: KernelLaunch) -> float:
        remaining_flops = kernel.flops
        remaining_bytes = kernel.bytes_moved
        quantum = self._governor.quantum
        busy_total = 0.0
        while remaining_flops > 1e-9 or remaining_bytes > 1e-9:
            clock_hz = self.current_clock_hz  # governor + thermal cap
            part = KernelLaunch(
                name=kernel.name,
                flops=remaining_flops,
                bytes_moved=remaining_bytes,
                power_intensity=kernel.power_intensity,
            )
            timing = self._perf.timing(part, clock_hz)
            full = timing.compute_seconds + timing.memory_seconds
            if full <= 0.0:
                break
            dt = min(full, quantum)
            frac = dt / full
            remaining_flops *= 1.0 - frac
            remaining_bytes *= 1.0 - frac
            self._state = _PowerState(
                busy=True,
                clock_hz=clock_hz,
                intensity=kernel.power_intensity,
                voltage_margin_hz=self._governor.voltage_margin_hz,
                kernel_name=kernel.name,
            )
            self._clock.advance(dt)
            self._governor.observe_busy(dt, kernel.power_intensity)
            self._record_trace_point()
            busy_total += dt
        return busy_total

    def _set_idle_state(self) -> None:
        self._state = _PowerState(
            busy=False,
            clock_hz=self.current_clock_hz,
            intensity=0.0,
            voltage_margin_hz=0.0,
            kernel_name=None,
        )

    # ------------------------------------------------------------------
    # Power / energy accounting
    # ------------------------------------------------------------------

    def power_w(self) -> float:
        """Instantaneous board power for the current state."""
        s = self._state
        if s.busy:
            return self._power.busy_power_w(
                s.clock_hz, s.intensity, s.voltage_margin_hz
            )
        if self.dvfs_active:
            residency = self._governor.residency_intensity
            if residency > 0.0:
                return self._power.busy_power_w(
                    self._governor.clock_hz,
                    residency,
                    self._governor.voltage_margin_hz,
                )
            return self._power.idle_power_w(self._governor.clock_hz)
        return self._power.idle_power_w(self.current_clock_hz)

    def _on_advance(self, t0: float, t1: float) -> None:
        dt = t1 - t0
        power = self.power_w()
        self._energy_j += power * dt
        # First-order thermal relaxation toward the steady state at the
        # interval's (constant) power draw.
        thermal = self.spec.thermal
        t_ss = thermal.steady_state_c(power)
        decay = math.exp(-dt / thermal.tau_s)
        self._temp_c = t_ss + (self._temp_c - t_ss) * decay
        if self._state.busy:
            self._busy_seconds += dt
            self._busy_intervals.append((t0, t1))
        elif self.dvfs_active and not self._executing:
            # External idle time (host phases, MPI waits): the governor
            # observes it and decays its clock (Fig. 9 end-of-step dips).
            self._governor.observe_idle(dt)
            self._record_trace_point(at=t1)

    @property
    def energy_j(self) -> float:
        """Cumulative board energy since construction, joules."""
        return self._energy_j

    @property
    def busy_seconds(self) -> float:
        """Cumulative device-busy seconds since construction."""
        return self._busy_seconds

    @property
    def kernel_records(self) -> Dict[str, KernelRecord]:
        """Per-kernel aggregate statistics (by kernel name)."""
        return self._kernel_records

    def utilization(self, window_s: float = 1.0) -> float:
        """Busy fraction over the trailing ``window_s`` of simulated time.

        This mirrors the coarse device utilization NVML reports, which
        the paper (and [25]) note is an overestimate of real occupancy —
        it counts *any* kernel-resident time as utilized.
        """
        if window_s <= 0:
            raise ValueError("window must be positive")
        now = self._clock.now
        lo = now - window_s
        busy = 0.0
        # Prune intervals that fell out of every plausible window.
        while self._busy_intervals and self._busy_intervals[0][1] < now - 10.0 * window_s:
            self._busy_intervals.pop(0)
        for a, b in self._busy_intervals:
            if b <= lo:
                continue
            busy += b - max(a, lo)
        span = min(window_s, now) or 1.0
        return min(busy / span, 1.0)

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpointable device state (valid at kernel boundaries only).

        The instantaneous ``_PowerState`` is not stored: at a step
        boundary the device is idle, so restore rebuilds it via
        :meth:`_set_idle_state`. The Fig. 9 frequency trace is a debug
        aid and deliberately not checkpointed. Busy intervals older
        than every plausible utilization window are pruned, mirroring
        what :meth:`utilization` would discard anyway.
        """
        if self._executing:
            raise RuntimeError("cannot checkpoint a GPU mid-kernel")
        now = self._clock.now
        # As an ndarray, not nested lists: utilization windows retain
        # thousands of intervals at SPH timestep scale, and raw-byte
        # array transport keeps the snapshot's JSON walk off them.
        intervals = np.array(
            [[a, b] for a, b in self._busy_intervals if b >= now - 10.0],
            dtype=np.float64,
        ).reshape(-1, 2)
        return {
            "app_clock_hz": self._app_clock_hz,
            "memory_clock_hz": self._memory_clock_hz,
            "temp_c": self._temp_c,
            "energy_j": self._energy_j,
            "busy_seconds": self._busy_seconds,
            "clock_transitions": self._clock_transitions,
            "busy_intervals": intervals,
            "governor": self._governor.state_dict(),
            "kernel_records": {
                name: {
                    "launches": rec.launches,
                    "busy_seconds": rec.busy_seconds,
                    "energy_joules": rec.energy_joules,
                    "flops": rec.flops,
                    "bytes_moved": rec.bytes_moved,
                }
                for name, rec in self._kernel_records.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        app_clock = state["app_clock_hz"]
        self._app_clock_hz = None if app_clock is None else float(app_clock)
        self._memory_clock_hz = float(state["memory_clock_hz"])
        self._temp_c = float(state["temp_c"])
        self._energy_j = float(state["energy_j"])
        self._busy_seconds = float(state["busy_seconds"])
        self._clock_transitions = int(state["clock_transitions"])
        self._busy_intervals = [
            (float(a), float(b)) for a, b in np.asarray(
                state["busy_intervals"]
            ).reshape(-1, 2)
        ]
        self._governor.restore_state(state["governor"])
        self._kernel_records = {}
        for name, rec in state["kernel_records"].items():
            record = KernelRecord(name=name)
            record.launches = int(rec["launches"])
            record.busy_seconds = float(rec["busy_seconds"])
            record.energy_joules = float(rec["energy_joules"])
            record.flops = float(rec["flops"])
            record.bytes_moved = float(rec["bytes_moved"])
            self._kernel_records[name] = record
        self._set_idle_state()

    # ------------------------------------------------------------------
    # Frequency tracing (Fig. 9)
    # ------------------------------------------------------------------

    def start_frequency_trace(self) -> None:
        """Begin recording (time, clock) samples at every clock event."""
        self._trace = [(self._clock.now, self.current_clock_hz)]

    def stop_frequency_trace(self) -> List[Tuple[float, float]]:
        """Stop recording and return the trace."""
        trace = self._trace or []
        self._trace = None
        return trace

    def _record_trace_point(self, at: Optional[float] = None) -> None:
        if self._trace is not None:
            t = self._clock.now if at is None else at
            hz = self.current_clock_hz
            if not self._trace or self._trace[-1][1] != hz or self._trace[-1][0] != t:
                self._trace.append((t, hz))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "dvfs" if self.dvfs_active else "pinned"
        return (
            f"SimulatedGpu({self.spec.name!r}, index={self.index}, mode={mode}, "
            f"clock={self.current_clock_hz / 1e6:.0f} MHz, "
            f"energy={self._energy_j:.1f} J)"
        )
