"""Device specifications and Table-I hardware presets.

The numbers here are the *calibration layer* of the reproduction
(DESIGN.md §5): device peak throughputs, power envelopes, supported
clock bins and the voltage/frequency power exponent. The paper's
results come out of the models fed with these constants; nothing
downstream hard-codes a result.

Presets cover the three systems of Table I:

* **CSCS-A100** — 4x Nvidia A100-SXM4-80GB + AMD EPYC 7713 per node.
* **LUMI-G** — 8x AMD MI250X GCDs (4 cards) + AMD EPYC 7A53 per node.
* **miniHPC** — 2x Nvidia A100-PCIE-40GB + 2x Intel Xeon Gold 6258R.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..units import GIB, mhz


@dataclass(frozen=True)
class GovernorSpec:
    """Parameters of the device's built-in DVFS governor model.

    The governor model is behavioural (DESIGN.md §8): it reproduces the
    frequency traces measured on an A100 in the paper's Fig. 9 rather
    than any vendor's register-level implementation.
    """

    #: Governor decision quantum in seconds.
    quantum: float = 0.010
    #: Lowest clock the governor will select while the device is active.
    active_floor_hz: float = mhz(930.0)
    #: Clock selected after a long fully-idle period.
    idle_clock_hz: float = mhz(210.0)
    #: EWMA smoothing factor per quantum for the utilization estimate.
    ewma: float = 0.55
    #: Utilization attributed to a quantum that merely *contains* kernel
    #: launches, regardless of achieved occupancy. Models the
    #: launch-counting over-estimation of GPU utilization ([25], §IV-E).
    launch_presence_floor: float = 0.55
    #: Extra clock headroom the governor requests above the utilization
    #: target right after a launch burst (boost behaviour).
    boost_hz: float = mhz(120.0)
    #: Voltage-margin penalty: under governor control the device holds a
    #: voltage corresponding to ``f + margin`` to allow fast boosting,
    #: which costs energy relative to pinned application clocks.
    voltage_margin_hz: float = mhz(150.0)
    #: Energy cost of one frequency transition, joules.
    transition_energy_j: float = 0.015


@dataclass(frozen=True)
class ThermalSpec:
    """First-order thermal model of a GPU package.

    Die temperature relaxes toward the steady state
    ``T_ss = ambient + resistance * P`` with time constant ``tau``;
    above ``throttle_temp_c`` the device caps its clock, shedding
    ``throttle_mhz_per_c`` per degree of excess — the standard
    behaviour instrumented codes must coexist with on air-cooled
    nodes (miniHPC's PCIE cards, unlike the SXM/OAM water-cooled
    parts of the large systems).
    """

    #: Inlet/ambient temperature, degC.
    ambient_c: float = 30.0
    #: Steady-state degC per watt of board power.
    resistance_c_per_w: float = 0.135
    #: Thermal time constant, seconds.
    tau_s: float = 20.0
    #: Clock-capping threshold, degC.
    throttle_temp_c: float = 88.0
    #: Clock cap reduction per degC above the threshold, MHz.
    throttle_mhz_per_c: float = 30.0

    def steady_state_c(self, power_w: float) -> float:
        """Equilibrium die temperature at constant ``power_w``."""
        return self.ambient_c + self.resistance_c_per_w * power_w

    def throttle_cap_hz(self, temp_c: float, max_clock_hz: float) -> float:
        """Maximum clock permitted at ``temp_c`` (no cap below limit)."""
        if temp_c <= self.throttle_temp_c:
            return max_clock_hz
        excess = temp_c - self.throttle_temp_c
        return max(
            max_clock_hz - excess * self.throttle_mhz_per_c * 1.0e6,
            0.3 * max_clock_hz,
        )


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a (simulated) GPU or GPU complex die.

    Attributes
    ----------
    name, vendor:
        Marketing name and ``"nvidia"`` / ``"amd"``.
    min_clock_hz, max_clock_hz, clock_step_hz:
        Supported graphics-clock range and bin size
        (A100: 210..1410 MHz in 15 MHz bins).
    default_clock_hz:
        Application clock the HPC centre pins by default (Table I).
    memory_clock_hz:
        Memory clock; the paper never changes it and neither do we.
    idle_power_w / max_power_w:
        Idle draw and board power at max clock under a full-intensity
        kernel. ``dynamic power = max_power_w - idle_power_w``.
    power_exponent:
        alpha in ``P = P_idle + i * P_dyn * (f / f_max) ** alpha``.
        ~1.7 over the 1005-1410 MHz window where voltage scales weakly
        (calibrated to the paper's -13 % / -19 % kernel energies).
    fp_throughput:
        Effective double-precision FLOP/s at ``max_clock_hz``.
    mem_bandwidth:
        Memory bandwidth, bytes/s (frequency independent here; memory
        clocks are never scaled).
    memory_bytes:
        Device memory capacity (caps particles per GPU, §IV-C).
    gcds_per_card:
        GPU complex dies per physical card; power sensors report per
        *card* (MI250X: 2), which creates the LUMI-G accounting quirk.
    arch_efficiency:
        Per-kernel efficiency multipliers on ``fp_throughput``; models
        e.g. MomentumEnergy being poorly optimized for AMD GCDs
        (45.8 % of GPU energy on LUMI-G vs 25.3 % on CSCS-A100, §IV-B).
    governor:
        DVFS governor behaviour parameters.
    """

    name: str
    vendor: str
    min_clock_hz: float
    max_clock_hz: float
    clock_step_hz: float
    default_clock_hz: float
    memory_clock_hz: float
    idle_power_w: float
    max_power_w: float
    power_exponent: float
    fp_throughput: float
    mem_bandwidth: float
    memory_bytes: float
    gcds_per_card: int = 1
    arch_efficiency: Dict[str, float] = field(default_factory=dict)
    governor: GovernorSpec = field(default_factory=GovernorSpec)
    thermal: ThermalSpec = field(default_factory=ThermalSpec)

    def __post_init__(self) -> None:
        if self.min_clock_hz > self.max_clock_hz:
            raise ValueError("min_clock_hz must not exceed max_clock_hz")
        if self.clock_step_hz <= 0:
            raise ValueError("clock_step_hz must be positive")
        if self.idle_power_w >= self.max_power_w:
            raise ValueError("idle power must be below max power")

    @property
    def dynamic_power_w(self) -> float:
        """Dynamic power envelope: max minus idle draw."""
        return self.max_power_w - self.idle_power_w

    def supported_clocks_hz(self) -> Tuple[float, ...]:
        """All supported graphics clocks, descending (as NVML reports)."""
        clocks = []
        c = self.max_clock_hz
        while c >= self.min_clock_hz - 1e-6:
            clocks.append(round(c, 3))
            c -= self.clock_step_hz
        return tuple(clocks)

    def quantize_clock_hz(self, requested_hz: float) -> float:
        """Snap a requested clock to the nearest supported bin (clamped)."""
        clamped = min(max(requested_hz, self.min_clock_hz), self.max_clock_hz)
        steps = round((clamped - self.min_clock_hz) / self.clock_step_hz)
        return min(
            self.min_clock_hz + steps * self.clock_step_hz, self.max_clock_hz
        )

    def kernel_efficiency(self, kernel_name: str) -> float:
        """Per-kernel architecture efficiency multiplier (default 1.0)."""
        return self.arch_efficiency.get(kernel_name, 1.0)


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a (simulated) host CPU package group.

    SPH-EXA runs entirely on the GPU; the host CPUs mostly idle and burn
    near-constant power proportional to wall time (paper §IV-B), with a
    modest bump while driving kernel launches or MPI progress.

    CPU frequency scaling (Slurm ``--cpu-freq``, §II-B; cf. ARCHER2's
    centre-wide down-clocking [24]) scales the dynamic power share as
    ``(f / f_nominal) ** 1.8`` and slows host-side phases by
    ``f_nominal / f``.
    """

    name: str
    sockets: int
    cores_per_socket: int
    idle_power_w: float
    active_power_w: float
    memory_gib: float
    nominal_freq_khz: int = 2_450_000
    min_freq_khz: int = 1_500_000

    #: Exponent of the dynamic-power response to CPU frequency.
    POWER_EXPONENT = 1.8

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def power_w(self, activity: float, freq_khz: "int | None" = None) -> float:
        """Package power at ``activity`` in [0, 1] and clock ``freq_khz``."""
        a = min(max(activity, 0.0), 1.0)
        f = self.clamp_freq_khz(freq_khz or self.nominal_freq_khz)
        ratio = f / self.nominal_freq_khz
        dynamic = a * (self.active_power_w - self.idle_power_w)
        idle = self.idle_power_w * (0.75 + 0.25 * ratio)
        return idle + dynamic * ratio**self.POWER_EXPONENT

    def clamp_freq_khz(self, freq_khz: int) -> int:
        """Clamp a requested clock to the supported range."""
        return int(
            min(max(freq_khz, self.min_freq_khz), self.nominal_freq_khz)
        )


@dataclass(frozen=True)
class NodePowerSpec:
    """Non-CPU/GPU node power: DIMMs, NIC, fans, VRM/PSU losses.

    The paper reports these as *Memory* (LUMI-G only exposes it
    separately) and *Other* — the second most energy-hungry slice after
    the GPUs (Fig. 4).
    """

    memory_power_w: float
    aux_power_w: float


# ---------------------------------------------------------------------------
# Per-kernel architecture efficiencies (calibration, DESIGN.md section 5).
# ---------------------------------------------------------------------------

#: MI250X GCD runs the SPH-EXA kernels at a lower fraction of peak than
#: the A100 does; MomentumEnergy in particular is singled out by the
#: paper as unoptimized on AMD.
_MI250X_KERNEL_EFFICIENCY = {
    "MomentumEnergy": 0.30,
    "IADVelocityDivCurl": 0.70,
    "Gravity": 0.60,
}


def a100_sxm4_80gb() -> GpuSpec:
    """Nvidia A100-SXM4-80GB (CSCS-A100 'Grace-like' nodes, Table I)."""
    return GpuSpec(
        name="NVIDIA A100-SXM4-80GB",
        vendor="nvidia",
        min_clock_hz=mhz(210.0),
        max_clock_hz=mhz(1410.0),
        clock_step_hz=mhz(15.0),
        default_clock_hz=mhz(1410.0),
        memory_clock_hz=mhz(1593.0),
        idle_power_w=55.0,
        max_power_w=400.0,
        power_exponent=1.70,
        fp_throughput=9.7e12,  # FP64 non-tensor peak
        mem_bandwidth=2.0e12,
        memory_bytes=80.0 * GIB,
        gcds_per_card=1,
    )


def a100_pcie_40gb() -> GpuSpec:
    """Nvidia A100-PCIE-40GB (miniHPC, Table I): lower TDP and bandwidth."""
    return GpuSpec(
        name="NVIDIA A100-PCIE-40GB",
        vendor="nvidia",
        min_clock_hz=mhz(210.0),
        max_clock_hz=mhz(1410.0),
        clock_step_hz=mhz(15.0),
        default_clock_hz=mhz(1410.0),
        memory_clock_hz=mhz(1593.0),
        idle_power_w=45.0,
        max_power_w=250.0,
        power_exponent=1.70,
        fp_throughput=9.7e12,
        mem_bandwidth=1.555e12,
        memory_bytes=40.0 * GIB,
        gcds_per_card=1,
    )


def mi250x_gcd() -> GpuSpec:
    """One GCD (half card) of an AMD MI250X (LUMI-G, Table I).

    One MPI rank drives one GCD; power is sensed per *card* (two GCDs),
    which `repro.craypm` and the analysis layer must account for.
    """
    return GpuSpec(
        name="AMD Instinct MI250X (GCD)",
        vendor="amd",
        min_clock_hz=mhz(500.0),
        max_clock_hz=mhz(1700.0),
        clock_step_hz=mhz(50.0),
        default_clock_hz=mhz(1700.0),
        memory_clock_hz=mhz(1600.0),
        idle_power_w=45.0,  # per GCD; 90 W per card
        max_power_w=280.0,  # per GCD; 560 W per card
        power_exponent=1.70,
        fp_throughput=8.0e12,  # sustained per-GCD FP64 for this code family
        mem_bandwidth=1.6e12,
        memory_bytes=64.0 * GIB,
        gcds_per_card=2,
        arch_efficiency=dict(_MI250X_KERNEL_EFFICIENCY),
    )


def intel_max_1550() -> GpuSpec:
    """Intel Data Center GPU Max 1550 (Ponte Vecchio OAM card).

    The paper's future work extends the method to Intel GPUs; clock and
    power management for this part goes through Level Zero Sysman
    (`repro.levelzero`). One MPI rank drives one card here.
    """
    return GpuSpec(
        name="Intel Data Center GPU Max 1550",
        vendor="intel",
        min_clock_hz=mhz(900.0),
        max_clock_hz=mhz(1600.0),
        clock_step_hz=mhz(50.0),
        default_clock_hz=mhz(1600.0),
        memory_clock_hz=mhz(1565.0),
        idle_power_w=95.0,
        max_power_w=600.0,
        power_exponent=1.70,
        fp_throughput=16.0e12,  # sustained card FP64 for this code family
        mem_bandwidth=3.2e12,
        memory_bytes=128.0 * GIB,
        gcds_per_card=1,
    )


def xeon_max_9470_pair() -> CpuSpec:
    """2x Intel Xeon Max 9470 52c (Aurora-class host)."""
    return CpuSpec(
        name="Intel Xeon Max 9470",
        sockets=2,
        cores_per_socket=52,
        idle_power_w=160.0,
        active_power_w=700.0,
        memory_gib=1024.0,
    )


def epyc_7713() -> CpuSpec:
    """AMD EPYC 7713 64c (CSCS-A100 host)."""
    return CpuSpec(
        name="AMD EPYC 7713",
        sockets=1,
        cores_per_socket=64,
        idle_power_w=95.0,
        active_power_w=225.0,
        memory_gib=512.0,
    )


def epyc_7a53() -> CpuSpec:
    """AMD EPYC 7A53 'Trento' 64c (LUMI-G host)."""
    return CpuSpec(
        name="AMD EPYC 7A53",
        sockets=1,
        cores_per_socket=64,
        idle_power_w=100.0,
        active_power_w=280.0,
        memory_gib=512.0,
    )


def xeon_6258r_pair() -> CpuSpec:
    """2x Intel Xeon Gold 6258R 28c (miniHPC host)."""
    return CpuSpec(
        name="Intel Xeon Gold 6258R",
        sockets=2,
        cores_per_socket=28,
        idle_power_w=130.0,
        active_power_w=410.0,
        memory_gib=1536.0,
    )
