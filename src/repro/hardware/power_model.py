"""Device power models.

GPU board power follows the calibrated DVFS response

    P(f, i) = P_idle + i * P_dyn * (f / f_max) ** alpha

where ``i`` is the executing kernel's power intensity (0 when idle) and
``alpha`` is per-device (``GpuSpec.power_exponent``). Over the paper's
1005-1410 MHz window the A100's core voltage is nearly flat, so alpha
is well below the textbook cubic — it is calibrated so MomentumEnergy
loses ~13 % energy and IADVelocityDivCurl ~19 % at 1005 MHz (Fig. 8b).

Under *governor* (DVFS) control the device additionally keeps a voltage
margin above the current clock so it can boost quickly; pinned
application clocks do not pay this margin. That asymmetry is what makes
whole-run DVFS energy land slightly *above* the pinned-max baseline in
Fig. 7 even though the governor's average clock is lower.
"""

from __future__ import annotations

from .specs import CpuSpec, GpuSpec, NodePowerSpec


class GpuPowerModel:
    """Board power for one simulated GPU/GCD."""

    def __init__(self, spec: GpuSpec) -> None:
        self._spec = spec

    @property
    def spec(self) -> GpuSpec:
        return self._spec

    def busy_power_w(
        self, clock_hz: float, intensity: float, voltage_margin_hz: float = 0.0
    ) -> float:
        """Board power while a kernel of ``intensity`` executes.

        ``voltage_margin_hz`` models governor headroom: dynamic power is
        paid as if the clock were ``clock_hz + margin`` (capped at max).
        """
        spec = self._spec
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {intensity!r}")
        effective = min(clock_hz + max(voltage_margin_hz, 0.0), spec.max_clock_hz)
        ratio = effective / spec.max_clock_hz
        return spec.idle_power_w + intensity * spec.dynamic_power_w * (
            ratio**spec.power_exponent
        )

    def idle_power_w(self, clock_hz: float) -> float:
        """Board power with no kernel resident.

        A small clock-dependent term models uncore/clock-tree power, so
        idling at pinned-max clocks costs slightly more than idling
        down-clocked (visible in long communication phases).
        """
        spec = self._spec
        ratio = clock_hz / spec.max_clock_hz
        return spec.idle_power_w * (0.80 + 0.20 * ratio)


class CpuPowerModel:
    """Host CPU package power as a function of activity in [0, 1]."""

    def __init__(self, spec: CpuSpec) -> None:
        self._spec = spec

    @property
    def spec(self) -> CpuSpec:
        return self._spec

    def power_w(self, activity: float) -> float:
        return self._spec.power_w(activity)


class NodeAuxPowerModel:
    """Constant memory + auxiliary ('Other') node power draws."""

    def __init__(self, spec: NodePowerSpec) -> None:
        self._spec = spec

    @property
    def memory_power_w(self) -> float:
        return self._spec.memory_power_w

    @property
    def aux_power_w(self) -> float:
        return self._spec.aux_power_w
