"""Simulated node hardware: clocks, GPUs, CPUs, power and DVFS models.

This package is the hardware substrate of the reproduction (DESIGN.md
§2): everything the paper measured on real A100 / MI250X nodes runs
here against calibrated performance and power response models on a
deterministic virtual clock.
"""

from .clock import ClockError, VirtualClock
from .cpu import SimulatedCpu
from .dvfs import DvfsGovernor, GovernorDecision
from .gpu import GpuError, SimulatedGpu
from .kernel import KernelLaunch, KernelRecord, merge_kernel_records
from .node import ComputeNode
from .perf_model import GpuPerfModel, KernelTiming
from .power_model import CpuPowerModel, GpuPowerModel, NodeAuxPowerModel
from .specs import (
    CpuSpec,
    ThermalSpec,
    GovernorSpec,
    GpuSpec,
    NodePowerSpec,
    a100_pcie_40gb,
    a100_sxm4_80gb,
    epyc_7713,
    epyc_7a53,
    intel_max_1550,
    mi250x_gcd,
    xeon_6258r_pair,
    xeon_max_9470_pair,
)

__all__ = [
    "ClockError",
    "VirtualClock",
    "SimulatedCpu",
    "DvfsGovernor",
    "GovernorDecision",
    "GpuError",
    "SimulatedGpu",
    "KernelLaunch",
    "KernelRecord",
    "merge_kernel_records",
    "ComputeNode",
    "GpuPerfModel",
    "KernelTiming",
    "CpuPowerModel",
    "GpuPowerModel",
    "NodeAuxPowerModel",
    "CpuSpec",
    "ThermalSpec",
    "GovernorSpec",
    "GpuSpec",
    "NodePowerSpec",
    "a100_pcie_40gb",
    "a100_sxm4_80gb",
    "epyc_7713",
    "epyc_7a53",
    "intel_max_1550",
    "mi250x_gcd",
    "xeon_6258r_pair",
    "xeon_max_9470_pair",
]
