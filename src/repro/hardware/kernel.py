"""GPU kernel launch descriptors.

A :class:`KernelLaunch` describes one unit of work submitted to a
:class:`~repro.hardware.gpu.SimulatedGpu`. It carries the *work*
(floating point operations and bytes moved) rather than a duration;
the duration is derived by the device's performance model at whatever
frequency the device is running — which is the whole point of the
paper: the same work takes different time and energy at different
clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class KernelLaunch:
    """One GPU kernel launch.

    Attributes
    ----------
    name:
        Kernel (SPH-EXA function) name, e.g. ``"MomentumEnergy"``.
    flops:
        Floating point operations performed by the launch.
    bytes_moved:
        Bytes moved through the memory system by the launch.
    power_intensity:
        Fraction of the device's dynamic power envelope drawn while the
        kernel executes (1.0 = full-tilt compute kernel, ~0.3 = sparse
        lightweight launch).
    launch_overhead:
        Fixed host-side launch latency in seconds, paid per launch and
        independent of frequency. Dominant for the bursts of tiny
        kernels inside ``DomainDecompAndSync`` (paper §IV-E).
    """

    name: str
    flops: float
    bytes_moved: float
    power_intensity: float = 1.0
    launch_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0:
            raise ValueError("kernel work must be non-negative")
        if not 0.0 <= self.power_intensity <= 1.0:
            raise ValueError("power_intensity must be within [0, 1]")
        if self.launch_overhead < 0:
            raise ValueError("launch_overhead must be non-negative")

    def scaled(self, factor: float) -> "KernelLaunch":
        """Return a copy with work scaled by ``factor`` (e.g. subsets)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return KernelLaunch(
            name=self.name,
            flops=self.flops * factor,
            bytes_moved=self.bytes_moved * factor,
            power_intensity=self.power_intensity,
            launch_overhead=self.launch_overhead,
        )


@dataclass
class KernelRecord:
    """Aggregate execution statistics for one kernel name on one device."""

    name: str
    launches: int = 0
    busy_seconds: float = 0.0
    energy_joules: float = 0.0
    flops: float = 0.0
    bytes_moved: float = 0.0

    def merge(self, other: "KernelRecord") -> None:
        """Accumulate another record for the same kernel into this one."""
        if other.name != self.name:
            raise ValueError(
                f"cannot merge record for {other.name!r} into {self.name!r}"
            )
        self.launches += other.launches
        self.busy_seconds += other.busy_seconds
        self.energy_joules += other.energy_joules
        self.flops += other.flops
        self.bytes_moved += other.bytes_moved


def merge_kernel_records(
    into: Dict[str, KernelRecord], update: Dict[str, KernelRecord]
) -> None:
    """Merge per-kernel record maps in place (used when gathering ranks)."""
    for name, rec in update.items():
        if name in into:
            into[name].merge(rec)
        else:
            into[name] = KernelRecord(
                name=rec.name,
                launches=rec.launches,
                busy_seconds=rec.busy_seconds,
                energy_joules=rec.energy_joules,
                flops=rec.flops,
                bytes_moved=rec.bytes_moved,
            )
