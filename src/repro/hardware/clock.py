"""Simulated time.

Everything in this library runs on *simulated* time: kernel durations,
power integration, pm_counters republish intervals, Slurm job windows,
MPI collective latencies. Wall-clock time never enters a result, which
makes every benchmark and test fully deterministic.

:class:`VirtualClock` is a monotonically increasing float of seconds.
Components that need to integrate quantities over time (power -> energy)
subscribe to the clock and receive ``(t0, t1)`` callbacks for every
interval the clock advances over. Because all state changes in the
simulation happen at event boundaries (a kernel starts, a clock is set,
a collective begins), power draw is piecewise constant over each
advanced interval and the integration is exact.
"""

from __future__ import annotations

from typing import Callable, List

#: Signature of a clock subscriber: called with the interval endpoints.
ClockListener = Callable[[float, float], None]


class ClockError(RuntimeError):
    """Raised on invalid clock manipulation (e.g. negative advance)."""


class VirtualClock:
    """A deterministic simulated clock measured in seconds.

    Parameters
    ----------
    start:
        Initial simulated time in seconds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._listeners: List[ClockListener] = []
        self._advancing = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def subscribe(self, listener: ClockListener) -> None:
        """Register ``listener(t0, t1)`` to be invoked on every advance.

        Listeners are invoked in subscription order. A listener must not
        re-enter :meth:`advance`.
        """
        if listener in self._listeners:
            raise ClockError("listener already subscribed")
        self._listeners.append(listener)

    def unsubscribe(self, listener: ClockListener) -> None:
        """Remove a previously registered listener."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            raise ClockError("listener was not subscribed") from None

    def advance(self, dt: float) -> float:
        """Advance simulated time by ``dt`` seconds and notify listeners.

        Returns the new simulated time. ``dt`` may be zero (no-op) but
        never negative; time is monotonic.
        """
        if dt < 0.0:
            raise ClockError(f"cannot advance clock by negative dt={dt!r}")
        if dt == 0.0:
            return self._now
        if self._advancing:
            raise ClockError("re-entrant clock advance from a listener")
        t0 = self._now
        t1 = t0 + dt
        self._advancing = True
        try:
            for listener in list(self._listeners):
                listener(t0, t1)
        finally:
            self._advancing = False
        self._now = t1
        return t1

    def advance_to(self, t: float) -> float:
        """Advance simulated time to absolute time ``t`` (monotonic)."""
        if t < self._now:
            raise ClockError(
                f"cannot move clock backwards: now={self._now!r}, target={t!r}"
            )
        return self.advance(t - self._now)

    # -- checkpoint ----------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpointable state (the current simulated time)."""
        return {"now": self._now}

    def restore_state(self, state: dict) -> None:
        """Restore from :meth:`state_dict` *without* firing listeners.

        Listeners integrate power over advanced intervals; a restore is
        a teleport back to an already-accounted instant, so energy must
        not be integrated again.
        """
        self._now = float(state["now"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.6f}s, listeners={len(self._listeners)})"
