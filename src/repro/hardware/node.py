"""The simulated compute node.

A :class:`ComputeNode` groups one host CPU, the node's GPUs (possibly
multiple GCDs per physical card, as on LUMI-G), and the constant memory
and auxiliary power draws. It exposes exactly the counters the HPE/Cray
``pm_counters`` interface publishes per node:

* ``energy``         — whole-node cumulative joules
* ``cpu_energy``     — CPU package joules
* ``memory_energy``  — DIMM joules
* ``accelN_energy``  — per *card* joules (two GCDs share one counter
  on MI250X, which is the measurement quirk of §III-B / §IV-A)

The *Other* slice of Fig. 4 is, as in the paper, computed downstream by
subtracting CPU + memory + accelerators from the node total.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .clock import VirtualClock
from .cpu import SimulatedCpu
from .gpu import SimulatedGpu
from .specs import CpuSpec, NodePowerSpec


class ComputeNode:
    """One node: CPU + GPUs/GCDs + memory + auxiliary consumers."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        cpu_spec: CpuSpec,
        power_spec: NodePowerSpec,
        gpus: Sequence[SimulatedGpu],
    ) -> None:
        if not gpus:
            raise ValueError("a compute node needs at least one GPU/GCD")
        self.name = name
        self._clock = clock
        self.cpu = SimulatedCpu(cpu_spec, clock)
        self.power_spec = power_spec
        self.gpus: List[SimulatedGpu] = list(gpus)
        self._memory_energy_j = 0.0
        self._aux_energy_j = 0.0
        # GCDs group into physical cards; a trailing partial card is
        # allowed (an allocation may use only one GCD of an MI250X).
        self._gcds_per_card = self.gpus[0].spec.gcds_per_card
        clock.subscribe(self._on_advance)

    # -- structure ---------------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        """The node's reference clock (the lead rank's clock)."""
        return self._clock

    @property
    def num_cards(self) -> int:
        """Physical accelerator cards on the node (last may be partial)."""
        g = self._gcds_per_card
        return (len(self.gpus) + g - 1) // g

    @property
    def gcds_per_card(self) -> int:
        return self._gcds_per_card

    def card_gpus(self, card: int) -> List[SimulatedGpu]:
        """The GCD devices sitting on physical card ``card``."""
        if not 0 <= card < self.num_cards:
            raise IndexError(f"card {card} out of range 0..{self.num_cards - 1}")
        lo = card * self._gcds_per_card
        return self.gpus[lo : min(lo + self._gcds_per_card, len(self.gpus))]

    # -- accounting ----------------------------------------------------------

    def _on_advance(self, t0: float, t1: float) -> None:
        dt = t1 - t0
        self._memory_energy_j += self.power_spec.memory_power_w * dt
        self._aux_energy_j += self.power_spec.aux_power_w * dt

    @property
    def cpu_energy_j(self) -> float:
        return self.cpu.energy_j

    @property
    def memory_energy_j(self) -> float:
        return self._memory_energy_j

    @property
    def aux_energy_j(self) -> float:
        """Auxiliary (NIC/fans/VRM/PSU losses) energy, joules."""
        return self._aux_energy_j

    def accel_energy_j(self, card: int) -> float:
        """Cumulative energy of physical card ``card`` (sums its GCDs)."""
        return sum(g.energy_j for g in self.card_gpus(card))

    @property
    def gpu_energy_j(self) -> float:
        """All accelerators on the node, joules."""
        return sum(g.energy_j for g in self.gpus)

    @property
    def node_energy_j(self) -> float:
        """Whole-node cumulative joules (what ``pm_counters`` 'energy' is)."""
        return (
            self.cpu_energy_j
            + self.memory_energy_j
            + self.aux_energy_j
            + self.gpu_energy_j
        )

    def state_dict(self) -> dict:
        """Node-local accumulators (GPUs checkpoint themselves)."""
        return {
            "memory_energy_j": self._memory_energy_j,
            "aux_energy_j": self._aux_energy_j,
            "cpu": self.cpu.state_dict(),
        }

    def restore_state(self, state: dict) -> None:
        self._memory_energy_j = float(state["memory_energy_j"])
        self._aux_energy_j = float(state["aux_energy_j"])
        self.cpu.restore_state(state["cpu"])

    def device_energy_breakdown_j(self) -> Dict[str, float]:
        """Energy per device class, keyed as the Fig. 4 legend."""
        return {
            "GPU": self.gpu_energy_j,
            "CPU": self.cpu_energy_j,
            "Memory": self.memory_energy_j,
            "Other": self.aux_energy_j,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ComputeNode({self.name!r}, cards={self.num_cards}, "
            f"gcds_per_card={self._gcds_per_card}, "
            f"energy={self.node_energy_j:.1f} J)"
        )
