"""The simulated host CPU.

SPH-EXA moves all simulation data to the GPU up front and runs there;
the host CPUs are left to drive kernel launches, MPI progress and the
(deliberately CPU-side) profiling, so their power is dominated by idle
draw plus a small activity term. The paper observes exactly this:
per-function CPU energy is essentially proportional to the function's
wall time (§IV-B).
"""

from __future__ import annotations

from .clock import VirtualClock
from .power_model import CpuPowerModel
from .specs import CpuSpec


class SimulatedCpu:
    """One host CPU package group integrating energy on a node clock."""

    #: Activity while the host merely drives GPU kernels / waits on MPI.
    DRIVING_ACTIVITY = 0.12

    def __init__(self, spec: CpuSpec, clock: VirtualClock) -> None:
        self.spec = spec
        self._clock = clock
        self._power = CpuPowerModel(spec)
        self._activity = self.DRIVING_ACTIVITY
        self._freq_khz = spec.nominal_freq_khz
        self._energy_j = 0.0
        clock.subscribe(self._on_advance)

    @property
    def clock(self) -> VirtualClock:
        """The clock this package integrates energy over."""
        return self._clock

    @property
    def activity(self) -> float:
        """Current activity level in [0, 1]."""
        return self._activity

    def set_activity(self, activity: float) -> None:
        """Set host activity (e.g. raised during host-side phases)."""
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity must be in [0, 1], got {activity!r}")
        self._activity = activity

    @property
    def frequency_khz(self) -> int:
        """Current CPU clock (Slurm --cpu-freq units: kHz)."""
        return self._freq_khz

    def set_frequency_khz(self, freq_khz: int) -> int:
        """Set the CPU clock (clamped to the supported range)."""
        self._freq_khz = self.spec.clamp_freq_khz(freq_khz)
        return self._freq_khz

    @property
    def slowdown_factor(self) -> float:
        """Host-phase slowdown relative to the nominal clock (>= 1)."""
        return self.spec.nominal_freq_khz / self._freq_khz

    def power_w(self) -> float:
        """Instantaneous package power."""
        return self.spec.power_w(self._activity, self._freq_khz)

    @property
    def energy_j(self) -> float:
        """Cumulative package energy since construction, joules."""
        return self._energy_j

    def _on_advance(self, t0: float, t1: float) -> None:
        self._energy_j += self.power_w() * (t1 - t0)

    # -- checkpoint ----------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "activity": self._activity,
            "freq_khz": self._freq_khz,
            "energy_j": self._energy_j,
        }

    def restore_state(self, state: dict) -> None:
        self._activity = float(state["activity"])
        self._freq_khz = int(state["freq_khz"])
        self._energy_j = float(state["energy_j"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimulatedCpu({self.spec.name!r}, activity={self._activity:.2f}, "
            f"energy={self._energy_j:.1f} J)"
        )
