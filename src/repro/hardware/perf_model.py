"""Kernel performance model.

The model is the classic *serial roofline* ("leading loads") form: a
kernel's duration is the sum of a compute phase, whose throughput
scales linearly with the graphics clock, and a memory phase, which is
pinned to the (never rescaled) memory clock:

    t(f) = FLOPs / (T_fp * eff * f / f_max)  +  bytes / BW  +  overhead

This yields exactly the frequency response the paper measures: a kernel
with compute-bound fraction kappa at the reference clock slows down by
``kappa * (f_max / f - 1)`` when down-clocked, so compute-heavy kernels
(MomentumEnergy, IADVelocityDivCurl) pay > 20 % at 1005 MHz while
lightweight kernels barely notice (Fig. 8a).
"""

from __future__ import annotations

from dataclasses import dataclass

from .kernel import KernelLaunch
from .specs import GpuSpec


@dataclass(frozen=True)
class KernelTiming:
    """Breakdown of one launch's duration at a given clock."""

    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.memory_seconds + self.overhead_seconds

    @property
    def compute_fraction(self) -> float:
        """Fraction of the duration that scales with the graphics clock."""
        total = self.total_seconds
        if total <= 0.0:
            return 0.0
        return self.compute_seconds / total


class GpuPerfModel:
    """Maps (kernel work, graphics clock) -> duration for one device."""

    def __init__(self, spec: GpuSpec) -> None:
        self._spec = spec

    @property
    def spec(self) -> GpuSpec:
        return self._spec

    def timing(self, kernel: KernelLaunch, clock_hz: float) -> KernelTiming:
        """Duration breakdown of ``kernel`` at graphics clock ``clock_hz``."""
        spec = self._spec
        if clock_hz <= 0.0:
            raise ValueError(f"clock must be positive, got {clock_hz!r}")
        eff = spec.kernel_efficiency(kernel.name)
        throughput = spec.fp_throughput * eff * (clock_hz / spec.max_clock_hz)
        compute = kernel.flops / throughput if kernel.flops > 0.0 else 0.0
        memory = (
            kernel.bytes_moved / spec.mem_bandwidth
            if kernel.bytes_moved > 0.0
            else 0.0
        )
        return KernelTiming(
            compute_seconds=compute,
            memory_seconds=memory,
            overhead_seconds=kernel.launch_overhead,
        )

    def duration(self, kernel: KernelLaunch, clock_hz: float) -> float:
        """Total duration of ``kernel`` at ``clock_hz`` in seconds."""
        return self.timing(kernel, clock_hz).total_seconds

    def compute_fraction(self, kernel: KernelLaunch, clock_hz: float) -> float:
        """Frequency-sensitive fraction kappa of the kernel at ``clock_hz``."""
        return self.timing(kernel, clock_hz).compute_fraction

    def slowdown(self, kernel: KernelLaunch, clock_hz: float) -> float:
        """Duration at ``clock_hz`` relative to the device's max clock."""
        ref = self.duration(kernel, self._spec.max_clock_hz)
        if ref <= 0.0:
            return 1.0
        return self.duration(kernel, clock_hz) / ref
