"""The campaign status document: one serializer for CLI and HTTP.

``repro campaign status --json`` and the service's ``GET
/campaigns/{id}`` must describe a campaign directory identically —
same fields, same counting rules — or operators end up reconciling two
dialects of "done". Both paths call :func:`build_status_doc`; the CLI's
table renderer (:func:`status_rows`) is a projection of the same
document, not a second computation.

Counting rules (the only subtle part):

* with a spec, the universe is the spec's expanded grid — artifacts
  from older spec revisions in the same directory are ignored;
* ``done`` requires the run artifact to exist (manifest alone is not
  enough — :meth:`RunStore.completed_keys` semantics);
* a key is ``failed`` only while its *latest* outcome is a failure and
  it is not done; failed keys remain ``missing`` too, because a resume
  will retry them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .spec import CampaignSpec
from .store import RunStore


def build_status_doc(
    store: RunStore, spec: Optional[CampaignSpec] = None
) -> Dict[str, Any]:
    """The canonical machine-readable status of one campaign store."""
    doc: Dict[str, Any] = {
        "schema": 1,
        "kind": "campaign-status",
        "campaign": store.campaign,
    }
    if spec is None:
        counts = store.counts()
        doc.update(
            {
                "grid_units": None,
                "done": counts["done"],
                "missing": None,
                "failed": counts["failed"],
                "complete": None,
            }
        )
        return doc
    grid = {unit.key for unit in spec.expand()}
    done = store.completed_keys() & grid
    failed = (store.failed_keys() & grid) - done
    doc.update(
        {
            "campaign": spec.name,
            "grid_units": len(grid),
            "done": len(done),
            "missing": len(grid) - len(done),
            "failed": len(failed),
            "complete": len(done) == len(grid),
        }
    )
    return doc


def status_rows(doc: Dict[str, Any]) -> List[Tuple[str, str]]:
    """The status document as (state, count) table rows for the CLI."""
    if doc["grid_units"] is None:
        return [("done", str(doc["done"])), ("failed", str(doc["failed"]))]
    return [
        ("grid units", str(doc["grid_units"])),
        ("done", str(doc["done"])),
        ("missing", str(doc["missing"])),
        ("failed", str(doc["failed"])),
    ]
