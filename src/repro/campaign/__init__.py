"""Resumable, parallel experiment-campaign orchestration.

A campaign is the unit of work behind every figure in the paper: a
declarative grid of workload × frequency policy × clock × seed ×
system expanded into run units with content-addressed keys, drained in
parallel into a persistent run store, and folded into EDP/Pareto
summaries. Because completed keys are skipped on re-run, a killed
campaign resumes for free — ``repro campaign run`` and ``resume`` are
the same operation.
"""

from .aggregate import (
    build_summary,
    edp_ranking,
    render_summary,
    summary_json,
    write_summary,
)
from .executor import (
    CampaignExecutor,
    CampaignRunStatus,
    ExecutorConfig,
    InFlightRegistry,
    run_campaign,
)
from .spec import (
    CAMPAIGN_SCHEMA_VERSION,
    POLICY_KINDS,
    CampaignSpec,
    RunUnit,
    canonical_json,
    policy_label,
    run_key,
)
from .status_doc import build_status_doc, status_rows
from .store import RunStore
from .worker import (
    build_policy,
    classify_error,
    execute_unit,
    report_from_result,
    run_unit_safe,
)

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "POLICY_KINDS",
    "CampaignExecutor",
    "CampaignRunStatus",
    "CampaignSpec",
    "ExecutorConfig",
    "InFlightRegistry",
    "RunStore",
    "RunUnit",
    "build_policy",
    "build_status_doc",
    "build_summary",
    "canonical_json",
    "classify_error",
    "edp_ranking",
    "execute_unit",
    "policy_label",
    "render_summary",
    "report_from_result",
    "run_campaign",
    "run_key",
    "run_unit_safe",
    "status_rows",
    "summary_json",
    "write_summary",
]
