"""Parallel, resumable campaign execution.

The executor drains a list of :class:`~repro.campaign.spec.RunUnit`
configurations against a :class:`~repro.campaign.store.RunStore`:

* units whose content-addressed key is already ``done`` in the store
  are **skipped** — re-invoking a finished or killed campaign is
  idempotent, which is the whole resume story;
* remaining units run on a ``concurrent.futures.ProcessPoolExecutor``
  with a configurable worker count (``workers <= 1`` runs inline in
  this process, the deterministic serial path);
* failures are classified with the :mod:`repro.faults` error taxonomy
  (:func:`~repro.campaign.worker.classify_error`): transient failures
  retry with bounded exponential backoff, permanent ones are recorded
  and the campaign moves on;
* per-unit wall-clock timeouts mark overdue units as transient
  failures. A timed-out worker process cannot be interrupted
  mid-computation — its eventual result is discarded — so timeouts are
  best-effort backpressure, not preemption;
* ``Ctrl-C`` drains gracefully: outcomes that already finished are
  persisted, queued work is cancelled, and the returned status is
  flagged ``interrupted`` — the next invocation resumes at the first
  missing unit;
* a ``should_stop`` callback makes the same drain available
  programmatically (the service's campaign cancellation), and an
  ``on_event`` callback streams unit-level progress to whoever is
  watching (the service's SSE feed);
* an :class:`InFlightRegistry` shared between concurrent executors
  deduplicates *in-flight* units: when two overlapping campaigns drain
  into the same store at once, each content-addressed key is executed
  by exactly one executor — the other waits for the owner's outcome
  and records the unit as ``attached``.

Progress is emitted through :mod:`repro.telemetry` when a collector is
supplied: one job-track span per executed unit (lanes = worker slots)
plus instants for skips, retries and failures, so ``repro trace
export`` renders a campaign timeline like any other run trace.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set

from ..telemetry.events import TRACK_JOB
from .spec import CampaignSpec, RunUnit
from .store import RunStore
from .worker import run_unit_safe

#: Futures kept in flight beyond the worker count (submission backlog).
_BACKLOG = 2

#: Provenance labels a unit can end a drain with.
PROVENANCE_EXECUTED = "executed"
PROVENANCE_CACHED = "cached"
PROVENANCE_ATTACHED = "attached"
PROVENANCE_FAILED = "failed"


class InFlightRegistry:
    """Claim table for content-addressed run keys being executed *now*.

    Concurrent executors draining overlapping grids into one store each
    try to :meth:`claim` a key before executing it. Exactly one wins;
    the others :meth:`wait` for the owner to :meth:`release` (which
    happens once the outcome is durably in the store) and then re-check
    the store instead of recomputing. The registry is process-local —
    cross-process dedup is already covered by the store's completed-key
    skip, this closes the window *while* a unit runs.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._claims: Dict[str, threading.Event] = {}

    def claim(self, key: str) -> bool:
        """True when the caller now owns execution of ``key``."""
        with self._lock:
            if key in self._claims:
                return False
            self._claims[key] = threading.Event()
            return True

    def release(self, key: str) -> None:
        """Give up a claim and wake every waiter (idempotent)."""
        with self._lock:
            event = self._claims.pop(key, None)
        if event is not None:
            event.set()

    def wait(self, key: str, timeout: Optional[float] = None) -> bool:
        """Block until ``key`` is unclaimed; True unless timed out."""
        with self._lock:
            event = self._claims.get(key)
        if event is None:
            return True
        return event.wait(timeout)

    def in_flight(self) -> Set[str]:
        with self._lock:
            return set(self._claims)


@dataclass(frozen=True)
class ExecutorConfig:
    """Knobs of one campaign execution (not part of run identity)."""

    #: Worker processes; ``<= 1`` executes inline (serial).
    workers: int = 1
    #: Per-unit wall-clock timeout, seconds; ``None`` = unbounded.
    timeout_s: Optional[float] = None
    #: Retries per unit after transient failures.
    max_retries: int = 2
    #: First retry backoff, seconds (doubles per attempt).
    retry_backoff_s: float = 0.1
    backoff_multiplier: float = 2.0
    #: Execute at most this many missing units (smoke tests, previews).
    max_units: Optional[int] = None
    #: Declare a worker lane dead after this many seconds without a
    #: beat (``None`` disables supervision). Dead lanes get a SIGTERM
    #: (best effort), lose their in-flight unit to the transient-retry
    #: path, and release their claim.
    lane_dead_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry backoff must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if self.max_units is not None and self.max_units < 0:
            raise ValueError("max_units must be >= 0 (or None)")
        if self.lane_dead_after_s is not None and self.lane_dead_after_s <= 0:
            raise ValueError("lane_dead_after_s must be positive (or None)")

    def backoff_for_attempt(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), seconds."""
        return self.retry_backoff_s * self.backoff_multiplier**attempt


@dataclass
class CampaignRunStatus:
    """What one executor invocation did."""

    total: int = 0
    skipped: int = 0
    executed: int = 0
    attached: int = 0
    failed: int = 0
    retries: int = 0
    interrupted: bool = False
    wall_s: float = 0.0
    failed_units: List[str] = field(default_factory=list)
    #: Per-unit outcome provenance: key -> executed|cached|attached|failed.
    provenance: Dict[str, str] = field(default_factory=dict)
    #: Units whose (re)execution resumed from a simulation checkpoint.
    checkpoint_hits: int = 0
    #: Worker lanes declared dead by heartbeat supervision.
    lanes_reaped: int = 0

    @property
    def complete(self) -> bool:
        """Every unit of the grid is now in the store."""
        return self.skipped + self.executed + self.attached == self.total

    def describe(self) -> str:
        line = (
            f"{self.total} units: {self.skipped} cached (skipped), "
            f"{self.executed} executed, {self.failed} failed "
            f"({self.retries} retries) in {self.wall_s:.2f}s wall"
        )
        if self.attached:
            line += f" [{self.attached} attached to concurrent campaigns]"
        if self.checkpoint_hits:
            line += f" [{self.checkpoint_hits} resumed from checkpoints]"
        if self.lanes_reaped:
            line += f" [{self.lanes_reaped} dead lanes reaped]"
        if self.interrupted:
            line += " [interrupted — re-run to resume]"
        return line


class CampaignExecutor:
    """Drains run units into a store, in parallel, idempotently."""

    def __init__(
        self,
        store: RunStore,
        config: Optional[ExecutorConfig] = None,
        telemetry: Optional[Any] = None,
        min_unit_wall_s: float = 0.0,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        inflight: Optional[InFlightRegistry] = None,
        checkpoint_every: int = 0,
        trace_context: Optional[Any] = None,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.store = store
        self.config = config or ExecutorConfig()
        self.telemetry = telemetry
        self.min_unit_wall_s = float(min_unit_wall_s)
        self.on_event = on_event
        self.should_stop = should_stop
        self.inflight = inflight
        #: Worker-side simulation checkpoint cadence (0 = disabled).
        self.checkpoint_every = int(checkpoint_every)
        #: The campaign's TraceContext. Explicit, or inherited from the
        #: collector (the service configures tracing on its collector);
        #: when set, every dispatched unit gets a deterministic child
        #: context and records per-process trace shards.
        self.trace_context = (
            trace_context
            if trace_context is not None
            else getattr(telemetry, "context", None)
        )
        self._t0 = 0.0
        self._heartbeats: Dict[str, Dict[str, Any]] = {}
        self._claimed: Set[str] = set()

    # -- progress events -----------------------------------------------------

    def _notify(self, event: str, unit: RunUnit, **extra: Any) -> None:
        """Deliver one progress event; observer bugs never kill a drain."""
        if self.on_event is None:
            return
        payload: Dict[str, Any] = {
            "event": event, "key": unit.key, "unit": unit.label,
        }
        payload.update(extra)
        try:
            self.on_event(payload)
        except Exception:  # noqa: BLE001 - observer-side failure only
            pass

    def _stopping(self) -> bool:
        return self.should_stop is not None and self.should_stop()

    def _release(self, unit: RunUnit) -> None:
        if self.inflight is not None and unit.key in self._claimed:
            self._claimed.discard(unit.key)
            self.inflight.release(unit.key)

    # -- telemetry helpers ---------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _emit_span(
        self, name: str, lane: int, t0: float, t1: float, **args: Any
    ) -> None:
        if self.telemetry is not None:
            self.telemetry.emit_phase(
                name, lane, t0, t1, track=TRACK_JOB, **args
            )

    def _emit_instant(self, name: str, lane: int, **args: Any) -> None:
        if self.telemetry is not None:
            self.telemetry.emit_instant(
                name, lane, ts=self._now(), track=TRACK_JOB, **args
            )

    def _count(self, metric: str, **labels: str) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(metric, **labels).inc()

    # -- worker heartbeats ---------------------------------------------------

    def _beat(self, lane: int, state: str, unit: str = "") -> None:
        """Record lane liveness: gauge + atomic ``heartbeats.json``.

        ``repro monitor watch`` reads the file and fires the
        ``campaign_worker_stalled`` rule on lanes whose heartbeat goes
        stale while not ``idle``. Heartbeat persistence must never take
        a campaign down, so disk errors are swallowed.
        """
        now = time.time()
        record: Dict[str, Any] = {"updated_s": now, "state": state}
        if unit:
            record["unit"] = unit
        self._heartbeats[str(lane)] = record
        if self.telemetry is not None:
            self.telemetry.metrics.gauge(
                "campaign_worker_heartbeat", lane=lane
            ).set(now)
        try:
            self.store.write_heartbeats(self._heartbeats)
        except OSError:  # pragma: no cover - disk-full / perms only
            pass

    # -- worker dispatch -------------------------------------------------------

    def _checkpoint_path(self, unit: RunUnit) -> Optional[str]:
        if self.checkpoint_every <= 0:
            return None
        return str(self.store.checkpoint_path(unit.key))

    def _beat_path(self, lane: int) -> str:
        return str(self.store.lane_beat_path(lane))

    def _trace_for(self, unit: RunUnit):
        """(trace dict, shard dir) for one unit — or ``(None, None)``.

        The child context derives from the campaign context by the
        unit's content-addressed key, so a resubmitted or resumed unit
        reattaches to the same trace identity deterministically. The
        context travels as a *call argument*, never inside the unit
        config, keeping run keys byte-stable.
        """
        if self.trace_context is None:
            return None, None
        child = self.trace_context.child(f"unit:{unit.key}")
        return child.to_dict(), str(self.store.unit_trace_dir(unit.key))

    # -- outcome handling ----------------------------------------------------

    def _handle_outcome(
        self,
        unit: RunUnit,
        outcome: Mapping[str, Any],
        attempts: int,
        status: CampaignRunStatus,
    ) -> str:
        """Record one worker outcome; return done | retry | failed."""
        if outcome.get("ok"):
            result = dict(outcome["result"])
            self.store.record_done(unit.key, unit.config(), result)
            if self.checkpoint_every > 0:
                # The durable artifact supersedes the mid-run snapshot.
                self.store.clear_checkpoint(unit.key)
                if result.get("checkpoint") == "hit":
                    status.checkpoint_hits += 1
                    self._count("campaign_checkpoint_hits")
            self._release(unit)
            status.executed += 1
            status.provenance[unit.key] = PROVENANCE_EXECUTED
            self._count("campaign_units_done")
            self._notify("unit-done", unit, attempts=attempts)
            return "done"
        error = dict(outcome.get("error", {}))
        transient = error.get("severity") == "transient"
        if transient and attempts < self.config.max_retries:
            status.retries += 1
            self._count("campaign_unit_retries")
            self._emit_instant(
                "unit-retry", 0, key=unit.key, unit=unit.label,
                attempt=attempts + 1, error=error.get("message", ""),
            )
            self._notify(
                "unit-retry", unit, attempt=attempts + 1,
                error=error.get("message", ""),
            )
            time.sleep(self.config.backoff_for_attempt(attempts))
            return "retry"
        self.store.record_failed(unit.key, unit.config(), error)
        self._release(unit)
        status.failed += 1
        status.failed_units.append(unit.label)
        status.provenance[unit.key] = PROVENANCE_FAILED
        self._count("campaign_units_failed")
        self._emit_instant(
            "unit-failed", 0, key=unit.key, unit=unit.label,
            error=error.get("message", ""),
        )
        self._notify("unit-failed", unit, error=error.get("message", ""))
        return "failed"

    # -- serial path ---------------------------------------------------------

    def _run_inline(
        self, pending: Sequence[RunUnit], status: CampaignRunStatus
    ) -> None:
        for unit in pending:
            if self._stopping():
                status.interrupted = True
                self._emit_instant("campaign-interrupted", 0)
                return
            attempts = 0
            try:
                while True:
                    t_start = self._now()
                    self._beat(0, "running", unit=unit.label)
                    self._notify("unit-start", unit, attempts=attempts)
                    trace, trace_dir = self._trace_for(unit)
                    outcome = run_unit_safe(
                        unit.config(),
                        self.min_unit_wall_s,
                        checkpoint_path=self._checkpoint_path(unit),
                        checkpoint_every=self.checkpoint_every,
                        beat_path=self._beat_path(0),
                        trace=trace,
                        trace_dir=trace_dir,
                    )
                    verdict = self._handle_outcome(
                        unit, outcome, attempts, status
                    )
                    if verdict == "done":
                        self._emit_span(
                            unit.label, 0, t_start, self._now(),
                            key=unit.key, status="done", attempts=attempts,
                        )
                    if verdict != "retry":
                        break
                    attempts += 1
            except KeyboardInterrupt:
                status.interrupted = True
                self._emit_instant("campaign-interrupted", 0)
                return

    # -- parallel path -------------------------------------------------------

    def _transient_outcome(self, error_type: str, message: str) -> Dict[str, Any]:
        return {
            "ok": False,
            "error": {
                "type": error_type,
                "message": message,
                "severity": "transient",
            },
        }

    def _poll_interval(self) -> Optional[float]:
        """How long one ``wait()`` may block before supervision runs."""
        cfg = self.config
        poll = cfg.timeout_s
        if cfg.lane_dead_after_s is not None:
            tick = max(0.05, cfg.lane_dead_after_s / 4.0)
            poll = tick if poll is None else min(poll, tick)
        return poll

    def _lane_is_dead(
        self, unit: RunUnit, lane: int, dispatched_wall: float
    ) -> bool:
        """Missed-heartbeat verdict for one in-flight lane.

        A lane is live while its beat file carries a fresh beat *for
        the unit it was dispatched* (a leftover beat from the previous
        occupant must not vouch for the current one). Before the first
        step completes there is no beat at all, so the dispatch time
        anchors the grace period.
        """
        threshold = self.config.lane_dead_after_s
        beat = self.store.read_lane_beats().get(str(lane), {})
        last = dispatched_wall
        if beat.get("key") == unit.key:
            last = max(last, float(beat.get("updated_s", 0.0)))
        return time.time() - last > threshold

    def _reap_lane(self, lane: int) -> None:
        """Best-effort SIGTERM to a dead lane's recorded worker pid.

        With checkpointing enabled the worker's SIGTERM handler turns
        this into a :class:`~repro.faults.JobPreempted`, so a hung-but-
        alive worker persists a final checkpoint and frees its pool
        slot; a truly dead process ignores it harmlessly.
        """
        beat = self.store.read_lane_beats().get(str(lane), {})
        pid = beat.get("pid")
        if not pid:
            return
        try:
            os.kill(int(pid), signal.SIGTERM)
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass

    def _run_pool(
        self, pending: Sequence[RunUnit], status: CampaignRunStatus
    ) -> None:
        cfg = self.config
        queue = deque((unit, 0) for unit in pending)
        # future -> (unit, attempts, t_start, lane, dispatched_wall)
        in_flight: Dict[Any, Any] = {}
        next_lane = 0
        pool = ProcessPoolExecutor(max_workers=cfg.workers)
        try:
            while queue or in_flight:
                if self._stopping():
                    status.interrupted = True
                    self._emit_instant("campaign-interrupted", 0)
                    return
                while queue and len(in_flight) < cfg.workers + _BACKLOG:
                    unit, attempts = queue.popleft()
                    lane = next_lane % cfg.workers
                    next_lane += 1
                    self._beat(lane, "running", unit=unit.label)
                    self._notify("unit-start", unit, attempts=attempts)
                    trace, trace_dir = self._trace_for(unit)
                    future = pool.submit(
                        run_unit_safe,
                        unit.config(),
                        self.min_unit_wall_s,
                        self._checkpoint_path(unit),
                        self.checkpoint_every,
                        self._beat_path(lane),
                        trace,
                        trace_dir,
                    )
                    in_flight[future] = (
                        unit, attempts, self._now(), lane, time.time()
                    )
                finished, _ = wait(
                    list(in_flight),
                    timeout=self._poll_interval(),
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in finished:
                    unit, attempts, t_start, lane, _ = in_flight.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        # A worker process died hard (SIGKILL, OOM):
                        # every sibling future is poisoned too. Convert
                        # this unit to a transient retry and rebuild the
                        # pool below.
                        broken = True
                        outcome = self._transient_outcome(
                            "BrokenProcessPool",
                            "worker process died mid-unit",
                        )
                    self._beat(lane, "waiting")
                    verdict = self._handle_outcome(
                        unit, outcome, attempts, status
                    )
                    if verdict == "done":
                        self._emit_span(
                            unit.label, lane, t_start, self._now(),
                            key=unit.key, status="done", attempts=attempts,
                        )
                    elif verdict == "retry":
                        queue.append((unit, attempts + 1))
                if broken:
                    # Drain the rest of the poisoned pool: requeue every
                    # in-flight unit as a transient failure, then start
                    # a fresh pool so the campaign keeps going.
                    for future, (unit, attempts, t_start, lane, _) in list(
                        in_flight.items()
                    ):
                        del in_flight[future]
                        verdict = self._handle_outcome(
                            unit,
                            self._transient_outcome(
                                "BrokenProcessPool",
                                "worker pool lost this unit",
                            ),
                            attempts,
                            status,
                        )
                        if verdict == "retry":
                            queue.append((unit, attempts + 1))
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=cfg.workers)
                    self._count("campaign_pools_rebuilt")
                    self._emit_instant("pool-rebuilt", 0)
                    continue
                if not finished and cfg.timeout_s is not None:
                    # Nothing completed within the timeout window:
                    # expire every overdue future (best effort — the
                    # worker keeps running; its late result is
                    # discarded because the future left in_flight).
                    now = self._now()
                    for future in list(in_flight):
                        unit, attempts, t_start, lane, _ = in_flight[future]
                        if now - t_start < cfg.timeout_s:
                            continue
                        del in_flight[future]
                        future.cancel()
                        verdict = self._handle_outcome(
                            unit,
                            self._transient_outcome(
                                "TimeoutError",
                                f"unit exceeded {cfg.timeout_s:g}s wall",
                            ),
                            attempts,
                            status,
                        )
                        if verdict == "retry":
                            queue.append((unit, attempts + 1))
                if cfg.lane_dead_after_s is not None:
                    for future in list(in_flight):
                        unit, attempts, t_start, lane, dispatched = in_flight[
                            future
                        ]
                        if future.done() or not self._lane_is_dead(
                            unit, lane, dispatched
                        ):
                            continue
                        del in_flight[future]
                        future.cancel()
                        self._reap_lane(lane)
                        status.lanes_reaped += 1
                        self._count("campaign_lanes_reaped")
                        self._emit_instant(
                            "lane-dead", lane, key=unit.key, unit=unit.label
                        )
                        self._beat(lane, "dead", unit=unit.label)
                        verdict = self._handle_outcome(
                            unit,
                            self._transient_outcome(
                                "LaneDead",
                                f"lane {lane} missed heartbeats for "
                                f"{cfg.lane_dead_after_s:g}s",
                            ),
                            attempts,
                            status,
                        )
                        if verdict == "retry":
                            queue.append((unit, attempts + 1))
        except KeyboardInterrupt:
            status.interrupted = True
            # Persist whatever already finished, drop the rest.
            for future, (unit, attempts, t_start, lane, _) in list(
                in_flight.items()
            ):
                if future.done() and not future.cancelled():
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        continue
                    if outcome.get("ok"):
                        self._handle_outcome(
                            unit, outcome, attempts, status
                        )
                        self._emit_span(
                            unit.label, lane, t_start, self._now(),
                            key=unit.key, status="done", attempts=attempts,
                        )
                else:
                    future.cancel()
            self._emit_instant("campaign-interrupted", 0)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- entry point ---------------------------------------------------------

    def _attach_deferred(
        self, deferred: Sequence[RunUnit], status: CampaignRunStatus
    ) -> None:
        """Resolve units another executor claimed while we drained.

        For each deferred unit: wait for the owner to release, then
        take its stored outcome (``attached`` — no duplicate
        execution). If the owner failed or vanished without a ``done``
        record, claim the key ourselves and execute it after all.
        """
        for unit in deferred:
            while True:
                if self._stopping():
                    status.interrupted = True
                    return
                # Bounded wait so cancellation stays responsive even
                # while parked behind a long-running owner.
                self.inflight.wait(unit.key, timeout=0.5)
                if unit.key in self.store.completed_keys():
                    status.attached += 1
                    status.provenance[unit.key] = PROVENANCE_ATTACHED
                    self._count("campaign_units_attached")
                    self._emit_instant(
                        "unit-attached", 0, key=unit.key, unit=unit.label
                    )
                    self._notify("unit-attached", unit)
                    break
                if self.inflight.claim(unit.key):
                    self._claimed.add(unit.key)
                    self._run_inline([unit], status)
                    break

    def run(self, units: Sequence[RunUnit]) -> CampaignRunStatus:
        """Execute every unit not already in the store."""
        self._t0 = time.perf_counter()
        # Drop liveness files from previous (possibly killed) drains so
        # monitor watchers never alarm on another invocation's ghosts
        # and lane supervision starts from a clean slate.
        try:
            self.store.reset_heartbeats()
            self.store.reset_lane_beats()
        except OSError:  # pragma: no cover - disk-full / perms only
            pass
        status = CampaignRunStatus(total=len(units))
        done = self.store.completed_keys()
        pending: List[RunUnit] = []
        deferred: List[RunUnit] = []
        for unit in units:
            if unit.key in done:
                status.skipped += 1
                status.provenance[unit.key] = PROVENANCE_CACHED
                self._count("campaign_units_skipped")
                self._emit_instant(
                    "unit-skipped", 0, key=unit.key, unit=unit.label
                )
                self._notify("unit-cached", unit)
            else:
                pending.append(unit)
        if self.config.max_units is not None:
            pending = pending[: self.config.max_units]
        if self.inflight is not None:
            claimed: List[RunUnit] = []
            for unit in pending:
                if self.inflight.claim(unit.key):
                    self._claimed.add(unit.key)
                    claimed.append(unit)
                else:
                    deferred.append(unit)
            pending = claimed
        try:
            if pending:
                if self.config.workers <= 1:
                    self._run_inline(pending, status)
                else:
                    self._run_pool(pending, status)
            if deferred and not status.interrupted:
                self._attach_deferred(deferred, status)
        finally:
            # A drain must never exit holding claims (crash, interrupt,
            # max_units truncation): waiters would park forever.
            for key in list(self._claimed):
                self._claimed.discard(key)
                self.inflight.release(key)
        # Every lane goes idle when the drain finishes (or is
        # interrupted): watchers must not see the last unit's heartbeat
        # age into a phantom stall.
        for lane in list(self._heartbeats):
            self._beat(int(lane), "idle")
        status.wall_s = time.perf_counter() - self._t0
        self._emit_span(
            "campaign", 0, 0.0, status.wall_s,
            total=status.total, skipped=status.skipped,
            executed=status.executed, failed=status.failed,
        )
        return status


def run_campaign(
    spec: CampaignSpec,
    root: str,
    config: Optional[ExecutorConfig] = None,
    telemetry: Optional[Any] = None,
) -> tuple:
    """Expand a spec and drain it into ``root``; returns (status, store).

    The spec is persisted as ``<root>/spec.json`` so later
    ``resume``/``status``/``report`` invocations need only the
    directory, and the campaign telemetry trace (when a collector is
    given) is written to ``<root>/trace.jsonl``.
    """
    store = RunStore(root, campaign=spec.name)
    if store.campaign is not None and store.campaign != spec.name:
        raise ValueError(
            f"store at {root!r} belongs to campaign {store.campaign!r}, "
            f"not {spec.name!r}"
        )
    spec.save(str(store.spec_path))
    cfg = config if config is not None else ExecutorConfig()
    oversub = spec.check_oversubscription(cfg.workers)
    if oversub is not None:
        # Under the process backend every lane spawns ``ranks`` real OS
        # processes; clamp the lane count so workers x ranks fits the
        # host instead of thrashing it.
        warnings.warn(oversub, RuntimeWarning, stacklevel=2)
        cfg = replace(
            cfg, workers=max(1, (os.cpu_count() or 1) // spec.ranks)
        )
    executor = CampaignExecutor(
        store,
        config=cfg,
        telemetry=telemetry,
        min_unit_wall_s=spec.min_unit_wall_s,
        checkpoint_every=spec.checkpoint_every,
    )
    status = executor.run(spec.expand())
    if telemetry is not None:
        from ..telemetry import write_trace_jsonl

        context = getattr(telemetry, "context", None)
        extra = (
            {"trace_id": context.trace_id} if context is not None else {}
        )
        write_trace_jsonl(str(store.trace_path), telemetry.events, **extra)
    return status, store
