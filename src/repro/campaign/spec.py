"""Declarative campaign specifications and grid expansion.

A :class:`CampaignSpec` describes one experiment *sweep* — the cross
product of workloads × frequency policies × clocks × seeds × system
presets that every figure and table of the paper is built from (Figs.
6-8 sweep clocks and policies, Table I sweeps systems). The spec is
pure data, loadable from JSON or a plain dict, and expands into a flat
list of :class:`RunUnit` configurations.

Every unit owns a **content-addressed run key**: a stable hash of the
unit's canonical configuration. Two campaigns that contain the same
configuration produce the same key, which is what makes the run store
idempotent — a completed key is never executed twice, so a killed
campaign resumes for free and overlapping sweeps share work.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..catalog import is_path_ref, resolve_system
from ..faults import scenario_names
from ..sph.workload import resolve_workload
from ..systems import all_system_names

#: Version of the campaign file formats (spec, manifest, run, summary).
CAMPAIGN_SCHEMA_VERSION = 1

#: Policy kinds a spec may name.
POLICY_KINDS = ("baseline", "static", "dvfs", "mandyn", "autodyn")


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering: sorted keys, no whitespace."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def run_key(config: Mapping[str, Any]) -> str:
    """Content-addressed key of one unit configuration.

    The key is a truncated SHA-256 of the canonical JSON, so it is
    stable across processes, platforms and dict orderings — the same
    configuration always lands in the same run-store slot.
    """
    digest = hashlib.sha256(canonical_json(config).encode("utf-8"))
    return digest.hexdigest()[:16]


def _normalize_policy(raw: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate one policy entry and return its canonical dict form."""
    kind = raw.get("kind")
    if kind not in POLICY_KINDS:
        known = ", ".join(POLICY_KINDS)
        raise ValueError(f"unknown policy kind {kind!r} (known: {known})")
    policy: Dict[str, Any] = {"kind": kind}
    if kind == "static":
        freq = raw.get("freq_mhz")
        if freq is not None:
            if float(freq) <= 0:
                raise ValueError("static freq_mhz must be positive")
            policy["freq_mhz"] = float(freq)
    elif kind == "mandyn":
        freq_map = raw.get("freq_map")
        if freq_map is not None:
            policy["freq_map"] = {
                str(fn): float(mhz) for fn, mhz in freq_map.items()
            }
        default = raw.get("default_mhz")
        if default is not None:
            if float(default) <= 0:
                raise ValueError("mandyn default_mhz must be positive")
            policy["default_mhz"] = float(default)
    elif kind == "autodyn":
        candidates = raw.get("candidates_mhz")
        if candidates is not None:
            policy["candidates_mhz"] = [float(c) for c in candidates]
        rounds = raw.get("rounds_per_candidate")
        if rounds is not None:
            if int(rounds) < 1:
                raise ValueError("rounds_per_candidate must be >= 1")
            policy["rounds_per_candidate"] = int(rounds)
    unknown = set(raw) - set(policy) - {"kind"}
    if unknown:
        raise ValueError(
            f"unknown keys {sorted(unknown)} in {kind!r} policy entry"
        )
    return policy


def policy_label(policy: Mapping[str, Any]) -> str:
    """Short, unique-per-config label used in reports and aggregation."""
    kind = policy["kind"]
    if kind == "static":
        freq = policy.get("freq_mhz")
        return f"static-{freq:.0f}" if freq is not None else "static"
    return kind


@dataclass(frozen=True)
class RunUnit:
    """One fully-resolved point of the campaign grid."""

    campaign: str
    system: str
    workload: str
    particles: float
    steps: int
    ranks: int
    seed: int
    policy: Tuple[Tuple[str, Any], ...]
    fault_scenario: Optional[str] = None
    comm_backend: str = "local"

    def policy_dict(self) -> Dict[str, Any]:
        return {k: _thaw_value(v) for k, v in self.policy}

    def config(self) -> Dict[str, Any]:
        """The canonical configuration dict the run key hashes."""
        cfg: Dict[str, Any] = {
            "campaign": self.campaign,
            "system": self.system,
            "workload": self.workload,
            "particles": self.particles,
            "steps": self.steps,
            "ranks": self.ranks,
            "seed": self.seed,
            "policy": self.policy_dict(),
        }
        if self.fault_scenario is not None:
            cfg["fault_scenario"] = self.fault_scenario
        # Only a non-default backend enters the config: backends are
        # bit-identical in every result, so pre-existing run keys (and
        # cached local-backend results) stay valid.
        if self.comm_backend != "local":
            cfg["comm_backend"] = self.comm_backend
        return cfg

    @property
    def key(self) -> str:
        return run_key(self.config())

    @property
    def label(self) -> str:
        """Human-readable unit identity for progress and reports."""
        parts = [
            self.workload,
            self.system,
            policy_label(self.policy_dict()),
            f"s{self.seed}",
        ]
        return "/".join(parts)


def _freeze_policy(policy: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Hashable, order-stable form of a policy dict (for frozen units)."""
    out = []
    for k in sorted(policy):
        v = policy[k]
        if isinstance(v, Mapping):
            v = tuple(sorted((str(fk), float(fv)) for fk, fv in v.items()))
        elif isinstance(v, list):
            v = tuple(v)
        out.append((k, v))
    return tuple(out)


def _thaw_value(v: Any) -> Any:
    if isinstance(v, tuple) and v and isinstance(v[0], tuple):
        return {k: val for k, val in v}
    if isinstance(v, tuple):
        return list(v)
    return v


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative experiment sweep (grid of run configurations).

    Parameters
    ----------
    name:
        Campaign identity; part of every unit's run key, so renaming a
        campaign deliberately invalidates its cached runs.
    workloads:
        Workload names or CLI aliases (``"turbulence"``, ``"sedov"``).
    policies:
        Policy entries (see :data:`POLICY_KINDS`). A ``static`` entry
        without ``freq_mhz`` expands over :attr:`clocks_mhz`.
    clocks_mhz:
        Clock sweep for unpinned ``static`` policy entries — the Figs.
        6-8 frequency axis.
    systems:
        System references: catalog entry names (shipped or from
        ``REPRO_CATALOG_PATH``), legacy Table-I preset names, or
        ``path:<spec-file>`` references (a bare ``.yaml``/``.json``
        path also works). A path reference enters run keys as the
        literal string, so keep it stable (relative to the campaign
        working directory) if cached results should survive.
    particles:
        Per-rank particle counts (the Fig. 6 problem-size axis).
    seeds:
        Seeds; with a :attr:`fault_scenario` each seed builds a distinct
        deterministic fault plan, otherwise seeds are replicate labels.
    fault_scenario:
        Optional :mod:`repro.faults` scenario name; units then run with
        fault injection and resilience enabled.
    min_unit_wall_s:
        Pace each unit to at least this much *wall* time, emulating
        campaigns whose workers block on real hardware. Execution-only:
        does not enter run keys or results. Used by the throughput
        benchmark and smoke tests.
    checkpoint_every:
        With a positive value, workers snapshot full simulation state
        every that many steps into the run store's ``checkpoints/``
        directory, and a preempted / killed / timed-out unit resumes
        from its latest checkpoint on retry instead of step 0.
        Execution-only: crash tolerance does not change what a unit
        computes, so it does not enter run keys.
    comm_backend:
        Rank execution backend for every unit: ``"local"`` (default,
        sequential in-process ranks) or ``"process"`` (one OS process
        per rank, see docs/parallelism.md). Backends are bit-identical
        in every virtual result, so only a non-default value enters run
        keys — existing cached results stay valid.
    """

    name: str
    workloads: Sequence[str] = ("SubsonicTurbulence",)
    policies: Sequence[Mapping[str, Any]] = ({"kind": "baseline"},)
    clocks_mhz: Sequence[float] = ()
    systems: Sequence[str] = ("miniHPC",)
    particles: Sequence[float] = (1.0e6,)
    steps: int = 5
    ranks: int = 1
    seeds: Sequence[int] = (0,)
    fault_scenario: Optional[str] = None
    min_unit_wall_s: float = 0.0
    checkpoint_every: int = 0
    comm_backend: str = "local"
    _canonical_policies: Tuple[Dict[str, Any], ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign needs a name")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.ranks < 1:
            raise ValueError("ranks must be >= 1")
        if self.min_unit_wall_s < 0.0:
            raise ValueError("min_unit_wall_s must be non-negative")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.comm_backend not in ("local", "process"):
            raise ValueError(
                f"unknown comm backend {self.comm_backend!r} "
                "(expected local|process)"
            )
        if not self.workloads:
            raise ValueError("campaign needs at least one workload")
        if not self.policies:
            raise ValueError("campaign needs at least one policy")
        if not self.particles:
            raise ValueError("campaign needs at least one particle count")
        if not self.seeds:
            raise ValueError("campaign needs at least one seed")
        for p in self.particles:
            if p <= 0:
                raise ValueError("particle counts must be positive")
        for c in self.clocks_mhz:
            if c <= 0:
                raise ValueError("clocks must be positive")
        # all_system_names() is the single known-systems source shared
        # with repro.systems.by_name, so catalog-only entries appear in
        # both error messages. File references are resolved eagerly —
        # a broken spec file fails at campaign load, not mid-drain in
        # a worker process.
        known_systems = set(all_system_names())
        for system in self.systems:
            if is_path_ref(system):
                resolve_system(system)
                continue
            if system not in known_systems:
                raise ValueError(
                    f"unknown system {system!r} "
                    f"(known: {', '.join(sorted(known_systems))})"
                )
        for workload in self.workloads:
            resolve_workload(workload)  # raises on unknown names
        if (
            self.fault_scenario is not None
            and self.fault_scenario not in scenario_names()
        ):
            raise ValueError(
                f"unknown fault scenario {self.fault_scenario!r} "
                f"(known: {', '.join(scenario_names())})"
            )
        canonical = tuple(_normalize_policy(p) for p in self.policies)
        object.__setattr__(self, "_canonical_policies", canonical)
        for policy in canonical:
            if (
                policy["kind"] == "static"
                and "freq_mhz" not in policy
                and not self.clocks_mhz
            ):
                raise ValueError(
                    "a static policy without freq_mhz needs clocks_mhz "
                    "to expand over"
                )

    # -- (de)serialization ---------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from a plain dict (e.g. parsed JSON)."""
        data = dict(payload)
        schema = data.pop("schema", CAMPAIGN_SCHEMA_VERSION)
        if schema != CAMPAIGN_SCHEMA_VERSION:
            raise ValueError(
                f"campaign spec has schema {schema!r}, this build reads "
                f"{CAMPAIGN_SCHEMA_VERSION}"
            )
        kind = data.pop("kind", "campaign-spec")
        if kind != "campaign-spec":
            raise ValueError(f"expected a 'campaign-spec' file, found {kind!r}")
        known = {
            "name", "workloads", "policies", "clocks_mhz", "systems",
            "particles", "steps", "ranks", "seeds", "fault_scenario",
            "min_unit_wall_s", "checkpoint_every", "comm_backend",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown campaign spec keys {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        """Load a JSON spec file."""
        with open(path, encoding="utf-8") as fh:
            try:
                payload = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: not valid JSON ({exc})") from None
        return cls.from_dict(payload)

    def to_dict(self) -> Dict[str, Any]:
        """Round-trippable dict form (with the schema header fields)."""
        payload: Dict[str, Any] = {
            "schema": CAMPAIGN_SCHEMA_VERSION,
            "kind": "campaign-spec",
            "name": self.name,
            "workloads": [resolve_workload(w) for w in self.workloads],
            "policies": [dict(p) for p in self._canonical_policies],
            "systems": list(self.systems),
            "particles": [float(p) for p in self.particles],
            "steps": self.steps,
            "ranks": self.ranks,
            "seeds": [int(s) for s in self.seeds],
        }
        if self.clocks_mhz:
            payload["clocks_mhz"] = [float(c) for c in self.clocks_mhz]
        if self.fault_scenario is not None:
            payload["fault_scenario"] = self.fault_scenario
        if self.min_unit_wall_s:
            payload["min_unit_wall_s"] = self.min_unit_wall_s
        if self.checkpoint_every:
            payload["checkpoint_every"] = int(self.checkpoint_every)
        if self.comm_backend != "local":
            payload["comm_backend"] = self.comm_backend
        return payload

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    # -- expansion -----------------------------------------------------------

    def expanded_policies(self) -> List[Dict[str, Any]]:
        """Policy entries with unpinned static clocks swept (in order)."""
        out: List[Dict[str, Any]] = []
        for policy in self._canonical_policies:
            if policy["kind"] == "static" and "freq_mhz" not in policy:
                for clock in self.clocks_mhz:
                    out.append({"kind": "static", "freq_mhz": float(clock)})
            else:
                out.append(dict(policy))
        return out

    def expand(self) -> List[RunUnit]:
        """The full grid, in deterministic nesting order.

        Nesting is system → workload → particles → policy → seed, so
        related configurations (one figure's series) are adjacent.
        """
        units: List[RunUnit] = []
        for system in self.systems:
            for workload in self.workloads:
                canonical_workload = resolve_workload(workload)
                for particles in self.particles:
                    for policy in self.expanded_policies():
                        for seed in self.seeds:
                            units.append(
                                RunUnit(
                                    campaign=self.name,
                                    system=system,
                                    workload=canonical_workload,
                                    particles=float(particles),
                                    steps=self.steps,
                                    ranks=self.ranks,
                                    seed=int(seed),
                                    policy=_freeze_policy(policy),
                                    fault_scenario=self.fault_scenario,
                                    comm_backend=self.comm_backend,
                                )
                            )
        keys = [u.key for u in units]
        if len(set(keys)) != len(keys):
            dupes = sorted(
                {k for k in keys if keys.count(k) > 1}
            )
            raise ValueError(
                f"campaign grid contains duplicate configurations "
                f"(keys {dupes}); remove repeated policy/clock entries"
            )
        return units

    def n_units(self) -> int:
        return len(self.expand())

    def check_oversubscription(self, workers: int) -> Optional[str]:
        """Warn-worthy message when ``workers x ranks`` exceeds the
        host's cores for a process-backend campaign, else ``None``.

        The executor (and the CLI) call this before a drain; with the
        ``process`` backend every lane forks ``ranks`` rank workers, so
        the true process footprint is the product.
        """
        if self.comm_backend != "process" or workers < 1:
            return None
        cores = os.cpu_count() or 1
        if workers * self.ranks <= cores:
            return None
        return (
            f"{workers} workers x {self.ranks} ranks = "
            f"{workers * self.ranks} rank processes oversubscribe "
            f"{cores} host cores; consider --workers "
            f"{max(1, cores // self.ranks)}"
        )
