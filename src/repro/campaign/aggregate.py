"""Fold stored campaign runs into EDP/Pareto summaries.

The aggregation layer reads **only** the durable run artifacts in a
:class:`~repro.campaign.store.RunStore` — never in-memory executor
state — so a summary built after a resume is byte-identical to one
built after an uninterrupted campaign: artifacts are selected by
content-addressed key, iterated in sorted-key order, and serialized
with sorted keys and no timestamps.

Within each experiment group (same system, workload, problem size and
rank count) runs are averaged over seeds per policy, normalized against
the group's ``baseline`` policy when present, and classified with
:func:`repro.core.pareto_analysis` / :func:`repro.core.knee_point` —
the paper's §IV-D framing of frequency scaling as picking
Pareto-optimal (time, energy) configurations.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core import Metrics, knee_point, pareto_analysis
from ..reporting import bar_chart, render_table
from .spec import policy_label
from .store import RunStore

#: Group identity: every axis of the grid except policy and seed.
_GROUP_FIELDS = ("system", "workload", "particles", "ranks")


def _group_key(unit: Mapping[str, Any]) -> Tuple:
    return tuple(unit[f] for f in _GROUP_FIELDS)


def build_summary(
    store: RunStore, keys: Optional[Iterable[str]] = None
) -> Dict[str, Any]:
    """Deterministic summary dict over the store's completed runs.

    ``keys`` restricts aggregation to one grid (e.g. the current
    spec's), ignoring stale artifacts from older spec revisions.
    """
    artifacts = store.results(keys)
    groups: Dict[Tuple, Dict[str, Any]] = {}
    for artifact in artifacts:
        unit = artifact["unit"]
        metrics = artifact["result"]["metrics"]
        group = groups.setdefault(
            _group_key(unit), {"units": [], "seeds": set()}
        )
        group["units"].append((policy_label(unit["policy"]), unit, metrics))
        group["seeds"].add(unit["seed"])

    summary_groups: List[Dict[str, Any]] = []
    for gkey in sorted(groups):
        group = groups[gkey]
        by_policy: Dict[str, List[Mapping[str, Any]]] = {}
        for label, _unit, metrics in group["units"]:
            by_policy.setdefault(label, []).append(metrics)
        rows: Dict[str, Dict[str, Any]] = {}
        for label in sorted(by_policy):
            runs = by_policy[label]
            n = len(runs)
            rows[label] = {
                "policy": label,
                "n_runs": n,
                "elapsed_s": sum(m["elapsed_s"] for m in runs) / n,
                "gpu_energy_j": sum(m["gpu_energy_j"] for m in runs) / n,
                "edp_j_s": sum(m["edp_j_s"] for m in runs) / n,
            }
        series = {
            label: Metrics(row["elapsed_s"], row["gpu_energy_j"])
            for label, row in rows.items()
        }
        points = {p.label: p for p in pareto_analysis(series)}
        knee = knee_point(series)
        baseline = rows.get("baseline")
        for label, row in rows.items():
            if baseline is not None:
                row["rel_time"] = row["elapsed_s"] / baseline["elapsed_s"]
                row["rel_energy"] = (
                    row["gpu_energy_j"] / baseline["gpu_energy_j"]
                )
                row["rel_edp"] = row["edp_j_s"] / baseline["edp_j_s"]
            row["pareto"] = points[label].optimal
            row["knee"] = label == knee
        summary_groups.append(
            {
                **dict(zip(_GROUP_FIELDS, gkey)),
                "seeds": sorted(group["seeds"]),
                "baseline": "baseline" if baseline is not None else None,
                "knee": knee,
                "rows": [rows[label] for label in sorted(rows)],
            }
        )
    return {
        "schema": 1,
        "kind": "campaign-summary",
        "campaign": store.campaign,
        "n_runs": len(artifacts),
        "groups": summary_groups,
    }


def summary_json(summary: Mapping[str, Any]) -> str:
    """Canonical serialization — byte-identical for identical stores."""
    return json.dumps(summary, indent=1, sort_keys=True) + "\n"


def write_summary(summary: Mapping[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(summary_json(summary))


def edp_ranking(group: Mapping[str, Any]) -> List[str]:
    """Policy labels of one summary group, best (lowest) EDP first."""
    rows = group["rows"]
    return [r["policy"] for r in sorted(rows, key=lambda r: r["edp_j_s"])]


def render_summary(summary: Mapping[str, Any]) -> str:
    """Human-readable report: one table (+ EDP chart) per group."""
    blocks: List[str] = []
    campaign = summary.get("campaign") or "campaign"
    blocks.append(
        f"campaign {campaign}: {summary['n_runs']} completed runs, "
        f"{len(summary['groups'])} experiment groups"
    )
    for group in summary["groups"]:
        title = (
            f"{group['workload']} on {group['system']} "
            f"(N={group['particles']:g}, ranks={group['ranks']}, "
            f"seeds={len(group['seeds'])})"
        )
        normalized = group["baseline"] is not None
        headers = ["policy", "time_s", "energy_J", "EDP_Js"]
        if normalized:
            headers += ["rel_t", "rel_e", "rel_EDP"]
        headers.append("flags")
        table_rows = []
        for row in group["rows"]:
            flags = []
            if row["pareto"]:
                flags.append("pareto")
            if row["knee"]:
                flags.append("knee")
            cells = [
                row["policy"],
                f"{row['elapsed_s']:.4g}",
                f"{row['gpu_energy_j']:.5g}",
                f"{row['edp_j_s']:.5g}",
            ]
            if normalized:
                cells += [
                    f"{row['rel_time']:.3f}",
                    f"{row['rel_energy']:.3f}",
                    f"{row['rel_edp']:.3f}",
                ]
            cells.append(",".join(flags))
            table_rows.append(cells)
        blocks.append(render_table(headers, table_rows, title=title))
        if normalized:
            blocks.append(
                bar_chart(
                    {r["policy"]: r["rel_edp"] for r in group["rows"]},
                    title="EDP vs baseline (lower is better)",
                    baseline=1.0,
                )
            )
    return "\n\n".join(blocks)
