"""Persistent, content-addressed run store.

One campaign directory holds everything a sweep produces::

    <root>/
        spec.json           # the campaign spec (written by `campaign run`)
        manifest.jsonl      # {"schema": 1} header + one record per outcome
        trace.jsonl         # campaign-level telemetry (optional)
        runs/<key>.json     # one durable result artifact per completed unit

The manifest is append-only JSONL: the executor appends one record per
unit outcome (``done`` or ``failed``) *after* the run artifact is
safely on disk (write-to-temp + atomic rename), so a campaign killed at
any instant leaves a consistent store. On re-open the store replays the
manifest; completed keys are skipped by the executor, which is the
entire resume mechanism — there is no separate checkpoint format. A
crash *during* a manifest append can leave a torn final line (no
trailing newline); replay skips it with a warning — the worst case is
re-executing the unit whose outcome record was lost, which idempotent
keys make safe. A corrupt line anywhere else still raises.

Result artifacts embed the full per-rank :class:`~repro.core.EnergyReport`
so every run of every sweep stays a durable, comparable measurement
(the companion measurement paper's per-run artifact discipline), not
just a summary row.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set

from ..telemetry.events import check_schema_header, schema_header

#: File names inside a campaign directory.
MANIFEST_NAME = "manifest.jsonl"
SPEC_NAME = "spec.json"
TRACE_NAME = "trace.jsonl"
HEARTBEATS_NAME = "heartbeats.json"
RUNS_DIR = "runs"
CHECKPOINTS_DIR = "checkpoints"
LANES_DIR = "lanes"
TRACES_DIR = "traces"


class RunStore:
    """Append-only store of campaign run outcomes under one directory."""

    def __init__(self, root: str, campaign: Optional[str] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / RUNS_DIR).mkdir(exist_ok=True)
        self.campaign = campaign
        self._records: List[Dict[str, Any]] = []
        # One store instance may be shared by concurrent executors (the
        # service runs overlapping campaigns against the same tenant
        # store); appends and snapshot reads are serialized here.
        self._lock = threading.Lock()
        self._load_manifest()

    # -- manifest ------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def spec_path(self) -> Path:
        return self.root / SPEC_NAME

    @property
    def trace_path(self) -> Path:
        return self.root / TRACE_NAME

    def run_path(self, key: str) -> Path:
        return self.root / RUNS_DIR / f"{key}.json"

    @property
    def heartbeats_path(self) -> Path:
        return self.root / HEARTBEATS_NAME

    # -- distributed traces ----------------------------------------------------

    def unit_trace_dir(self, key: str) -> Path:
        """Where a unit's per-process trace shards (and merge) live.

        Created lazily, like checkpoints, so untraced campaigns leave
        the store layout untouched.
        """
        directory = self.root / TRACES_DIR
        directory.mkdir(exist_ok=True)
        unit_dir = directory / key
        unit_dir.mkdir(exist_ok=True)
        return unit_dir

    def has_unit_trace(self, key: str) -> bool:
        from ..telemetry.profile import MERGED_TRACE_NAME

        return (
            self.root / TRACES_DIR / key / MERGED_TRACE_NAME
        ).exists()

    def unit_trace_keys(self) -> Set[str]:
        """Keys with any trace shard or merge on disk."""
        directory = self.root / TRACES_DIR
        if not directory.is_dir():
            return set()
        return {p.name for p in directory.iterdir() if p.is_dir()}

    # -- checkpoints -----------------------------------------------------------

    def checkpoint_path(self, key: str) -> Path:
        """Where a unit's in-progress simulation checkpoint lives.

        The directory is created lazily so stores from campaigns that
        never checkpoint stay exactly as before.
        """
        directory = self.root / CHECKPOINTS_DIR
        directory.mkdir(exist_ok=True)
        return directory / f"{key}.json"

    def has_checkpoint(self, key: str) -> bool:
        return (self.root / CHECKPOINTS_DIR / f"{key}.json").exists()

    def clear_checkpoint(self, key: str) -> None:
        """Drop a unit's checkpoint once its outcome is durable.

        A finished unit's result artifact supersedes any mid-run
        snapshot; keeping stale checkpoints around would only risk a
        future spec revision resuming from the wrong state. Idempotent.
        """
        path = self.root / CHECKPOINTS_DIR / f"{key}.json"
        try:
            path.unlink()
        except FileNotFoundError:
            pass

    def checkpoint_keys(self) -> Set[str]:
        """Keys with a live (not yet cleared) checkpoint on disk."""
        directory = self.root / CHECKPOINTS_DIR
        if not directory.is_dir():
            return set()
        return {p.stem for p in directory.glob("*.json")}

    # -- worker heartbeats ----------------------------------------------------

    def write_heartbeats(self, lanes: Mapping[str, Mapping[str, Any]]) -> None:
        """Atomically persist per-lane worker heartbeats.

        ``lanes`` maps worker-lane ids to ``{"updated_s": <epoch>,
        "state": ...}`` records; ``repro monitor watch`` reads this file
        to judge the ``campaign_worker_stalled`` alert rule. Written
        atomically so a watcher never observes a torn file.
        """
        payload = {
            "schema": 1,
            "kind": "campaign-heartbeats",
            "campaign": self.campaign,
            "lanes": {str(k): dict(v) for k, v in lanes.items()},
        }
        path = self.heartbeats_path
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def read_heartbeats(self) -> Dict[str, Dict[str, Any]]:
        """The lane records of ``heartbeats.json`` ({} when absent)."""
        path = self.heartbeats_path
        if not path.exists():
            return {}
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        if (
            payload.get("schema") != 1
            or payload.get("kind") != "campaign-heartbeats"
        ):
            raise ValueError(f"{path}: not a campaign heartbeats file")
        return {str(k): dict(v) for k, v in payload.get("lanes", {}).items()}

    def reset_heartbeats(self) -> None:
        """Remove the heartbeat file left by a previous (dead) drain.

        A campaign killed mid-drain leaves ``heartbeats.json`` frozen
        at its final lane states; without this reset, a monitor watcher
        started before the next drain re-reads those stale timestamps
        and fires ``campaign_worker_stalled`` false alarms. Every
        executor invocation starts from a clean slate.
        """
        try:
            self.heartbeats_path.unlink()
        except FileNotFoundError:
            pass

    # -- worker lane beats -----------------------------------------------------

    def lane_beat_path(self, lane: int) -> Path:
        """Where worker process ``lane`` writes its per-step beat file.

        Unlike ``heartbeats.json`` (written by the executor between
        dispatches), lane beat files are written *from inside* the
        worker process after every simulation step, so the executor can
        distinguish a lane that is slowly computing from one whose
        process is hung or gone.
        """
        directory = self.root / LANES_DIR
        directory.mkdir(exist_ok=True)
        return directory / f"lane-{int(lane)}.json"

    def read_lane_beats(self) -> Dict[str, Dict[str, Any]]:
        """Latest beat per lane ({} when no worker ever beat)."""
        directory = self.root / LANES_DIR
        if not directory.is_dir():
            return {}
        beats: Dict[str, Dict[str, Any]] = {}
        for path in directory.glob("lane-*.json"):
            try:
                with open(path, encoding="utf-8") as fh:
                    payload = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue  # torn or vanished beat: treat as absent
            beats[path.stem.removeprefix("lane-")] = payload
        return beats

    def reset_lane_beats(self) -> None:
        """Drop beat files from previous drains (fresh supervision)."""
        directory = self.root / LANES_DIR
        if not directory.is_dir():
            return
        for path in directory.glob("lane-*.json"):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def _load_manifest(self) -> None:
        path = self.manifest_path
        if not path.exists():
            return
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        lines = text.split("\n")
        # A line is *torn* only when it is the very last one and the
        # file lacks its trailing newline — the signature of a crash
        # mid-append. Complete-but-corrupt lines still raise.
        torn_tail = bool(text) and not text.endswith("\n")
        header_seen = False
        for lineno, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if torn_tail and lineno == len(lines):
                    warnings.warn(
                        f"{path}:{lineno}: skipping torn final manifest "
                        f"line (crash during append?); the affected "
                        f"unit will re-run",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    # Truncate the torn bytes so the next append starts
                    # a fresh line instead of gluing onto garbage.
                    keep = len(text.encode("utf-8")) - len(
                        lines[-1].encode("utf-8")
                    )
                    with open(path, "r+b") as out:
                        out.truncate(keep)
                    continue
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from None
            if not header_seen:
                try:
                    check_schema_header(record, "campaign-manifest")
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
                manifest_campaign = record.get("campaign")
                if self.campaign is None:
                    self.campaign = manifest_campaign
                elif (
                    manifest_campaign is not None
                    and manifest_campaign != self.campaign
                ):
                    raise ValueError(
                        f"{path}: manifest belongs to campaign "
                        f"{manifest_campaign!r}, not {self.campaign!r}"
                    )
                header_seen = True
                continue
            self._records.append(record)

    def _append_manifest(self, record: Mapping[str, Any]) -> None:
        path = self.manifest_path
        with self._lock:
            new_file = not path.exists()
            with open(path, "a", encoding="utf-8") as fh:
                if new_file:
                    header = schema_header(
                        "campaign-manifest", campaign=self.campaign
                    )
                    fh.write(json.dumps(header, sort_keys=True) + "\n")
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            self._records.append(dict(record))

    # -- outcomes ------------------------------------------------------------

    def record_done(
        self, key: str, config: Mapping[str, Any], result: Mapping[str, Any]
    ) -> None:
        """Persist one completed unit: artifact first, then manifest."""
        payload = {
            "schema": 1,
            "kind": "campaign-run",
            "key": key,
            "unit": dict(config),
            "result": dict(result),
        }
        path = self.run_path(key)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._append_manifest(
            {
                "key": key,
                "status": "done",
                "unit": dict(config),
                "file": f"{RUNS_DIR}/{key}.json",
            }
        )

    def record_failed(
        self, key: str, config: Mapping[str, Any], error: Mapping[str, Any]
    ) -> None:
        """Persist one permanently-failed unit (retried on resume)."""
        self._append_manifest(
            {
                "key": key,
                "status": "failed",
                "unit": dict(config),
                "error": dict(error),
            }
        )

    # -- queries -------------------------------------------------------------

    def _latest_statuses(self) -> Dict[str, str]:
        with self._lock:
            records = list(self._records)
        latest: Dict[str, str] = {}
        for record in records:
            latest[record["key"]] = record.get("status", "failed")
        return latest

    def completed_keys(self) -> Set[str]:
        """Keys whose latest outcome is ``done`` and whose artifact exists."""
        return {
            key
            for key, status in self._latest_statuses().items()
            if status == "done" and self.run_path(key).exists()
        }

    def failed_keys(self) -> Set[str]:
        return {
            k for k, s in self._latest_statuses().items() if s == "failed"
        }

    def load_result(self, key: str) -> Dict[str, Any]:
        """The full artifact of one completed unit."""
        path = self.run_path(key)
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("schema") != 1 or payload.get("kind") != "campaign-run":
            raise ValueError(f"{path}: not a campaign run artifact")
        return payload

    def results(self, keys: Optional[Iterable[str]] = None) -> List[Dict[str, Any]]:
        """All completed artifacts, sorted by key (deterministic order).

        With ``keys`` given, restrict to that subset (e.g. the current
        spec's grid, ignoring stale runs from older spec revisions).
        """
        selected = self.completed_keys()
        if keys is not None:
            selected &= set(keys)
        return [self.load_result(key) for key in sorted(selected)]

    def counts(self) -> Dict[str, int]:
        """Manifest roll-up: outcomes by latest status."""
        done = self.completed_keys()
        failed = self.failed_keys() - done
        return {"done": len(done), "failed": len(failed)}
