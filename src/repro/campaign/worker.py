"""Unit execution in worker processes.

Everything here is importable at module top level and traffics only in
plain dicts, because :class:`concurrent.futures.ProcessPoolExecutor`
pickles the callable and its arguments into the worker and the return
value back out. A worker never lets an exception escape: it classifies
the failure with the :mod:`repro.faults` / controller error taxonomy
(transient → worth retrying, permanent → record and move on) and
returns a structured outcome either way, so fault classification
happens *in* the process that owns the exception object and nothing
depends on cross-process exception pickling.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from typing import Any, Callable, Dict, Mapping, Optional

from ..checkpoint import CheckpointError, checkpoint_exists, read_checkpoint
from ..core import (
    DvfsPolicy,
    EnergyReport,
    FrequencyController,
    FrequencyPolicy,
    ManDynPolicy,
    OnlineTuningPolicy,
    ResilienceConfig,
    StaticFrequencyPolicy,
    baseline_policy,
)
from ..faults import FaultInjector, JobPreempted, build_plan
from ..mpi import RankDied
from ..nvml.errors import NVMLError
from ..pmt.base import PowerReadError
from ..rocm.smi import RocmSmiError
from ..sph import run_instrumented
from ..systems import Cluster, by_name
from ..telemetry import TraceCollector, TraceContext
from ..telemetry.profile import (
    merge_shards,
    merged_trace_path,
    write_merged_trace,
)
from ..units import to_mhz
from .spec import run_key

#: The Fig. 2 outcome, used when a mandyn policy entry omits its map:
#: the two compute-bound kernels stay at the device maximum, everything
#: else drops to the deep sweet spot.
DEFAULT_MANDYN_FUNCTIONS = ("MomentumEnergy", "IADVelocityDivCurl")
DEFAULT_MANDYN_LOW_MHZ = 1005.0


def build_policy(
    policy: Mapping[str, Any], max_mhz: float, cluster: Optional[Cluster] = None
) -> FrequencyPolicy:
    """Instantiate a :class:`FrequencyPolicy` from its canonical dict."""
    kind = policy["kind"]
    if kind == "baseline":
        return baseline_policy(max_mhz)
    if kind == "static":
        return StaticFrequencyPolicy(float(policy["freq_mhz"]))
    if kind == "dvfs":
        return DvfsPolicy()
    if kind == "mandyn":
        freq_map = policy.get("freq_map")
        if freq_map is None:
            freq_map = {fn: max_mhz for fn in DEFAULT_MANDYN_FUNCTIONS}
        default = policy.get("default_mhz", DEFAULT_MANDYN_LOW_MHZ)
        return ManDynPolicy(dict(freq_map), default_mhz=float(default))
    if kind == "autodyn":
        if cluster is None:
            raise ValueError("autodyn policies need a cluster to observe")
        kwargs: Dict[str, Any] = {}
        if "candidates_mhz" in policy:
            kwargs["candidates_mhz"] = tuple(policy["candidates_mhz"])
        if "rounds_per_candidate" in policy:
            kwargs["rounds_per_candidate"] = policy["rounds_per_candidate"]
        return OnlineTuningPolicy(cluster.gpus, **kwargs)
    raise ValueError(f"unknown policy kind {kind!r}")


def classify_error(exc: BaseException) -> str:
    """``"transient"`` or ``"permanent"`` for a unit-level failure.

    Reuses the frequency controller's vendor-error taxonomy (NVML
    timeout/unknown and RSMI busy are transient; lost devices and
    permission walls are not) and extends it to campaign-level failure
    modes: power-read dropouts and Slurm-style preemptions are
    transient — a re-run may well succeed — while programming errors
    are permanent.
    """
    if isinstance(exc, (NVMLError, RocmSmiError)):
        severity = FrequencyController._classify(exc)
        return "transient" if severity == "transient" else "permanent"
    if isinstance(exc, (PowerReadError, JobPreempted, TimeoutError)):
        return "transient"
    if isinstance(exc, RankDied):
        # A killed rank worker is the process-backend analogue of a
        # preempted job: the unit's virtual state is unharmed and a
        # fresh backend team makes a re-run worthwhile.
        return "transient"
    if isinstance(exc, (OSError, ConnectionError)):
        return "transient"
    return "permanent"


def _metrics_of(result) -> Dict[str, Any]:
    """The comparable scalar metrics of one finished run."""
    return {
        "elapsed_s": result.elapsed_s,
        "gpu_energy_j": result.gpu_energy_j,
        "total_energy_j": result.report.total_j(),
        "edp_j_s": result.edp,
        "steps": result.steps,
        "clock_set_calls": result.clock_set_calls,
        "clock_set_skipped": result.clock_set_skipped,
        "degraded_ranks": list(result.degraded_ranks),
        "preempted": result.preempted,
        "faults_injected": result.faults_injected,
        "retries": result.retries,
        "resumed_from_step": result.resumed_from_step,
        "checkpoints_written": result.checkpoints_written,
    }


def _write_beat(path: str, payload: Mapping[str, Any]) -> None:
    """Atomically persist one worker-lane beat; never raises.

    Beats are pure liveness evidence for the executor's lane
    supervision — losing one must not take the unit down.
    """
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(dict(payload), fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - disk-full / perms only
        pass


def _install_preempt_signal_handler() -> None:
    """Deliver SIGTERM to the step loop as a :class:`JobPreempted`.

    A scheduler (or the campaign executor reaping a lane) terminates
    workers with SIGTERM; raising :class:`JobPreempted` routes that
    through the simulation's preemption path, which persists a final
    checkpoint at the last completed step boundary before unwinding.
    Signal handlers only install on the main thread of a process —
    inline (serial) execution inside a service worker thread simply
    skips this, keeping SIGTERM semantics owned by the host process.
    """
    if threading.current_thread() is not threading.main_thread():
        return

    def _raise_preempted(signum, frame):  # noqa: ARG001 - signal ABI
        raise JobPreempted(time_s=0.0, steps_done=-1)

    try:
        signal.signal(signal.SIGTERM, _raise_preempted)
    except ValueError:  # pragma: no cover - non-main interpreter thread
        pass


def execute_unit(
    config: Mapping[str, Any],
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
    on_step: Optional[Callable[[int], None]] = None,
    trace: Optional[Mapping[str, Any]] = None,
    trace_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one campaign unit to completion; raises on failure.

    The returned payload carries the scalar metrics plus the full
    per-rank :class:`~repro.core.EnergyReport` as a dict, so the run
    store can persist a durable, re-analyzable artifact.

    With ``checkpoint_path`` set, an existing checkpoint at that path
    is restored (the retry-after-crash path: the unit resumes at its
    recorded step instead of step 0) and, with ``checkpoint_every >
    0``, fresh snapshots are written on that cadence. The payload's
    ``checkpoint`` field records ``"hit"`` or ``"miss"`` provenance.
    A preempted run with checkpointing enabled re-raises
    :class:`JobPreempted` — its state *is* durable at the checkpoint,
    so the executor's transient-retry path finishes the remaining
    steps rather than recording a truncated result.

    With ``trace`` (a :class:`~repro.telemetry.TraceContext` dict — the
    context travels in the *call*, never inside ``config``, so the
    unit's content-addressed run key is unaffected) the run executes
    under a :class:`~repro.telemetry.TraceCollector`: per-process
    shards land in ``trace_dir`` as the run ends and are merged into
    one clock-aligned ``merged.jsonl`` here; the payload's ``trace``
    field records the trace id and merged event count. A checkpointed
    restore keeps the checkpoint's trace identity (same trace id, new
    span lineage), so a resumed unit stays correlated to the request
    that first launched it.
    """
    system = by_name(config["system"])
    cluster = Cluster(
        system,
        int(config["ranks"]),
        comm_backend=str(config.get("comm_backend", "local")),
    )
    injector = None
    resilience = None
    restore_from = None
    if checkpoint_path is not None and checkpoint_exists(checkpoint_path):
        try:
            read_checkpoint(checkpoint_path)
        except CheckpointError:
            # A torn or foreign checkpoint must not poison the retry:
            # drop it and start the unit from step 0.
            try:
                os.unlink(checkpoint_path)
            except OSError:
                pass
        else:
            restore_from = checkpoint_path
    trace_ctx: Optional[TraceContext] = None
    telemetry: Optional[TraceCollector] = None
    if trace is not None:
        trace_ctx = TraceContext.from_dict(trace)
        telemetry = TraceCollector.for_cluster(cluster)
        telemetry.configure_tracing(trace_ctx, shard_dir=trace_dir)
    try:
        max_mhz = to_mhz(system.gpu_spec().max_clock_hz)
        policy = build_policy(config["policy"], max_mhz, cluster=cluster)
        scenario = config.get("fault_scenario")
        if scenario is not None:
            plan = build_plan(
                scenario,
                seed=int(config["seed"]),
                n_ranks=int(config["ranks"]),
            )
            injector = FaultInjector(plan)
            resilience = ResilienceConfig()
        result = run_instrumented(
            cluster,
            config["workload"],
            float(config["particles"]),
            int(config["steps"]),
            policy=policy,
            telemetry=telemetry,
            resilience=resilience,
            faults=injector,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            restore_from=restore_from,
            checkpoint_fingerprint=(
                run_key(config) if checkpoint_path is not None else None
            ),
            on_step=on_step,
        )
    finally:
        cluster.detach_management_library()
    if result.preempted and checkpoint_path is not None:
        # The preemption checkpoint is on disk; surface the
        # interruption so the executor retries from it.
        raise JobPreempted(time_s=result.elapsed_s, steps_done=result.steps)
    payload: Dict[str, Any] = {
        "metrics": _metrics_of(result),
        "report": result.report.to_dict(),
    }
    if checkpoint_path is not None:
        payload["checkpoint"] = "hit" if restore_from is not None else "miss"
    if injector is not None:
        payload["faults"] = injector.summary()
    if trace_ctx is not None and trace_dir is not None:
        # Parent-side collection: merge the per-process shards the run
        # just flushed into one clock-aligned trace. A failed merge
        # loses the artifact, never the unit's result.
        try:
            merged_id, merged_events = merge_shards(trace_dir)
            write_merged_trace(
                merged_trace_path(trace_dir),
                merged_events,
                trace_id=merged_id,
            )
            payload["trace"] = {
                "trace_id": merged_id or trace_ctx.trace_id,
                "span_id": trace_ctx.span_id,
                "events": len(merged_events),
            }
        except (OSError, ValueError):
            payload["trace"] = {
                "trace_id": trace_ctx.trace_id,
                "span_id": trace_ctx.span_id,
                "events": 0,
            }
    return payload


def run_unit_safe(
    config: Mapping[str, Any],
    min_wall_s: float = 0.0,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
    beat_path: Optional[str] = None,
    trace: Optional[Mapping[str, Any]] = None,
    trace_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Pool entry point: execute one unit, never raise.

    ``min_wall_s`` paces the unit to at least that much wall time,
    emulating workers that block on real hardware (see
    :attr:`~repro.campaign.spec.CampaignSpec.min_unit_wall_s`).
    ``checkpoint_path``/``checkpoint_every`` enable crash-tolerant
    execution (see :func:`execute_unit`); ``beat_path`` names the lane
    beat file this worker refreshes after every simulation step so the
    executor's supervision can tell slow from dead. ``trace``/
    ``trace_dir`` enable distributed tracing (see :func:`execute_unit`).
    """
    t0 = time.perf_counter()
    if checkpoint_path is not None:
        _install_preempt_signal_handler()
    on_step = None
    if beat_path is not None:
        unit_key = run_key(config)

        def on_step(steps_done: int) -> None:
            _write_beat(
                beat_path,
                {
                    "updated_s": time.time(),
                    "pid": os.getpid(),
                    "key": unit_key,
                    "step": steps_done,
                },
            )

    try:
        result = execute_unit(
            config,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            on_step=on_step,
            trace=trace,
            trace_dir=trace_dir,
        )
    except BaseException as exc:  # noqa: BLE001 - classified, not hidden
        return {
            "ok": False,
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "severity": classify_error(exc),
            },
            "wall_s": time.perf_counter() - t0,
        }
    remaining = min_wall_s - (time.perf_counter() - t0)
    if remaining > 0.0:
        time.sleep(remaining)
    return {
        "ok": True,
        "result": result,
        "wall_s": time.perf_counter() - t0,
    }


def report_from_result(artifact: Mapping[str, Any]) -> EnergyReport:
    """Rehydrate the :class:`EnergyReport` stored in a run artifact."""
    return EnergyReport.from_dict(artifact["result"]["report"])
