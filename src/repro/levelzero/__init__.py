"""Level Zero Sysman-style interface over simulated Intel GPUs."""

from .sysman import (
    ZES_FREQ_DOMAIN_GPU,
    ZES_FREQ_DOMAIN_MEMORY,
    ZES_RESULT_ERROR_INVALID_ARGUMENT,
    ZES_RESULT_ERROR_NOT_AVAILABLE,
    ZES_RESULT_ERROR_UNINITIALIZED,
    ZES_RESULT_SUCCESS,
    LevelZeroError,
    attach_devices,
    detach_devices,
    zesDeviceEnumFrequencyDomains,
    zesDeviceGetCount,
    zesDeviceGetName,
    zesFrequencyGetAvailableClocks,
    zesFrequencyGetRange,
    zesFrequencyGetState,
    zesFrequencySetRange,
    zesInit,
    zesPowerGetEnergyCounter,
    zes_freq_state_t,
    zes_power_energy_counter_t,
)
