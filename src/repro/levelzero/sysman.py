"""Level Zero Sysman-style interface over simulated Intel GPUs.

The paper's future work targets Intel GPUs; on that stack, clock and
power management goes through oneAPI Level Zero's Sysman API. This shim
reproduces the subset the methodology needs, with Level Zero's
conventions:

* frequency control is a **range** (``zesFrequencySetRange``): pinning
  a clock means setting ``min == max``; restoring the full range hands
  control back to the hardware governor;
* the energy counter (``zesPowerGetEnergyCounter``) returns cumulative
  **microjoules** plus a **microsecond timestamp**, and power must be
  derived by differencing readings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..hardware.gpu import SimulatedGpu

ZES_RESULT_SUCCESS = 0
ZES_RESULT_ERROR_UNINITIALIZED = 1
ZES_RESULT_ERROR_INVALID_ARGUMENT = 2
ZES_RESULT_ERROR_NOT_AVAILABLE = 3

#: zes_freq_domain_t subset
ZES_FREQ_DOMAIN_GPU = 0
ZES_FREQ_DOMAIN_MEMORY = 1


class LevelZeroError(Exception):
    """Raised by failing zes calls, carrying the result code."""

    def __init__(self, result: int) -> None:
        self.result = result
        super().__init__(f"zes result {result}")


@dataclass
class zes_freq_state_t:
    """Mirror of the Sysman frequency state struct (MHz fields)."""

    actual: float
    request: float
    tdp: float
    throttle_reasons: int


@dataclass
class zes_power_energy_counter_t:
    """Cumulative energy counter: microjoules + microsecond timestamp."""

    energy_uj: int
    timestamp_us: int


@dataclass
class _State:
    devices: List[SimulatedGpu]
    initialized: bool = False


_state = _State(devices=[])


def attach_devices(devices: Sequence[SimulatedGpu]) -> None:
    """Expose simulated Intel devices to this process's Level Zero."""
    _state.devices = list(devices)


def detach_devices() -> None:
    """Remove all attached devices (test teardown helper)."""
    _state.devices = []
    _state.initialized = False


def zesInit(flags: int = 0) -> None:
    _state.initialized = True


def _device(index: int) -> SimulatedGpu:
    if not _state.initialized:
        raise LevelZeroError(ZES_RESULT_ERROR_UNINITIALIZED)
    if not 0 <= index < len(_state.devices):
        raise LevelZeroError(ZES_RESULT_ERROR_INVALID_ARGUMENT)
    return _state.devices[index]


def zesDeviceGetCount() -> int:
    if not _state.initialized:
        raise LevelZeroError(ZES_RESULT_ERROR_UNINITIALIZED)
    return len(_state.devices)


def zesDeviceGetName(index: int) -> str:
    return _device(index).spec.name


def zesDeviceEnumFrequencyDomains(index: int) -> List[int]:
    """Available frequency domains (GPU + memory)."""
    _device(index)
    return [ZES_FREQ_DOMAIN_GPU, ZES_FREQ_DOMAIN_MEMORY]


def zesFrequencyGetAvailableClocks(index: int, domain: int) -> List[float]:
    """Supported clocks in MHz, ascending (Level Zero convention)."""
    dev = _device(index)
    if domain == ZES_FREQ_DOMAIN_GPU:
        return sorted(hz / 1e6 for hz in dev.spec.supported_clocks_hz())
    if domain == ZES_FREQ_DOMAIN_MEMORY:
        return [dev.spec.memory_clock_hz / 1e6]
    raise LevelZeroError(ZES_RESULT_ERROR_INVALID_ARGUMENT)


def zesFrequencyGetState(index: int, domain: int) -> zes_freq_state_t:
    dev = _device(index)
    if domain != ZES_FREQ_DOMAIN_GPU:
        raise LevelZeroError(ZES_RESULT_ERROR_NOT_AVAILABLE)
    throttle = 1 if dev.thermal_throttle_active else 0
    requested = (
        dev.application_clock_hz
        if dev.application_clock_hz is not None
        else dev.governor.clock_hz
    )
    return zes_freq_state_t(
        actual=dev.current_clock_hz / 1e6,
        request=requested / 1e6,
        tdp=dev.spec.max_clock_hz / 1e6,
        throttle_reasons=throttle,
    )


def zesFrequencySetRange(
    index: int, domain: int, min_mhz: float, max_mhz: float
) -> None:
    """Constrain the clock range; ``min == max`` pins the clock.

    Restoring the device's full hardware range returns control to the
    governor, matching real Sysman semantics.
    """
    dev = _device(index)
    if domain != ZES_FREQ_DOMAIN_GPU:
        raise LevelZeroError(ZES_RESULT_ERROR_NOT_AVAILABLE)
    if min_mhz > max_mhz or min_mhz <= 0:
        raise LevelZeroError(ZES_RESULT_ERROR_INVALID_ARGUMENT)
    full_min = dev.spec.min_clock_hz / 1e6
    full_max = dev.spec.max_clock_hz / 1e6
    if min_mhz <= full_min and max_mhz >= full_max:
        dev.reset_application_clocks()
        return
    # Pin to the top of the requested range (the governor would boost
    # there anyway under load).
    dev.set_application_clocks(dev.spec.memory_clock_hz, max_mhz * 1e6)


def zesFrequencyGetRange(index: int, domain: int) -> Tuple[float, float]:
    dev = _device(index)
    if domain != ZES_FREQ_DOMAIN_GPU:
        raise LevelZeroError(ZES_RESULT_ERROR_NOT_AVAILABLE)
    if dev.application_clock_hz is None:
        return (dev.spec.min_clock_hz / 1e6, dev.spec.max_clock_hz / 1e6)
    pinned = dev.application_clock_hz / 1e6
    return (pinned, pinned)


def zesPowerGetEnergyCounter(index: int) -> zes_power_energy_counter_t:
    dev = _device(index)
    return zes_power_energy_counter_t(
        energy_uj=int(round(dev.energy_j * 1e6)),
        timestamp_us=int(round(dev.clock.now * 1e6)),
    )
