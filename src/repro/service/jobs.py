"""Campaign jobs: the service-side lifecycle of one submitted spec.

A job's identity is content-addressed like everything else in the
campaign layer: ``campaign_id(tenant, spec)`` hashes the canonical
spec document, so resubmitting byte-equivalent work lands on the same
job — an in-flight job absorbs the duplicate submission, a finished
one answers from its store without re-executing a single unit.

The job state machine is strictly forward::

    queued -> running -> done | failed | cancelled

``failed`` means the *drain* broke (unexpected exception); individual
unit failures are ordinary campaign data and leave the job ``done``
with a non-zero ``failed`` count, exactly like the CLI path.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..campaign import (
    CampaignExecutor,
    CampaignRunStatus,
    CampaignSpec,
    ExecutorConfig,
    InFlightRegistry,
    build_status_doc,
    canonical_json,
)
from ..campaign.executor import (
    PROVENANCE_ATTACHED,
    PROVENANCE_EXECUTED,
    PROVENANCE_FAILED,
)
from ..campaign.store import RunStore
from ..telemetry import TraceCollector, TraceContext, write_trace_jsonl
from .events import EventBus

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States in which a job will not change any further.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Reported per-unit provenance: executed here, or served from cache.
CACHE_HIT = "cache_hit"


def campaign_id(tenant: str, spec: CampaignSpec) -> str:
    """Deterministic job id of one (tenant, spec) submission."""
    digest = hashlib.sha256(
        f"{tenant}\n{canonical_json(spec.to_dict())}".encode("utf-8")
    ).hexdigest()
    return f"c-{digest[:12]}"


def trace_context_for(tenant: str, job_id: str) -> TraceContext:
    """The root :class:`TraceContext` of one service submission.

    Seeded with the content-addressed job id, so resubmitting the same
    spec (or replaying the WAL after a crash) re-derives the *same*
    trace identity — the merged traces on disk stay addressable by the
    id every response returned.
    """
    from ..telemetry import mint_context

    return mint_context(seed=f"{tenant}:{job_id}")


class CampaignJob:
    """One admitted campaign: spec, store, progress stream, outcome."""

    def __init__(
        self,
        job_id: str,
        tenant: str,
        spec: CampaignSpec,
        store: RunStore,
        bus: EventBus,
        on_transition: Optional[Callable[["CampaignJob"], None]] = None,
        trace_context: Optional[TraceContext] = None,
    ) -> None:
        self.id = job_id
        self.tenant = tenant
        self.spec = spec
        self.store = store
        self.bus = bus
        #: Root trace context of the originating request; derived
        #: deterministically from (tenant, job id) — see
        #: :func:`trace_context_for` — so recovery re-mints it.
        self.trace_context = (
            trace_context
            if trace_context is not None
            else trace_context_for(tenant, job_id)
        )
        self.state = QUEUED
        self.submissions = 1
        self.error: Optional[str] = None
        self.status: Optional[CampaignRunStatus] = None
        self.adopted: List[str] = []
        self.created_s = time.time()
        self.started_s: Optional[float] = None
        self.finished_s: Optional[float] = None
        self._cancel = False
        #: Journal hook: called after every state change so the service
        #: WAL records the transition (see :mod:`repro.service.wal`).
        self.on_transition = on_transition
        #: True when this job object was rebuilt from the WAL after a
        #: service restart rather than submitted over HTTP.
        self.recovered = False
        # The grid is immutable per spec; expand once, reuse on every
        # status poll instead of re-walking the cross product.
        self.units = spec.expand()
        self.grid_keys = [unit.key for unit in self.units]

    @property
    def trace_id(self) -> str:
        """The trace id every response hands back for correlation."""
        return self.trace_context.trace_id

    # -- lifecycle -----------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def _transition(self, state: str) -> None:
        """Move the state machine and journal the move.

        A journaling failure (disk full on the WAL append) must not
        take the job down — the in-memory table stays authoritative for
        this process; recovery just sees the previous state.
        """
        self.state = state
        if self.on_transition is not None:
            try:
                self.on_transition(self)
            except OSError:  # pragma: no cover - disk-full / perms only
                pass

    def request_cancel(self) -> None:
        self._cancel = True

    @property
    def cancel_requested(self) -> bool:
        return self._cancel

    def mark_cancelled(self) -> None:
        """Cancelled before ever starting (dropped from the queue)."""
        self._transition(CANCELLED)
        self.finished_s = time.time()
        self.bus.publish({"event": "campaign-cancelled", "id": self.id})
        self.bus.close()

    def execute(
        self,
        inflight: InFlightRegistry,
        executor_config: Optional[ExecutorConfig] = None,
        adopt: Optional[Callable[[RunStore, List[str]], List[str]]] = None,
        publish: Optional[Callable[[RunStore, List[str]], int]] = None,
    ) -> None:
        """Drain the campaign (worker thread); never raises.

        ``adopt``/``publish`` are the tenancy layer's shared-cache
        read-through and write-through hooks. Even a ``BaseException``
        (worker-thread interrupt, interpreter shutdown) leaves the job
        in a terminal state with its event bus closed — subscribers
        and WAL replay must never see a job wedged in ``running``.
        """
        self._transition(RUNNING)
        self.started_s = time.time()
        self.bus.publish(
            {"event": "campaign-start", "id": self.id,
             "units": len(self.grid_keys)}
        )
        try:
            if adopt is not None:
                self.adopted = adopt(self.store, self.grid_keys)
                for key in self.adopted:
                    self.bus.publish(
                        {"event": "unit-shared-cache-hit", "key": key}
                    )
            # Campaign-level telemetry runs under the request's trace
            # context: executor spans/instants carry the trace id, and
            # every dispatched unit derives its child context from it.
            telemetry = TraceCollector()
            telemetry.configure_tracing(self.trace_context)
            executor = CampaignExecutor(
                self.store,
                config=executor_config,
                telemetry=telemetry,
                min_unit_wall_s=self.spec.min_unit_wall_s,
                on_event=self.bus.publish,
                should_stop=lambda: self._cancel,
                inflight=inflight,
                checkpoint_every=self.spec.checkpoint_every,
            )
            self.status = executor.run(self.units)
            try:
                write_trace_jsonl(
                    str(self.store.trace_path),
                    telemetry.events,
                    trace_id=self.trace_id,
                )
            except OSError:  # pragma: no cover - disk-full / perms only
                pass
            if publish is not None:
                publish(self.store, self.grid_keys)
            if self.status.interrupted and self._cancel:
                self._transition(CANCELLED)
            else:
                self._transition(DONE)
        except Exception as exc:  # noqa: BLE001 - job boundary
            self.error = f"{type(exc).__name__}: {exc}"
            self._transition(FAILED)
        except BaseException as exc:  # noqa: BLE001 - thread teardown
            self.error = f"{type(exc).__name__}: {exc}"
            self._transition(FAILED)
            raise
        finally:
            self.finished_s = time.time()
            summary: Dict[str, Any] = {
                "event": f"campaign-{self.state}", "id": self.id,
            }
            if self.status is not None:
                summary.update(
                    executed=self.status.executed,
                    cached=self.status.skipped,
                    attached=self.status.attached,
                    failed=self.status.failed,
                )
            if self.error is not None:
                summary["error"] = self.error
            self.bus.publish(summary)
            self.bus.close()

    # -- reporting -----------------------------------------------------------

    def unit_provenance(self) -> Dict[str, Mapping[str, Any]]:
        """Per-unit provenance of the last drain: who computed what.

        Anything this job did not execute itself is a ``cache_hit``
        with a ``via`` detail: ``store`` (completed in an earlier
        drain), ``inflight`` (attached to a concurrently-running
        campaign's unit) or ``shared`` (adopted from the cross-tenant
        cache).
        """
        if self.status is None:
            return {}
        adopted = set(self.adopted)
        out: Dict[str, Mapping[str, Any]] = {}
        for key, prov in sorted(self.status.provenance.items()):
            if prov == PROVENANCE_EXECUTED:
                out[key] = {"provenance": "executed", "via": None}
            elif prov == PROVENANCE_FAILED:
                out[key] = {"provenance": "failed", "via": None}
            elif prov == PROVENANCE_ATTACHED:
                out[key] = {"provenance": CACHE_HIT, "via": "inflight"}
            elif key in adopted:
                out[key] = {"provenance": CACHE_HIT, "via": "shared"}
            else:
                out[key] = {"provenance": CACHE_HIT, "via": "store"}
        return out

    def cache_hits(self) -> int:
        if self.status is None:
            return 0
        return self.status.skipped + self.status.attached

    def status_doc(self) -> Dict[str, Any]:
        """The service status document (wraps the shared serializer)."""
        doc: Dict[str, Any] = {
            "schema": 1,
            "kind": "service-campaign",
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "trace_id": self.trace_id,
            "traceparent": self.trace_context.to_traceparent(),
            "submissions": self.submissions,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "campaign": build_status_doc(self.store, self.spec),
            "events": len(self.bus),
        }
        if self.recovered:
            doc["recovered"] = True
        if self.error is not None:
            doc["error"] = self.error
        if self.status is not None:
            doc["drain"] = {
                "executed": self.status.executed,
                "cached": self.status.skipped,
                "attached": self.status.attached,
                "failed": self.status.failed,
                "retries": self.status.retries,
                "interrupted": self.status.interrupted,
                "wall_s": self.status.wall_s,
                "checkpoint_hits": self.status.checkpoint_hits,
                "lanes_reaped": self.status.lanes_reaped,
            }
            doc["units"] = self.unit_provenance()
        return doc
