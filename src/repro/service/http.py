"""A minimal asyncio HTTP/1.1 server on the standard library only.

Just enough protocol for the control plane: request parsing with a
bounded body, keep-alive connections, plain ``Content-Length``
responses and chunked streaming for server-sent events. Not a general
web server — no TLS, no pipelining of concurrent requests per
connection, no compression — but it handles hundreds of concurrent
keep-alive clients on one event loop, which is the service's actual
load profile (the bench drives it with 500+).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

#: Reason phrases for the statuses the service actually emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}

#: Upper bound on request bodies (campaign specs are a few KiB).
MAX_BODY_BYTES = 1 << 20

#: Upper bound on the request line + headers block.
MAX_HEADER_BYTES = 1 << 14


class ProtocolError(Exception):
    """Malformed request; carries the HTTP status to answer with."""

    def __init__(self, status: int, reason: str) -> None:
        super().__init__(reason)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}") from exc

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """One response: either a complete body or a streamed one."""

    status: int = 200
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: When set, the response streams as chunked transfer encoding and
    #: ``body`` is ignored.
    stream: Optional[AsyncIterator[bytes]] = None

    @classmethod
    def json(
        cls,
        payload: Any,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        body = (json.dumps(payload, indent=1, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        merged = {"Content-Type": "application/json; charset=utf-8"}
        if headers:
            merged.update(headers)
        return cls(status=status, headers=merged, body=body)

    @classmethod
    def text(cls, body: str, status: int = 200, content_type: str = "text/plain; charset=utf-8") -> "Response":
        return cls(
            status=status,
            headers={"Content-Type": content_type},
            body=body.encode("utf-8"),
        )

    @classmethod
    def error(cls, status: int, message: str, **extra: Any) -> "Response":
        return cls.json({"error": message, "status": status, **extra}, status=status)


Handler = Callable[[Request], Awaitable[Response]]


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the wire; None on clean EOF between requests."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed between requests
        raise ProtocolError(400, "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(431, "header block too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(431, "header block too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return Request(
        method=method.upper(),
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def _head_bytes(response: Response, extra: Dict[str, str]) -> bytes:
    reason = REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    for name, value in {**response.headers, **extra}.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter, response: Response, keep_alive: bool
) -> None:
    if response.stream is not None:
        writer.write(
            _head_bytes(
                response,
                {"Transfer-Encoding": "chunked", "Connection": "close"},
            )
        )
        await writer.drain()
        async for chunk in response.stream:
            if not chunk:
                continue
            writer.write(b"%x\r\n%b\r\n" % (len(chunk), chunk))
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return
    extra = {
        "Content-Length": str(len(response.body)),
        "Connection": "keep-alive" if keep_alive else "close",
    }
    writer.write(_head_bytes(response, extra))
    if response.body:
        writer.write(response.body)
    await writer.drain()


class HttpServer:
    """Keep-alive HTTP/1.1 server dispatching to one async handler."""

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and serve; returns the (host, port) actually bound."""
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self.port,
            limit=MAX_HEADER_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    await write_response(
                        writer,
                        Response.error(exc.status, str(exc)),
                        keep_alive=False,
                    )
                    return
                if request is None:
                    return
                try:
                    response = await self.handler(request)
                except ProtocolError as exc:
                    response = Response.error(exc.status, str(exc))
                except Exception as exc:  # noqa: BLE001 - connection boundary
                    response = Response.error(
                        500, f"{type(exc).__name__}: {exc}"
                    )
                keep_alive = request.keep_alive and response.stream is None
                await write_response(writer, response, keep_alive)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        except asyncio.CancelledError:
            # Loop/server shutdown with the connection open. Absorb the
            # cancellation so asyncio's connection_made callback does
            # not log it as an unhandled task exception.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
