"""Campaign progress streams: replayable event logs with async readers.

Executors run in worker threads and publish plain-dict progress events
(`unit-start`, `unit-done`, ...); HTTP clients consume them from the
asyncio side as server-sent events. The :class:`EventBus` bridges the
two worlds: publishes append to a bounded in-memory log under a
threading lock and wake subscribers through
``loop.call_soon_threadsafe``, so the executor never blocks on a slow
reader and a reader joining late replays history from any sequence
number before going live — a reconnect with ``?from=<seq>`` never
drops or duplicates events.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, AsyncIterator, Dict, List, Optional

#: Events kept for replay per campaign (oldest dropped beyond this).
DEFAULT_HISTORY = 100_000

#: Sentinel queued to subscribers when the bus closes.
_CLOSED = object()


class EventBus:
    """One campaign's append-only progress log plus live fan-out."""

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        history: int = DEFAULT_HISTORY,
    ) -> None:
        self._loop = loop
        self._history = int(history)
        self._events: List[Dict[str, Any]] = []
        self._dropped = 0
        self._seq = 0
        self._closed = False
        self._lock = threading.Lock()
        self._queues: List[asyncio.Queue] = []

    def attach_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def dropped(self) -> int:
        return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- publisher side (any thread) ----------------------------------------

    def publish(self, event: Dict[str, Any]) -> Dict[str, Any]:
        """Append one event and wake subscribers; returns the stamped event."""
        with self._lock:
            if self._closed:
                return dict(event)
            stamped = {"seq": self._seq, **event}
            self._seq += 1
            self._events.append(stamped)
            if len(self._events) > self._history:
                overflow = len(self._events) - self._history
                del self._events[:overflow]
                self._dropped += overflow
            queues = list(self._queues)
        self._fanout(queues, stamped)
        return stamped

    def close(self) -> None:
        """Mark the stream complete and end every live subscription."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            queues = list(self._queues)
        self._fanout(queues, _CLOSED)

    def _fanout(self, queues: List[asyncio.Queue], item: Any) -> None:
        if not queues:
            return
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._deliver, queues, item)
        except RuntimeError:  # loop shut down mid-publish
            pass

    @staticmethod
    def _deliver(queues: List[asyncio.Queue], item: Any) -> None:
        for queue in queues:
            queue.put_nowait(item)

    # -- subscriber side (event loop) ---------------------------------------

    def replay(self, from_seq: int = 0) -> List[Dict[str, Any]]:
        """Historical events with ``seq >= from_seq`` (oldest first)."""
        with self._lock:
            return [e for e in self._events if e["seq"] >= from_seq]

    async def subscribe(
        self, from_seq: int = 0
    ) -> AsyncIterator[Dict[str, Any]]:
        """Replay history from ``from_seq``, then yield live events.

        The iterator ends when the bus closes (campaign reached a
        terminal state). Must be consumed on the attached loop.
        """
        queue: asyncio.Queue = asyncio.Queue()
        with self._lock:
            history = [e for e in self._events if e["seq"] >= from_seq]
            closed = self._closed
            if not closed:
                self._queues.append(queue)
        try:
            last = from_seq - 1
            for event in history:
                yield event
                last = event["seq"]
            if closed:
                return
            while True:
                item = await queue.get()
                if item is _CLOSED:
                    return
                if item["seq"] <= last:  # already replayed
                    continue
                yield item
                last = item["seq"]
        finally:
            with self._lock:
                if queue in self._queues:
                    self._queues.remove(queue)
