"""Multi-tenant namespacing over the content-addressed run store.

One service root holds every tenant's campaigns plus an optional
cross-tenant result cache::

    <root>/
        tenants/<tenant>/campaigns/<slug>/   # one RunStore per campaign
        shared/runs/<key>.json               # read-through result cache

The layering is deliberately thin: run identity stays the campaign
layer's sha256 content hash, tenancy only decides *which directory* a
key lives in. Within a tenant, identical run units dedupe through the
ordinary RunStore completed-key skip. Across tenants, the shared cache
makes a unit computed by tenant A a free ``cache_hit`` for tenant B —
read-through on submission, write-through on completion — without ever
letting B enumerate or read A's store.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..campaign.store import RunStore

#: Tenant used when a request names none.
DEFAULT_TENANT = "public"

_TENANT_OK = re.compile(r"^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$")

_SLUG_BAD = re.compile(r"[^a-zA-Z0-9._-]+")


def validate_tenant(name: Optional[str]) -> str:
    """Coerce/validate a tenant name (filesystem- and label-safe)."""
    if name is None or name == "":
        return DEFAULT_TENANT
    if not _TENANT_OK.match(name):
        raise ValueError(
            f"invalid tenant {name!r}: 1-64 chars from [a-zA-Z0-9._-], "
            f"not starting with a separator"
        )
    return name


def campaign_slug(campaign: str) -> str:
    """Directory-safe, collision-free name for one campaign."""
    digest = hashlib.sha256(campaign.encode("utf-8")).hexdigest()[:8]
    safe = _SLUG_BAD.sub("-", campaign).strip("-") or "campaign"
    return f"{safe[:48]}-{digest}"


def namespaced_key(tenant: str, key: str) -> str:
    """Globally-unique identity of one run within one tenant."""
    return f"{tenant}/{key}"


class SharedResultCache:
    """Cross-tenant, content-addressed cache of completed run artifacts.

    Artifacts are the same ``campaign-run`` documents a
    :class:`RunStore` persists, keyed by the unit's content hash and
    written atomically — a reader never observes a torn artifact, and
    a double ``put`` of the same key is a harmless overwrite with
    identical bytes.
    """

    def __init__(self, root: str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path(key)
        if not path.exists():
            return None
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("schema") != 1 or payload.get("kind") != "campaign-run":
            raise ValueError(f"{path}: not a campaign run artifact")
        return payload

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        path = self.path(key)
        tmp = path.with_suffix(".json.tmp")
        with self._lock:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(dict(payload), fh, indent=1, sort_keys=True)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)


class MultiTenantRunStore:
    """Per-tenant RunStore namespaces plus the shared result cache.

    Store instances are cached per ``(tenant, campaign)`` so every job
    of the service that touches one campaign shares a single
    :class:`RunStore` object — which is what makes the executor's
    in-flight dedup and the store's thread-safe manifest work across
    concurrently-running campaigns.
    """

    def __init__(self, root: str, shared_cache: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.shared: Optional[SharedResultCache] = (
            SharedResultCache(str(self.root / "shared" / "runs"))
            if shared_cache
            else None
        )
        self._stores: Dict[Tuple[str, str], RunStore] = {}
        self._lock = threading.Lock()

    def tenant_root(self, tenant: str) -> Path:
        return self.root / "tenants" / validate_tenant(tenant)

    def store_for(self, tenant: str, campaign: str) -> RunStore:
        tenant = validate_tenant(tenant)
        cache_key = (tenant, campaign)
        with self._lock:
            store = self._stores.get(cache_key)
            if store is None:
                directory = (
                    self.tenant_root(tenant)
                    / "campaigns"
                    / campaign_slug(campaign)
                )
                store = RunStore(str(directory), campaign=campaign)
                self._stores[cache_key] = store
        return store

    def tenants(self) -> List[str]:
        base = self.root / "tenants"
        if not base.is_dir():
            return []
        return sorted(p.name for p in base.iterdir() if p.is_dir())

    # -- shared-cache plumbing ----------------------------------------------

    def adopt_shared(self, store: RunStore, keys: Iterable[str]) -> List[str]:
        """Read-through: pull missing-but-shared artifacts into a store.

        Returns the adopted keys; the executor will then skip them like
        any other completed unit, and the service reports them as
        cross-tenant ``cache_hit``\\ s.
        """
        if self.shared is None:
            return []
        done = store.completed_keys()
        adopted: List[str] = []
        for key in keys:
            if key in done:
                continue
            payload = self.shared.get(key)
            if payload is None:
                continue
            store.record_done(key, payload["unit"], payload["result"])
            adopted.append(key)
        return adopted

    def publish_shared(self, store: RunStore, keys: Iterable[str]) -> int:
        """Write-through: publish completed artifacts to the cache."""
        if self.shared is None:
            return 0
        published = 0
        done = store.completed_keys()
        for key in keys:
            if key not in done or key in self.shared:
                continue
            self.shared.put(key, store.load_result(key))
            published += 1
        return published
