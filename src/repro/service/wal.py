"""Per-tenant write-ahead log of the service job table.

The in-memory job table of :class:`~repro.service.service.CampaignService`
dies with the process; the unit *results* survive in the run store, but
without a durable record of which campaigns were submitted (and where
their lifecycles stood) a restarted ``repro serve`` would answer 404
for every pre-restart campaign id and silently drop queued work.

:class:`JobWal` closes that gap with the same discipline as the run
store's manifest: an append-only, schema-headered JSONL file at
``<tenant root>/jobs.jsonl``. Every record is fsync'd before the
caller proceeds — *write-ahead*: the submit response leaves the
service only after the submission is on disk. Two record shapes::

    {"op": "submit", "id": ..., "tenant": ..., "spec": {...}, "t_s": ...}
    {"op": "state",  "id": ..., "state": ..., "t_s": ..., ["error": ...]}

Replay folds the log into per-job lifecycles (latest state wins). A
crash mid-append leaves at most one torn final line; replay drops it
with a warning and truncates the file so the next append starts clean
— identical semantics to the manifest reader, and the worst case is
losing the single most recent transition, never a whole job.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from ..telemetry.events import check_schema_header, schema_header

__all__ = ["JOB_WAL_NAME", "JobWal", "WalJob", "replay_wal"]

#: File name of the per-tenant job journal.
JOB_WAL_NAME = "jobs.jsonl"

#: Schema kind of the WAL's header line.
WAL_KIND = "service-job-wal"


@dataclass
class WalJob:
    """One job's folded lifecycle after replay."""

    id: str
    tenant: str
    spec: Dict[str, Any]
    state: str
    submitted_s: float
    updated_s: float
    error: Optional[str] = None
    submissions: int = 1
    #: Every state this job passed through, in log order.
    history: List[str] = field(default_factory=list)
    #: Trace id minted at submission (None for pre-tracing WALs). The
    #: context itself is re-derived deterministically from the job id,
    #: so this is a cross-check and a lookup key, not the source.
    trace_id: Optional[str] = None


class JobWal:
    """Append-only, torn-tail-tolerant journal of job transitions."""

    def __init__(self, path: str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def append(self, record: Mapping[str, Any]) -> None:
        """Durably append one record (fsync before returning).

        The schema header is written lazily with the first record, so
        a tenant that never submits anything gets no file at all.
        """
        payload = dict(record)
        payload.setdefault("t_s", time.time())
        with self._lock:
            new_file = not self.path.exists()
            with open(self.path, "a", encoding="utf-8") as fh:
                if new_file:
                    fh.write(
                        json.dumps(schema_header(WAL_KIND), sort_keys=True)
                        + "\n"
                    )
                fh.write(json.dumps(payload, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())

    def record_submit(
        self,
        job_id: str,
        tenant: str,
        spec: Mapping[str, Any],
        trace_id: Optional[str] = None,
    ) -> None:
        record: Dict[str, Any] = {
            "op": "submit", "id": job_id, "tenant": tenant,
            "spec": dict(spec),
        }
        if trace_id is not None:
            record["trace_id"] = trace_id
        self.append(record)

    def record_state(
        self, job_id: str, state: str, error: Optional[str] = None
    ) -> None:
        record: Dict[str, Any] = {"op": "state", "id": job_id, "state": state}
        if error is not None:
            record["error"] = error
        self.append(record)

    # -- replay ----------------------------------------------------------------

    def read_records(self) -> List[Dict[str, Any]]:
        """Raw log records in append order (header validated, torn tail
        dropped and truncated)."""
        path = self.path
        if not path.exists():
            return []
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        lines = text.split("\n")
        torn_tail = bool(text) and not text.endswith("\n")
        records: List[Dict[str, Any]] = []
        header_seen = False
        for lineno, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if torn_tail and lineno == len(lines):
                    warnings.warn(
                        f"{path}:{lineno}: dropping torn final WAL line "
                        f"(crash during append?)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    keep = len(text.encode("utf-8")) - len(
                        lines[-1].encode("utf-8")
                    )
                    with open(path, "r+b") as out:
                        out.truncate(keep)
                    continue
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from None
            if not header_seen:
                try:
                    check_schema_header(record, WAL_KIND)
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
                header_seen = True
                continue
            records.append(record)
        return records

    def replay(self) -> Dict[str, WalJob]:
        """Fold the log into per-job lifecycles, keyed by job id."""
        return replay_wal(self.read_records())


def replay_wal(records: List[Mapping[str, Any]]) -> Dict[str, WalJob]:
    """Fold raw WAL records into :class:`WalJob` lifecycles.

    Unknown ops and state records for never-submitted ids are skipped
    (forward compatibility / partial-log tolerance) rather than fatal.
    """
    jobs: Dict[str, WalJob] = {}
    for record in records:
        op = record.get("op")
        job_id = record.get("id")
        if not job_id:
            continue
        t_s = float(record.get("t_s", 0.0))
        if op == "submit":
            existing = jobs.get(job_id)
            if existing is not None:
                # A resubmission of a terminal job: fresh attempt under
                # the same content-addressed id.
                existing.submissions += 1
                existing.updated_s = t_s
                continue
            jobs[job_id] = WalJob(
                id=job_id,
                tenant=str(record.get("tenant", "")),
                spec=dict(record.get("spec", {})),
                state="queued",
                submitted_s=t_s,
                updated_s=t_s,
                history=["queued"],
                trace_id=record.get("trace_id"),
            )
        elif op == "state":
            job = jobs.get(job_id)
            if job is None:
                continue
            job.state = str(record.get("state", job.state))
            job.error = record.get("error", None)
            job.updated_s = t_s
            job.history.append(job.state)
    return jobs
