"""The campaign service engine: everything behind the HTTP surface.

:class:`CampaignService` owns the long-lived state — the multi-tenant
store, the job table, the in-flight unit registry, the fair scheduler,
the metrics registry and the report cache — and exposes the verbs the
control plane routes to (`submit`, `status_doc`, `report`, `cancel`,
`health`, `metrics_text`). It is deliberately HTTP-free so tests and
embedders can drive a service in-process.

Result caching happens at two content-addressed layers:

* **unit artifacts** — the campaign layer's run keys, deduped through
  the store / in-flight registry / cross-tenant shared cache;
* **reports** — an aggregated EDP/Pareto summary is cached under the
  hash of the exact set of completed unit keys it folds, so repeated
  report queries (the hot read path) recompute only when a new unit
  lands.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..campaign import (
    CampaignSpec,
    ExecutorConfig,
    InFlightRegistry,
    build_summary,
    canonical_json,
)
from ..monitor import render_prometheus, stalled_worker_alerts
from ..telemetry.metrics import MetricsRegistry
from .events import EventBus
from .jobs import (
    DONE,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    CampaignJob,
    campaign_id,
)
from .scheduler import BackpressureError, FairScheduler, SchedulerConfig
from .tenancy import MultiTenantRunStore, validate_tenant
from .wal import JOB_WAL_NAME, JobWal

__all__ = [
    "BackpressureError",
    "CampaignService",
    "ServiceConfig",
    "ServiceUnavailable",
]


class ServiceUnavailable(RuntimeError):
    """The service is draining for shutdown; submissions are refused."""


@dataclass(frozen=True)
class ServiceConfig:
    """One service instance's knobs."""

    #: Root directory of the multi-tenant store.
    root: str
    #: Share completed artifacts across tenants (read-through cache).
    shared_cache: bool = True
    #: Scheduler admission/fairness settings.
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: Per-campaign executor settings (workers=1 drains inline in the
    #: job's worker thread; >1 adds a process pool per campaign).
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    #: Heartbeat age that surfaces a worker-stall alert in status docs.
    stall_after_s: float = 120.0


class CampaignService:
    """Multi-tenant campaign execution with content-hash caching."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.stores = MultiTenantRunStore(
            config.root, shared_cache=config.shared_cache
        )
        self.metrics = MetricsRegistry()
        self.inflight = InFlightRegistry()
        self.jobs: Dict[str, CampaignJob] = {}
        self.started_s = time.time()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._scheduler: Optional[FairScheduler] = None
        self._report_cache: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        self._wals: Dict[str, JobWal] = {}
        self._draining = False
        #: Campaign ids rebuilt from the WAL on the last start().
        self.recovered_ids: List[str] = []

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "CampaignService":
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.scheduler.max_running,
            thread_name_prefix="repro-service-worker",
        )
        self._scheduler = FairScheduler(
            self._run_job, config=self.config.scheduler
        )
        self._recover()
        return self

    def begin_shutdown(self) -> None:
        """Graceful drain: refuse new work, stop running campaigns.

        New submissions get :class:`ServiceUnavailable` (503); running
        drains see their ``should_stop`` flag and halt at the next unit
        boundary (completed units are durable, interrupted ones resume
        from their checkpoints on the next start); every transition is
        journaled, so a subsequent :meth:`start` replays the WAL and
        picks the interrupted campaigns back up.
        """
        if self._draining:
            return
        self._draining = True
        self._count("service_shutdowns")
        for job in self.jobs.values():
            if not job.terminal:
                job.request_cancel()

    @property
    def draining(self) -> bool:
        return self._draining

    async def close(self) -> None:
        self.begin_shutdown()
        if self._scheduler is not None:
            await self._scheduler.drain()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- durability ----------------------------------------------------------

    def wal_for(self, tenant: str) -> JobWal:
        """The tenant's job journal (created lazily, cached)."""
        tenant = validate_tenant(tenant)
        wal = self._wals.get(tenant)
        if wal is None:
            wal = self._wals[tenant] = JobWal(
                str(self.stores.tenant_root(tenant) / JOB_WAL_NAME)
            )
        return wal

    def _journal_transition(self, job: CampaignJob) -> None:
        self.wal_for(job.tenant).record_state(
            job.id, job.state, error=job.error
        )

    def _recover(self) -> None:
        """Rebuild the job table from every tenant's WAL.

        Terminal jobs come back as queryable records (status, report
        and SSE answer for their pre-restart ids); jobs that were
        queued or running when the previous process died are
        resubmitted to the scheduler — their drains resume from the
        run store (completed units cached) and from unit checkpoints
        (partially-run units continue mid-simulation).
        """
        self.recovered_ids = []
        for tenant in self.stores.tenants():
            wal_path = self.stores.tenant_root(tenant) / JOB_WAL_NAME
            if not wal_path.exists():
                continue
            try:
                lifecycles = self.wal_for(tenant).replay()
            except ValueError:
                self._count("service_wal_replay_errors")
                continue
            for job_id, lifecycle in lifecycles.items():
                if job_id in self.jobs:
                    continue
                try:
                    spec = CampaignSpec.from_dict(lifecycle.spec)
                except (KeyError, TypeError, ValueError):
                    self._count("service_wal_replay_errors")
                    continue
                store = self.stores.store_for(tenant, spec.name)
                bus = EventBus(loop=self._loop)
                job = CampaignJob(
                    job_id, tenant, spec, store, bus,
                    on_transition=self._journal_transition,
                )
                job.recovered = True
                job.submissions = lifecycle.submissions
                job.created_s = lifecycle.submitted_s
                if lifecycle.state in TERMINAL_STATES:
                    job.state = lifecycle.state
                    job.error = lifecycle.error
                    job.finished_s = lifecycle.updated_s
                    job.bus.close()
                    self.jobs[job_id] = job
                    self.recovered_ids.append(job_id)
                    self._count("service_jobs_recovered_terminal")
                else:
                    # queued or running at crash: run it (again); the
                    # store/checkpoints make the re-drain incremental.
                    try:
                        self.scheduler.submit(job)
                    except BackpressureError:
                        self._count("service_recovery_rejected")
                        continue
                    self.jobs[job_id] = job
                    self.recovered_ids.append(job_id)
                    self._count("service_jobs_recovered_resumed")

    @property
    def scheduler(self) -> FairScheduler:
        if self._scheduler is None:
            raise RuntimeError("service is not started")
        return self._scheduler

    # -- submission ----------------------------------------------------------

    def submit(
        self, tenant: Optional[str], spec_payload: Mapping[str, Any]
    ) -> Tuple[CampaignJob, bool]:
        """Admit one campaign spec; returns ``(job, created)``.

        ``created`` is False when the submission deduplicated onto an
        existing job (same tenant, byte-equivalent spec) that is
        queued, running or done — the caller gets the original id and,
        for a done job, an immediately-consistent result with zero
        re-execution.
        """
        if self._draining:
            self._count("service_submissions_refused_draining")
            raise ServiceUnavailable(
                "service is shutting down; resubmit after restart"
            )
        tenant = validate_tenant(tenant)
        spec = CampaignSpec.from_dict(spec_payload)
        job_id = campaign_id(tenant, spec)
        existing = self.jobs.get(job_id)
        if existing is not None and existing.state in (QUEUED, RUNNING, DONE):
            existing.submissions += 1
            self._count("service_submissions_deduped")
            return existing, False
        # A failed/cancelled job resubmits as a fresh attempt under the
        # same content-addressed id; completed units stay cached.
        store = self.stores.store_for(tenant, spec.name)
        bus = EventBus(loop=self._loop)
        job = CampaignJob(
            job_id, tenant, spec, store, bus,
            on_transition=self._journal_transition,
        )
        try:
            self.scheduler.submit(job)
        except BackpressureError:
            self._count("service_submissions_rejected")
            raise
        # Write-ahead: the submission is on disk before the caller gets
        # its 202 — a crash after this point can only *delay* the
        # campaign, never lose it. The trace id rides along so offline
        # tooling can correlate WAL entries with merged traces (the
        # context itself re-derives from the job id on recovery).
        self.wal_for(tenant).record_submit(
            job_id, tenant, spec.to_dict(), trace_id=job.trace_id
        )
        self.jobs[job_id] = job
        self._count("service_submissions")
        return job, True

    async def _run_job(self, job: CampaignJob) -> None:
        if job.cancel_requested:
            job.mark_cancelled()
            return
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._pool,
            job.execute,
            self.inflight,
            self.config.executor,
            self.stores.adopt_shared,
            self.stores.publish_shared,
        )
        status = job.status
        if status is not None:
            self._count("service_units_executed", status.executed)
            self._count("service_units_failed", status.failed)
            # Adopted units are a subset of the skipped ones (the
            # executor sees them as already completed), so don't add
            # them twice.
            hits = status.skipped + status.attached
            self._count("service_unit_cache_hits", hits)

    # -- queries -------------------------------------------------------------

    def job(self, job_id: str) -> CampaignJob:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown campaign {job_id!r}")
        return job

    def jobs_for(self, tenant: Optional[str] = None) -> List[CampaignJob]:
        jobs = sorted(self.jobs.values(), key=lambda j: j.created_s)
        if tenant is None:
            return jobs
        tenant = validate_tenant(tenant)
        return [j for j in jobs if j.tenant == tenant]

    def status_doc(self, job: CampaignJob) -> Dict[str, Any]:
        """Job status + live worker-stall alerts for running drains."""
        doc = job.status_doc()
        alerts: List[Dict[str, Any]] = []
        if job.state == RUNNING:
            try:
                heartbeats = job.store.read_heartbeats()
            except (OSError, ValueError):
                heartbeats = {}
            alerts = [
                alert.to_dict()
                for alert in stalled_worker_alerts(
                    heartbeats, time.time(),
                    stall_after_s=self.config.stall_after_s,
                )
            ]
        doc["alerts"] = alerts
        return doc

    def cancel(self, job: CampaignJob) -> str:
        """Cancel a job; returns its (possibly unchanged) state."""
        if job.terminal:
            return job.state
        job.request_cancel()
        if job.state == QUEUED and self.scheduler.cancel_queued(job):
            job.mark_cancelled()
        self._count("service_cancellations")
        return job.state

    # -- report cache --------------------------------------------------------

    def report(self, job: CampaignJob) -> Dict[str, Any]:
        """EDP/Pareto summary of the job's grid, content-hash cached."""
        grid = set(job.grid_keys)
        completed = sorted(job.store.completed_keys() & grid)
        if not completed:
            raise LookupError(
                f"campaign {job.id!r} has no completed runs yet"
            )
        content = hashlib.sha256(
            canonical_json([job.store.campaign, completed]).encode("utf-8")
        ).hexdigest()
        cached = self._report_cache.get(job.id)
        if cached is not None and cached[0] == content:
            self._count("service_report_cache_hits")
            return cached[1]
        self._count("service_report_cache_misses")
        summary = build_summary(job.store, keys=job.grid_keys)
        self._report_cache[job.id] = (content, summary)
        return summary

    # -- health / metrics ----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "status": "draining" if self._draining else "ok",
            "draining": self._draining,
            "uptime_s": time.time() - self.started_s,
            "jobs": states,
            "tenants": self.stores.tenants(),
            "scheduler": self.scheduler.stats(),
            "in_flight_units": len(self.inflight.in_flight()),
        }

    def metrics_text(self) -> str:
        stats = self.scheduler.stats()
        self.metrics.gauge("service_jobs_running").set(stats["running"])
        self.metrics.gauge("service_jobs_queued").set(stats["queued"])
        self.metrics.gauge(
            "service_uptime_s"
        ).set(time.time() - self.started_s)
        return render_prometheus(self.metrics)

    def _count(self, name: str, amount: float = 1.0) -> None:
        if amount:
            self.metrics.counter(name).inc(amount)
