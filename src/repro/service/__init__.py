"""repro.service: campaign-as-a-service control plane.

An asyncio HTTP front end (standard library only) over the campaign
layer: clients ``POST`` a campaign spec and get back a
content-addressed campaign id; progress streams out as server-sent
events fed by the executor's telemetry; completed grids answer with the
cached EDP/Pareto report. Underneath sit a multi-tenant
:class:`~repro.service.tenancy.MultiTenantRunStore` with an optional
cross-tenant result cache, a fair per-tenant scheduler with bounded
queues (backpressure as ``429`` + ``Retry-After``), and unit-level
dedup so identical work submitted twice — by the same tenant or
another — never computes twice.

Entry points: ``repro serve`` on the CLI, :func:`serve` in-process
(tests, benches), :class:`CampaignService` for embedders who bring
their own transport.
"""

from .app import TENANT_HEADER, ServiceApp, serve
from .events import EventBus
from .http import HttpServer, Request, Response
from .jobs import (
    CACHE_HIT,
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    CampaignJob,
    campaign_id,
)
from .scheduler import BackpressureError, FairScheduler, SchedulerConfig
from .service import CampaignService, ServiceConfig
from .tenancy import (
    DEFAULT_TENANT,
    MultiTenantRunStore,
    SharedResultCache,
    campaign_slug,
    validate_tenant,
)

__all__ = [
    "BackpressureError",
    "CACHE_HIT",
    "CANCELLED",
    "CampaignJob",
    "CampaignService",
    "DEFAULT_TENANT",
    "DONE",
    "EventBus",
    "FAILED",
    "FairScheduler",
    "HttpServer",
    "MultiTenantRunStore",
    "QUEUED",
    "Request",
    "Response",
    "RUNNING",
    "SchedulerConfig",
    "ServiceApp",
    "ServiceConfig",
    "SharedResultCache",
    "TENANT_HEADER",
    "TERMINAL_STATES",
    "campaign_id",
    "campaign_slug",
    "serve",
    "validate_tenant",
]
