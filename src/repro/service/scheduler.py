"""Fair campaign admission: per-tenant quotas, bounded queues, 429s.

The control plane is one event loop; campaign execution is blocking
work handed to worker threads. Between the two sits this scheduler: it
decides *which* queued campaign starts when a worker slot frees, and
*whether* a new submission is admitted at all.

Fairness is round-robin across tenants (the tenant order rotates on
every dispatch, so one chatty tenant cannot starve the rest) combined
with a per-tenant running cap. Backpressure is a bounded per-tenant
queue: a submission beyond the bound raises :class:`BackpressureError`
carrying a ``retry_after_s`` hint, which the HTTP layer maps onto
``429 Too Many Requests`` + ``Retry-After`` — load is rejected at the
door instead of growing an unbounded backlog.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Deque, Dict, Optional


class BackpressureError(Exception):
    """Submission rejected; retry after ``retry_after_s`` seconds."""

    def __init__(self, reason: str, retry_after_s: float) -> None:
        super().__init__(reason)
        self.retry_after_s = float(retry_after_s)


@dataclass(frozen=True)
class SchedulerConfig:
    """Admission and fairness knobs of one service instance."""

    #: Campaigns running concurrently, service-wide (= worker threads).
    max_running: int = 2
    #: Campaigns one tenant may have running at once.
    per_tenant_running: int = 1
    #: Queued (admitted, not yet running) campaigns per tenant.
    queue_depth: int = 8
    #: ``Retry-After`` hint handed to rejected submitters.
    retry_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_running < 1:
            raise ValueError("max_running must be >= 1")
        if self.per_tenant_running < 1:
            raise ValueError("per_tenant_running must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.retry_after_s <= 0:
            raise ValueError("retry_after_s must be positive")


class FairScheduler:
    """Round-robin dispatcher over per-tenant bounded queues.

    ``runner(job)`` is awaited on the event loop for every dispatched
    job (the service wraps the blocking drain in ``run_in_executor``).
    All scheduler state is loop-confined: :meth:`submit` must be called
    from the loop thread, which the HTTP handlers guarantee.
    """

    def __init__(
        self,
        runner: Callable[[Any], Awaitable[None]],
        config: Optional[SchedulerConfig] = None,
    ) -> None:
        self.config = config or SchedulerConfig()
        self._runner = runner
        self._queues: Dict[str, Deque[Any]] = {}
        self._order: Deque[str] = deque()
        self._running: Dict[str, int] = {}
        self._total_running = 0
        self._tasks: set = set()
        self._dispatched = 0
        self._rejected = 0

    # -- admission -----------------------------------------------------------

    def submit(self, job: Any) -> None:
        """Admit one job (``job.tenant`` names its queue) or raise 429."""
        cfg = self.config
        tenant = job.tenant
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._order.append(tenant)
        if len(queue) >= cfg.queue_depth:
            self._rejected += 1
            raise BackpressureError(
                f"tenant {tenant!r} queue is full "
                f"({cfg.queue_depth} campaigns waiting)",
                cfg.retry_after_s,
            )
        queue.append(job)
        self._maybe_start()

    def cancel_queued(self, job: Any) -> bool:
        """Drop a job that has not started yet; True when removed."""
        queue = self._queues.get(job.tenant)
        if queue is None or job not in queue:
            return False
        queue.remove(job)
        return True

    # -- dispatch ------------------------------------------------------------

    def _next_job(self) -> Optional[Any]:
        for _ in range(len(self._order)):
            tenant = self._order[0]
            self._order.rotate(-1)
            if self._running.get(tenant, 0) >= self.config.per_tenant_running:
                continue
            queue = self._queues.get(tenant)
            if queue:
                return queue.popleft()
        return None

    def _maybe_start(self) -> None:
        while self._total_running < self.config.max_running:
            job = self._next_job()
            if job is None:
                return
            self._start(job)

    def _start(self, job: Any) -> None:
        self._running[job.tenant] = self._running.get(job.tenant, 0) + 1
        self._total_running += 1
        self._dispatched += 1
        task = asyncio.ensure_future(self._run(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, job: Any) -> None:
        try:
            await self._runner(job)
        finally:
            self._running[job.tenant] -= 1
            self._total_running -= 1
            self._maybe_start()

    # -- introspection -------------------------------------------------------

    @property
    def total_running(self) -> int:
        return self._total_running

    def queued(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            return len(self._queues.get(tenant, ()))
        return sum(len(q) for q in self._queues.values())

    def stats(self) -> Dict[str, Any]:
        return {
            "running": self._total_running,
            "queued": self.queued(),
            "queued_by_tenant": {
                t: len(q) for t, q in sorted(self._queues.items()) if q
            },
            "dispatched": self._dispatched,
            "rejected": self._rejected,
        }

    async def drain(self) -> None:
        """Wait for every running/queued job to finish (tests, shutdown)."""
        while self._tasks or self.queued():
            tasks = list(self._tasks)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            else:
                await asyncio.sleep(0.01)
