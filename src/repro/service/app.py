"""HTTP routes of the campaign service.

Maps the control-plane surface onto :class:`CampaignService`:

====== =============================== =====================================
POST   /campaigns                      submit a spec -> 202 + campaign id
GET    /campaigns                      list this tenant's campaigns
GET    /campaigns/{id}                 status document (+ stall alerts)
GET    /campaigns/{id}/events          server-sent progress stream
GET    /campaigns/{id}/report          EDP/Pareto summary (cached)
DELETE /campaigns/{id}                 cancel (queued drop / running stop)
GET    /healthz                        liveness + scheduler stats
GET    /metrics                        Prometheus exposition
====== =============================== =====================================

Tenancy rides in the ``X-Repro-Tenant`` header (default ``public``); a
job is only visible to the tenant that submitted it. Backpressure from
the scheduler surfaces as ``429`` with a ``Retry-After`` header.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, Optional

from ..monitor import PROM_CONTENT_TYPE
from .http import HttpServer, ProtocolError, Request, Response
from .jobs import CampaignJob
from .scheduler import BackpressureError
from .service import CampaignService, ServiceUnavailable

__all__ = ["ServiceApp", "TENANT_HEADER"]

#: Request header naming the tenant; absent means the default tenant.
TENANT_HEADER = "x-repro-tenant"


def _sse_frame(event: Dict[str, Any]) -> bytes:
    """One server-sent-events frame for a stamped bus event."""
    name = event.get("event", "message")
    data = json.dumps(event, sort_keys=True)
    return f"id: {event.get('seq', 0)}\nevent: {name}\ndata: {data}\n\n".encode(
        "utf-8"
    )


class ServiceApp:
    """Routes requests to a :class:`CampaignService`."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service

    async def __call__(self, request: Request) -> Response:
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            return self._healthz(request)
        if path == "/metrics":
            return self._metrics(request)
        if path == "/campaigns":
            if request.method == "POST":
                return self._submit(request)
            if request.method == "GET":
                return self._list(request)
            return Response.error(405, f"{request.method} not allowed here")
        parts = path.strip("/").split("/")
        if parts[0] == "campaigns" and len(parts) in (2, 3):
            job = self._job(request, parts[1])
            tail = parts[2] if len(parts) == 3 else None
            if tail is None:
                if request.method == "GET":
                    return self._status(job)
                if request.method == "DELETE":
                    return self._cancel(job)
                return Response.error(405, f"{request.method} not allowed here")
            if request.method != "GET":
                return Response.error(405, f"{request.method} not allowed here")
            if tail == "events":
                return self._events(request, job)
            if tail == "report":
                return self._report(job)
        return Response.error(404, f"no route for {request.method} {request.path}")

    # -- helpers -------------------------------------------------------------

    def _tenant(self, request: Request) -> Optional[str]:
        return request.headers.get(TENANT_HEADER)

    def _job(self, request: Request, job_id: str) -> CampaignJob:
        try:
            job = self.service.job(job_id)
        except KeyError as exc:
            raise ProtocolError(404, str(exc)) from exc
        tenant = self._tenant(request)
        if tenant is not None and job.tenant != tenant:
            # Same answer as "never existed": ids are not enumerable
            # across tenants.
            raise ProtocolError(404, f"unknown campaign {job_id!r}")
        return job

    def _submission_doc(
        self, job: CampaignJob, created: bool
    ) -> Dict[str, Any]:
        return {
            "id": job.id,
            "tenant": job.tenant,
            "state": job.state,
            "trace_id": job.trace_id,
            "traceparent": job.trace_context.to_traceparent(),
            "created": created,
            "submissions": job.submissions,
            "units": len(job.grid_keys),
        }

    # -- routes --------------------------------------------------------------

    def _healthz(self, request: Request) -> Response:
        if request.method != "GET":
            return Response.error(405, f"{request.method} not allowed here")
        return Response.json(self.service.health())

    def _metrics(self, request: Request) -> Response:
        if request.method != "GET":
            return Response.error(405, f"{request.method} not allowed here")
        return Response.text(
            self.service.metrics_text(), content_type=PROM_CONTENT_TYPE
        )

    def _submit(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict):
            return Response.error(400, "campaign submission must be an object")
        tenant = self._tenant(request)
        spec_doc = payload
        if "spec" in payload and payload.get("kind") != "campaign-spec":
            spec_doc = payload["spec"]
            tenant = payload.get("tenant", tenant)
        try:
            job, created = self.service.submit(tenant, spec_doc)
        except ServiceUnavailable as exc:
            return Response.json(
                {"error": str(exc), "status": 503},
                status=503,
                headers={"Retry-After": "5"},
            )
        except BackpressureError as exc:
            retry_after = max(1, round(exc.retry_after_s))
            return Response.json(
                {"error": str(exc), "status": 429,
                 "retry_after_s": exc.retry_after_s},
                status=429,
                headers={"Retry-After": str(retry_after)},
            )
        except (KeyError, TypeError, ValueError) as exc:
            return Response.error(400, f"invalid campaign spec: {exc}")
        status = 202 if not job.terminal else 200
        return Response.json(self._submission_doc(job, created), status=status)

    def _list(self, request: Request) -> Response:
        tenant = self._tenant(request)
        try:
            jobs = self.service.jobs_for(tenant)
        except ValueError as exc:
            return Response.error(400, str(exc))
        return Response.json(
            {
                "campaigns": [
                    self._submission_doc(job, False) for job in jobs
                ]
            }
        )

    def _status(self, job: CampaignJob) -> Response:
        return Response.json(self.service.status_doc(job))

    def _cancel(self, job: CampaignJob) -> Response:
        state = self.service.cancel(job)
        return Response.json({"id": job.id, "state": state}, status=202)

    def _report(self, job: CampaignJob) -> Response:
        try:
            return Response.json(self.service.report(job))
        except LookupError as exc:
            return Response.error(409, str(exc), state=job.state)

    def _events(self, request: Request, job: CampaignJob) -> Response:
        try:
            from_seq = int(request.query.get("from", "0"))
        except ValueError:
            return Response.error(400, "'from' must be an integer sequence")

        async def stream() -> AsyncIterator[bytes]:
            async for event in job.bus.subscribe(from_seq=from_seq):
                yield _sse_frame(event)
            yield b"event: end\ndata: {}\n\n"

        return Response(
            status=200,
            headers={
                "Content-Type": "text/event-stream; charset=utf-8",
                "Cache-Control": "no-store",
            },
            stream=stream(),
        )


async def serve(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> HttpServer:
    """Start a service's HTTP front end; caller owns the lifecycle."""
    await service.start()
    server = HttpServer(ServiceApp(service), host=host, port=port)
    await server.start()
    return server


async def run_until_interrupted(
    service: CampaignService,
    host: str,
    port: int,
    ready: Optional[Any] = None,
) -> None:
    """Blocking serve loop for the CLI (`repro serve`).

    SIGTERM/SIGINT trigger a graceful drain: the service stops
    admitting work (503), running campaigns halt at the next unit
    boundary with their transitions journaled in the WAL, open SSE
    streams get their terminal event, and only then does the socket
    close — a restarted ``repro serve`` on the same root resumes the
    interrupted campaigns.
    """
    import signal as _signal

    server = await serve(service, host=host, port=port)
    if ready is not None:
        ready(server.host, server.port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()

    def _drain() -> None:
        service.begin_shutdown()
        stop.set()

    installed = []
    for sig in (_signal.SIGTERM, _signal.SIGINT):
        try:
            loop.add_signal_handler(sig, _drain)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            # Non-main thread or platform without signal support: the
            # caller cancels this coroutine instead.
            pass
    try:
        await stop.wait()
    except asyncio.CancelledError:
        service.begin_shutdown()
    finally:
        for sig in installed:
            try:
                loop.remove_signal_handler(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        await server.close()
        await service.close()
