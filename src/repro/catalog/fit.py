"""Calibration: recover device model parameters from measured traces.

The paper's power model is a low-dimensional response surface,

    P(f, i) = P_idle + i * P_dyn * (f / f_max) ** alpha
    t(f)    = FLOPs / (T_fp * eff * f / f_max) + bytes / BW + overhead

so a handful of probe points pinned at different application clocks
determine every parameter (Afzal et al., PAPERS.md, fit the same
surface on real A100/H100 parts). This module provides both halves of
that loop:

* :func:`run_calibration_sweep` drives a simulated device through a
  deterministic probe schedule — idle windows, pure-compute and
  pure-memory kernels, and the application kernels — across a set of
  pinned clocks, recording a telemetry JSONL trace, a PMT dump, and a
  schedule sidecar describing each probe window.
* :func:`fit_from_trace` / :func:`fit_from_dump` ingest those
  artifacts (either is sufficient on its own) and fit ``P_idle``,
  ``P_dyn``, ``alpha``, peak throughput, memory bandwidth and
  per-kernel roofline fractions by least squares.
* :func:`fit_to_spec_payload` emits the result as a catalog spec file
  payload; :func:`verify_fit` compares a fit against a ground-truth
  :class:`GpuSpec` (the round-trip the tests and ``repro calibrate
  --smoke`` pin).

Probe windows whose mean power feeds the power fit are aligned to the
PMT sampler's tick grid (idle filler up to
:attr:`~repro.pmt.sampler.PmtSampler.next_tick_s`), so the cumulative
joule counter is sampled *exactly* at window boundaries and the fitted
power carries no interpolation error across the busy/idle transition.
Roofline probes only need durations, which the schedule records
exactly, so they skip the alignment.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..hardware.clock import VirtualClock
from ..hardware.gpu import SimulatedGpu
from ..hardware.kernel import KernelLaunch
from ..pmt.base import PMT, State
from ..pmt.sampler import PmtSampler, Sample
from ..systems.presets import SystemConfig
from ..telemetry.chrome_trace import read_trace_jsonl, write_trace_jsonl
from ..telemetry.events import (
    TRACK_CLOCKS,
    TRACK_FUNCTIONS,
    CounterEvent,
    InstantEvent,
    SpanEvent,
    check_schema_header,
    schema_header,
)
from ..units import mhz, to_mhz
from .loader import spec_payload_from_system

#: ``kind`` of the schedule sidecar's schema header.
SCHEDULE_KIND = "calibration-schedule"

#: Probe kernel names (never collide with application kernel names).
CALIBRATION_IDLE = "CalibrationIdle"
CALIBRATION_COMPUTE = "CalibrationCompute"
CALIBRATION_MEMORY = "CalibrationMemory"

#: Application kernels probed by default, with representative power
#: intensities (the SPH-EXA §IV-B trio).
DEFAULT_PROBE_KERNELS: Mapping[str, float] = {
    "MomentumEnergy": 1.0,
    "IADVelocityDivCurl": 0.95,
    "Gravity": 0.85,
}

#: Clock ratios (of f_max) probed by default, before bin quantization.
DEFAULT_CLOCK_RATIOS = (1.0, 0.9, 0.8, 0.71, 0.62, 0.5)


class CalibrationError(ValueError):
    """A trace does not contain enough (or consistent) probe data."""


@dataclass(frozen=True)
class ProbeWindow:
    """One probe of the sweep: what ran, when, and at which clock."""

    phase: str  # "idle" | "compute" | "memory" | "kernel"
    kernel: str
    clock_mhz: float
    t0_s: float
    t1_s: float
    flops: float = 0.0
    bytes_moved: float = 0.0
    intensity: float = 0.0
    throttled: bool = False

    @property
    def duration_s(self) -> float:
        return self.t1_s - self.t0_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "kernel": self.kernel,
            "clock_mhz": self.clock_mhz,
            "t0_s": self.t0_s,
            "t1_s": self.t1_s,
            "flops": self.flops,
            "bytes": self.bytes_moved,
            "intensity": self.intensity,
            "throttled": self.throttled,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "ProbeWindow":
        return cls(
            phase=str(raw["phase"]),
            kernel=str(raw["kernel"]),
            clock_mhz=float(raw["clock_mhz"]),
            t0_s=float(raw["t0_s"]),
            t1_s=float(raw["t1_s"]),
            flops=float(raw.get("flops", 0.0)),
            bytes_moved=float(raw.get("bytes", 0.0)),
            intensity=float(raw.get("intensity", 0.0)),
            throttled=bool(raw.get("throttled", False)),
        )


@dataclass(frozen=True)
class SweepResult:
    """Artifacts of one calibration sweep."""

    system: str
    trace_path: str
    dump_path: str
    schedule_path: str
    n_probes: int
    elapsed_s: float
    clocks_mhz: Tuple[float, ...]


@dataclass(frozen=True)
class KernelFit:
    """Roofline decomposition of one application kernel."""

    name: str
    #: Compute seconds at f_max (the roofline ``A`` coefficient).
    compute_seconds_ref: float
    #: Clock-independent seconds (memory phase + overhead, ``B``).
    memory_seconds: float
    #: Fitted architecture efficiency (fraction of fitted peak).
    efficiency: float
    #: Frequency-sensitive fraction kappa at f_max.
    compute_fraction_max: float
    #: Power intensity estimate (diagnostic; boundary-interpolation
    #: limited, unlike the aligned power-fit probes).
    intensity_estimate: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "compute_seconds_ref": self.compute_seconds_ref,
            "memory_seconds": self.memory_seconds,
            "efficiency": self.efficiency,
            "compute_fraction_max": self.compute_fraction_max,
            "intensity_estimate": self.intensity_estimate,
        }


@dataclass(frozen=True)
class FitResult:
    """Every parameter the calibration recovers, plus fit diagnostics."""

    system: str
    gpu_name: str
    vendor: str
    max_clock_mhz: float
    idle_power_w: float
    dynamic_power_w: float
    power_exponent: float
    fp_throughput: float
    mem_bandwidth: float
    kernels: Tuple[KernelFit, ...] = ()
    n_windows: int = 0
    clocks_mhz: Tuple[float, ...] = ()
    #: Max |residual| of the idle-power regression, watts.
    residual_idle_w: float = 0.0
    #: Max |residual| of the dynamic-power regression, watts.
    residual_dynamic_w: float = 0.0
    #: Clock-grid metadata carried over from the sweep (what a real
    #: calibration reads from the management library's supported-clocks
    #: query), used when emitting a spec payload.
    clock_grid: Mapping[str, float] = field(default_factory=dict)

    @property
    def max_power_w(self) -> float:
        return self.idle_power_w + self.dynamic_power_w

    def to_dict(self) -> Dict[str, Any]:
        return {
            "system": self.system,
            "gpu_name": self.gpu_name,
            "vendor": self.vendor,
            "max_clock_mhz": self.max_clock_mhz,
            "idle_power_w": self.idle_power_w,
            "dynamic_power_w": self.dynamic_power_w,
            "max_power_w": self.max_power_w,
            "power_exponent": self.power_exponent,
            "fp_throughput": self.fp_throughput,
            "mem_bandwidth": self.mem_bandwidth,
            "kernels": [k.to_dict() for k in self.kernels],
            "n_windows": self.n_windows,
            "clocks_mhz": list(self.clocks_mhz),
            "residual_idle_w": self.residual_idle_w,
            "residual_dynamic_w": self.residual_dynamic_w,
        }


# ---------------------------------------------------------------------------
# Sweep
# ---------------------------------------------------------------------------


class _DevicePmt(PMT):
    """Direct board sensor over one simulated GPU.

    Unlike the NVML backend this reads joules at full float precision
    (no millijoule truncation), which keeps the sweep's dump exact —
    the calibration tolerances then genuinely measure the *fit*, not
    sensor quantization.
    """

    platform = "sim"

    def __init__(self, gpu: SimulatedGpu) -> None:
        self._gpu = gpu

    def read(self) -> State:
        return State(
            timestamp_s=self._gpu.clock.now,
            joules=self._gpu.energy_j,
            watts=self._gpu.power_w(),
        )


def _align_to_tick(clock: VirtualClock, sampler: PmtSampler) -> None:
    """Idle the device up to the sampler's next grid tick."""
    gap = sampler.next_tick_s - clock.now
    if gap > 1.0e-9:
        clock.advance(gap)


def default_probe_clocks_mhz(
    spec, ratios: Sequence[float] = DEFAULT_CLOCK_RATIOS
) -> Tuple[float, ...]:
    """Quantized, deduplicated probe clocks for a device, descending."""
    out: List[float] = []
    for ratio in ratios:
        hz = spec.quantize_clock_hz(spec.max_clock_hz * ratio)
        clock_mhz = to_mhz(hz)
        if clock_mhz not in out:
            out.append(clock_mhz)
    return tuple(sorted(out, reverse=True))


def run_calibration_sweep(
    system: SystemConfig,
    out_dir: str,
    clocks_mhz: Optional[Sequence[float]] = None,
    period_s: float = 0.01,
    window_s: float = 0.2,
    kernels: Optional[Mapping[str, float]] = None,
    prefix: str = "calibration",
) -> SweepResult:
    """Probe one simulated device across pinned clocks.

    Emits three artifacts into ``out_dir``:

    * ``<prefix>.trace.jsonl`` — probe spans + power counter samples
      (self-contained: :func:`fit_from_trace` needs nothing else);
    * ``<prefix>.pmt.dat`` — the PMT dump (``timestamp joules watts``);
    * ``<prefix>.schedule.json`` — the probe windows + device metadata
      (:func:`fit_from_dump` pairs this with the dump).

    ``window_s`` must be a multiple of ``period_s`` so measured
    windows span whole sampler ticks.
    """
    if window_s < period_s:
        raise ValueError("window_s must be at least period_s")
    if abs(window_s / period_s - round(window_s / period_s)) > 1e-9:
        raise ValueError("window_s must be a whole multiple of period_s")
    os.makedirs(out_dir, exist_ok=True)
    spec = system.gpu_spec()
    if kernels is None:
        kernels = DEFAULT_PROBE_KERNELS
    if clocks_mhz is None:
        probe_clocks = default_probe_clocks_mhz(spec)
    else:
        probe_clocks = tuple(
            to_mhz(spec.quantize_clock_hz(mhz(c))) for c in clocks_mhz
        )
    if len(set(probe_clocks)) < 3:
        raise ValueError(
            f"need at least 3 distinct probe clocks to fit alpha, "
            f"got {sorted(set(probe_clocks))}"
        )

    clock = VirtualClock()
    gpu = SimulatedGpu(spec, clock)
    sampler = PmtSampler(_DevicePmt(gpu), clock, period_s=period_s)
    sampler.start()

    windows: List[ProbeWindow] = []

    def record(phase: str, kernel: str, clock_mhz: float, t0: float,
               t1: float, flops: float = 0.0, bytes_moved: float = 0.0,
               intensity: float = 0.0, throttled: bool = False) -> None:
        windows.append(ProbeWindow(
            phase=phase, kernel=kernel, clock_mhz=clock_mhz,
            t0_s=t0, t1_s=t1, flops=flops, bytes_moved=bytes_moved,
            intensity=intensity, throttled=throttled,
        ))

    # Fixed roofline work per application kernel, chosen once at the
    # reference clock so durations *vary* with the clock (that
    # variation is what the A/r + B regression fits).
    ref_ratio = 1.0
    kernel_work: Dict[str, Tuple[float, float]] = {}
    for name in kernels:
        eff = spec.kernel_efficiency(name)
        compute_s = window_s / 2.0
        memory_s = window_s / 2.0
        kernel_work[name] = (
            compute_s * spec.fp_throughput * eff * ref_ratio,
            memory_s * spec.mem_bandwidth,
        )

    for clock_mhz in probe_clocks:
        set_hz = gpu.set_application_clocks(
            spec.memory_clock_hz, mhz(clock_mhz), charge_latency=False
        )
        actual_mhz = to_mhz(set_hz)
        ratio = set_hz / spec.max_clock_hz

        # Idle probe (aligned): P = P_idle * (0.80 + 0.20 * f/f_max).
        _align_to_tick(clock, sampler)
        t0 = clock.now
        clock.advance(window_s)
        record("idle", CALIBRATION_IDLE, actual_mhz, t0, clock.now)

        # Pure-compute probe (aligned): full-intensity FLOPs sized to
        # fill the window exactly at this clock, so the mean power over
        # [t0, t1] is the busy power — P_idle + P_dyn * ratio**alpha.
        _align_to_tick(clock, sampler)
        flops = window_s * spec.fp_throughput * ratio
        t0 = clock.now
        gpu.execute(KernelLaunch(
            name=CALIBRATION_COMPUTE, flops=flops, bytes_moved=0.0,
            power_intensity=1.0,
        ))
        record("compute", CALIBRATION_COMPUTE, actual_mhz, t0, clock.now,
               flops=flops, intensity=1.0,
               throttled=gpu.thermal_throttle_active)

        # Pure-memory probe: duration is clock-independent (bytes/BW),
        # so it is grid-aligned by construction.
        _align_to_tick(clock, sampler)
        bytes_moved = window_s * spec.mem_bandwidth
        t0 = clock.now
        gpu.execute(KernelLaunch(
            name=CALIBRATION_MEMORY, flops=0.0, bytes_moved=bytes_moved,
            power_intensity=0.35,
        ))
        record("memory", CALIBRATION_MEMORY, actual_mhz, t0, clock.now,
               bytes_moved=bytes_moved, intensity=0.35,
               throttled=gpu.thermal_throttle_active)

        # Application kernels: fixed work, duration read off the clock.
        for name, intensity in kernels.items():
            flops, bytes_moved = kernel_work[name]
            t0 = clock.now
            gpu.execute(KernelLaunch(
                name=name, flops=flops, bytes_moved=bytes_moved,
                power_intensity=intensity,
            ))
            record("kernel", name, actual_mhz, t0, clock.now,
                   flops=flops, bytes_moved=bytes_moved,
                   intensity=intensity,
                   throttled=gpu.thermal_throttle_active)

        # Cool-down idle keeps the die far from the throttle limit on
        # high-TDP parts and separates this clock's windows from the
        # next (also realigns after the unaligned kernel probes).
        _align_to_tick(clock, sampler)
        clock.advance(window_s)

    samples = sampler.stop()
    elapsed = clock.now

    meta: Dict[str, Any] = {
        "system": system.name,
        "gpu_name": spec.name,
        "vendor": spec.vendor,
        "period_s": period_s,
        "window_s": window_s,
        "max_clock_mhz": to_mhz(spec.max_clock_hz),
        # What a real calibration reads from the management library's
        # supported-clocks query; carried into emitted spec payloads.
        "clock_grid": {
            "min_mhz": to_mhz(spec.min_clock_hz),
            "max_mhz": to_mhz(spec.max_clock_hz),
            "step_mhz": to_mhz(spec.clock_step_hz),
            "default_mhz": to_mhz(spec.default_clock_hz),
            "memory_mhz": to_mhz(spec.memory_clock_hz),
        },
        "memory_gib": spec.memory_bytes / float(1 << 30),
    }

    trace_path = os.path.join(out_dir, f"{prefix}.trace.jsonl")
    dump_path = os.path.join(out_dir, f"{prefix}.pmt.dat")
    schedule_path = os.path.join(out_dir, f"{prefix}.schedule.json")

    events: List[Any] = [
        InstantEvent(name="calibration-meta", rank=0, ts_s=0.0,
                     track=TRACK_CLOCKS, args=meta)
    ]
    for w in windows:
        events.append(SpanEvent(
            name=w.kernel, rank=0, t0_s=w.t0_s, t1_s=w.t1_s,
            track=TRACK_FUNCTIONS,
            args={
                "calibration_phase": w.phase,
                "clock_mhz": w.clock_mhz,
                "flops": w.flops,
                "bytes": w.bytes_moved,
                "intensity": w.intensity,
                "throttled": w.throttled,
            },
        ))
    for s in samples:
        events.append(CounterEvent(
            name="power", rank=0, ts_s=s.timestamp_s,
            values={"joules": s.joules, "watts": s.watts},
        ))
    write_trace_jsonl(trace_path, events)
    sampler.dump(dump_path)
    with open(schedule_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                **schema_header(SCHEDULE_KIND),
                "meta": meta,
                "probes": [w.to_dict() for w in windows],
            },
            fh, indent=1, sort_keys=True,
        )
        fh.write("\n")
    return SweepResult(
        system=system.name,
        trace_path=trace_path,
        dump_path=dump_path,
        schedule_path=schedule_path,
        n_probes=len(windows),
        elapsed_s=elapsed,
        clocks_mhz=probe_clocks,
    )


# ---------------------------------------------------------------------------
# Fit
# ---------------------------------------------------------------------------


def _mean_power(ts: np.ndarray, js: np.ndarray, t0: float,
                t1: float) -> float:
    """Mean power over [t0, t1] from a cumulative-joules series.

    Exact when the boundaries coincide with samples (the aligned probe
    windows); linear interpolation otherwise.
    """
    if t1 <= t0:
        raise CalibrationError(f"degenerate probe window [{t0}, {t1}]")
    j0 = float(np.interp(t0, ts, js))
    j1 = float(np.interp(t1, ts, js))
    return (j1 - j0) / (t1 - t0)


def _fit(meta: Mapping[str, Any], windows: Sequence[ProbeWindow],
         ts: np.ndarray, js: np.ndarray) -> FitResult:
    """Shared least-squares core of both ingest paths."""
    if len(ts) < 2:
        raise CalibrationError("trace contains fewer than 2 power samples")
    max_clock_mhz = float(meta["max_clock_mhz"])
    usable = [w for w in windows if not w.throttled]
    dropped = len(windows) - len(usable)

    idle = [w for w in usable if w.phase == "idle"]
    compute = [w for w in usable if w.phase == "compute"]
    memory = [w for w in usable if w.phase == "memory"]
    kernel = [w for w in usable if w.phase == "kernel"]
    if len(idle) < 2 or len(compute) < 3:
        raise CalibrationError(
            f"need >= 2 idle and >= 3 compute probes at distinct clocks "
            f"(got {len(idle)} idle, {len(compute)} compute, "
            f"{dropped} dropped as throttled)"
        )

    # 1. Idle power: P = P_idle * (0.80 + 0.20 * r) — regression
    #    through the origin on x = 0.80 + 0.20 r.
    x = np.array([0.80 + 0.20 * (w.clock_mhz / max_clock_mhz)
                  for w in idle])
    y = np.array([_mean_power(ts, js, w.t0_s, w.t1_s) for w in idle])
    idle_power = float(np.dot(x, y) / np.dot(x, x))
    residual_idle = float(np.max(np.abs(y - idle_power * x)))

    # 2. Dynamic power + alpha: busy power at full intensity is
    #    P_idle + P_dyn * r**alpha, so log(P - P_idle) is linear in
    #    log r with slope alpha and intercept log P_dyn.
    ratios = np.array([w.clock_mhz / max_clock_mhz for w in compute])
    p_busy = np.array([_mean_power(ts, js, w.t0_s, w.t1_s)
                       for w in compute])
    excess = p_busy - idle_power
    if np.any(excess <= 0.0):
        raise CalibrationError(
            "compute-probe power does not exceed fitted idle power — "
            "the trace is inconsistent (wrong schedule or wrong dump?)"
        )
    if len(set(np.round(ratios, 9))) < 3:
        raise CalibrationError(
            "compute probes span fewer than 3 distinct clocks; "
            "alpha is not identifiable"
        )
    design = np.column_stack([np.ones_like(ratios), np.log(ratios)])
    coef, *_ = np.linalg.lstsq(design, np.log(excess), rcond=None)
    dyn_power = float(math.exp(coef[0]))
    alpha = float(coef[1])
    residual_dyn = float(np.max(np.abs(
        (idle_power + dyn_power * ratios**alpha) - p_busy
    )))

    # 3. Peak throughput from the pure-compute probes' durations:
    #    t = FLOPs / (T_fp * r)  =>  T_fp = FLOPs / (t * r).
    tfp = float(np.median(np.array([
        w.flops / (w.duration_s * (w.clock_mhz / max_clock_mhz))
        for w in compute if w.flops > 0.0
    ])))

    # 4. Memory bandwidth from the pure-memory probes (duration is
    #    clock-independent): BW = bytes / t.
    if memory:
        bandwidth = float(np.median(np.array([
            w.bytes_moved / w.duration_s
            for w in memory if w.bytes_moved > 0.0
        ])))
    else:
        bandwidth = 0.0

    # 5. Per-kernel roofline split: t(r) = A / r + B with A the
    #    compute seconds at f_max and B the clock-independent part.
    by_name: Dict[str, List[ProbeWindow]] = {}
    for w in kernel:
        by_name.setdefault(w.kernel, []).append(w)
    kernel_fits: List[KernelFit] = []
    for name in sorted(by_name):
        group = by_name[name]
        r = np.array([w.clock_mhz / max_clock_mhz for w in group])
        if len(set(np.round(r, 9))) < 2:
            continue  # A and B are not separable from one clock
        t = np.array([w.duration_s for w in group])
        design = np.column_stack([1.0 / r, np.ones_like(r)])
        (a, b), *_ = np.linalg.lstsq(design, t, rcond=None)
        a = float(a)
        b = float(max(b, 0.0))
        flops = group[0].flops
        efficiency = flops / (a * tfp) if a > 0.0 and flops > 0.0 else 1.0
        intensities = []
        for w in group:
            p = _mean_power(ts, js, w.t0_s, w.t1_s)
            rr = w.clock_mhz / max_clock_mhz
            denom = dyn_power * rr**alpha
            if denom > 0.0:
                intensities.append((p - idle_power) / denom)
        kernel_fits.append(KernelFit(
            name=name,
            compute_seconds_ref=a,
            memory_seconds=b,
            efficiency=efficiency,
            compute_fraction_max=a / (a + b) if (a + b) > 0.0 else 0.0,
            intensity_estimate=(
                float(np.median(intensities)) if intensities else 0.0
            ),
        ))

    return FitResult(
        system=str(meta.get("system", "")),
        gpu_name=str(meta.get("gpu_name", "")),
        vendor=str(meta.get("vendor", "")),
        max_clock_mhz=max_clock_mhz,
        idle_power_w=idle_power,
        dynamic_power_w=dyn_power,
        power_exponent=alpha,
        fp_throughput=tfp,
        mem_bandwidth=bandwidth,
        kernels=tuple(kernel_fits),
        n_windows=len(usable),
        clocks_mhz=tuple(sorted({w.clock_mhz for w in usable},
                                reverse=True)),
        residual_idle_w=residual_idle,
        residual_dynamic_w=residual_dyn,
        clock_grid=dict(meta.get("clock_grid", {})),
    )


def fit_from_trace(trace_path: str) -> FitResult:
    """Fit from a self-contained telemetry JSONL trace."""
    meta: Optional[Mapping[str, Any]] = None
    windows: List[ProbeWindow] = []
    times: List[float] = []
    joules: List[float] = []
    for event in read_trace_jsonl(trace_path):
        if isinstance(event, InstantEvent) and event.name == "calibration-meta":
            meta = dict(event.args)
        elif isinstance(event, SpanEvent) and "calibration_phase" in event.args:
            windows.append(ProbeWindow(
                phase=str(event.args["calibration_phase"]),
                kernel=event.name,
                clock_mhz=float(event.args["clock_mhz"]),
                t0_s=event.t0_s,
                t1_s=event.t1_s,
                flops=float(event.args.get("flops", 0.0)),
                bytes_moved=float(event.args.get("bytes", 0.0)),
                intensity=float(event.args.get("intensity", 0.0)),
                throttled=bool(event.args.get("throttled", False)),
            ))
        elif isinstance(event, CounterEvent) and event.name == "power":
            if "joules" in event.values:
                times.append(event.ts_s)
                joules.append(event.values["joules"])
    if meta is None:
        raise CalibrationError(
            f"{trace_path}: no 'calibration-meta' event — this is not a "
            "calibration trace (see repro calibrate sweep)"
        )
    order = np.argsort(np.array(times))
    return _fit(meta, windows,
                np.array(times)[order], np.array(joules)[order])


def load_schedule(path: str) -> Tuple[Dict[str, Any], List[ProbeWindow]]:
    """Read a schedule sidecar; returns (meta, probe windows)."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    check_schema_header(payload, SCHEDULE_KIND)
    meta = dict(payload["meta"])
    windows = [ProbeWindow.from_dict(p) for p in payload["probes"]]
    return meta, windows


def fit_from_dump(dump_path: str, schedule_path: str) -> FitResult:
    """Fit from a PMT dump plus its schedule sidecar."""
    meta, windows = load_schedule(schedule_path)
    samples: List[Sample] = PmtSampler.load_dump(dump_path)
    if not samples:
        raise CalibrationError(f"{dump_path}: dump contains no samples")
    ts = np.array([s.timestamp_s for s in samples])
    js = np.array([s.joules for s in samples])
    order = np.argsort(ts)
    return _fit(meta, windows, ts[order], js[order])


# ---------------------------------------------------------------------------
# Spec emission and verification
# ---------------------------------------------------------------------------


def fit_to_spec_payload(
    fit: FitResult,
    base_system: SystemConfig,
    name: Optional[str] = None,
    efficiency_tolerance: float = 0.02,
) -> Dict[str, Any]:
    """Express a fit as a catalog spec payload.

    The GPU power/compute sections come from the fit; everything a
    power trace cannot determine (CPU, node power, measurement stack,
    overlays) is inherited from ``base_system``. Fitted per-kernel
    efficiencies within ``efficiency_tolerance`` of 1.0 are dropped —
    1.0 is the dataclass default, so near-unity entries are noise.
    """
    payload = spec_payload_from_system(
        base_system,
        description=f"calibrated from a measured trace of "
                    f"{fit.gpu_name or base_system.gpu_spec().name}",
    )
    payload["name"] = name or fit.system or base_system.name
    gpu = payload["gpu"]
    if fit.gpu_name:
        gpu["name"] = fit.gpu_name
    if fit.vendor:
        gpu["vendor"] = fit.vendor
    if fit.clock_grid:
        gpu["clocks"] = {k: float(v) for k, v in fit.clock_grid.items()}
    gpu["power"] = {
        "idle_w": round(fit.idle_power_w, 2),
        "max_w": round(fit.idle_power_w + fit.dynamic_power_w, 2),
        "exponent": round(fit.power_exponent, 4),
    }
    gpu["compute"]["fp64_gflops"] = round(fit.fp_throughput / 1.0e9, 1)
    if fit.mem_bandwidth > 0.0:
        gpu["compute"]["mem_bandwidth_gbps"] = round(
            fit.mem_bandwidth / 1.0e9, 1
        )
    efficiencies = {
        k.name: round(k.efficiency, 3)
        for k in fit.kernels
        if abs(k.efficiency - 1.0) > efficiency_tolerance
    }
    if efficiencies:
        gpu["arch_efficiency"] = efficiencies
    else:
        gpu.pop("arch_efficiency", None)
    return payload


def verify_fit(fit: FitResult, spec) -> Dict[str, Any]:
    """Relative errors of a fit against a ground-truth :class:`GpuSpec`.

    Returns a dict of relative errors (fractions, not percent); the
    ``kernels`` entry maps kernel names to their efficiency and
    compute-fraction errors. This is what the round-trip tests and
    ``repro calibrate --smoke`` assert tolerances on.
    """
    def rel(measured: float, truth: float) -> float:
        if truth == 0.0:
            return abs(measured)
        return abs(measured - truth) / abs(truth)

    errors: Dict[str, Any] = {
        "idle_power_w": rel(fit.idle_power_w, spec.idle_power_w),
        "dynamic_power_w": rel(fit.dynamic_power_w, spec.dynamic_power_w),
        "power_exponent": rel(fit.power_exponent, spec.power_exponent),
        "fp_throughput": rel(fit.fp_throughput, spec.fp_throughput),
    }
    if fit.mem_bandwidth > 0.0:
        errors["mem_bandwidth"] = rel(fit.mem_bandwidth, spec.mem_bandwidth)
    kernels: Dict[str, Dict[str, float]] = {}
    for k in fit.kernels:
        truth_eff = spec.kernel_efficiency(k.name)
        # Ground-truth compute fraction at f_max for the probe's work
        # mix, rebuilt from the fit's own FLOP/byte volumes: the sweep
        # sized each kernel at compute_s = memory_s, so the true kappa
        # follows from the spec's roofline on that same work.
        a_truth = (k.compute_seconds_ref * k.efficiency * fit.fp_throughput
                   / (spec.fp_throughput * truth_eff)
                   if truth_eff > 0.0 else 0.0)
        mix_truth = a_truth / (a_truth + k.memory_seconds) \
            if (a_truth + k.memory_seconds) > 0.0 else 0.0
        kernels[k.name] = {
            "efficiency": rel(k.efficiency, truth_eff),
            "compute_fraction_max": rel(k.compute_fraction_max, mix_truth),
        }
    if kernels:
        errors["kernels"] = kernels
    return errors
