"""Declarative hardware catalog: spec files, loader, calibration.

``repro.catalog`` lets a system be described in a versioned YAML/JSON
file instead of a Python preset: the loader builds the exact same
``GpuSpec``/``CpuSpec``/``SystemConfig`` dataclasses, so campaigns,
the CLI and the service sweep new hardware with zero code changes.
``repro.catalog.fit`` closes the loop — it fits the power/perf model
parameters from a measured trace and emits a catalog spec file
(``repro calibrate``). See ``docs/catalog.md``.
"""

from .loader import (
    CATALOG_PATH_ENV,
    PATH_PREFIX,
    CatalogEntry,
    available_entries,
    build_gpu_spec,
    build_system,
    catalog_search_path,
    is_path_ref,
    known_system_names,
    load_payload,
    load_system,
    resolve_system,
    shipped_catalog_dir,
    spec_payload_from_system,
    validate_shipped_catalog,
    write_spec_file,
)
from .schema import (
    CATALOG_SCHEMA_VERSION,
    SchemaError,
    validate_system_payload,
)

__all__ = [
    "CATALOG_PATH_ENV",
    "CATALOG_SCHEMA_VERSION",
    "PATH_PREFIX",
    "CatalogEntry",
    "SchemaError",
    "available_entries",
    "build_gpu_spec",
    "build_system",
    "catalog_search_path",
    "is_path_ref",
    "known_system_names",
    "load_payload",
    "load_system",
    "resolve_system",
    "shipped_catalog_dir",
    "spec_payload_from_system",
    "validate_shipped_catalog",
    "validate_system_payload",
    "write_spec_file",
]
