"""Load system spec files into the existing hardware dataclasses.

The loader turns a validated payload (see :mod:`repro.catalog.schema`)
into the same :class:`~repro.systems.presets.SystemConfig` /
:class:`~repro.hardware.specs.GpuSpec` objects the Python presets
build, so everything downstream — cluster construction, campaign run
keys, energy reports, the service layer — is oblivious to whether a
system came from code or from a file.

Unit discipline matters here: file knobs use integer-friendly units
(``MHz``, ``GFLOP/s``, ``GB/s``, ``GiB``) whose conversions to the SI
base units of the dataclasses are exact in binary floating point, so a
shipped spec re-expressing a preset compares *equal* field for field
and campaign run keys stay byte-stable.

Search path: the shipped ``data/`` directory next to this module,
preceded by any directories named in the ``REPRO_CATALOG_PATH``
environment variable (``os.pathsep``-separated; earlier entries win,
so a user file can shadow a shipped one by reusing its ``name``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..hardware.specs import (
    CpuSpec,
    GovernorSpec,
    GpuSpec,
    NodePowerSpec,
    ThermalSpec,
)
from ..mpi.timing import CommModel
from ..systems.presets import SystemConfig
from ..units import GIB, MICROSECOND, MILLISECOND, mhz, to_mhz
from .schema import SchemaError, validate_system_payload

try:  # PyYAML is an optional dependency; JSON specs always work.
    import yaml as _yaml
except ImportError:  # pragma: no cover - exercised only without PyYAML
    _yaml = None

#: Environment variable naming extra catalog directories.
CATALOG_PATH_ENV = "REPRO_CATALOG_PATH"

#: File suffixes recognised as catalog spec files.
SPEC_SUFFIXES = (".yaml", ".yml", ".json")

#: Prefix marking a campaign system reference as a file path.
PATH_PREFIX = "path:"


@dataclass(frozen=True)
class CatalogEntry:
    """One listed system: identity plus provenance, for ``repro systems``."""

    name: str
    path: str
    schema_version: int
    vendor: str
    gpu_name: str
    min_clock_mhz: float
    max_clock_mhz: float
    ranks_per_node: int
    pmt_backend: str
    slurm_energy_plugin: str
    description: str
    origin: str  # "shipped" or "user"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "source": self.path,
            "schema": self.schema_version,
            "vendor": self.vendor,
            "gpu": self.gpu_name,
            "clock_mhz": [self.min_clock_mhz, self.max_clock_mhz],
            "ranks_per_node": self.ranks_per_node,
            "pmt_backend": self.pmt_backend,
            "slurm_energy_plugin": self.slurm_energy_plugin,
            "description": self.description,
            "origin": self.origin,
        }


def shipped_catalog_dir() -> str:
    """Directory of the spec files shipped inside the package."""
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "data")


def catalog_search_path() -> Tuple[str, ...]:
    """Catalog directories in priority order (user dirs, then shipped)."""
    dirs: List[str] = []
    extra = os.environ.get(CATALOG_PATH_ENV, "")
    for entry in extra.split(os.pathsep):
        entry = entry.strip()
        if entry:
            dirs.append(entry)
    dirs.append(shipped_catalog_dir())
    return tuple(dirs)


def load_payload(path: str) -> Dict[str, Any]:
    """Parse (but do not validate) one spec file as a raw payload."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise SchemaError(path, "", f"cannot read spec file: {exc}") from exc
    if path.endswith(".json"):
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(path, "", f"invalid JSON: {exc}") from exc
    if _yaml is None:
        raise SchemaError(
            path, "",
            "PyYAML is not installed — convert the spec to .json or "
            "install pyyaml",
        )
    try:
        return _yaml.safe_load(text)
    except _yaml.YAMLError as exc:
        raise SchemaError(path, "", f"invalid YAML: {exc}") from exc


# -- payload -> dataclasses -------------------------------------------------


def _governor_from(overlay: Optional[Mapping[str, Any]]) -> GovernorSpec:
    if not overlay:
        return GovernorSpec()
    kwargs: Dict[str, Any] = {}
    if "quantum_ms" in overlay:
        kwargs["quantum"] = float(overlay["quantum_ms"]) * MILLISECOND
    if "active_floor_mhz" in overlay:
        kwargs["active_floor_hz"] = mhz(float(overlay["active_floor_mhz"]))
    if "idle_clock_mhz" in overlay:
        kwargs["idle_clock_hz"] = mhz(float(overlay["idle_clock_mhz"]))
    if "ewma" in overlay:
        kwargs["ewma"] = float(overlay["ewma"])
    if "launch_presence_floor" in overlay:
        kwargs["launch_presence_floor"] = float(
            overlay["launch_presence_floor"]
        )
    if "boost_mhz" in overlay:
        kwargs["boost_hz"] = mhz(float(overlay["boost_mhz"]))
    if "voltage_margin_mhz" in overlay:
        kwargs["voltage_margin_hz"] = mhz(float(overlay["voltage_margin_mhz"]))
    if "transition_energy_j" in overlay:
        kwargs["transition_energy_j"] = float(overlay["transition_energy_j"])
    return GovernorSpec(**kwargs)


def _thermal_from(overlay: Optional[Mapping[str, Any]]) -> ThermalSpec:
    if not overlay:
        return ThermalSpec()
    kwargs = {k: float(v) for k, v in overlay.items()}
    return ThermalSpec(**kwargs)


def _comm_from(overlay: Optional[Mapping[str, Any]]) -> CommModel:
    if not overlay:
        return CommModel()
    kwargs: Dict[str, Any] = {}
    if "inter_latency_us" in overlay:
        kwargs["inter_latency_s"] = (
            float(overlay["inter_latency_us"]) * MICROSECOND
        )
    if "inter_bandwidth_gbps" in overlay:
        kwargs["inter_bandwidth"] = (
            float(overlay["inter_bandwidth_gbps"]) * 1.0e9
        )
    if "intra_latency_us" in overlay:
        kwargs["intra_latency_s"] = (
            float(overlay["intra_latency_us"]) * MICROSECOND
        )
    if "intra_bandwidth_gbps" in overlay:
        kwargs["intra_bandwidth"] = (
            float(overlay["intra_bandwidth_gbps"]) * 1.0e9
        )
    if "call_overhead_us" in overlay:
        kwargs["call_overhead_s"] = (
            float(overlay["call_overhead_us"]) * MICROSECOND
        )
    return CommModel(**kwargs)


def build_gpu_spec(gpu: Mapping[str, Any]) -> GpuSpec:
    """Build a :class:`GpuSpec` from the validated ``gpu`` section."""
    clocks = gpu["clocks"]
    power = gpu["power"]
    compute = gpu["compute"]
    return GpuSpec(
        name=str(gpu["name"]),
        vendor=str(gpu["vendor"]),
        min_clock_hz=mhz(float(clocks["min_mhz"])),
        max_clock_hz=mhz(float(clocks["max_mhz"])),
        clock_step_hz=mhz(float(clocks["step_mhz"])),
        default_clock_hz=mhz(float(clocks["default_mhz"])),
        memory_clock_hz=mhz(float(clocks["memory_mhz"])),
        idle_power_w=float(power["idle_w"]),
        max_power_w=float(power["max_w"]),
        power_exponent=float(power["exponent"]),
        fp_throughput=float(compute["fp64_gflops"]) * 1.0e9,
        mem_bandwidth=float(compute["mem_bandwidth_gbps"]) * 1.0e9,
        memory_bytes=float(compute["memory_gib"]) * GIB,
        gcds_per_card=int(gpu.get("gcds_per_card", 1)),
        arch_efficiency={
            str(k): float(v)
            for k, v in gpu.get("arch_efficiency", {}).items()
        },
        governor=_governor_from(gpu.get("governor")),
        thermal=_thermal_from(gpu.get("thermal")),
    )


def _cpu_from(cpu: Mapping[str, Any]) -> CpuSpec:
    kwargs: Dict[str, Any] = {
        "name": str(cpu["name"]),
        "sockets": int(cpu["sockets"]),
        "cores_per_socket": int(cpu["cores_per_socket"]),
        "idle_power_w": float(cpu["idle_w"]),
        "active_power_w": float(cpu["active_w"]),
        "memory_gib": float(cpu["memory_gib"]),
    }
    if "nominal_mhz" in cpu:
        kwargs["nominal_freq_khz"] = int(round(float(cpu["nominal_mhz"]) * 1e3))
    if "min_mhz" in cpu:
        kwargs["min_freq_khz"] = int(round(float(cpu["min_mhz"]) * 1e3))
    return CpuSpec(**kwargs)


def build_system(payload: Any, source: str = "<payload>") -> SystemConfig:
    """Validate a payload and build its :class:`SystemConfig`.

    The GPU spec factory is a closure that rebuilds the
    :class:`GpuSpec` fresh on every call, matching the preset
    factories' semantics (each cluster gets independent spec objects).
    """
    payload = validate_system_payload(payload, source)
    gpu_section = dict(payload["gpu"])

    def gpu_spec_factory() -> GpuSpec:
        return build_gpu_spec(gpu_section)

    # Build once up front so a bad payload fails at load time, not at
    # first cluster construction inside a worker process.
    gpu_spec_factory()
    cpu = payload["cpu"]
    node = payload["node"]
    meas = payload["measurement"]
    return SystemConfig(
        name=str(payload["name"]),
        gpu_spec_factory=gpu_spec_factory,
        cpu_spec=_cpu_from(cpu),
        node_power=NodePowerSpec(
            memory_power_w=float(node["memory_w"]),
            aux_power_w=float(node["aux_w"]),
        ),
        ranks_per_node=int(node["ranks_per_node"]),
        pmt_backend=str(meas["pmt_backend"]),
        slurm_energy_plugin=str(meas["slurm_energy_plugin"]),
        allow_user_freq_control=bool(meas["allow_user_freq_control"]),
        comm_model=_comm_from(payload.get("comm")),
    )


def load_system(path: str) -> SystemConfig:
    """Load, validate and build the system described by one spec file."""
    return build_system(load_payload(path), source=path)


# -- catalog scanning -------------------------------------------------------

#: Parse cache: absolute path -> (mtime, validated payload).
_PAYLOAD_CACHE: Dict[str, Tuple[float, Dict[str, Any]]] = {}


def _cached_payload(path: str) -> Dict[str, Any]:
    path = os.path.abspath(path)
    mtime = os.path.getmtime(path)
    hit = _PAYLOAD_CACHE.get(path)
    if hit is not None and hit[0] == mtime:
        return hit[1]
    payload = validate_system_payload(load_payload(path), source=path)
    _PAYLOAD_CACHE[path] = (mtime, payload)
    return payload


def _entry_from(payload: Mapping[str, Any], path: str,
                origin: str) -> CatalogEntry:
    gpu = payload["gpu"]
    clocks = gpu["clocks"]
    return CatalogEntry(
        name=str(payload["name"]),
        path=path,
        schema_version=int(payload["schema"]),
        vendor=str(gpu["vendor"]),
        gpu_name=str(gpu["name"]),
        min_clock_mhz=float(clocks["min_mhz"]),
        max_clock_mhz=float(clocks["max_mhz"]),
        ranks_per_node=int(payload["node"]["ranks_per_node"]),
        pmt_backend=str(payload["measurement"]["pmt_backend"]),
        slurm_energy_plugin=str(payload["measurement"]["slurm_energy_plugin"]),
        description=str(payload.get("description", "")),
        origin=origin,
    )


def available_entries() -> Dict[str, CatalogEntry]:
    """All catalog entries on the search path, keyed by system name.

    Earlier search-path directories win on name collisions, so user
    catalogs (``REPRO_CATALOG_PATH``) shadow shipped specs. A file
    that fails validation propagates its :class:`SchemaError` — a
    broken catalog should be loud, not silently absent.
    """
    shipped = shipped_catalog_dir()
    entries: Dict[str, CatalogEntry] = {}
    for directory in catalog_search_path():
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            continue
        origin = "shipped" if directory == shipped else "user"
        for filename in names:
            if not filename.endswith(SPEC_SUFFIXES):
                continue
            path = os.path.join(directory, filename)
            payload = _cached_payload(path)
            entry = _entry_from(payload, path, origin)
            entries.setdefault(entry.name, entry)
    return entries


def known_system_names() -> Tuple[str, ...]:
    """Every resolvable system name: catalog entries plus code presets.

    This is the single source for "known systems" in error messages —
    both :func:`repro.systems.by_name` and campaign spec validation
    list the same names (and both therefore include catalog-only
    systems like ``H100-SXM``).
    """
    from ..systems.presets import _PRESETS

    return tuple(sorted(set(available_entries()) | set(_PRESETS)))


def is_path_ref(ref: str) -> bool:
    """Whether a system reference names a spec *file* rather than a name.

    ``path:``-prefixed refs always are; so is anything carrying a spec
    suffix or a directory separator. Campaign validation and the
    resolver share this predicate so a ref is classified identically
    at spec-load time and inside worker processes.
    """
    if ref.startswith(PATH_PREFIX):
        return True
    if ref.endswith(SPEC_SUFFIXES):
        return True
    return os.sep in ref or "/" in ref


def resolve_system(ref: str) -> SystemConfig:
    """Resolve a system reference to a built :class:`SystemConfig`.

    Accepted forms, in order:

    * ``path:<file>`` — explicit spec-file reference;
    * a bare path ending in ``.yaml``/``.yml``/``.json`` (or containing
      a directory separator);
    * a catalog entry name (shipped or ``REPRO_CATALOG_PATH``);
    * a legacy Python preset name, if no catalog file claims it.
    """
    if ref.startswith(PATH_PREFIX):
        return load_system(ref[len(PATH_PREFIX):])
    if is_path_ref(ref):
        return load_system(ref)
    entry = available_entries().get(ref)
    if entry is not None:
        return build_system(_cached_payload(entry.path), source=entry.path)
    from ..systems.presets import _PRESETS

    factory: Optional[Callable[[], SystemConfig]] = _PRESETS.get(ref)
    if factory is not None:
        return factory()
    known = ", ".join(known_system_names())
    raise ValueError(f"unknown system {ref!r} (known: {known})")


def validate_shipped_catalog() -> List[CatalogEntry]:
    """Validate every shipped spec file; raise on the first bad one."""
    shipped = shipped_catalog_dir()
    entries: List[CatalogEntry] = []
    for filename in sorted(os.listdir(shipped)):
        if not filename.endswith(SPEC_SUFFIXES):
            continue
        path = os.path.join(shipped, filename)
        payload = _cached_payload(path)
        build_system(payload, source=path)  # must also *construct*
        entries.append(_entry_from(payload, path, "shipped"))
    return entries


def spec_payload_from_system(
    system: SystemConfig, description: str = ""
) -> Dict[str, Any]:
    """Express a built :class:`SystemConfig` as a schema-1 payload.

    The inverse of :func:`build_system` (used by the calibration
    pipeline to emit spec files): converting back through
    :func:`build_system` reproduces the system exactly as long as the
    clock and capacity values sit on their unit grids, which every
    spec produced by this library does.
    """
    gpu = system.gpu_spec()
    payload: Dict[str, Any] = {
        "schema": 1,
        "kind": "system-spec",
        "name": system.name,
        "gpu": {
            "name": gpu.name,
            "vendor": gpu.vendor,
            "clocks": {
                "min_mhz": to_mhz(gpu.min_clock_hz),
                "max_mhz": to_mhz(gpu.max_clock_hz),
                "step_mhz": to_mhz(gpu.clock_step_hz),
                "default_mhz": to_mhz(gpu.default_clock_hz),
                "memory_mhz": to_mhz(gpu.memory_clock_hz),
            },
            "power": {
                "idle_w": gpu.idle_power_w,
                "max_w": gpu.max_power_w,
                "exponent": gpu.power_exponent,
            },
            "compute": {
                "fp64_gflops": gpu.fp_throughput / 1.0e9,
                "mem_bandwidth_gbps": gpu.mem_bandwidth / 1.0e9,
                "memory_gib": gpu.memory_bytes / GIB,
            },
        },
        "cpu": {
            "name": system.cpu_spec.name,
            "sockets": system.cpu_spec.sockets,
            "cores_per_socket": system.cpu_spec.cores_per_socket,
            "idle_w": system.cpu_spec.idle_power_w,
            "active_w": system.cpu_spec.active_power_w,
            "memory_gib": system.cpu_spec.memory_gib,
        },
        "node": {
            "ranks_per_node": system.ranks_per_node,
            "memory_w": system.node_power.memory_power_w,
            "aux_w": system.node_power.aux_power_w,
        },
        "measurement": {
            "pmt_backend": system.pmt_backend,
            "slurm_energy_plugin": system.slurm_energy_plugin,
            "allow_user_freq_control": system.allow_user_freq_control,
        },
    }
    if description:
        payload["description"] = description
    if gpu.gcds_per_card != 1:
        payload["gpu"]["gcds_per_card"] = gpu.gcds_per_card
    if gpu.arch_efficiency:
        payload["gpu"]["arch_efficiency"] = {
            k: round(float(v), 6) for k, v in sorted(
                gpu.arch_efficiency.items()
            )
        }
    default_gov = GovernorSpec()
    if gpu.governor != default_gov:
        gov: Dict[str, Any] = {}
        g = gpu.governor
        if g.quantum != default_gov.quantum:
            gov["quantum_ms"] = g.quantum / MILLISECOND
        if g.active_floor_hz != default_gov.active_floor_hz:
            gov["active_floor_mhz"] = to_mhz(g.active_floor_hz)
        if g.idle_clock_hz != default_gov.idle_clock_hz:
            gov["idle_clock_mhz"] = to_mhz(g.idle_clock_hz)
        if g.ewma != default_gov.ewma:
            gov["ewma"] = g.ewma
        if g.launch_presence_floor != default_gov.launch_presence_floor:
            gov["launch_presence_floor"] = g.launch_presence_floor
        if g.boost_hz != default_gov.boost_hz:
            gov["boost_mhz"] = to_mhz(g.boost_hz)
        if g.voltage_margin_hz != default_gov.voltage_margin_hz:
            gov["voltage_margin_mhz"] = to_mhz(g.voltage_margin_hz)
        if g.transition_energy_j != default_gov.transition_energy_j:
            gov["transition_energy_j"] = g.transition_energy_j
        payload["gpu"]["governor"] = gov
    default_thermal = ThermalSpec()
    if gpu.thermal != default_thermal:
        thermal: Dict[str, Any] = {}
        for knob in ("ambient_c", "resistance_c_per_w", "tau_s",
                     "throttle_temp_c", "throttle_mhz_per_c"):
            value = getattr(gpu.thermal, knob)
            if value != getattr(default_thermal, knob):
                thermal[knob] = value
        payload["gpu"]["thermal"] = thermal
    cpu_defaults = CpuSpec(
        name="x", sockets=1, cores_per_socket=1,
        idle_power_w=1.0, active_power_w=2.0, memory_gib=1.0,
    )
    if system.cpu_spec.nominal_freq_khz != cpu_defaults.nominal_freq_khz:
        payload["cpu"]["nominal_mhz"] = system.cpu_spec.nominal_freq_khz / 1e3
    if system.cpu_spec.min_freq_khz != cpu_defaults.min_freq_khz:
        payload["cpu"]["min_mhz"] = system.cpu_spec.min_freq_khz / 1e3
    default_comm = CommModel()
    if system.comm_model != default_comm:
        comm: Dict[str, Any] = {}
        c = system.comm_model
        if c.inter_latency_s != default_comm.inter_latency_s:
            comm["inter_latency_us"] = c.inter_latency_s / MICROSECOND
        if c.inter_bandwidth != default_comm.inter_bandwidth:
            comm["inter_bandwidth_gbps"] = c.inter_bandwidth / 1.0e9
        if c.intra_latency_s != default_comm.intra_latency_s:
            comm["intra_latency_us"] = c.intra_latency_s / MICROSECOND
        if c.intra_bandwidth != default_comm.intra_bandwidth:
            comm["intra_bandwidth_gbps"] = c.intra_bandwidth / 1.0e9
        if c.call_overhead_s != default_comm.call_overhead_s:
            comm["call_overhead_us"] = c.call_overhead_s / MICROSECOND
        payload["comm"] = comm
    return payload


def write_spec_file(path: str, payload: Mapping[str, Any]) -> None:
    """Write a payload as a spec file (format chosen by suffix)."""
    payload = validate_system_payload(payload, source=path)
    if path.endswith(".json") or _yaml is None:
        text = json.dumps(payload, indent=1, sort_keys=True) + "\n"
    else:
        text = _yaml.safe_dump(payload, sort_keys=True,
                               default_flow_style=False)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)
