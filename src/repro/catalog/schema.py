"""Schema validation for declarative system spec files.

A catalog file is a versioned, knob-based description of one system —
the YAML/JSON equivalent of a :class:`~repro.systems.SystemConfig`
preset (following the ``hardware.yaml`` idiom of knob-based estimator
configs). Validation is strict and *actionable*: unknown keys name the
spot and list what is accepted there, out-of-range values say which
unit was probably confused, and a missing version says exactly what to
add. Anything that passes :func:`validate_system_payload` is
guaranteed to build a working :class:`SystemConfig` in the loader.

Optional sections (``governor``, ``thermal``, ``comm``) are
*defaults-preserving overlays*: a file only states the knobs it wants
to change, every omitted knob keeps the dataclass default — so specs
stay short and older files keep working when new knobs appear.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

#: Version of the catalog file format.
CATALOG_SCHEMA_VERSION = 1

#: The ``kind`` header value of a system spec file.
SYSTEM_KIND = "system-spec"

#: GPU vendors the simulated management libraries cover.
KNOWN_VENDORS = ("amd", "intel", "nvidia")

#: PMT backends a system may name (see :mod:`repro.pmt`).
KNOWN_PMT_BACKENDS = ("cray", "levelzero", "nvml", "rocm")

#: Slurm acct_gather_energy plugins (see :mod:`repro.slurm`).
KNOWN_ENERGY_PLUGINS = ("ipmi", "pm_counters", "rapl")


class SchemaError(ValueError):
    """A catalog payload violates the schema (with a path-based message)."""

    def __init__(self, source: str, path: str, message: str) -> None:
        where = f"{source}: {path}" if path else source
        super().__init__(f"{where}: {message}")
        self.source = source
        self.path = path


def _fail(source: str, path: str, message: str) -> None:
    raise SchemaError(source, path, message)


def _section(
    payload: Mapping[str, Any], key: str, source: str, parent: str = ""
) -> Mapping[str, Any]:
    path = f"{parent}.{key}" if parent else key
    if key not in payload:
        _fail(source, parent, f"missing required section {key!r}")
    value = payload[key]
    if not isinstance(value, Mapping):
        _fail(source, path, f"expected a mapping, got {type(value).__name__}")
    return value

def _reject_unknown(
    mapping: Mapping[str, Any],
    known: Sequence[str],
    source: str,
    path: str,
) -> None:
    unknown = sorted(set(mapping) - set(known))
    if unknown:
        names = ", ".join(repr(k) for k in unknown)
        where = path or "top level"
        _fail(
            source,
            path,
            f"unknown key(s) {names} in {where} "
            f"(known: {', '.join(sorted(known))})",
        )


def _number(
    mapping: Mapping[str, Any],
    key: str,
    source: str,
    parent: str,
    lo: float,
    hi: float,
    unit_hint: str,
    required: bool = True,
    default: Optional[float] = None,
) -> Optional[float]:
    path = f"{parent}.{key}" if parent else key
    if key not in mapping:
        if required:
            _fail(source, parent, f"missing required key {key!r} [{unit_hint}]")
        return default
    value = mapping[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(source, path, f"expected a number, got {value!r}")
    value = float(value)
    if not lo <= value <= hi:
        _fail(
            source,
            path,
            f"{value:g} is outside the plausible range [{lo:g}, {hi:g}] "
            f"for {unit_hint} — check the unit",
        )
    return value


def _integer(
    mapping: Mapping[str, Any],
    key: str,
    source: str,
    parent: str,
    lo: int,
    hi: int,
    required: bool = True,
    default: Optional[int] = None,
) -> Optional[int]:
    path = f"{parent}.{key}" if parent else key
    if key not in mapping:
        if required:
            _fail(source, parent, f"missing required key {key!r}")
        return default
    value = mapping[key]
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(source, path, f"expected an integer, got {value!r}")
    if not lo <= value <= hi:
        _fail(source, path, f"{value} is outside [{lo}, {hi}]")
    return value


def _string(
    mapping: Mapping[str, Any],
    key: str,
    source: str,
    parent: str,
    choices: Optional[Sequence[str]] = None,
) -> str:
    path = f"{parent}.{key}" if parent else key
    if key not in mapping:
        _fail(source, parent, f"missing required key {key!r}")
    value = mapping[key]
    if not isinstance(value, str) or not value:
        _fail(source, path, f"expected a non-empty string, got {value!r}")
    if choices is not None and value not in choices:
        _fail(
            source,
            path,
            f"{value!r} is not one of {', '.join(sorted(choices))}",
        )
    return value


# -- unit plausibility windows (the "did you pass Hz?" guards) --------------

_MHZ = (10.0, 20_000.0, "a clock in MHz (did you write Hz or GHz?)")
_WATTS = (0.1, 10_000.0, "a power draw in watts")
_GFLOPS = (1.0, 1.0e6, "a throughput in GFLOP/s")
_GBPS = (1.0, 1.0e5, "a bandwidth in GB/s")
_GIB = (0.5, 16_384.0, "a capacity in GiB")


def _validate_clocks(gpu: Mapping[str, Any], source: str) -> None:
    clocks = _section(gpu, "clocks", source, "gpu")
    known = ("default_mhz", "max_mhz", "memory_mhz", "min_mhz", "step_mhz")
    _reject_unknown(clocks, known, source, "gpu.clocks")
    lo, hi, hint = _MHZ
    min_mhz = _number(clocks, "min_mhz", source, "gpu.clocks", lo, hi, hint)
    max_mhz = _number(clocks, "max_mhz", source, "gpu.clocks", lo, hi, hint)
    step = _number(clocks, "step_mhz", source, "gpu.clocks", 0.5, 500.0,
                   "a clock bin size in MHz")
    default = _number(clocks, "default_mhz", source, "gpu.clocks", lo, hi, hint)
    _number(clocks, "memory_mhz", source, "gpu.clocks", lo, hi, hint)
    if min_mhz > max_mhz:
        _fail(source, "gpu.clocks",
              f"min_mhz {min_mhz:g} exceeds max_mhz {max_mhz:g}")
    if not min_mhz <= default <= max_mhz:
        _fail(source, "gpu.clocks.default_mhz",
              f"{default:g} is outside [{min_mhz:g}, {max_mhz:g}]")
    span = max_mhz - min_mhz
    bins = span / step
    if abs(bins - round(bins)) > 1e-6:
        _fail(source, "gpu.clocks",
              f"the clock window {min_mhz:g}..{max_mhz:g} MHz is not a "
              f"whole number of {step:g} MHz bins")


def _validate_power(gpu: Mapping[str, Any], source: str) -> None:
    power = _section(gpu, "power", source, "gpu")
    _reject_unknown(power, ("exponent", "idle_w", "max_w"), source, "gpu.power")
    lo, hi, hint = _WATTS
    idle = _number(power, "idle_w", source, "gpu.power", lo, hi, hint)
    peak = _number(power, "max_w", source, "gpu.power", lo, hi, hint)
    _number(power, "exponent", source, "gpu.power", 0.5, 4.0,
            "the DVFS power exponent alpha")
    if idle >= peak:
        _fail(source, "gpu.power",
              f"idle_w {idle:g} must be below max_w {peak:g} "
              "(the dynamic envelope is max_w - idle_w)")


def _validate_compute(gpu: Mapping[str, Any], source: str) -> None:
    compute = _section(gpu, "compute", source, "gpu")
    known = ("fp64_gflops", "mem_bandwidth_gbps", "memory_gib")
    _reject_unknown(compute, known, source, "gpu.compute")
    _number(compute, "fp64_gflops", source, "gpu.compute", *_GFLOPS)
    _number(compute, "mem_bandwidth_gbps", source, "gpu.compute", *_GBPS)
    _number(compute, "memory_gib", source, "gpu.compute", *_GIB)


#: Governor overlay knobs: file key -> (lo, hi, unit hint).
_GOVERNOR_KNOBS = {
    "quantum_ms": (0.1, 1000.0, "a governor quantum in milliseconds"),
    "active_floor_mhz": _MHZ,
    "idle_clock_mhz": _MHZ,
    "ewma": (0.01, 1.0, "an EWMA factor in (0, 1]"),
    "launch_presence_floor": (0.0, 1.0, "a utilization fraction"),
    "boost_mhz": (0.0, 2000.0, "a boost headroom in MHz"),
    "voltage_margin_mhz": (0.0, 2000.0, "a voltage margin in MHz"),
    "transition_energy_j": (0.0, 10.0, "a transition cost in joules"),
}

#: Thermal overlay knobs (keys match :class:`ThermalSpec` fields).
_THERMAL_KNOBS = {
    "ambient_c": (-20.0, 60.0, "an inlet temperature in degC"),
    "resistance_c_per_w": (0.001, 2.0, "a thermal resistance in degC/W"),
    "tau_s": (0.5, 600.0, "a thermal time constant in seconds"),
    "throttle_temp_c": (40.0, 120.0, "a throttle threshold in degC"),
    "throttle_mhz_per_c": (0.0, 500.0, "a clock shed rate in MHz/degC"),
}

#: Comm overlay knobs: alpha-beta model parameters.
_COMM_KNOBS = {
    "inter_latency_us": (0.01, 1000.0, "an inter-node latency in us"),
    "inter_bandwidth_gbps": (0.1, 10_000.0, "a link bandwidth in GB/s"),
    "intra_latency_us": (0.01, 1000.0, "an intra-node latency in us"),
    "intra_bandwidth_gbps": (0.1, 10_000.0, "a link bandwidth in GB/s"),
    "call_overhead_us": (0.0, 1000.0, "a per-call overhead in us"),
}


def _validate_overlay(
    parent: Mapping[str, Any],
    key: str,
    knobs: Mapping[str, Tuple[float, float, str]],
    source: str,
    parent_path: str,
) -> None:
    if key not in parent:
        return
    path = f"{parent_path}.{key}" if parent_path else key
    overlay = parent[key]
    if not isinstance(overlay, Mapping):
        _fail(source, path, f"expected a mapping, got {type(overlay).__name__}")
    _reject_unknown(overlay, tuple(knobs), source, path)
    for knob, (lo, hi, hint) in knobs.items():
        _number(overlay, knob, source, path, lo, hi, hint, required=False)


def _validate_gpu(payload: Mapping[str, Any], source: str) -> None:
    gpu = _section(payload, "gpu", source)
    known = ("arch_efficiency", "clocks", "compute", "gcds_per_card",
             "governor", "name", "power", "thermal", "vendor")
    _reject_unknown(gpu, known, source, "gpu")
    _string(gpu, "name", source, "gpu")
    _string(gpu, "vendor", source, "gpu", choices=KNOWN_VENDORS)
    _validate_clocks(gpu, source)
    _validate_power(gpu, source)
    _validate_compute(gpu, source)
    _integer(gpu, "gcds_per_card", source, "gpu", 1, 16,
             required=False, default=1)
    if "arch_efficiency" in gpu:
        eff = gpu["arch_efficiency"]
        if not isinstance(eff, Mapping):
            _fail(source, "gpu.arch_efficiency",
                  f"expected a mapping, got {type(eff).__name__}")
        for kernel, value in eff.items():
            if not isinstance(kernel, str) or not kernel:
                _fail(source, "gpu.arch_efficiency",
                      f"kernel names must be strings, got {kernel!r}")
            if isinstance(value, bool) or not isinstance(value, (int, float)) \
                    or not 0.0 < float(value) <= 1.0:
                _fail(source, f"gpu.arch_efficiency.{kernel}",
                      f"efficiency must be a number in (0, 1], got {value!r}")
    _validate_overlay(gpu, "governor", _GOVERNOR_KNOBS, source, "gpu")
    _validate_overlay(gpu, "thermal", _THERMAL_KNOBS, source, "gpu")


def _validate_cpu(payload: Mapping[str, Any], source: str) -> None:
    cpu = _section(payload, "cpu", source)
    known = ("active_w", "cores_per_socket", "idle_w", "memory_gib",
             "min_mhz", "name", "nominal_mhz", "sockets")
    _reject_unknown(cpu, known, source, "cpu")
    _string(cpu, "name", source, "cpu")
    _integer(cpu, "sockets", source, "cpu", 1, 16)
    _integer(cpu, "cores_per_socket", source, "cpu", 1, 512)
    lo, hi, hint = _WATTS
    idle = _number(cpu, "idle_w", source, "cpu", lo, hi, hint)
    active = _number(cpu, "active_w", source, "cpu", lo, hi, hint)
    if idle > active:
        _fail(source, "cpu",
              f"idle_w {idle:g} must not exceed active_w {active:g}")
    _number(cpu, "memory_gib", source, "cpu", *_GIB)
    mhz_lo, mhz_hi, mhz_hint = _MHZ
    nominal = _number(cpu, "nominal_mhz", source, "cpu", mhz_lo, mhz_hi,
                      mhz_hint, required=False)
    minimum = _number(cpu, "min_mhz", source, "cpu", mhz_lo, mhz_hi,
                      mhz_hint, required=False)
    if nominal is not None and minimum is not None and minimum > nominal:
        _fail(source, "cpu",
              f"min_mhz {minimum:g} exceeds nominal_mhz {nominal:g}")


def _validate_node(payload: Mapping[str, Any], source: str) -> None:
    node = _section(payload, "node", source)
    _reject_unknown(node, ("aux_w", "memory_w", "ranks_per_node"),
                    source, "node")
    _integer(node, "ranks_per_node", source, "node", 1, 64)
    _number(node, "memory_w", source, "node", 0.0, 10_000.0,
            "the node DIMM power in watts")
    _number(node, "aux_w", source, "node", 0.0, 10_000.0,
            "the node auxiliary power in watts")


def _validate_measurement(payload: Mapping[str, Any], source: str) -> None:
    meas = _section(payload, "measurement", source)
    known = ("allow_user_freq_control", "pmt_backend", "slurm_energy_plugin")
    _reject_unknown(meas, known, source, "measurement")
    _string(meas, "pmt_backend", source, "measurement",
            choices=KNOWN_PMT_BACKENDS)
    _string(meas, "slurm_energy_plugin", source, "measurement",
            choices=KNOWN_ENERGY_PLUGINS)
    if "allow_user_freq_control" not in meas:
        _fail(source, "measurement",
              "missing required key 'allow_user_freq_control'")
    if not isinstance(meas["allow_user_freq_control"], bool):
        _fail(source, "measurement.allow_user_freq_control",
              f"expected true/false, got {meas['allow_user_freq_control']!r}")


def validate_system_payload(
    payload: Any, source: str = "<payload>"
) -> Dict[str, Any]:
    """Validate one parsed system-spec payload; return it as a dict.

    Raises :class:`SchemaError` (a ``ValueError``) with a
    ``source: path: problem`` message on the first violation.
    """
    if not isinstance(payload, Mapping):
        _fail(source, "", f"expected a mapping at the top level, "
                          f"got {type(payload).__name__}")
    if "schema" not in payload:
        _fail(source, "", "missing schema version — add 'schema: "
                          f"{CATALOG_SCHEMA_VERSION}' at the top level")
    version = payload["schema"]
    if not isinstance(version, int) or isinstance(version, bool):
        _fail(source, "schema", f"expected an integer, got {version!r}")
    if version != CATALOG_SCHEMA_VERSION:
        _fail(source, "schema",
              f"file has schema {version}, this build reads "
              f"{CATALOG_SCHEMA_VERSION}")
    kind = payload.get("kind")
    if kind != SYSTEM_KIND:
        _fail(source, "kind",
              f"expected a {SYSTEM_KIND!r} file, found {kind!r}")
    known = ("comm", "cpu", "description", "gpu", "kind", "measurement",
             "name", "node", "schema")
    _reject_unknown(payload, known, source, "")
    _string(payload, "name", source, "")
    if "description" in payload and not isinstance(payload["description"], str):
        _fail(source, "description", "expected a string")
    _validate_gpu(payload, source)
    _validate_cpu(payload, source)
    _validate_node(payload, source)
    _validate_measurement(payload, source)
    _validate_overlay(payload, "comm", _COMM_KNOBS, source, "")
    return dict(payload)
