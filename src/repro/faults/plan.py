"""Deterministic fault plans.

A :class:`FaultPlan` is a seeded, ordered list of :class:`FaultSpec`
entries describing *what* goes wrong, *where* (which management-library
operation, which rank) and *when* (call count, simulated time, or a
seeded per-call probability). The plan itself is pure data — the
:class:`~repro.faults.injector.FaultInjector` interprets it at run time
— so the same ``(plan, workload)`` pair always produces byte-identical
fault timing, which is what lets resilience tests assert exact
degradation behaviour instead of "it crashed somewhere".

The failure modes mirror what the measurement literature documents on
production nodes (Simsek et al., arXiv:2312.05102; Calore et al.,
arXiv:1703.02788): unsupported / permission-denied clock controls,
devices dropping off the bus, management-library latency spikes, power
counters that drop out, stick, or run backwards, and jobs preempted
mid-run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import List, Optional, Tuple


class FaultKind(enum.Enum):
    """What the injected fault does at the matched call site."""

    #: Raise the layer's Not Supported error (clock bin not offered).
    NOT_SUPPORTED = "not-supported"
    #: Raise the layer's Insufficient Permissions error.
    NO_PERMISSION = "no-permission"
    #: Raise the layer's device-lost error (fatal: it will not return).
    GPU_IS_LOST = "gpu-is-lost"
    #: Burn ``latency_s`` of simulated time, then raise a timeout error.
    TIMEOUT = "timeout"
    #: Burn ``latency_s`` of simulated time, then succeed (slow call).
    LATENCY = "latency"
    #: PMT read failure: raise :class:`~repro.pmt.base.PowerReadError`.
    DROPOUT = "dropout"
    #: PMT read returns the previous (stale) reading unchanged.
    STUCK = "stuck"
    #: PMT read returns a counter value ``magnitude_j`` joules *lower*.
    NON_MONOTONE = "non-monotone"
    #: Slurm-style preemption: the run loop is interrupted mid-run.
    PREEMPT = "preempt"


#: Kinds that only make sense on the ``pmt.read`` pseudo-operation.
SENSOR_KINDS = frozenset(
    {FaultKind.DROPOUT, FaultKind.STUCK, FaultKind.NON_MONOTONE}
)

#: The pseudo-operation name sensor wrappers consult.
OP_PMT_READ = "pmt.read"

#: The pseudo-operation name the per-step preemption check consults.
OP_JOB_STEP = "slurm.job"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    op:
        Operation to strike — a management-library entry-point name
        (``"nvmlDeviceSetApplicationsClocks"``), optionally with
        ``fnmatch`` wildcards (``"rsmi_dev_gpu_clk_freq_*"``), or one
        of the pseudo-ops :data:`OP_PMT_READ` / :data:`OP_JOB_STEP`.
    kind:
        The failure mode (:class:`FaultKind`).
    rank:
        Only strike calls for this rank/device index; ``None`` = all.
    after_calls:
        Arm once the per-``(op, rank)`` call count reaches this
        (1-based: ``after_calls=3`` arms on the third call).
    at_time_s:
        Arm at the first matching call at/after this simulated time.
        When both triggers are given, either one arms the fault. A spec
        with neither trigger is armed from the first call.
    count:
        Strike at most this many times per rank; ``None`` = permanent
        (every matching call from arming on).
    probability:
        When set, each armed call only strikes with this probability,
        drawn from the plan's seeded RNG (deterministic per run).
    latency_s:
        Simulated latency burned by :attr:`FaultKind.TIMEOUT` and
        :attr:`FaultKind.LATENCY` strikes.
    magnitude_j:
        Backwards jump of a :attr:`FaultKind.NON_MONOTONE` reading.
    """

    op: str
    kind: FaultKind
    rank: Optional[int] = None
    after_calls: Optional[int] = None
    at_time_s: Optional[float] = None
    count: Optional[int] = None
    probability: Optional[float] = None
    latency_s: float = 0.005
    magnitude_j: float = 5.0

    def __post_init__(self) -> None:
        if not self.op:
            raise ValueError("fault spec needs an operation name")
        if self.after_calls is not None and self.after_calls < 1:
            raise ValueError("after_calls is 1-based and must be >= 1")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 (None = permanent)")
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.latency_s < 0.0:
            raise ValueError("latency must be non-negative")
        if self.kind in SENSOR_KINDS and not fnmatchcase(
            OP_PMT_READ, self.op
        ):
            raise ValueError(
                f"{self.kind.value} faults only apply to {OP_PMT_READ!r}"
            )
        if self.kind is FaultKind.PREEMPT and not fnmatchcase(
            OP_JOB_STEP, self.op
        ):
            raise ValueError(
                f"preempt faults only apply to {OP_JOB_STEP!r}"
            )

    def matches(self, op: str, rank: Optional[int]) -> bool:
        """Does this spec target the call site ``(op, rank)``?"""
        if self.rank is not None and rank != self.rank:
            return False
        return fnmatchcase(op, self.op)

    @property
    def permanent(self) -> bool:
        return self.count is None

    def describe(self) -> str:
        """One human-readable line for plan listings and reports."""
        where = "all ranks" if self.rank is None else f"rank {self.rank}"
        when = []
        if self.after_calls is not None:
            when.append(f"call >= {self.after_calls}")
        if self.at_time_s is not None:
            when.append(f"t >= {self.at_time_s:g}s")
        trigger = " or ".join(when) if when else "immediately"
        extent = "permanent" if self.permanent else f"{self.count}x"
        prob = (
            f", p={self.probability:g}" if self.probability is not None else ""
        )
        return (
            f"{self.kind.value} on {self.op} ({where}, {trigger}, "
            f"{extent}{prob})"
        )


@dataclass
class FaultPlan:
    """A seeded, ordered collection of fault specs.

    The seed drives every probabilistic decision the injector makes, so
    two runs of the same plan against the same deterministic workload
    inject identical faults at identical instants.
    """

    seed: int = 0
    specs: List[FaultSpec] = field(default_factory=list)
    name: str = "custom"

    def add(self, spec: FaultSpec) -> "FaultPlan":
        """Append a spec (chainable builder)."""
        self.specs.append(spec)
        return self

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def describe(self) -> str:
        """Multi-line, human-readable plan listing."""
        lines = [f"fault plan {self.name!r} (seed {self.seed}):"]
        if not self.specs:
            lines.append("  (no faults)")
        for i, spec in enumerate(self.specs):
            lines.append(f"  [{i}] {spec.describe()}")
        return "\n".join(lines)


def preemption_at(time_s: float) -> FaultSpec:
    """Convenience spec: preempt the job at simulated time ``time_s``."""
    return FaultSpec(
        op=OP_JOB_STEP, kind=FaultKind.PREEMPT, at_time_s=time_s, count=1
    )


def preemption_after_steps(n_steps: int) -> FaultSpec:
    """Convenience spec: preempt the job before step ``n_steps + 1``."""
    return FaultSpec(
        op=OP_JOB_STEP,
        kind=FaultKind.PREEMPT,
        after_calls=n_steps + 1,
        count=1,
    )


Gap = Tuple[float, float]
