"""Named fault scenarios for the CLI and CI fault matrix.

Each scenario builds a :class:`~repro.faults.plan.FaultPlan` from a
seed and a rank count. They cover both vendor spellings of every
operation (NVML and ROCm SMI) so the same scenario name exercises
NVIDIA- and AMD-backed systems alike — unmatched ops simply never
fire.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .plan import (
    OP_PMT_READ,
    FaultKind,
    FaultPlan,
    FaultSpec,
    preemption_after_steps,
)

#: Clock-set entry points on both vendors (wildcards, see FaultSpec.op).
_CLOCK_SET_OPS = ("nvmlDeviceSetApplicationsClocks", "rsmi_dev_gpu_clk_freq_set")


def _gpu_lost(seed: int, n_ranks: int) -> FaultPlan:
    """Rank 0's device falls off the bus partway through the run."""
    plan = FaultPlan(seed=seed, name="gpu-lost")
    for op in _CLOCK_SET_OPS:
        plan.add(
            FaultSpec(
                op=op, kind=FaultKind.GPU_IS_LOST, rank=0, after_calls=3
            )
        )
    return plan


def _flaky_clocks(seed: int, n_ranks: int) -> FaultPlan:
    """Transient timeouts on a fraction of clock-set calls, all ranks."""
    plan = FaultPlan(seed=seed, name="flaky-clocks")
    for op in _CLOCK_SET_OPS:
        plan.add(
            FaultSpec(
                op=op,
                kind=FaultKind.TIMEOUT,
                probability=0.2,
                latency_s=0.002,
            )
        )
    return plan


def _no_permission(seed: int, n_ranks: int) -> FaultPlan:
    """Site policy revokes clock control on the last rank from the start."""
    plan = FaultPlan(seed=seed, name="no-permission")
    rank = max(n_ranks - 1, 0)
    for op in _CLOCK_SET_OPS:
        plan.add(FaultSpec(op=op, kind=FaultKind.NO_PERMISSION, rank=rank))
    return plan


def _power_dropout(seed: int, n_ranks: int) -> FaultPlan:
    """Intermittent power-counter read failures on every rank."""
    return FaultPlan(seed=seed, name="power-dropout").add(
        FaultSpec(
            op=OP_PMT_READ,
            kind=FaultKind.DROPOUT,
            probability=0.15,
        )
    )


def _stale_power(seed: int, n_ranks: int) -> FaultPlan:
    """Stuck counters plus an occasional backwards jump on rank 0."""
    plan = FaultPlan(seed=seed, name="stale-power")
    plan.add(
        FaultSpec(
            op=OP_PMT_READ,
            kind=FaultKind.STUCK,
            after_calls=2,
            probability=0.25,
        )
    )
    plan.add(
        FaultSpec(
            op=OP_PMT_READ,
            kind=FaultKind.NON_MONOTONE,
            rank=0,
            after_calls=4,
            count=2,
            magnitude_j=3.0,
        )
    )
    return plan


def _preempt_mid_run(seed: int, n_ranks: int) -> FaultPlan:
    """Slurm preempts the job after a handful of steps."""
    return FaultPlan(seed=seed, name="preempt-mid-run").add(
        preemption_after_steps(3)
    )


def _chaos(seed: int, n_ranks: int) -> FaultPlan:
    """Everything at once, at low probability — the soak scenario."""
    plan = FaultPlan(seed=seed, name="chaos")
    for op in _CLOCK_SET_OPS:
        plan.add(
            FaultSpec(op=op, kind=FaultKind.TIMEOUT, probability=0.1)
        )
        plan.add(
            FaultSpec(op=op, kind=FaultKind.NOT_SUPPORTED, probability=0.05)
        )
    plan.add(
        FaultSpec(op=OP_PMT_READ, kind=FaultKind.DROPOUT, probability=0.1)
    )
    plan.add(
        FaultSpec(
            op=OP_PMT_READ,
            kind=FaultKind.NON_MONOTONE,
            probability=0.05,
            magnitude_j=2.0,
        )
    )
    return plan


_BUILDERS: Dict[str, Callable[[int, int], FaultPlan]] = {
    "gpu-lost": _gpu_lost,
    "flaky-clocks": _flaky_clocks,
    "no-permission": _no_permission,
    "power-dropout": _power_dropout,
    "stale-power": _stale_power,
    "preempt-mid-run": _preempt_mid_run,
    "chaos": _chaos,
}

SCENARIO_DESCRIPTIONS: Dict[str, str] = {
    "gpu-lost": "rank 0's GPU is permanently lost after its 3rd clock set",
    "flaky-clocks": "20% of clock-set calls time out transiently",
    "no-permission": "clock control denied on the last rank from the start",
    "power-dropout": "15% of power-counter reads fail",
    "stale-power": "stuck counters, plus backwards jumps on rank 0",
    "preempt-mid-run": "Slurm preempts the job after 3 steps",
    "chaos": "all of the above at low probability (soak test)",
}


def scenario_names() -> List[str]:
    """Known scenario names, stable order."""
    return list(_BUILDERS)


def build_plan(name: str, seed: int = 0, n_ranks: int = 1) -> FaultPlan:
    """Build a named scenario's fault plan.

    Raises ``ValueError`` for unknown names, listing what exists.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ValueError(
            f"unknown fault scenario {name!r} (known: {known})"
        ) from None
    return builder(seed, n_ranks)
