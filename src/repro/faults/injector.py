"""Deterministic fault injection over the vendor layers.

The :class:`FaultInjector` interprets a
:class:`~repro.faults.plan.FaultPlan` at run time. It intercepts
management-library calls by patching the *package attributes* of
:mod:`repro.nvml` and :mod:`repro.rocm` — every caller in this codebase
(controller, PMT backends, analysis) resolves vendor entry points
through those attributes, so patching them captures the full call
surface without touching any call site. PMT sensors are wrapped
explicitly (:meth:`FaultInjector.wrap_sensor`) because sensor objects
are constructed per rank, and job preemption is polled by the run loop
(:meth:`FaultInjector.check_preemption`).

Everything the injector decides is deterministic: per-``(op, rank)``
call counts, simulated-time triggers against the rank's
:class:`~repro.hardware.clock.VirtualClock`, and a single
``random.Random(plan.seed)`` for probabilistic strikes. Rerunning the
same plan against the same workload reproduces byte-identical fault
timing, injection records and final reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import random

from .. import nvml as _nvml_pkg
from .. import rocm as _rocm_pkg
from ..hardware.clock import VirtualClock
from ..nvml.errors import (
    NVML_ERROR_GPU_IS_LOST,
    NVML_ERROR_NO_PERMISSION,
    NVML_ERROR_NOT_SUPPORTED,
    NVML_ERROR_TIMEOUT,
    NVMLError,
)
from ..pmt.base import PMT, PowerReadError, State
from ..rocm.smi import (
    RSMI_STATUS_AMDGPU_RESTART_ERR,
    RSMI_STATUS_BUSY,
    RSMI_STATUS_NOT_SUPPORTED,
    RSMI_STATUS_PERMISSION,
    RocmSmiError,
)
from .plan import OP_JOB_STEP, OP_PMT_READ, FaultKind, FaultPlan, FaultSpec


class JobPreempted(RuntimeError):
    """The scheduler revoked the allocation mid-run (Slurm preemption)."""

    def __init__(self, time_s: float, steps_done: int) -> None:
        self.time_s = time_s
        self.steps_done = steps_done
        super().__init__(
            f"job preempted at t={time_s:.6f}s after {steps_done} steps"
        )


@dataclass(frozen=True)
class InjectionRecord:
    """One fault actually delivered (not merely scheduled)."""

    op: str
    rank: Optional[int]
    kind: FaultKind
    call_index: int
    t_s: float

    def describe(self) -> str:
        where = "?" if self.rank is None else str(self.rank)
        return (
            f"t={self.t_s:9.6f}s rank {where}: {self.kind.value} "
            f"on {self.op} (call #{self.call_index})"
        )


#: NVML entry points the injector can strike.
_NVML_OPS = (
    "nvmlDeviceSetApplicationsClocks",
    "nvmlDeviceResetApplicationsClocks",
    "nvmlDeviceGetHandleByIndex",
    "nvmlDeviceGetSupportedMemoryClocks",
    "nvmlDeviceGetSupportedGraphicsClocks",
    "nvmlDeviceGetTotalEnergyConsumption",
    "nvmlDeviceGetPowerUsage",
)

#: ROCm SMI entry points the injector can strike.
_ROCM_OPS = (
    "rsmi_dev_gpu_clk_freq_set",
    "rsmi_dev_gpu_clk_freq_reset",
    "rsmi_dev_power_ave_get",
    "rsmi_dev_energy_count_get",
)

_NVML_ERROR_OF_KIND = {
    FaultKind.NOT_SUPPORTED: NVML_ERROR_NOT_SUPPORTED,
    FaultKind.NO_PERMISSION: NVML_ERROR_NO_PERMISSION,
    FaultKind.GPU_IS_LOST: NVML_ERROR_GPU_IS_LOST,
    FaultKind.TIMEOUT: NVML_ERROR_TIMEOUT,
}

_ROCM_STATUS_OF_KIND = {
    FaultKind.NOT_SUPPORTED: RSMI_STATUS_NOT_SUPPORTED,
    FaultKind.NO_PERMISSION: RSMI_STATUS_PERMISSION,
    FaultKind.GPU_IS_LOST: RSMI_STATUS_AMDGPU_RESTART_ERR,
    FaultKind.TIMEOUT: RSMI_STATUS_BUSY,
}


def _rank_of_call(args: Tuple[Any, ...]) -> Optional[int]:
    """Best-effort device index of a vendor call.

    NVML passes an opaque handle with an ``index`` attribute; ROCm SMI
    passes the device index as the first positional argument.
    """
    if not args:
        return None
    first = args[0]
    index = getattr(first, "index", None)
    if index is not None:
        return int(index)
    if isinstance(first, int):
        return first
    return None


@dataclass
class _SpecState:
    """Mutable per-spec bookkeeping, keyed by rank."""

    strikes: Dict[Optional[int], int] = field(default_factory=dict)


class FaultInjector:
    """Interpret a :class:`FaultPlan` against the vendor layers.

    Parameters
    ----------
    plan:
        The seeded fault plan to execute.
    clocks:
        Per-rank virtual clocks; needed for ``at_time_s`` triggers and
        to burn latency on TIMEOUT/LATENCY strikes. Usually supplied via
        :meth:`bind_cluster`.
    telemetry:
        Optional :class:`~repro.telemetry.TraceCollector`; every
        delivered fault is recorded on its faults track.
    """

    def __init__(
        self,
        plan: FaultPlan,
        clocks: Optional[Sequence[VirtualClock]] = None,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.plan = plan
        self.telemetry = telemetry
        self._clocks: List[VirtualClock] = list(clocks or [])
        self._rng = random.Random(plan.seed)
        self._calls: Dict[Tuple[str, Optional[int]], int] = {}
        self._spec_state: List[_SpecState] = [
            _SpecState() for _ in plan.specs
        ]
        self.records: List[InjectionRecord] = []
        self._installed = 0
        self._saved_nvml: Dict[str, Callable[..., Any]] = {}
        self._saved_rocm: Dict[str, Callable[..., Any]] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind_cluster(self, cluster: Any) -> "FaultInjector":
        """Adopt a cluster's per-rank clocks (chainable)."""
        self._clocks = list(cluster.clocks)
        return self

    def install(self) -> "FaultInjector":
        """Patch the vendor packages. Reference counted and idempotent.

        Use as a context manager where possible::

            with injector:
                sim.run(n_steps)
        """
        self._installed += 1
        if self._installed > 1:
            return self
        for name in _NVML_OPS:
            original = getattr(_nvml_pkg, name)
            self._saved_nvml[name] = original
            setattr(_nvml_pkg, name, self._wrap(name, original))
        for name in _ROCM_OPS:
            original = getattr(_rocm_pkg, name)
            self._saved_rocm[name] = original
            setattr(_rocm_pkg, name, self._wrap(name, original))
        return self

    def uninstall(self) -> None:
        """Undo :meth:`install` (last reference restores the packages)."""
        if self._installed == 0:
            return
        self._installed -= 1
        if self._installed > 0:
            return
        for name, original in self._saved_nvml.items():
            setattr(_nvml_pkg, name, original)
        for name, original in self._saved_rocm.items():
            setattr(_rocm_pkg, name, original)
        self._saved_nvml.clear()
        self._saved_rocm.clear()

    def __enter__(self) -> "FaultInjector":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # Decision core
    # ------------------------------------------------------------------

    def _now(self, rank: Optional[int]) -> float:
        if rank is not None and 0 <= rank < len(self._clocks):
            return self._clocks[rank].now
        if self._clocks:
            return max(c.now for c in self._clocks)
        return 0.0

    def _burn(self, rank: Optional[int], dt: float) -> None:
        if dt <= 0.0:
            return
        if rank is not None and 0 <= rank < len(self._clocks):
            self._clocks[rank].advance(dt)

    def _decide(
        self, op: str, rank: Optional[int]
    ) -> Optional[Tuple[FaultSpec, int]]:
        """Count this call and return the striking spec, if any.

        Specs are consulted in plan order; the first armed spec whose
        probability draw (if any) succeeds wins. Call counts advance on
        every call, struck or not, so ``after_calls`` is stable no
        matter how earlier specs fire.
        """
        key = (op, rank)
        n = self._calls.get(key, 0) + 1
        self._calls[key] = n
        now = self._now(rank)
        for i, spec in enumerate(self.plan.specs):
            if not spec.matches(op, rank):
                continue
            armed = True
            if spec.after_calls is not None or spec.at_time_s is not None:
                armed = False
                if spec.after_calls is not None and n >= spec.after_calls:
                    armed = True
                if spec.at_time_s is not None and now >= spec.at_time_s:
                    armed = True
            if not armed:
                continue
            state = self._spec_state[i]
            if (
                spec.count is not None
                and state.strikes.get(rank, 0) >= spec.count
            ):
                continue
            if (
                spec.probability is not None
                and self._rng.random() >= spec.probability
            ):
                continue
            state.strikes[rank] = state.strikes.get(rank, 0) + 1
            return spec, n
        return None

    def _record(
        self, op: str, rank: Optional[int], kind: FaultKind, call_index: int
    ) -> None:
        rec = InjectionRecord(
            op=op,
            rank=rank,
            kind=kind,
            call_index=call_index,
            t_s=self._now(rank),
        )
        self.records.append(rec)
        if self.telemetry is not None:
            self.telemetry.record_fault_injected(
                rank if rank is not None else -1, op, kind.value, ts=rec.t_s
            )

    # ------------------------------------------------------------------
    # Vendor-call interception
    # ------------------------------------------------------------------

    def _wrap(self, op: str, original: Callable[..., Any]) -> Callable[..., Any]:
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            rank = _rank_of_call(args)
            hit = self._decide(op, rank)
            if hit is None:
                return original(*args, **kwargs)
            spec, call_index = hit
            if spec.kind in (FaultKind.TIMEOUT, FaultKind.LATENCY):
                self._burn(rank, spec.latency_s)
            self._record(op, rank, spec.kind, call_index)
            if spec.kind is FaultKind.LATENCY:
                return original(*args, **kwargs)
            if op.startswith("rsmi_"):
                raise RocmSmiError(_ROCM_STATUS_OF_KIND[spec.kind])
            raise NVMLError(_NVML_ERROR_OF_KIND[spec.kind])

        wrapper.__name__ = op
        wrapper.__wrapped__ = original  # type: ignore[attr-defined]
        return wrapper

    # ------------------------------------------------------------------
    # PMT sensor faults
    # ------------------------------------------------------------------

    def wrap_sensor(self, sensor: PMT, rank: int = 0) -> PMT:
        """Wrap a PMT sensor so reads consult the plan's ``pmt.read`` specs."""
        return _FaultyPMT(self, sensor, rank)

    # ------------------------------------------------------------------
    # Job preemption
    # ------------------------------------------------------------------

    def check_preemption(self, steps_done: int = 0) -> None:
        """Raise :class:`JobPreempted` if a preemption spec strikes now.

        Called once per simulation step by the run loop (pseudo-op
        ``slurm.job``); harmless no-op with no preemption specs.
        """
        hit = self._decide(OP_JOB_STEP, None)
        if hit is None:
            return
        spec, call_index = hit
        self._record(OP_JOB_STEP, None, spec.kind, call_index)
        if spec.kind is FaultKind.PREEMPT:
            raise JobPreempted(self._now(None), steps_done)

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Full decision state: resuming replays the plan exactly.

        ``check_preemption`` consumes RNG/strike state *before* raising
        :class:`JobPreempted`, so a checkpoint written at the preemption
        boundary already counts the delivered strike — the resumed run
        will not re-preempt on a ``count=1`` spec.
        """
        return {
            # random.Random.getstate() -> (version, tuple-of-ints, gauss)
            "rng": list(self._rng.getstate()[1]),
            "rng_version": self._rng.getstate()[0],
            "rng_gauss": self._rng.getstate()[2],
            "calls": [
                [op, rank, n] for (op, rank), n in self._calls.items()
            ],
            "spec_state": [
                {
                    "strikes": [
                        [rank, n] for rank, n in state.strikes.items()
                    ]
                }
                for state in self._spec_state
            ],
            "records": [
                {
                    "op": rec.op,
                    "rank": rec.rank,
                    "kind": rec.kind.value,
                    "call_index": rec.call_index,
                    "t_s": rec.t_s,
                }
                for rec in self.records
            ],
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._rng.setstate(
            (
                int(state["rng_version"]),
                tuple(int(v) for v in state["rng"]),
                state["rng_gauss"],
            )
        )
        self._calls = {
            (op, None if rank is None else int(rank)): int(n)
            for op, rank, n in state["calls"]
        }
        self._spec_state = [
            _SpecState(
                strikes={
                    (None if rank is None else int(rank)): int(n)
                    for rank, n in entry["strikes"]
                }
            )
            for entry in state["spec_state"]
        ]
        if len(self._spec_state) != len(self.plan.specs):
            raise ValueError(
                "fault-injector state does not match the plan "
                f"({len(self._spec_state)} spec states for "
                f"{len(self.plan.specs)} specs)"
            )
        self.records = [
            InjectionRecord(
                op=rec["op"],
                rank=None if rec["rank"] is None else int(rec["rank"]),
                kind=FaultKind(rec["kind"]),
                call_index=int(rec["call_index"]),
                t_s=float(rec["t_s"]),
            )
            for rec in state["records"]
        ]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Aggregate delivered faults for the degradation report."""
        by_kind: Dict[str, int] = {}
        by_op: Dict[str, int] = {}
        by_rank: Dict[str, int] = {}
        for rec in self.records:
            by_kind[rec.kind.value] = by_kind.get(rec.kind.value, 0) + 1
            by_op[rec.op] = by_op.get(rec.op, 0) + 1
            rk = "-" if rec.rank is None else str(rec.rank)
            by_rank[rk] = by_rank.get(rk, 0) + 1
        return {
            "plan": self.plan.name,
            "seed": self.plan.seed,
            "total_injected": len(self.records),
            "by_kind": by_kind,
            "by_op": by_op,
            "by_rank": by_rank,
        }


class _FaultyPMT(PMT):
    """PMT decorator delivering sensor faults from a fault plan."""

    platform = "faulty"

    def __init__(self, injector: FaultInjector, inner: PMT, rank: int) -> None:
        self._injector = injector
        self._inner = inner
        self._rank = rank
        self._last_good: Optional[State] = None

    @property
    def inner(self) -> PMT:
        return self._inner

    def read(self) -> State:
        inj = self._injector
        hit = inj._decide(OP_PMT_READ, self._rank)
        if hit is None:
            state = self._inner.read()
            self._last_good = state
            return state
        spec, call_index = hit
        inj._record(OP_PMT_READ, self._rank, spec.kind, call_index)
        if spec.kind is FaultKind.DROPOUT:
            raise PowerReadError(
                f"power counter dropout on rank {self._rank}"
            )
        if spec.kind is FaultKind.STUCK:
            if self._last_good is None:
                # Nothing to be stuck at yet: surface as a dropout.
                raise PowerReadError(
                    f"power counter stale before first read on rank "
                    f"{self._rank}"
                )
            return self._last_good
        if spec.kind is FaultKind.NON_MONOTONE:
            real = self._inner.read()
            # Deliberately NOT stored as last good: the bogus reading
            # must not contaminate stuck-fault replays.
            return State(
                timestamp_s=real.timestamp_s,
                joules=real.joules - spec.magnitude_j,
                watts=real.watts,
            )
        # Non-sensor kinds on pmt.read degrade to a read error.
        raise PowerReadError(
            f"injected {spec.kind.value} on pmt.read (rank {self._rank})"
        )
