"""Fault injection and resilience (docs/robustness.md).

Seeded, deterministic fault plans (:class:`FaultPlan`) interpreted by a
:class:`FaultInjector` that wraps the simulated vendor layers —
:mod:`repro.nvml`, :mod:`repro.rocm`, PMT sensors and the Slurm-style
job loop — so the frequency-scaling pipeline can be tested against the
failure modes production nodes actually exhibit: denied or unsupported
clock controls, lost devices, management-library latency spikes, power
counters that drop out, stick or run backwards, and mid-run preemption.
"""

from .injector import FaultInjector, InjectionRecord, JobPreempted
from .plan import (
    OP_JOB_STEP,
    OP_PMT_READ,
    FaultKind,
    FaultPlan,
    FaultSpec,
    preemption_after_steps,
    preemption_at,
)
from .scenarios import SCENARIO_DESCRIPTIONS, build_plan, scenario_names

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectionRecord",
    "JobPreempted",
    "OP_JOB_STEP",
    "OP_PMT_READ",
    "SCENARIO_DESCRIPTIONS",
    "build_plan",
    "preemption_after_steps",
    "preemption_at",
    "scenario_names",
]
