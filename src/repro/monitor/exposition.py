"""Prometheus text-format exposition of the metrics registry.

Renders every counter, gauge and histogram of a
:class:`~repro.telemetry.metrics.MetricsRegistry` in the Prometheus
text exposition format (version 0.0.4): ``# HELP`` / ``# TYPE``
comments, ``repro_``-prefixed sanitized metric names, counters with the
``_total`` suffix, histograms as *cumulative* ``_bucket{le="..."}``
series plus ``_sum`` / ``_count``, and label values escaped per the
spec (backslash, double quote, newline).

Two delivery paths, matching how operators actually consume it:

* :func:`write_prom_file` — atomic write (temp + rename) of a
  ``metrics.prom`` file, the node-exporter *textfile collector*
  pattern: a scraper never observes a half-written file;
* :class:`MetricsServer` — an optional stdlib ``http.server`` endpoint
  serving ``GET /metrics`` from a background thread, for live scrapes
  of a long-running campaign.

:func:`parse_prometheus_text` is a strict validating parser used by the
test suite (and usable for cross-checking any exposition file): it
rejects malformed sample lines, type-less families and non-float
values rather than guessing.
"""

from __future__ import annotations

import os
import re
import tempfile
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Mapping, Optional, Tuple

#: Content type of the text exposition format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Prefix applied to every exported metric name.
PROM_PREFIX = "repro_"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_PAIR = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)

#: Help strings for well-known registry metrics (fallback is generated).
HELP_TEXTS: Dict[str, str] = {
    "clock_set_calls": "Performed management-library clock changes.",
    "clock_set_skipped": "Redundant clock requests elided by the controller.",
    "trace_events_dropped": "Events dropped by the trace ring buffer.",
    "counter_samples": "Periodic counter samples recorded in the trace.",
    "spans_recorded": "Function spans recorded in the trace.",
    "monitor_samples": "Device samples taken by the monitor sampler.",
    "sampler_gaps": "Intervals the monitor sampler could not observe.",
    "sampler_gap_ticks": "Sampling ticks missed inside sampler gaps.",
    "alerts_fired": "Alert rules that transitioned to firing.",
    "faults_injected": "Faults delivered by the fault injector.",
    "fault_retries": "Transient-error retries performed.",
    "ranks_degraded": "Ranks handed to their DVFS governor.",
    "power_read_gaps": "Bridged power-sampling gaps.",
    "comm_rank_wait_seconds": (
        "Per-rank idle time waiting at collectives (simulated seconds)."
    ),
    "comm_collective_calls": "Collective operations issued, by op.",
    "comm_sync_wait_seconds": (
        "Total synchronization wait summed over ranks (simulated seconds)."
    ),
    "comm_time_seconds": "Time spent moving bytes (simulated seconds).",
    "comm_bytes_moved": "Bytes moved through the communicator.",
}


def comm_gauges(stats) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Extra gauge samples for one :class:`~repro.mpi.comm.CommStats`.

    The communicator's counters are plain Python state, not registry
    gauges, so the monitor folds them into the exposition through
    :func:`render_prometheus`'s ``extra_gauges`` hook. The per-rank
    wait series is the scrape-side view of the load imbalance the
    critical-path profiler attributes per step — same numbers, so an
    operator watching ``comm_rank_wait_seconds`` and an engineer
    reading ``repro profile critical-path`` agree on the gating rank.
    """
    gauges: Dict[str, List[Tuple[Dict[str, str], float]]] = {
        "comm_sync_wait_seconds": [({}, float(stats.sync_wait_s))],
        "comm_time_seconds": [({}, float(stats.comm_time_s))],
        "comm_bytes_moved": [({}, float(stats.bytes_moved))],
        "comm_rank_wait_seconds": [
            ({"rank": str(rank)}, float(wait))
            for rank, wait in enumerate(stats.rank_wait_s)
        ],
        "comm_collective_calls": [
            ({"op": op}, float(count))
            for op, count in sorted(stats.calls.items())
        ],
    }
    return {name: samples for name, samples in gauges.items() if samples}


def sanitize_metric_name(name: str) -> str:
    """Coerce a registry metric name into a legal Prometheus name."""
    if not name:
        raise ValueError("metric name must not be empty")
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if re.match(r"^[0-9]", cleaned):
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _unescape_label_value(value: str) -> str:
    return (
        value.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(k)}="{escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Family:
    """One metric family being rendered (name, type, samples)."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.samples: List[Tuple[str, Mapping[str, str], float]] = []

    def add(self, suffix: str, labels: Mapping[str, str], value: float) -> None:
        self.samples.append((suffix, labels, value))

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for suffix, labels, value in self.samples:
            lines.append(
                f"{self.name}{suffix}{_render_labels(labels)} "
                f"{_format_value(value)}"
            )
        return lines


def render_prometheus(metrics, extra_gauges=None) -> str:
    """Render a :class:`MetricsRegistry` as Prometheus exposition text.

    ``extra_gauges`` optionally supplies additional gauge samples as a
    mapping ``name -> [(labels, value), ...]`` — the monitor uses it to
    expose live series values that are not registry gauges.
    """
    families: Dict[str, _Family] = {}

    def family(raw_name: str, kind: str, suffix: str = "") -> _Family:
        name = PROM_PREFIX + sanitize_metric_name(raw_name) + suffix
        fam = families.get(name)
        if fam is None:
            help_text = HELP_TEXTS.get(
                raw_name, f"repro metric {raw_name!r}."
            )
            fam = families[name] = _Family(name, kind, help_text)
        return fam

    for name, labels, counter in metrics.iter_counters():
        family(name, "counter", "_total").add("", dict(labels), counter.value)
    for name, labels, gauge in metrics.iter_gauges():
        family(name, "gauge").add("", dict(labels), gauge.value)
    if extra_gauges:
        for name, samples in extra_gauges.items():
            fam = family(name, "gauge")
            for labels, value in samples:
                fam.add("", dict(labels), value)
    for name, labels, hist in metrics.iter_histograms():
        fam = family(name, "histogram")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.bucket_counts):
            cumulative += count
            fam.add(
                "_bucket",
                {**dict(labels), "le": f"{bound:g}"},
                float(cumulative),
            )
        fam.add(
            "_bucket",
            {**dict(labels), "le": "+Inf"},
            float(hist.count),
        )
        fam.add("_sum", dict(labels), hist.sum)
        fam.add("_count", dict(labels), float(hist.count))

    lines: List[str] = []
    for name in sorted(families):
        lines.extend(families[name].render())
    return "\n".join(lines) + "\n" if lines else ""


def write_prom_file(path: str, text: str) -> None:
    """Atomically write exposition text (textfile-collector pattern)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=".metrics-", suffix=".prom.tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# Validating parser (used by tests and cross-checks)
# ---------------------------------------------------------------------------

def _parse_float(token: str, lineno: int) -> float:
    if token == "+Inf":
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    try:
        return float(token)
    except ValueError:
        raise ValueError(
            f"line {lineno}: invalid sample value {token!r}"
        ) from None


def _parse_labels(body: str, lineno: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(body):
        match = _LABEL_PAIR.match(body, pos)
        if match is None:
            raise ValueError(
                f"line {lineno}: malformed label pair at {body[pos:]!r}"
            )
        key = match.group("key")
        if key in labels:
            raise ValueError(f"line {lineno}: duplicate label {key!r}")
        labels[key] = _unescape_label_value(match.group("value"))
        pos = match.end()
    return labels


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse (and strictly validate) Prometheus exposition text.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(sample_name, labels, value), ...]}}``. Raises ``ValueError`` with
    a line number for anything malformed: unknown metric types, sample
    lines that do not parse, samples whose name does not extend a
    declared family, or non-float values.
    """
    families: Dict[str, Dict[str, object]] = {}
    current: Optional[str] = None
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                if not _NAME_OK.match(name):
                    raise ValueError(
                        f"line {lineno}: invalid metric name {name!r}"
                    )
                fam = families.setdefault(
                    name, {"type": None, "help": None, "samples": []}
                )
                if parts[1] == "HELP":
                    fam["help"] = parts[3] if len(parts) > 3 else ""
                else:
                    kind = parts[3] if len(parts) > 3 else ""
                    if kind not in (
                        "counter", "gauge", "histogram", "summary", "untyped"
                    ):
                        raise ValueError(
                            f"line {lineno}: unknown metric type {kind!r}"
                        )
                    fam["type"] = kind
                    current = name
            # Other comments are legal and ignored.
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", lineno)
        value = _parse_float(match.group("value"), lineno)
        owner = None
        for fam_name in families:
            if name == fam_name or (
                name.startswith(fam_name)
                and name[len(fam_name):] in ("_bucket", "_sum", "_count", "_total")
            ):
                if owner is None or len(fam_name) > len(owner):
                    owner = fam_name
        if owner is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no # TYPE declaration"
            )
        families[owner]["samples"].append((name, labels, value))
    for name, fam in families.items():
        if fam["type"] is None:
            raise ValueError(f"family {name!r} has no # TYPE line")
    _ = current
    return families


# ---------------------------------------------------------------------------
# Live /metrics endpoint
# ---------------------------------------------------------------------------

class MetricsServer:
    """A stdlib HTTP server exposing ``/metrics`` from a provider.

    The provider callable is invoked per scrape, so the endpoint always
    reflects the current registry state. The server runs on a daemon
    thread; ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).
    """

    def __init__(
        self,
        provider: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._provider = provider
        self._host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            raise RuntimeError("server is already running")
        provider = self._provider

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404, "try /metrics")
                    return
                try:
                    body = provider().encode("utf-8")
                except Exception as exc:  # pragma: no cover - provider bug
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", PROM_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-scrape spam
                return

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            raise RuntimeError("server is not running")
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
