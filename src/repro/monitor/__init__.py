"""repro.monitor — live monitoring over the telemetry layer.

Layered on :mod:`repro.telemetry`, this package watches a run *while it
happens* instead of post-hoc:

- :mod:`~repro.monitor.series` — fixed-capacity downsampling time
  series (bounded memory, drop accounting) and incremental estimators;
- :mod:`~repro.monitor.sampler` — :class:`DeviceSampler`, the periodic
  device/process poller driven by the simulated clocks;
- :mod:`~repro.monitor.alerts` — declarative :class:`AlertRule` engine
  (threshold / for-duration / rate rules, worker-stall judging);
- :mod:`~repro.monitor.exposition` — Prometheus text exposition (atomic
  ``metrics.prom`` file and stdlib ``/metrics`` endpoint);
- :mod:`~repro.monitor.report` — self-contained single-file HTML run
  reports with inline SVG sparklines and an alert timeline;
- :mod:`~repro.monitor.monitor` — the :class:`Monitor` facade wiring
  all of the above, used by ``repro monitor`` and ``Simulation``.
"""

from .alerts import (
    DEFAULT_STALL_AFTER_S,
    Alert,
    AlertEngine,
    AlertRule,
    WORKER_STALL_RULE,
    default_rules,
    stalled_worker_alerts,
)
from .exposition import (
    PROM_CONTENT_TYPE,
    MetricsServer,
    comm_gauges,
    parse_prometheus_text,
    render_prometheus,
    write_prom_file,
)
from .monitor import Monitor, MonitorConfig
from .report import (
    build_report,
    render_html,
    write_html_report,
    write_json_snapshot,
)
from .sampler import DEVICE_SERIES, PROCESS_SERIES, DeviceSampler, SamplerGap
from .series import (
    DEFAULT_CAPACITY,
    Bucket,
    Ema,
    RateTracker,
    TimeSeries,
    WindowDelta,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_STALL_AFTER_S",
    "DEVICE_SERIES",
    "PROCESS_SERIES",
    "PROM_CONTENT_TYPE",
    "WORKER_STALL_RULE",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "Bucket",
    "DeviceSampler",
    "Ema",
    "MetricsServer",
    "Monitor",
    "MonitorConfig",
    "RateTracker",
    "SamplerGap",
    "TimeSeries",
    "WindowDelta",
    "build_report",
    "comm_gauges",
    "default_rules",
    "parse_prometheus_text",
    "render_html",
    "render_prometheus",
    "stalled_worker_alerts",
    "write_html_report",
    "write_json_snapshot",
    "write_prom_file",
]
